"""Service throughput benchmark: batched cached ARD vs per-request RD.

Drives the solver service (:mod:`repro.service`) with a stream of
single-RHS requests against one registered matrix and compares its
wall-clock throughput with the unserved baseline — classical recursive
doubling re-run from scratch for every request (no factorization held,
no batching), the workflow the paper's amortization argument replaces.

For each request count ``R`` the benchmark reports requests/second for
both paths plus the service's cache hit-rate and batch-size statistics
from :meth:`~repro.service.service.SolverService.metrics_snapshot` —
the measured counterpart of the paper's ``O(R)`` reuse claim.  The
baseline's per-request cost is constant, so it is timed over at most
``BASELINE_CAP`` requests and reported as a rate; the service path
executes all ``R`` requests for real (batching only shows at scale).

Exposed as ``python -m repro.harness serve-bench`` and reused by
``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import pathlib
import time
from typing import Any, Sequence

from ..core.api import solve
from ..obs.log import console, get_logger
from ..service import SolverService
from ..util.tables import render_table
from ..workloads import helmholtz_block_system, random_rhs

__all__ = ["serve_bench", "BASELINE_CAP"]

_log = get_logger("harness")

#: Baseline RD requests actually executed per R (rate extrapolated).
BASELINE_CAP = 32

_SCALES = {
    "smoke": dict(nblocks=64, block_size=4, nranks=4),
    "full": dict(nblocks=256, block_size=8, nranks=8),
}
_DEFAULT_RHS = (10, 100, 256, 1000)


def _rd_baseline_rate(matrix, nranks: int, nrequests: int, seed0: int) -> float:
    """Requests/second of per-request classical RD (no reuse at all)."""
    n, m = matrix.nblocks, matrix.block_size
    rhs = [random_rhs(n, m, nrhs=1, seed=seed0 + i) for i in range(nrequests)]
    t0 = time.perf_counter()
    for b in rhs:
        solve(matrix, b, method="rd", nranks=nranks)
    return nrequests / (time.perf_counter() - t0)


def serve_bench(
    scale: str = "smoke",
    rhs_counts: Sequence[int] | None = None,
    *,
    workers: int = 2,
    batch_window: float = 0.002,
    max_batch_rhs: int = 128,
    out_dir: str | pathlib.Path | None = None,
    verbose: bool = True,
    http: bool | int = False,
) -> dict[str, Any]:
    """Run the service-vs-baseline throughput comparison.

    Parameters
    ----------
    scale:
        ``"smoke"`` (N=64, M=4, P=4) or ``"full"`` (N=256, M=8, P=8).
    rhs_counts:
        Request counts ``R`` to sweep (default ``(10, 100, 256, 1000)``).
    workers / batch_window / max_batch_rhs:
        Service configuration (see
        :class:`~repro.service.service.SolverService`).
    out_dir:
        If given, write ``serve_bench.stats.json`` there.
    verbose:
        Print the ASCII table.
    http:
        ``True`` (ephemeral port) or a port number: expose each
        service's live ``/metrics`` + ``/healthz`` + ``/traces``
        telemetry endpoint while its sweep point runs (``python -m
        repro.harness serve-bench --http``); the bound URL is printed
        and recorded per row as ``http_url``.

    Returns
    -------
    dict
        ``{"scale", "config", "rows": [...]}``; each row carries the
        two rates, the speedup, and the service metrics snapshot.
    """
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    cfg = _SCALES[scale]
    n, m, p = cfg["nblocks"], cfg["block_size"], cfg["nranks"]
    matrix, _ = helmholtz_block_system(n, m)
    rhs_counts = tuple(rhs_counts) if rhs_counts else _DEFAULT_RHS

    rows: list[dict[str, Any]] = []
    for r in rhs_counts:
        base_rate = _rd_baseline_rate(matrix, p, min(r, BASELINE_CAP), seed0=0)

        service = SolverService(
            method="ard", nranks=p, workers=workers,
            batch_window=batch_window, max_batch_rhs=max_batch_rhs,
            max_pending=max(r, 1), expose_http=http,
        )
        http_url = service.http.url if service.http is not None else None
        if http_url and verbose:
            console(f"telemetry: {http_url}/metrics (R={r})")
        try:
            handle = service.register(matrix, eager=True)
            rhs = [random_rhs(n, m, nrhs=1, seed=i) for i in range(r)]
            t0 = time.perf_counter()
            tickets = [service.submit(handle, b) for b in rhs]
            for t in tickets:
                t.result(timeout=300.0)
            svc_rate = r / (time.perf_counter() - t0)
            snap = service.metrics_snapshot()
        finally:
            service.close()

        batch = snap["summaries"].get("batch.size", {})
        row = {
            "R": r,
            "rd_req_per_s": base_rate,
            "service_req_per_s": svc_rate,
            "speedup": svc_rate / base_rate,
            "cache_hit_rate": snap["cache"]["hit_rate"],
            "mean_batch": batch.get("mean"),
            "max_batch": batch.get("max"),
            "metrics": snap,
        }
        if http_url is not None:
            row["http_url"] = http_url
        rows.append(row)
        _log.info("serve_bench.row", R=r, scale=scale,
                  service_req_per_s=svc_rate, rd_req_per_s=base_rate,
                  speedup=row["speedup"],
                  cache_hit_rate=row["cache_hit_rate"])

    result = {
        "scale": scale,
        "config": {"nblocks": n, "block_size": m, "nranks": p,
                   "workers": workers, "batch_window": batch_window,
                   "max_batch_rhs": max_batch_rhs,
                   "baseline_cap": BASELINE_CAP},
        "rows": rows,
    }
    if verbose:
        console(render_table(
            ["R", "rd req/s", "service req/s", "speedup",
             "hit rate", "mean batch", "max batch"],
            [[row["R"], row["rd_req_per_s"], row["service_req_per_s"],
              row["speedup"], row["cache_hit_rate"], row["mean_batch"],
              row["max_batch"]] for row in rows],
            title=f"serve-bench ({scale}: N={n}, M={m}, P={p}; "
            f"baseline timed over <= {BASELINE_CAP} requests)",
        ))
    if out_dir is not None:
        from ..io import write_stats_json

        out_dir = pathlib.Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = write_stats_json(out_dir / "serve_bench.stats.json", result)
        if verbose:
            console(f"wrote {path}")
    return result
