"""``python -m repro.harness tune`` — run the planner tuning sweep.

Thin CLI wrapper over :func:`repro.perfmodel.tune_machine`: runs the
model-anchored sweep, writes the schema-versioned per-host tuning
table, and (``--check``) verifies the artifact round-trips and planning
works against it.  The ``--quick`` sweep is the CI smoke configuration
(committed-artifact ``TUNE_host.json``); the full sweep is what a user
runs once per machine.  See docs/PLANNER.md.
"""

from __future__ import annotations

from ..exceptions import ReproError
from ..obs.log import console
from ..perfmodel.planner import (
    DEFAULT_TUNE_PATH,
    SWEEP_SHAPES,
    clear_plan_cache,
    load_table,
    plan,
    save_table,
    tune_machine,
)

__all__ = ["run_tune"]


def run_tune(out: str | None = None, quick: bool = False,
             check: bool = False) -> int:
    """Run the sweep, write the table, optionally verify it.  Exit code."""
    path = out or DEFAULT_TUNE_PATH
    mode = "quick" if quick else "full"
    console(f"tune: running {mode} sweep")
    table = tune_machine(quick=quick, progress=lambda s: console(f"tune: {s}"))
    written = save_table(table, path)
    measured = sum(1 for e in table.entries if e.provenance == "measured")
    console(f"tune: wrote {written} ({len(table.entries)} entries, "
          f"{measured} measured, host {table.host})")
    for field, value in sorted(table.thresholds.items()):
        console(f"tune: threshold {field} = {value}")
    if not check:
        return 0

    # --check: the artifact must round-trip (schema + host) and the
    # planner must produce a plan for every canonical bench shape.
    clear_plan_cache()
    try:
        reloaded = load_table(written)
    except ReproError as exc:
        console(f"tune check failed: reload: {exc}")
        return 1
    if reloaded is None:
        console("tune check failed: written table does not match this host")
        return 1
    if len(reloaded.entries) != len(table.entries):
        console("tune check failed: entry count changed across round-trip")
        return 1
    try:
        for (n, m, p, r) in SWEEP_SHAPES:
            chosen = plan(n, m, p, r, table=reloaded)
            console(f"tune: plan({n}, {m}, p={p}, r={r}) -> "
                  f"{chosen.method}/{chosen.comm_backend}/"
                  f"{chosen.blockops_backend}/{chosen.recurrence_mode} "
                  f"[{chosen.provenance}"
                  f"{', clamped' if chosen.clamped else ''}]")
    except ReproError as exc:
        console(f"tune check failed: planning: {exc}")
        return 1
    console("tune: check passed")
    return 0
