"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.harness list
    python -m repro.harness run recon-F1 [--scale smoke] [--out results/]
    python -m repro.harness all [--scale smoke] [--out results/]
    python -m repro.harness trace recon-T2 [--scale smoke] [--out results/]
    python -m repro.harness trace recon-T2 --out /tmp/t2.trace.json
    python -m repro.harness profile recon-T1 [--scale smoke] [--json]
    python -m repro.harness profile recon-T1 --out results/ --check
    python -m repro.harness profile --calibrate
    python -m repro.harness serve-bench [--scale smoke] [--rhs 10,100,256]
    python -m repro.harness serve-bench --http [PORT]
    python -m repro.harness bench-history [--check] [--out FILE]
    python -m repro.harness tune [--quick] [--check] [--out FILE]
    python -m repro.harness postmortem [BUNDLE] [--json] [--chrome OUT]
    python -m repro.harness postmortem --synthetic --check

``trace --out`` accepts either a directory (writes
``<exp-id>.trace.json`` inside it) or an exact ``.json`` file path.
``profile`` re-runs the same representative solves and prints the
critical-path / roofline analysis (``--json`` for the machine-readable
document, ``--check`` to exit nonzero when the report's invariants
fail); ``profile --calibrate`` micro-benchmarks this host's kernels
and writes ``results/CALIB_machine.json`` for the predictor and later
profiles (see docs/PROFILING.md).
``serve-bench --http`` exposes the live telemetry endpoint
(``/metrics``, ``/healthz``, ``/traces``) while the benchmark runs.
``bench-history`` appends one perf-trajectory record to
``results/BENCH_history.jsonl``; with ``--check`` it then runs the
regression gate (:mod:`repro.obs.regress`) and exits nonzero on a
regression.
``postmortem`` analyzes a cross-rank incident bundle
(``results/incidents/INCIDENT_<id>.json``, written automatically on
runtime failures; docs/INCIDENTS.md): it reconstructs the merged
cross-rank timeline, names the blocked/divergent op and the culprit
and straggler ranks, and renders text (default), JSON (``--json``),
or a Chrome trace (``--chrome OUT``).  Without a bundle path the
newest bundle in the incident store is used; ``--synthetic`` first
forces a tiny two-rank deadlock to produce one, and ``--check`` exits
nonzero unless the analysis identifies a culprit rank and op (the CI
smoke contract).
``tune`` runs the autotuned-planner sweep
(:func:`repro.perfmodel.tune_machine`) and writes the per-host tuning
table (``results/TUNE_host.json`` by default).  ``--quick`` is the CI
smoke sweep (tiny shapes, seconds not minutes); ``--check`` reloads
the written table, verifies the schema/host round-trip, and plans the
canonical bench shapes against it, exiting nonzero on any failure.
See docs/PLANNER.md.

``run``/``all``/``trace``/``serve-bench`` accept ``--verify``: every
simulated solve runs with the SPMD runtime verifier enabled
(equivalent to setting ``REPRO_VERIFY=1``; see docs/CHECKING.md), so a
divergent collective or an unreceived message fails the experiment
with a precise diagnostic.  Every subcommand also accepts
``--backend {threads,processes}`` (equivalent to
``REPRO_COMM_BACKEND``; see docs/BACKENDS.md) to pick the SPMD
execution backend: ``threads`` keeps the in-process virtual-time
reference semantics, ``processes`` runs ranks as spawned worker
processes with shared-memory payload transport, making wall-clock
numbers true parallel measurements.  The static analyzer has its own
entry point: ``python -m repro.check lint src``.
"""

from __future__ import annotations

import argparse
import os
import sys

from .experiments import EXPERIMENTS
from .runner import run_all, run_experiment, trace_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run all simulated solves with the SPMD runtime verifier "
        "(collective lockstep + finalize checks; same as REPRO_VERIFY=1)",
    )
    parser.add_argument(
        "--backend", choices=("threads", "processes"), default=None,
        help="SPMD execution backend for all simulated solves "
        "(same as REPRO_COMM_BACKEND; see docs/BACKENDS.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_verify(p: argparse.ArgumentParser) -> None:
        # SUPPRESS keeps a pre-subcommand `--verify` from being reset by
        # the subparser's default when the flag is absent there.
        p.add_argument("--verify", action="store_true",
                       default=argparse.SUPPRESS,
                       help=argparse.SUPPRESS)
        p.add_argument("--backend", choices=("threads", "processes"),
                       default=argparse.SUPPRESS,
                       help=argparse.SUPPRESS)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("exp_id", choices=sorted(EXPERIMENTS))
    run_p.add_argument("--scale", choices=("full", "smoke"), default="full")
    run_p.add_argument("--out", default=None, help="directory for CSV output")
    run_p.add_argument("--plot", action="store_true",
                       help="also print the ASCII figure")
    _add_verify(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--scale", choices=("full", "smoke"), default="full")
    all_p.add_argument("--out", default=None, help="directory for CSV output")
    all_p.add_argument("--plot", action="store_true",
                       help="also print the ASCII figures")
    _add_verify(all_p)

    trace_p = sub.add_parser(
        "trace",
        help="trace an experiment's representative solves "
        "(writes Chrome trace JSON for Perfetto / chrome://tracing)",
    )
    trace_p.add_argument("exp_id", choices=sorted(EXPERIMENTS))
    trace_p.add_argument("--scale", choices=("full", "smoke"), default="full")
    trace_p.add_argument("--out", default="results",
                         help="directory for the .trace.json file "
                         "(default: results/), or an exact .json file path")
    _add_verify(trace_p)

    prof_p = sub.add_parser(
        "profile",
        help="critical-path + roofline analysis of an experiment's "
        "representative traced solves; --calibrate measures this "
        "host's kernel rates",
    )
    prof_p.add_argument("exp_id", nargs="?", choices=sorted(EXPERIMENTS),
                        help="experiment to profile (omit with "
                        "--calibrate)")
    prof_p.add_argument("--scale", choices=("full", "smoke"),
                        default="full")
    prof_p.add_argument("--json", action="store_true", dest="as_json",
                        help="print the JSON document instead of tables")
    prof_p.add_argument("--out", default=None,
                        help="directory for <exp-id>.profile.json (or an "
                        "exact .json path); with --calibrate, the "
                        "calibration file path")
    prof_p.add_argument("--check", action="store_true",
                        help="exit nonzero if the report is missing "
                        "phases or attribution does not sum to the "
                        "makespan within 1%%")
    prof_p.add_argument("--calibrate", action="store_true",
                        help="micro-benchmark this host and write "
                        "CALIB_machine.json instead of profiling")
    _add_verify(prof_p)

    serve_p = sub.add_parser(
        "serve-bench",
        help="benchmark the solver service (batched cached ARD) against "
        "per-request classical RD",
    )
    serve_p.add_argument("--scale", choices=("full", "smoke"), default="smoke")
    serve_p.add_argument("--rhs", default=None,
                         help="comma-separated request counts "
                         "(default: 10,100,256,1000)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="service worker threads (default: 2)")
    serve_p.add_argument("--out", default=None,
                         help="directory for serve_bench.stats.json")
    serve_p.add_argument("--http", nargs="?", const=True, default=False,
                         type=int, metavar="PORT",
                         help="expose the live telemetry endpoint while "
                         "the benchmark runs (loopback; ephemeral port "
                         "unless PORT is given)")
    _add_verify(serve_p)

    hist_p = sub.add_parser(
        "bench-history",
        help="append a perf-trajectory record and (with --check) run "
        "the regression gate",
    )
    hist_p.add_argument("--out", default="results/BENCH_history.jsonl",
                        help="history file (default: "
                        "results/BENCH_history.jsonl)")
    hist_p.add_argument("--scale", choices=("full", "smoke"),
                        default="smoke")
    hist_p.add_argument("--check", action="store_true",
                        help="after recording, compare the new record "
                        "against the rolling median and exit nonzero "
                        "on a >threshold regression")
    hist_p.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression threshold "
                        "(default: 0.15)")
    _add_verify(hist_p)

    tune_p = sub.add_parser(
        "tune",
        help="run the autotuned-planner sweep and write the per-host "
        "tuning table (see docs/PLANNER.md)",
    )
    tune_p.add_argument("--quick", action="store_true",
                        help="CI smoke sweep: tiny shapes, one timing "
                        "rep, threshold probes skipped")
    tune_p.add_argument("--check", action="store_true",
                        help="after writing, reload the table and plan "
                        "the canonical bench shapes against it; exit "
                        "nonzero on any failure")
    tune_p.add_argument("--out", default=None,
                        help="output path (default: results/TUNE_host.json)")
    _add_verify(tune_p)

    pm_p = sub.add_parser(
        "postmortem",
        help="analyze a cross-rank incident bundle: merged timeline, "
        "culprit rank/op, per-rank last-N-event tables "
        "(see docs/INCIDENTS.md)",
    )
    pm_p.add_argument("bundle", nargs="?", default=None,
                      help="bundle path (default: newest bundle in the "
                      "incident store)")
    pm_p.add_argument("--json", action="store_true", dest="as_json",
                      help="print the bundle analysis as JSON instead of "
                      "tables")
    pm_p.add_argument("--chrome", default=None, metavar="OUT",
                      help="also write the merged cross-rank timeline as "
                      "Chrome trace JSON to OUT")
    pm_p.add_argument("--check", action="store_true",
                      help="exit nonzero unless the analysis names a "
                      "culprit rank and op")
    pm_p.add_argument("--last", type=int, default=10, metavar="N",
                      help="rows in the per-rank last-N-event tables "
                      "(default: 10)")
    pm_p.add_argument("--synthetic", action="store_true",
                      help="force a tiny two-rank deadlock first and "
                      "analyze the bundle it produces (CI smoke)")
    _add_verify(pm_p)

    args = parser.parse_args(argv)
    if args.verify:
        os.environ["REPRO_VERIFY"] = "1"
    if args.backend:
        # The env var is the source of truth: thread-local configs are
        # built lazily from it, so every harness/service thread created
        # after this point inherits the backend.
        os.environ["REPRO_COMM_BACKEND"] = args.backend
        from ..config import set_config

        set_config(comm_backend=args.backend)
    if args.command == "list":
        for exp in EXPERIMENTS.values():
            print(f"{exp.exp_id:10s} {exp.title:24s} {exp.description}")
        return 0
    if args.command == "run":
        run_experiment(args.exp_id, args.scale, out_dir=args.out, plot=args.plot)
        return 0
    if args.command == "trace":
        trace_experiment(args.exp_id, args.scale, out_dir=args.out)
        return 0
    if args.command == "profile":
        from .profile import profile_experiment, run_calibration

        if args.calibrate:
            # With an exp_id the profile owns --out; the calibration
            # goes to its default path and the profile then loads it.
            run_calibration(args.out if args.exp_id is None else None)
            if args.exp_id is None:
                return 0
        elif args.exp_id is None:
            prof_p.error("an exp_id is required unless --calibrate is "
                         "given")
        try:
            profile_experiment(args.exp_id, args.scale, out=args.out,
                               as_json=args.as_json, check=args.check)
        except Exception as exc:
            if not args.check:
                raise
            print(f"profile check failed: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.command == "serve-bench":
        from .serve import serve_bench

        rhs = (tuple(int(v) for v in args.rhs.split(","))
               if args.rhs else None)
        serve_bench(args.scale, rhs, workers=args.workers, out_dir=args.out,
                    http=args.http)
        return 0
    if args.command == "bench-history":
        from .bench_history import run_bench_history

        return run_bench_history(args.out, args.scale, check=args.check,
                                 threshold=args.threshold)
    if args.command == "tune":
        from .tune import run_tune

        return run_tune(out=args.out, quick=args.quick, check=args.check)
    if args.command == "postmortem":
        from ..obs.postmortem import run_postmortem

        return run_postmortem(args.bundle, as_json=args.as_json,
                              chrome_out=args.chrome, check=args.check,
                              last_n=args.last, synthetic=args.synthetic)
    run_all(args.scale, out_dir=args.out, plot=args.plot)
    return 0


if __name__ == "__main__":
    sys.exit(main())
