"""Perf-trajectory collector: one benchmark record per run, appended.

``python -m repro.harness bench-history`` measures the library's gated
performance numbers — batched-LU kernel time and speedup over the
per-block scipy loop, service throughput and its speedup over
per-request RD, the disabled-span guard cost, the always-on
flight-recorder overhead ratio (docs/INCIDENTS.md), a representative
ARD factor+solve wall time, and (on hosts with >= 4 cores) the
processes-backend wall clock and its speedup over threads
(docs/BACKENDS.md) — and appends them as one schema-versioned JSON
line to ``results/BENCH_history.jsonl``.  The growing file is the
repo's perf trajectory; :mod:`repro.obs.regress` gates the newest
record against the rolling median of its predecessors.

Wall-clock numbers are machine-dependent, so the gate compares records
*within* one history file (one machine/CI runner), never across; the
asserted absolute floors stay in ``benchmarks/``.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import time
from typing import Any, Callable

import numpy as np

from ..obs.log import console, get_logger
from ..obs.tracer import span

__all__ = [
    "BENCH_HISTORY_SCHEMA_VERSION",
    "collect_record",
    "append_record",
    "run_bench_history",
]

#: Version stamped into every history record; bump on field changes.
BENCH_HISTORY_SCHEMA_VERSION = 1

_log = get_logger("bench_history")

_SCALES = {
    "smoke": dict(lu_batch=(256, 8), solve=(64, 4, 4, 8), requests=64),
    "full": dict(lu_batch=(1024, 8), solve=(256, 8, 8, 32), requests=256),
}


def _best_of(fn: Callable[[], Any], rounds: int = 3) -> float:
    """Minimum wall time of ``rounds`` calls (noise-robust point value)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _kernel_metrics(nblocks: int, m: int) -> dict[str, float]:
    import scipy.linalg

    from ..linalg.batchlu import lu_factor_batched

    rng = np.random.default_rng(0)
    blocks = rng.standard_normal((nblocks, m, m))
    blocks += m * np.eye(m)

    batched_s = _best_of(lambda: lu_factor_batched(blocks))
    loop_s = _best_of(
        lambda: [scipy.linalg.lu_factor(blocks[i]) for i in range(nblocks)]
    )
    return {
        "kernels.lu_batched_s": batched_s,
        "kernels.lu_speedup": loop_s / batched_s if batched_s > 0 else 0.0,
    }


def _service_metrics(scale: str, requests: int) -> dict[str, float]:
    from .serve import serve_bench

    result = serve_bench(scale, rhs_counts=(requests,), verbose=False)
    row = result["rows"][0]
    return {
        "service.req_per_s": row["service_req_per_s"],
        "service.speedup_vs_rd": row["speedup"],
    }


def _solve_metrics(n: int, m: int, p: int, r: int) -> dict[str, float]:
    from ..core.ard import ARDFactorization
    from ..workloads import helmholtz_block_system, random_rhs

    matrix, _ = helmholtz_block_system(n, m)
    b = random_rhs(n, m, r, seed=0)

    def run() -> None:
        ARDFactorization(matrix, nranks=p).solve(b)

    return {"solve.ard_wall_s": _best_of(run, rounds=2)}


def _backend_metrics(n: int, m: int, p: int, r: int) -> dict[str, float]:
    """Processes-vs-threads ARD wall clock (see docs/BACKENDS.md).

    Only measured on hosts with >= 4 cores — with fewer cores than
    ranks the comparison is noise, and absent metrics are skipped by
    the gate — so single-core CI runners record nothing here.
    """
    import os

    if (os.cpu_count() or 1) < 4:
        return {}
    from ..comm.mp import shutdown_pool
    from ..core.ard import ARDFactorization
    from ..workloads import helmholtz_block_system, random_rhs

    matrix, _ = helmholtz_block_system(n, m)
    b = random_rhs(n, m, r, seed=0)

    def run(backend: str) -> Callable[[], Any]:
        return lambda: ARDFactorization(
            matrix, nranks=p, backend=backend).solve(b)

    try:
        run("processes")()  # warm the worker pool (spawn + imports)
        proc_s = _best_of(run("processes"), rounds=2)
        thread_s = _best_of(run("threads"), rounds=2)
    finally:
        shutdown_pool()
    return {
        "backends.ard_process_wall_s": proc_s,
        "backends.process_speedup": (thread_s / proc_s
                                     if proc_s > 0 else 0.0),
    }


def _planner_metrics(n: int, m: int, p: int, r: int) -> dict[str, float]:
    """Planner regret at the history shape (docs/PLANNER.md).

    Tunes this shape in-process (the deployed workflow: ``harness
    tune`` once, plan forever), then times ``method="auto"`` against
    the fixed portfolio methods on the same problem; regret is auto's
    wall time over the best fixed configuration.  The never-lose guard
    should hold this near 1.0 — the
    :data:`~repro.obs.regress.GATED_METRICS` gate fires when a planner
    change makes it drift up.
    """
    from ..core.api import solve
    from ..perfmodel.planner import set_default_table, tune_machine
    from ..workloads import helmholtz_block_system, random_rhs

    matrix, _ = helmholtz_block_system(n, m)
    b = random_rhs(n, m, r, seed=0)

    def run(method: str) -> Callable[[], Any]:
        return lambda: solve(matrix, b, method=method, nranks=p)

    set_default_table(tune_machine(quick=True, shapes=[(n, m, p, r)]))
    try:
        run("auto")()  # warm: plan resolution + kernel setup
        auto_s = _best_of(run("auto"), rounds=2)
        fixed_s = min(_best_of(run(meth), rounds=2)
                      for meth in ("ard", "rd", "thomas"))
    finally:
        set_default_table(None)
    return {
        "planner.auto_wall_s": auto_s,
        "planner.regret": auto_s / fixed_s if fixed_s > 0 else 0.0,
    }


def _flightrec_metrics(n: int, m: int, p: int, r: int) -> dict[str, float]:
    """Always-on flight-recorder cost at the canonical solve shape.

    The same representative ARD factor+solve as ``solve.ard_wall_s``,
    timed with the per-rank recorder off and on; the recorded metric is
    the on/off wall-time ratio, so the <3% overhead budget the recorder
    ships under (docs/INCIDENTS.md, ``benchmarks/bench_flightrec.py``)
    stays visible in the perf trajectory and the gate fires when a
    recorder change inflates the hot path.
    """
    from ..config import config_context
    from ..core.ard import ARDFactorization
    from ..workloads import helmholtz_block_system, random_rhs

    matrix, _ = helmholtz_block_system(n, m)
    b = random_rhs(n, m, r, seed=0)

    def run() -> None:
        ARDFactorization(matrix, nranks=p).solve(b)

    with config_context(flightrec=False):
        off_s = _best_of(run, rounds=3)
    with config_context(flightrec=True):
        on_s = _best_of(run, rounds=3)
    return {"obs.flightrec_overhead": on_s / off_s if off_s > 0 else 0.0}


def _span_guard_metrics(reps: int = 5000) -> dict[str, float]:
    def run() -> None:
        for _ in range(reps):
            with span("kernel"):
                pass

    return {"obs.disabled_span_us": _best_of(run, rounds=5) / reps * 1e6}


def collect_record(scale: str = "smoke") -> dict[str, Any]:
    """Measure all gated metrics; returns one history record (no I/O)."""
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    cfg = _SCALES[scale]
    metrics: dict[str, float] = {}
    metrics.update(_kernel_metrics(*cfg["lu_batch"]))
    metrics.update(_service_metrics(scale, cfg["requests"]))
    metrics.update(_solve_metrics(*cfg["solve"]))
    metrics.update(_backend_metrics(*cfg["solve"]))
    metrics.update(_planner_metrics(*cfg["solve"]))
    metrics.update(_flightrec_metrics(*cfg["solve"]))
    metrics.update(_span_guard_metrics())
    return {
        "schema_version": BENCH_HISTORY_SCHEMA_VERSION,
        "written_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "scale": scale,
        "metrics": metrics,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def append_record(path: str | pathlib.Path, record: dict[str, Any]) -> pathlib.Path:
    """Append ``record`` as one JSON line to the history file at ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def run_bench_history(
    out: str | pathlib.Path = "results/BENCH_history.jsonl",
    scale: str = "smoke",
    *,
    check: bool = False,
    threshold: float = 0.15,
    verbose: bool = True,
) -> int:
    """Collect one record, append it, optionally gate; returns exit code.

    With ``check=True`` the freshly appended record is compared against
    the rolling median via :func:`repro.obs.regress.check_regressions`
    and the return value is nonzero on regression — the CI entry point
    (``python -m repro.harness bench-history --check``).
    """
    record = collect_record(scale)
    path = append_record(out, record)
    _log.info("bench_history.recorded", path=str(path), scale=scale,
              **record["metrics"])
    if verbose:
        console(f"bench-history ({scale}): appended record to {path}")
        for name in sorted(record["metrics"]):
            console(f"  {name:28s} {record['metrics'][name]:.6g}")
    if not check:
        return 0
    from ..obs.regress import check_regressions, load_history

    history = load_history(path)
    regressions = check_regressions(history, threshold=threshold)
    if len(history) < 2:
        if verbose:
            console("bench-history: first record — gate seeded, nothing to "
                    "compare yet.")
        return 0
    if not regressions:
        if verbose:
            console(f"bench-history: gate OK ({len(history)} records, "
                    f"threshold {threshold:.0%}).")
        return 0
    if verbose:
        console(f"bench-history: gate FAIL — {len(regressions)} regression(s):")
        for reg in regressions:
            console(f"  {reg.describe()}")
    return 1
