"""ASCII figure rendering for experiment series.

The paper's evaluation is figures, not only tables; with no plotting
library available offline, this module renders log-log / lin-lin series
as Unicode scatter charts so ``python -m repro.harness run recon-F1
--plot`` shows the *shape* — the thing the reproduction is checked
against — directly in the terminal.

Example
-------
>>> text = ascii_plot({"rd": [(1, 1.0), (2, 2.0)]}, logx=True, logy=True,
...                   width=20, height=6, title="demo")
>>> "rd" in text
True
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..exceptions import ShapeError

__all__ = ["ascii_plot", "plot_experiment"]

_MARKERS = "oxv+*#@%"


def _transform(value: float, log: bool) -> float | None:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return None
    if log:
        if value <= 0:
            return None
        return math.log10(value)
    return float(value)


def _ticks(lo: float, hi: float, log: bool, count: int = 4) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    raw = [lo + (hi - lo) * i / (count - 1) for i in range(count)]
    return [10.0**v if log else v for v in raw]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-2:
        return f"{value:.1e}"
    return f"{value:.3g}"


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    logx: bool = False,
    logy: bool = False,
    width: int = 60,
    height: int = 18,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named ``(x, y)`` series as a Unicode scatter chart.

    Non-positive values are dropped on log axes; NaNs are skipped.
    Raises :class:`~repro.exceptions.ShapeError` when nothing remains.
    """
    if width < 16 or height < 4:
        raise ShapeError(f"plot must be at least 16x4, got {width}x{height}")
    points: list[tuple[float, float, int]] = []
    names = list(series)
    for s_idx, name in enumerate(names):
        for x, y in series[name]:
            tx = _transform(x, logx)
            ty = _transform(y, logy)
            if tx is not None and ty is not None:
                points.append((tx, ty, s_idx))
    if not points:
        raise ShapeError("no plottable points (all NaN/non-positive?)")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    if xhi == xlo:
        xhi = xlo + 1.0
    if yhi == ylo:
        yhi = ylo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for tx, ty, s_idx in points:
        col = round((tx - xlo) / (xhi - xlo) * (width - 1))
        row = height - 1 - round((ty - ylo) / (yhi - ylo) * (height - 1))
        marker = _MARKERS[s_idx % len(_MARKERS)]
        cell = grid[row][col]
        # Overlapping series show as '&'.
        grid[row][col] = marker if cell in (" ", marker) else "&"

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(names)
    )
    lines.append(legend)
    ytick_vals = _ticks(ylo, yhi, logy, count=3)
    label_width = max(len(_fmt(v)) for v in ytick_vals)
    for r, row in enumerate(grid):
        if r == 0:
            label = _fmt(ytick_vals[2])
        elif r == height - 1:
            label = _fmt(ytick_vals[0])
        elif r == height // 2:
            label = _fmt(ytick_vals[1])
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    xticks = _ticks(xlo, xhi, logx, count=3)
    axis = f"{_fmt(xticks[0])}"
    mid = _fmt(xticks[1])
    right = _fmt(xticks[2])
    pad_mid = max(1, width // 2 - len(axis) - len(mid) // 2)
    pad_right = max(1, width - len(axis) - pad_mid - len(mid) - len(right))
    lines.append(
        " " * (label_width + 2) + axis + " " * pad_mid + mid
        + " " * pad_right + right
    )
    footer = []
    if xlabel:
        footer.append(f"x: {xlabel}" + (" (log)" if logx else ""))
    if ylabel:
        footer.append(f"y: {ylabel}" + (" (log)" if logy else ""))
    if footer:
        lines.append("  ".join(footer))
    return "\n".join(lines)


#: Per-experiment figure recipes: (x column, y columns, logx, logy).
_FIGURES: dict[str, tuple[str, tuple[str, ...], bool, bool]] = {
    "recon-F1": ("R", ("rd_vt", "ard_total_vt"), True, True),
    "recon-F2": ("R", ("speedup",), True, True),
    "recon-F3": ("P", ("rd_vt", "ard_total_vt"), True, True),
    "recon-F4": ("N", ("rd_vt", "ard_vt"), True, True),
    "recon-F5": ("M", ("rd_vt", "ard_solve_vt"), True, True),
    "recon-F6": ("predicted_s", ("measured_s",), True, True),
    "recon-F7": ("R", ("rd_wall_s", "ard_wall_s"), True, True),
    "recon-S1": ("growth", ("ard_rel_err", "eps*growth"), True, True),
    "recon-S2": ("growth", ("err_refine0", "err_refine1", "err_refine3"),
                 True, True),
    "abl-A1": ("P", ("virtual_time",), True, True),
    "abl-A2": ("batch", ("total_solve_vt",), True, True),
    "abl-A3": ("P", ("rd_vt", "ard_vt", "thomas_vt"), True, True),
}


def plot_experiment(result) -> str | None:
    """Render the standard figure for an
    :class:`~repro.harness.experiments.ExperimentResult`, or ``None``
    when the experiment has no figure recipe (pure tables)."""
    recipe = _FIGURES.get(result.exp_id)
    if recipe is None:
        return None
    x_col, y_cols, logx, logy = recipe
    xs = result.column(x_col)
    series = {}
    for y_col in y_cols:
        ys = result.column(y_col)
        pts = [
            (x, y) for x, y in zip(xs, ys)
            if isinstance(x, (int, float)) and isinstance(y, (int, float))
        ]
        if pts:
            series[y_col] = pts
    if not series:
        return None
    return ascii_plot(
        series,
        logx=logx,
        logy=logy,
        title=f"[{result.exp_id}] {result.title}",
        xlabel=x_col,
    )
