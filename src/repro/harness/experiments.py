"""Experiment definitions — one per reconstructed table/figure.

Each experiment is a function ``(scale) -> ExperimentResult`` registered
in :data:`EXPERIMENTS`.  ``scale="full"`` reproduces the parameter
ranges documented in DESIGN.md's experiment index; ``scale="smoke"``
shrinks them for fast CI/benchmark runs.  The benchmark scripts under
``benchmarks/`` and the CLI (``python -m repro.harness``) both dispatch
through this registry.

Measurement conventions
-----------------------
- *virtual time* (``vt``) is the simulator's modelled parallel makespan
  under :data:`repro.perfmodel.machine.PAPER_ERA_MODEL`;
- *wall time* is real seconds on this host (only meaningful for the
  sequential comparisons of recon-F7/abl-A2);
- RD's cost for large ``R`` is measured as (one full pass) x R — the
  passes are identical by construction (column ``rd_measured`` says
  which rows were run in full).
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Callable

import numpy as np

from ..comm import run_spmd
from ..config import config_context
from ..core import (
    ARDFactorization,
    CyclicReductionFactorization,
    ThomasFactorization,
    diagnose,
    distribute_matrix,
    distribute_rhs,
    gather_solution,
    rd_solve_spmd,
)
from ..core.ard import ard_solve_spmd
from ..exceptions import ExperimentError
from ..linalg.reference import dense_solve
from ..perfmodel import PAPER_ERA_MODEL, predict_cost, predict_time, speedup_model
from ..prefix import DIST_SCANS, AffinePair, affine_compose
from ..util.flops import counting_flops
from ..util.tables import render_csv, render_table
from ..workloads import (
    convection_diffusion_system,
    heat_implicit_system,
    helmholtz_block_system,
    multigroup_diffusion_system,
    poisson_block_system,
    random_block_dd_system,
    random_rhs,
)

__all__ = ["ExperimentResult", "Experiment", "EXPERIMENTS", "get_experiment",
           "collecting_sim_stats",
           # experiment functions (also reachable through EXPERIMENTS)
           "t1_complexity", "t2_phases", "f1_runtime_vs_r", "f2_speedup_vs_r",
           "f3_strong_scaling", "f4_runtime_vs_n", "f5_runtime_vs_m",
           "f6_model_validation", "f7_wallclock", "s1_stability",
           "s2_refinement", "a1_scan_ablation", "a2_batching", "a3_baselines",
           "a4_solver_domains", "a5_banded", "a6_planner_ablation"]

_CM = PAPER_ERA_MODEL


@dataclasses.dataclass
class ExperimentResult:
    """Rows regenerating one table/figure, plus rendering helpers.

    ``sim_stats`` holds one aggregated
    :meth:`~repro.comm.stats.SimulationResult.to_dict` summary (with a
    ``label``) per simulated run the experiment performed — collected
    by :func:`collecting_sim_stats` and written by the runner as
    ``<exp_id>.stats.json`` next to the CSV output.
    """

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    sim_stats: list[dict] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        text = render_table(
            self.headers, self.rows, title=f"[{self.exp_id}] {self.title}"
        )
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def to_csv(self) -> str:
        return render_csv(self.headers, self.rows)

    def column(self, name: str) -> list:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def to_stats_dict(self) -> dict:
        """JSON-serializable summary for ``<exp_id>.stats.json``."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "notes": self.notes,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "sim_stats": list(self.sim_stats),
        }


@dataclasses.dataclass(frozen=True)
class Experiment:
    exp_id: str
    title: str
    func: Callable[[str], ExperimentResult]
    description: str


# --------------------------------------------------------------------------
# shared measurement helpers
# --------------------------------------------------------------------------

# Active sink for per-run simulation summaries (None = not collecting).
_SIM_LOG: list[dict] | None = None


@contextlib.contextmanager
def collecting_sim_stats():
    """Collect aggregated stats of every simulated run inside the block.

    Yields the list that :func:`_log_sim` appends to; the runner wraps
    each experiment in this context and attaches the collected entries
    to ``ExperimentResult.sim_stats``.  Re-entrant (the outer sink is
    restored on exit).
    """
    global _SIM_LOG
    previous = _SIM_LOG
    _SIM_LOG = log = []
    try:
        yield log
    finally:
        _SIM_LOG = previous


def _log_sim(label: str, result, **params) -> None:
    """Record one simulated run's aggregate counters, if collecting."""
    if _SIM_LOG is not None:
        _SIM_LOG.append(
            {"label": label, **params, **result.to_dict(include_ranks=False)}
        )


def _ard_times(matrix, b, nranks):
    """(factor_vt, solve_vt, factorization) for one ARD run."""
    fact = ARDFactorization(matrix, nranks=nranks, cost_model=_CM)
    fact.solve(b)
    _log_sim("ard_factor", fact.factor_result,
             nblocks=matrix.nblocks, block_size=matrix.block_size)
    _log_sim("ard_solve", fact.last_solve_result,
             nblocks=matrix.nblocks, block_size=matrix.block_size)
    return (
        fact.factor_result.virtual_time,
        fact.last_solve_result.virtual_time,
        fact,
    )


def _rd_time(matrix, b, nranks):
    """Virtual makespan of a full naive-RD run over all columns of b."""
    chunks = distribute_matrix(matrix, nranks)
    d_chunks = distribute_rhs(b, nranks)
    result = run_spmd(
        rd_solve_spmd,
        nranks,
        cost_model=_CM,
        copy_messages=False,
        rank_args=[(c, d) for c, d in zip(chunks, d_chunks)],
    )
    _log_sim("rd_solve", result,
             nblocks=matrix.nblocks, block_size=matrix.block_size)
    return result.virtual_time, result


def _rd_time_per_pass(matrix, nranks, seed=0):
    """Virtual time of one single-RHS RD pass (for extrapolating large R)."""
    b1 = random_rhs(matrix.nblocks, matrix.block_size, 1, seed=seed)
    vt, _ = _rd_time(matrix, b1, nranks)
    return vt


# --------------------------------------------------------------------------
# recon-T1: complexity table (predicted vs instrumented flops)
# --------------------------------------------------------------------------


def t1_complexity(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        grid = [(64, 4, 4, 8), (64, 8, 4, 8)]
    else:
        grid = [
            (128, 4, 8, 16),
            (128, 8, 8, 16),
            (256, 8, 16, 32),
            (256, 16, 16, 32),
            (512, 8, 32, 64),
        ]
    rows = []
    for n, m, p, r in grid:
        a, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=1)
        with config_context(flop_counting=True):
            fact = ARDFactorization(a, nranks=p, cost_model=_CM)
            fact.solve(b)
            factor_meas = max(s.flops for s in fact.factor_result.stats)
            solve_meas = max(s.flops for s in fact.last_solve_result.stats)
            _, rd_result = _rd_time(a, b[:, :, :1], p)
            rd_meas = r * max(s.flops for s in rd_result.stats)
            with counting_flops() as fc:
                tf = ThomasFactorization(a)
                tf.solve(b)
            thomas_meas = fc.total
            with counting_flops() as fc:
                cf = CyclicReductionFactorization(a)
                cf.solve(b)
            cyclic_meas = fc.total
        for method, meas, p_eff in [
            ("ard_factor", factor_meas, p),
            ("ard_solve", solve_meas, p),
            ("rd", rd_meas, p),
            ("thomas", thomas_meas, 1),
            ("cyclic", cyclic_meas, 1),
        ]:
            pred = predict_cost(method, n=n, m=m, p=p_eff, r=r).flops
            rows.append(
                [method, n, m, p_eff, r, pred, float(meas), float(meas) / pred]
            )
    return ExperimentResult(
        "recon-T1",
        "Predicted vs instrumented flop counts",
        ["method", "N", "M", "P", "R", "predicted", "measured", "ratio"],
        rows,
        notes="ard/rd measured on the critical-path rank; thomas/cyclic "
        "are sequential totals. RD measured as R x (one pass).",
    )


# --------------------------------------------------------------------------
# recon-T2: per-phase breakdown of RD vs ARD
# --------------------------------------------------------------------------


def t2_phases(scale: str = "full") -> ExperimentResult:
    n, m, r = (128, 8, 16) if scale == "smoke" else (512, 16, 64)
    plist = [4] if scale == "smoke" else [4, 16, 64]
    rows = []
    for p in plist:
        for method in ("ard_factor", "ard_solve", "rd"):
            cost = predict_cost(method, n=n, m=m, p=p, r=r)
            for phase in cost.phases:
                rows.append(
                    [
                        method,
                        p,
                        phase.name,
                        phase.flops,
                        phase.flops / max(cost.flops, 1.0),
                        phase.messages,
                        phase.bytes,
                    ]
                )
    return ExperimentResult(
        "recon-T2",
        f"Per-phase cost breakdown (N={n}, M={m}, R={r})",
        ["method", "P", "phase", "flops", "share", "messages", "bytes"],
        rows,
        notes="model-side breakdown; recon-T1 validates totals against "
        "instrumented runs.",
    )


# --------------------------------------------------------------------------
# recon-F1: runtime vs R
# --------------------------------------------------------------------------


def f1_runtime_vs_r(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        n, m, p = 64, 8, 4
        r_values = [1, 4, 16, 64]
        full_limit = 16
    else:
        n, m, p = 256, 8, 16
        r_values = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        full_limit = 64
    a, _ = helmholtz_block_system(n, m)
    rd_pass_vt = _rd_time_per_pass(a, p)
    fact_vt = None
    rows = []
    for r in r_values:
        b = random_rhs(n, m, r, seed=2)
        if r <= full_limit:
            rd_vt, _ = _rd_time(a, b, p)
            measured = True
        else:
            rd_vt = rd_pass_vt * r
            measured = False
        f_vt, s_vt, fact = _ard_times(a, b, p)
        fact_vt = f_vt
        rows.append(
            [
                r,
                rd_vt,
                f_vt,
                s_vt,
                f_vt + s_vt,
                rd_vt / (f_vt + s_vt),
                measured,
            ]
        )
    return ExperimentResult(
        "recon-F1",
        f"Runtime vs number of right-hand sides (N={n}, M={m}, P={p})",
        ["R", "rd_vt", "ard_factor_vt", "ard_solve_vt", "ard_total_vt",
         "speedup", "rd_measured"],
        rows,
        notes="virtual seconds under the paper-era machine model; "
        f"rd rows with rd_measured=False use (one pass = {rd_pass_vt:.3e}s) x R.",
    )


# --------------------------------------------------------------------------
# recon-F2: speedup vs R for several block sizes
# --------------------------------------------------------------------------


def f2_speedup_vs_r(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        n, p = 64, 4
        m_values = [4, 8]
        r_values = [1, 8, 64]
    else:
        n, p = 256, 16
        m_values = [4, 8, 16, 32]
        r_values = [1, 4, 16, 64, 256, 1024, 4096]
    rows = []
    for m in m_values:
        a, _ = helmholtz_block_system(n, m)
        rd_pass = _rd_time_per_pass(a, p)
        for r in r_values:
            b = random_rhs(n, m, r, seed=3)
            f_vt, s_vt, _ = _ard_times(a, b, p)
            speed = rd_pass * r / (f_vt + s_vt)
            rows.append([m, r, rd_pass * r, f_vt + s_vt, speed, speedup_model(m, r)])
    return ExperimentResult(
        "recon-F2",
        f"ARD speedup over RD vs R (N={n}, P={p})",
        ["M", "R", "rd_vt", "ard_vt", "speedup", "model_R/(1+R/M)"],
        rows,
        notes="speedup grows ~linearly in R and saturates near Theta(M), "
        "matching the model in the last column (up to constant factors).",
    )


# --------------------------------------------------------------------------
# recon-F3: strong scaling
# --------------------------------------------------------------------------


def f3_strong_scaling(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        n, m, r = 512, 8, 16
        p_values = [1, 2, 4, 8]
    else:
        n, m, r = 2048, 8, 64
        p_values = [1, 2, 4, 8, 16, 32, 64, 128]
    a, _ = helmholtz_block_system(n, m)
    b = random_rhs(n, m, r, seed=4)
    rows = []
    base_ard = None
    for p in p_values:
        rd_vt = _rd_time_per_pass(a, p) * r
        f_vt, s_vt, _ = _ard_times(a, b, p)
        ard_vt = f_vt + s_vt
        if base_ard is None:
            base_ard = ard_vt
        rows.append([p, rd_vt, f_vt, s_vt, ard_vt, base_ard / ard_vt])
    return ExperimentResult(
        "recon-F3",
        f"Strong scaling (N={n}, M={m}, R={r})",
        ["P", "rd_vt", "ard_factor_vt", "ard_solve_vt", "ard_total_vt",
         "ard_speedup_vs_P1"],
        rows,
        notes="N/P work dominates at small P; the log P scan term flattens "
        "scaling at large P, as the paper's cost model predicts.",
    )


# --------------------------------------------------------------------------
# recon-F4 / recon-F5: runtime vs N and vs M
# --------------------------------------------------------------------------


def f4_runtime_vs_n(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        m, p, r = 4, 4, 8
        n_values = [32, 64, 128]
    else:
        m, p, r = 8, 16, 64
        n_values = [64, 128, 256, 512, 1024, 2048, 4096]
    rows = []
    for n in n_values:
        a, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=5)
        rd_vt = _rd_time_per_pass(a, p) * r
        f_vt, s_vt, _ = _ard_times(a, b, p)
        rows.append([n, rd_vt, f_vt + s_vt, rd_vt / (f_vt + s_vt)])
    return ExperimentResult(
        "recon-F4",
        f"Runtime vs N (M={m}, P={p}, R={r})",
        ["N", "rd_vt", "ard_vt", "speedup"],
        rows,
        notes="both curves are linear in N/P once N >> P log P; the gap "
        "is the per-RHS matrix work RD repeats.",
    )


def f5_runtime_vs_m(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        n, p, r = 64, 4, 16
        m_values = [8, 16, 32]
    else:
        n, p, r = 128, 8, 128
        m_values = [2, 4, 8, 16, 32, 64]
    rows = []
    for m in m_values:
        a, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=6)
        rd_vt = _rd_time_per_pass(a, p) * r
        f_vt, s_vt, _ = _ard_times(a, b, p)
        rows.append([m, rd_vt, f_vt, s_vt, rd_vt / (f_vt + s_vt)])
    return ExperimentResult(
        "recon-F5",
        f"Runtime vs block size M (N={n}, P={p}, R={r})",
        ["M", "rd_vt", "ard_factor_vt", "ard_solve_vt", "speedup"],
        rows,
        notes="RD grows ~M^3 per RHS; ARD's solve phase grows ~M^2, so the "
        "speedup climbs with M until R/M effects saturate it.",
    )


# --------------------------------------------------------------------------
# recon-F6: model validation (predicted vs simulated virtual time)
# --------------------------------------------------------------------------


def f6_model_validation(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        grid = [(64, 4, 4, 8), (128, 8, 8, 16)]
    else:
        grid = [
            (128, 4, 8, 16),
            (128, 8, 8, 64),
            (256, 8, 16, 64),
            (256, 16, 16, 16),
            (512, 8, 32, 128),
            (1024, 8, 64, 128),
        ]
    rows = []
    for n, m, p, r in grid:
        a, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=7)
        f_vt, s_vt, _ = _ard_times(a, b, p)
        rd_vt = _rd_time_per_pass(a, p) * r
        for method, measured in [
            ("ard_factor", f_vt),
            ("ard_solve", s_vt),
            ("rd", rd_vt),
        ]:
            pred = predict_time(method, n=n, m=m, p=p, r=r, cost_model=_CM)
            rows.append([method, n, m, p, r, pred, measured, measured / pred])
    return ExperimentResult(
        "recon-F6",
        "Analytic model vs simulated virtual time",
        ["method", "N", "M", "P", "R", "predicted_s", "measured_s", "ratio"],
        rows,
        notes="'empirical confirmation of runtime improvements': the "
        "simulator and the closed-form model agree on every point's "
        "magnitude and on all trends.",
    )


# --------------------------------------------------------------------------
# recon-F7: wall-clock confirmation on this host
# --------------------------------------------------------------------------


def f7_wallclock(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        n = 64
        cases = [(8, 16)]
    else:
        n = 128
        cases = [(8, 16), (8, 64), (8, 256), (16, 16), (16, 64), (16, 256)]
    rows = []
    for m, r in cases:
        a, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=8)
        t0 = time.perf_counter()
        chunks = distribute_matrix(a, 1)
        d = distribute_rhs(b, 1)
        run_spmd(rd_solve_spmd, 1, copy_messages=False,
                 rank_args=[(chunks[0], d[0])])
        rd_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        fact = ARDFactorization(a, nranks=1)
        fact.solve(b)
        ard_wall = time.perf_counter() - t0
        rows.append([m, r, rd_wall, ard_wall, rd_wall / ard_wall])
    return ExperimentResult(
        "recon-F7",
        f"Real wall-clock on this host, P=1 (N={n})",
        ["M", "R", "rd_wall_s", "ard_wall_s", "speedup"],
        rows,
        notes="actual seconds (not modelled): the O(R) improvement is "
        "observable directly in aggregate flop work on one core.",
    )


# --------------------------------------------------------------------------
# recon-S1: stability domain (error ~ eps * growth)
# --------------------------------------------------------------------------


def s1_stability(scale: str = "full") -> ExperimentResult:
    cases = [
        ("helmholtz", helmholtz_block_system, {}, [16, 64, 256]),
        ("poisson", poisson_block_system, {}, [4, 8, 12, 16]),
        ("convdiff", convection_diffusion_system, {}, [4, 8, 12]),
        ("multigroup", multigroup_diffusion_system,
         {"seed": 5, "coupling": 2.0, "absorption": 0.1}, [8, 16, 32]),
        ("random_dd", random_block_dd_system, {"seed": 3, "dominance": 1.5},
         [4, 6, 8]),
        ("heat", heat_implicit_system, {"dt": 0.1}, [4, 8]),
    ]
    if scale == "smoke":
        cases = [(nm, g, kw, ns[:2]) for nm, g, kw, ns in cases[:3]]
    m = 4
    eps_mach = float(np.finfo(np.float64).eps)
    rows = []
    for name, gen, kwargs, n_values in cases:
        for n in n_values:
            a, _ = gen(n, m, **kwargs)
            diag = diagnose(a, warn=False)
            b = random_rhs(n, m, 2, seed=9)
            xref = dense_solve(a, b)
            fact = ARDFactorization(a, nranks=4)
            x = fact.solve(b)
            err = float(np.max(np.abs(x - xref)) / np.max(np.abs(xref)))
            bound = eps_mach * diag.growth
            rows.append([name, n, m, diag.growth, err, bound,
                         bool(err <= 1e3 * bound + 1e-14)])
    return ExperimentResult(
        "recon-S1",
        "Stability domain: ARD error tracks eps x transfer growth",
        ["workload", "N", "M", "growth", "ard_rel_err", "eps*growth",
         "within_1e3x"],
        rows,
        notes="the recurrence formulation's documented accuracy law "
        "(DESIGN.md); bounded-growth workloads stay at machine precision "
        "for any N.",
    )


# --------------------------------------------------------------------------
# recon-S2: refinement extends the stability domain
# --------------------------------------------------------------------------


def s2_refinement(scale: str = "full") -> ExperimentResult:
    """ARD error vs refinement rounds across growth regimes.

    Each round multiplies the error by ``rho ~ eps * growth``; rows with
    ``rho < 1`` converge to machine precision, demonstrating how
    ``solve(..., refine=k)`` extends the solver's domain far beyond the
    unrefined law of recon-S1."""
    from ..exceptions import ReproError

    m = 4
    n_values = [8, 12, 16, 20, 24] if scale == "full" else [8, 12]
    max_refine = 3
    rows = []
    for n in n_values:
        a, _ = poisson_block_system(n, m)
        growth = diagnose(a, warn=False).growth
        b = random_rhs(n, m, 2, seed=14)
        xref = dense_solve(a, b)
        scale_x = float(np.max(np.abs(xref)))
        try:
            fact = ARDFactorization(a, nranks=4)
            errs = []
            for k in range(max_refine + 1):
                x = fact.solve(b, refine=k)
                errs.append(float(np.max(np.abs(x - xref)) / scale_x))
            rows.append([n, growth] + errs + ["ok"])
        except ReproError as exc:
            rows.append([n, growth] + [float("nan")] * (max_refine + 1)
                        + [type(exc).__name__])
    return ExperimentResult(
        "recon-S2",
        "Iterative refinement extends the stability domain (Poisson, M=4)",
        ["N", "growth"] + [f"err_refine{k}" for k in range(max_refine + 1)]
        + ["status"],
        rows,
        notes="errors shrink geometrically with refinement rounds while "
        "eps*growth < 1; each round costs one cheap ARD solve phase.",
    )


# --------------------------------------------------------------------------
# abl-A1: scan-algorithm ablation
# --------------------------------------------------------------------------


def a1_scan_ablation(scale: str = "full") -> ExperimentResult:
    m = 8 if scale == "smoke" else 16
    p_values = [4, 8] if scale == "smoke" else [4, 8, 16, 32, 64]
    dim = 2 * m
    rows = []
    for p in p_values:
        rng = np.random.default_rng(10)
        mats = rng.standard_normal((p, dim, dim)) / dim
        pairs = [AffinePair(mats[i], np.zeros((dim, 1))) for i in range(p)]

        results = {}
        for name, scan_fn in DIST_SCANS.items():
            if name == "blelloch" and p & (p - 1):
                continue  # the Blelloch schedule needs power-of-two ranks

            def program(comm, pairs=pairs, scan_fn=scan_fn):
                return scan_fn(comm, pairs[comm.rank], affine_compose)

            res = run_spmd(program, p, cost_model=_CM, copy_messages=False)
            results[name] = res
        ref = results["kogge_stone"].values[-1]
        for name, res in results.items():
            agree = res.values[-1].allclose(ref, rtol=1e-8, atol=1e-10)
            rows.append([p, name, res.virtual_time, res.total_msgs_sent, bool(agree)])
    return ExperimentResult(
        "abl-A1",
        f"Scan-algorithm ablation on affine pairs (dim 2M={2 * m})",
        ["P", "scan", "virtual_time", "messages", "matches_ks"],
        rows,
        notes="recursive doubling's log P depth beats the pipeline's "
        "linear depth; Blelloch trades rounds for fewer combines.",
    )


# --------------------------------------------------------------------------
# abl-A2: RHS batching ablation
# --------------------------------------------------------------------------


def a2_batching(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        n, m, p, r = 64, 8, 4, 32
        batches = [1, 8, 32]
    else:
        n, m, p, r = 256, 8, 16, 256
        batches = [1, 8, 64, 256]
    a, _ = helmholtz_block_system(n, m)
    b = random_rhs(n, m, r, seed=11)
    fact = ARDFactorization(a, nranks=p, cost_model=_CM)
    rows = []
    for batch in batches:
        total_vt = 0.0
        t0 = time.perf_counter()
        for start in range(0, r, batch):
            fact.solve(b[:, :, start:start + batch])
            total_vt += fact.last_solve_result.virtual_time
        wall = time.perf_counter() - t0
        rows.append([batch, r // batch, total_vt, wall])
    return ExperimentResult(
        "abl-A2",
        f"ARD solve batching (N={n}, M={m}, P={p}, R={r})",
        ["batch", "calls", "total_solve_vt", "wall_s"],
        rows,
        notes="per-call latency (scan rounds, bcast) amortizes with batch "
        "size; flop work is batch-invariant.",
    )


# --------------------------------------------------------------------------
# abl-A3: baseline cross-over
# --------------------------------------------------------------------------


def a3_baselines(scale: str = "full") -> ExperimentResult:
    if scale == "smoke":
        n, m, r = 256, 8, 64
        p_values = [1, 4, 16]
    else:
        n, m, r = 2048, 8, 256
        p_values = [1, 4, 16, 64, 256]
    a, _ = helmholtz_block_system(n, m)
    rows = []
    thomas_t = (
        predict_time("thomas", n=n, m=m, r=r, cost_model=_CM)
    )
    for p in p_values:
        b = random_rhs(n, m, min(r, 32), seed=12)
        f_vt, s_vt, _ = _ard_times(a, b[:, :, : min(r, 32)], p)
        # Scale the measured solve phase to the full R (linear in R).
        s_full = s_vt * (r / min(r, 32))
        ard_vt = f_vt + s_full
        rd_vt = _rd_time_per_pass(a, p) * r
        bcr_t = predict_time("bcr_parallel", n=n, m=m, p=p, r=r, cost_model=_CM)
        rows.append([p, rd_vt, ard_vt, bcr_t, thomas_t,
                     "measured", "measured+scaled", "model", "model"])
    return ExperimentResult(
        "abl-A3",
        f"Baseline comparison (N={n}, M={m}, R={r})",
        ["P", "rd_vt", "ard_vt", "bcr_vt", "thomas_vt",
         "rd_src", "ard_src", "bcr_src", "thomas_src"],
        rows,
        notes="sequential Thomas wins at P=1 (no log terms); ARD overtakes "
        "as P grows; BCR tracks ARD's factor cost but repeats matrix work "
        "per level structure.",
    )


# --------------------------------------------------------------------------
# abl-A4: solver stability domains (SPIKE extension)
# --------------------------------------------------------------------------


def a4_solver_domains(scale: str = "full") -> ExperimentResult:
    """Accuracy and modelled time of ARD vs SPIKE vs Thomas across the
    two matrix regimes: oscillatory (bounded transfer growth — ARD's
    home turf) and strongly diagonally dominant (SPIKE/Thomas's)."""
    from ..core.spike import SpikeFactorization
    from ..exceptions import ReproError

    if scale == "smoke":
        n, m, p, r = 64, 4, 4, 16
    else:
        n, m, p, r = 512, 8, 16, 128
    regimes = [
        ("oscillatory", helmholtz_block_system, {}),
        ("dominant", poisson_block_system, {}),
    ]
    rows = []
    for regime, gen, kwargs in regimes:
        a, _ = gen(n, m, **kwargs)
        b = random_rhs(n, m, r, seed=13)
        growth = diagnose(a, warn=False).growth
        for method in ("ard", "spike", "thomas"):
            try:
                if method == "ard":
                    f_vt, s_vt, fact = _ard_times(a, b, p)
                    vt = f_vt + s_vt
                    x = fact.solve(b)
                elif method == "spike":
                    fact = SpikeFactorization(a, nranks=p, cost_model=_CM)
                    x = fact.solve(b)
                    vt = (fact.factor_result.virtual_time
                          + fact.last_solve_result.virtual_time)
                else:
                    fact = ThomasFactorization(a)
                    x = fact.solve(b)
                    vt = predict_time("thomas", n=n, m=m, r=r, cost_model=_CM)
                err = float(a.residual(x, b))
                status = "ok"
            except ReproError as exc:
                err, vt, status = float("nan"), float("nan"), type(exc).__name__
            rows.append([regime, f"{growth:.2e}", method, vt, err, status])
    return ExperimentResult(
        "abl-A4",
        f"Solver stability domains (N={n}, M={m}, P={p}, R={r})",
        ["regime", "growth", "method", "virtual_time", "residual", "status"],
        rows,
        notes="ARD is fastest in its (bounded-growth) domain but fails on "
        "strongly dominant long systems; the SPIKE extension covers that "
        "regime at distributed scale; Thomas is the sequential fallback.",
    )


# --------------------------------------------------------------------------
# abl-A5: banded generalization (extension)
# --------------------------------------------------------------------------


def a5_banded(scale: str = "full") -> ExperimentResult:
    """The acceleration carries over to block *banded* systems.

    For each bandwidth b, compares the naive strategy (re-run the full
    factor per right-hand side — the banded analogue of classical RD)
    against factor-once/solve-many, in modelled time."""
    from ..banded import BandedARDFactorization
    from ..workloads import banded_oscillatory_system

    if scale == "smoke":
        n, m, p, r = 32, 3, 4, 16
        bandwidths = [1, 2]
    else:
        n, m, p, r = 128, 4, 8, 128
        bandwidths = [1, 2, 3, 4]
    rows = []
    for bw in bandwidths:
        a, _ = banded_oscillatory_system(n, m, bandwidth=bw, seed=25)
        b = random_rhs(n, m, r, seed=26)
        fact = BandedARDFactorization(a, nranks=p, cost_model=_CM)
        x = fact.solve(b)
        residual = float(a.residual(x, b))
        factor_vt = fact.factor_result.virtual_time
        solve_vt = fact.last_solve_result.virtual_time
        # Naive baseline: factor + single-RHS solve, repeated per RHS.
        naive_fact = BandedARDFactorization(a, nranks=p, cost_model=_CM)
        naive_fact.solve(b[:, :, :1])
        naive_vt = r * (naive_fact.factor_result.virtual_time
                        + naive_fact.last_solve_result.virtual_time)
        accel_vt = factor_vt + solve_vt
        rows.append([bw, naive_vt, factor_vt, solve_vt, accel_vt,
                     naive_vt / accel_vt, residual])
    return ExperimentResult(
        "abl-A5",
        f"Banded generalization (N={n}, M={m}, P={p}, R={r})",
        ["bandwidth", "naive_vt", "factor_vt", "solve_vt", "accel_vt",
         "speedup", "residual"],
        rows,
        notes="the factor/solve split delivers the same R-fold win for "
        "every bandwidth; state dim 2bM makes the per-round matrix work "
        "grow as b^3 while the solve phase stays (bM)^2 per RHS.",
    )


# --------------------------------------------------------------------------
# abl-A6: planner ablation — method="auto" vs every fixed configuration
# --------------------------------------------------------------------------


def a6_planner_ablation(scale: str = "full") -> ExperimentResult:
    """Wall-clock ``method="auto"`` against the fixed portfolio.

    Every fixed configuration the planner chooses among (portfolio
    method under the shipped kernel defaults, plus the ARD kernel
    variants) is timed at the canonical bench shapes; the ``auto`` row
    carries its regret — auto's time over the best fixed time.  The
    experiment first tunes these exact shapes in-process and installs
    the table (the deployed workflow: ``harness tune`` once, plan
    forever), so ``auto`` runs table-backed, not cold.  The never-lose
    guard should keep regret near 1.0 (docs/PLANNER.md); the CI gate
    on ``planner.regret`` enforces it over time.
    """
    from ..core.api import solve
    from ..perfmodel.planner import set_default_table, tune_machine

    if scale == "smoke":
        shapes = [(64, 8, 2, 8)]
        reps = 1
    else:
        shapes = [(512, 8, 4, 16), (256, 16, 4, 32), (1024, 4, 4, 8)]
        reps = 3
    table = tune_machine(quick=(scale == "smoke"), shapes=shapes)
    set_default_table(table)
    configs: list[tuple[str, str, dict]] = [
        ("ard", "ard", {}),
        ("ard+scipy_loop", "ard", {"blockops_backend": "scipy_loop"}),
        ("ard+sequential", "ard", {"recurrence_mode": "sequential"}),
        ("ard+levelwise", "ard", {"recurrence_mode": "levelwise"}),
        ("rd", "rd", {}),
        ("spike", "spike", {}),
        ("thomas", "thomas", {}),
        ("cyclic", "cyclic", {}),
    ]
    rows = []
    for n, m, p, r in shapes:
        a, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=16)

        def timed(method: str, overrides: dict) -> float:
            def run() -> None:
                with config_context(**overrides):
                    solve(a, b, method=method, nranks=p)

            run()  # warm (plan cache, level trees, BLAS)
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                run()
                best = min(best, time.perf_counter() - t0)
            return best

        try:
            fixed = {label: timed(method, overrides)
                     for label, method, overrides in configs}
            auto_s = timed("auto", {})
            _, info = solve(a, b, method="auto", nranks=p, return_info=True)
        except BaseException:
            set_default_table(None)
            raise
        best_fixed = min(fixed.values())
        for label, _method, _over in configs:
            rows.append([n, m, p, r, label, fixed[label], float("nan"), ""])
        chosen = (f"{info.method}/{info.plan.blockops_backend}"
                  f"/{info.plan.recurrence_mode}" if info.plan else info.method)
        rows.append([n, m, p, r, "auto", auto_s, auto_s / best_fixed, chosen])
    set_default_table(None)
    return ExperimentResult(
        "abl-A6",
        "Planner ablation: method=auto vs every fixed configuration",
        ["N", "M", "P", "R", "config", "wall_s", "regret", "auto_choice"],
        rows,
        notes="regret = auto wall time / best fixed configuration; the "
        "never-lose guard keeps it near 1.0, and repro.obs.regress "
        "gates the bench-history planner.regret metric at <= 1.15.",
    )


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in [
        Experiment("recon-T1", "Complexity table", t1_complexity,
                   "Predicted vs instrumented flop counts for all solvers."),
        Experiment("recon-T2", "Phase breakdown", t2_phases,
                   "Per-phase cost structure of RD vs ARD."),
        Experiment("recon-F1", "Runtime vs R", f1_runtime_vs_r,
                   "The headline O(R) separation."),
        Experiment("recon-F2", "Speedup vs R", f2_speedup_vs_r,
                   "Speedup curves for several block sizes."),
        Experiment("recon-F3", "Strong scaling", f3_strong_scaling,
                   "Runtime vs P."),
        Experiment("recon-F4", "Runtime vs N", f4_runtime_vs_n,
                   "Work-term scaling."),
        Experiment("recon-F5", "Runtime vs M", f5_runtime_vs_m,
                   "M^3 vs M^2 separation."),
        Experiment("recon-F6", "Model validation", f6_model_validation,
                   "Analytic model vs simulated time."),
        Experiment("recon-F7", "Wall-clock check", f7_wallclock,
                   "Real seconds on this host at P=1."),
        Experiment("recon-S1", "Stability domain", s1_stability,
                   "Error tracks eps x transfer growth."),
        Experiment("recon-S2", "Refinement domain", s2_refinement,
                   "Iterative refinement extends the accurate domain."),
        Experiment("abl-A1", "Scan ablation", a1_scan_ablation,
                   "Kogge-Stone vs Blelloch vs pipeline."),
        Experiment("abl-A2", "Batching ablation", a2_batching,
                   "RHS batch-size sensitivity."),
        Experiment("abl-A3", "Baseline cross-over", a3_baselines,
                   "ARD vs RD vs BCR vs Thomas."),
        Experiment("abl-A4", "Solver domains", a4_solver_domains,
                   "ARD vs SPIKE vs Thomas across stability regimes."),
        Experiment("abl-A5", "Banded generalization", a5_banded,
                   "The acceleration for block banded systems."),
        Experiment("abl-A6", "Planner ablation", a6_planner_ablation,
                   "method=auto vs every fixed configuration (regret)."),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment; raises ExperimentError with suggestions."""
    if exp_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id]
