"""Critical-path profiler CLI backend (``harness profile``).

Re-runs an experiment's representative traced solves (the same runs
``harness trace`` exports), then answers the planner's questions from
the measured spans instead of the analytic model:

- **critical path** — which chain of phases and messages determined
  the makespan (:mod:`repro.obs.critpath`), with per-rank
  compute/comm/idle/overlap attribution that sums to the makespan;
- **roofline** — whether each phase is compute- or bandwidth-bound
  (:mod:`repro.obs.roofline`) against the run's cost-model rates, or
  against *measured* host rates when ``results/CALIB_machine.json``
  exists;
- **calibration** — ``profile --calibrate`` micro-benchmarks the real
  batched kernels and fastcopy path
  (:mod:`repro.perfmodel.calibrate`) and writes that JSON snapshot for
  the predictor and future profiles to load.

Output is human tables by default, one JSON document with ``--json``
or ``--out`` (the CI triage artifact), and ``--check`` turns the
report's internal invariants into an exit code.  See
docs/PROFILING.md.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from ..obs.log import get_logger

__all__ = ["profile_experiment", "run_calibration"]

_log = get_logger("harness")


def run_calibration(out: str | pathlib.Path | None = None,
                    *, verbose: bool = True) -> pathlib.Path:
    """Measure this host's kernel/copy rates and persist the snapshot.

    Wraps :func:`~repro.perfmodel.calibrate.calibrate_machine` +
    :func:`~repro.perfmodel.calibrate.save_calibration`; returns the
    written path (default
    :data:`~repro.perfmodel.calibrate.DEFAULT_CALIB_PATH`).
    """
    from ..obs.log import console
    from ..perfmodel.calibrate import (
        DEFAULT_CALIB_PATH,
        calibrate_machine,
        save_calibration,
    )

    calib = calibrate_machine()
    path = save_calibration(calib, out or DEFAULT_CALIB_PATH)
    _log.info("calibration.written", path=str(path),
              gemm_flop_rate=calib.gemm_flop_rate,
              copy_bandwidth=calib.copy_bandwidth)
    if verbose:
        console(f"calibrated {calib.host or 'this host'}:")
        console(f"  gemm   {calib.gemm_flop_rate:.3e} flop/s")
        console(f"  lu     {calib.lu_flop_rate:.3e} flop/s")
        console(f"  trsm   {calib.trsm_flop_rate:.3e} flop/s")
        console(f"  copy   {calib.copy_bandwidth:.3e} B/s")
        console(f"  latency proxy {calib.latency:.3e} s")
        console(f"wrote {path}")
    return path


def _machine_rates() -> Any:
    """Roofline rates: calibrated when a snapshot exists, else the
    run's paper-era cost model."""
    from ..obs.roofline import MachineRates
    from ..perfmodel.calibrate import DEFAULT_CALIB_PATH, load_calibration
    from .experiments import _CM

    try:
        return MachineRates.from_calibration(
            load_calibration(DEFAULT_CALIB_PATH))
    except Exception:
        return MachineRates.from_cost_model(_CM)


def profile_experiment(
    exp_id: str,
    scale: str = "full",
    *,
    out: str | pathlib.Path | None = None,
    as_json: bool = False,
    check: bool = False,
    verbose: bool = True,
) -> dict[str, Any]:
    """Profile an experiment's representative runs; return the document.

    Parameters
    ----------
    exp_id:
        Registry key (validated against the experiment registry).
    scale:
        ``"smoke"`` (seconds) or ``"full"`` (paper-scale), same
        problems as ``harness trace``.
    out:
        When given, also write the JSON document to
        ``<out>/<exp_id>.profile.json`` (or the exact path when it
        ends in ``.json``).
    as_json:
        Print the JSON document instead of the tables.
    check:
        Run :meth:`~repro.obs.critpath.CritPathReport.validate` on
        every run and raise :class:`~repro.exceptions.ReproError` on
        any violated invariant (missing phases, attribution not
        summing to the makespan within 1%) — the CI gate.
    verbose:
        Print the report (tables or JSON) and the output path.

    Returns
    -------
    The profile document: per-run phase breakdown, critical path,
    attribution fractions, and roofline classification.
    """
    from ..exceptions import ReproError
    from ..obs import build_phase_report, build_roofline
    from ..obs.log import console
    from .experiments import get_experiment
    from .runner import representative_runs

    get_experiment(exp_id)  # validate the id before doing any work
    (n, m, p, r), fact, rd_result = representative_runs(scale)
    machine = _machine_rates()

    runs = {
        "ard": [("factor", fact.factor_result),
                ("solve", fact.last_solve_result)],
        "rd": [("solve", rd_result)],
    }
    doc: dict[str, Any] = {
        "exp_id": exp_id,
        "scale": scale,
        "params": {"n": n, "m": m, "p": p, "r": r},
        "machine": machine.to_dict(),
        "runs": {},
    }
    problems: list[str] = []
    text_parts: list[str] = []
    for label, segments in runs.items():
        report = build_phase_report(segments, critpath=True)
        if report is None:
            raise ReproError(f"run {label!r} produced no traces")
        roofline = build_roofline(report, machine)
        run_doc = report.to_dict()
        run_doc["roofline"] = roofline.to_dict()
        # Wall-clock semantics depend on the execution backend: under
        # "processes" every rank is its own core so the wall time is a
        # real parallel measurement; under "threads" the GIL serializes
        # the ranks and only the virtual time is meaningful.
        backend = segments[0][1].backend
        wall = sum(seg.wall_time for _, seg in segments)
        semantics = ("measured (true parallel wall-clock; processes "
                     "backend)" if backend == "processes"
                     else "modelled (virtual time; thread wall-clock is "
                     "GIL-serialized)")
        run_doc["backend"] = backend
        run_doc["wall_time"] = wall
        run_doc["wall_time_semantics"] = semantics
        doc["runs"][label] = run_doc
        problems.extend(f"{label}: {problem}"
                        for problem in report.critpath.validate())
        text_parts.append(f"== {label} ==\n"
                          f"backend={backend}  wall={wall:.3f}s  "
                          f"[{semantics}]\n"
                          + report.render() + "\n"
                          + roofline.render())
    doc["problems"] = problems

    path = None
    if out is not None:
        path = pathlib.Path(out)
        if path.suffix != ".json":
            path = path / f"{exp_id}.profile.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2) + "\n")
        _log.info("profile.written", exp_id=exp_id, scale=scale,
                  path=str(path))
    if verbose:
        if as_json:
            console(json.dumps(doc, indent=2))
        else:
            console(f"[{exp_id}] profiled representative runs "
                    f"(N={n}, M={m}, P={p}, R={r}, scale={scale})")
            for part in text_parts:
                console()
                console(part)
        if path is not None:
            console(f"wrote {path}")
    if check and problems:
        raise ReproError(
            "profile invariants violated: " + "; ".join(problems))
    return doc
