"""Experiment harness: regenerates every table/figure in EXPERIMENTS.md."""

from .bench_history import append_record, collect_record, run_bench_history
from .experiments import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    collecting_sim_stats,
    get_experiment,
)
from .runner import run_all, run_experiment, trace_experiment

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "append_record",
    "collect_record",
    "collecting_sim_stats",
    "get_experiment",
    "run_all",
    "run_bench_history",
    "run_experiment",
    "trace_experiment",
]
