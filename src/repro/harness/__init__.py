"""Experiment harness: regenerates every table/figure in EXPERIMENTS.md."""

from .experiments import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    collecting_sim_stats,
    get_experiment,
)
from .runner import run_all, run_experiment, trace_experiment

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "collecting_sim_stats",
    "get_experiment",
    "run_all",
    "run_experiment",
    "trace_experiment",
]
