"""Experiment harness: regenerates every table/figure in EXPERIMENTS.md."""

from .experiments import EXPERIMENTS, Experiment, ExperimentResult, get_experiment
from .runner import run_all, run_experiment

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "get_experiment",
    "run_all",
    "run_experiment",
]
