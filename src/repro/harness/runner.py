"""Experiment runner: execute, render, persist.

``run_experiment`` executes one registry entry and optionally writes its
rows as CSV under ``results/``; ``run_all`` sweeps the registry.  The
CLI in :mod:`repro.harness.__main__` wraps these.
"""

from __future__ import annotations

import pathlib
import time

from .experiments import EXPERIMENTS, ExperimentResult, get_experiment

__all__ = ["run_experiment", "run_all"]


def run_experiment(
    exp_id: str,
    scale: str = "full",
    *,
    out_dir: str | pathlib.Path | None = None,
    verbose: bool = True,
    plot: bool = False,
) -> ExperimentResult:
    """Run one experiment and return its result.

    Parameters
    ----------
    exp_id:
        Registry key, e.g. ``"recon-F1"``.
    scale:
        ``"full"`` (paper-scale parameters) or ``"smoke"`` (seconds).
    out_dir:
        When given, write ``<exp_id>.csv`` there.
    verbose:
        Print the rendered table and timing to stdout.
    plot:
        Also print the experiment's ASCII figure (when it has one).
    """
    exp = get_experiment(exp_id)
    t0 = time.perf_counter()
    result = exp.func(scale)
    elapsed = time.perf_counter() - t0
    if verbose:
        print(result.render())
        if plot:
            from .plot import plot_experiment

            figure = plot_experiment(result)
            if figure:
                print()
                print(figure)
        print(f"  [{exp_id} completed in {elapsed:.1f}s at scale={scale}]")
    if out_dir is not None:
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{exp_id}.csv").write_text(result.to_csv() + "\n")
    return result


def run_all(
    scale: str = "full",
    *,
    out_dir: str | pathlib.Path | None = None,
    verbose: bool = True,
    plot: bool = False,
) -> dict[str, ExperimentResult]:
    """Run every registered experiment; returns results keyed by id."""
    results = {}
    for exp_id in EXPERIMENTS:
        results[exp_id] = run_experiment(
            exp_id, scale, out_dir=out_dir, verbose=verbose, plot=plot
        )
    return results
