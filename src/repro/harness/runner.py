"""Experiment runner: execute, render, persist.

``run_experiment`` executes one registry entry and optionally writes its
rows as CSV (plus a ``*.stats.json`` with the aggregated per-run
simulation counters) under ``results/``; ``run_all`` sweeps the
registry; ``trace_experiment`` re-runs an experiment's representative
solves with tracing on and writes a Chrome trace.  The CLI in
:mod:`repro.harness.__main__` wraps these.
"""

from __future__ import annotations

import pathlib
import time

from ..obs.log import console, get_logger
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    collecting_sim_stats,
    get_experiment,
)

__all__ = ["run_experiment", "run_all", "trace_experiment",
           "representative_runs"]

_log = get_logger("harness")


def run_experiment(
    exp_id: str,
    scale: str = "full",
    *,
    out_dir: str | pathlib.Path | None = None,
    verbose: bool = True,
    plot: bool = False,
) -> ExperimentResult:
    """Run one experiment and return its result.

    Parameters
    ----------
    exp_id:
        Registry key, e.g. ``"recon-F1"``.
    scale:
        ``"full"`` (paper-scale parameters) or ``"smoke"`` (seconds).
    out_dir:
        When given, write ``<exp_id>.csv`` and ``<exp_id>.stats.json``
        there.
    verbose:
        Print the rendered table and timing to stdout.
    plot:
        Also print the experiment's ASCII figure (when it has one).
    """
    exp = get_experiment(exp_id)
    t0 = time.perf_counter()
    with collecting_sim_stats() as sim_log:
        result = exp.func(scale)
    result.sim_stats = sim_log
    elapsed = time.perf_counter() - t0
    _log.info("experiment.completed", exp_id=exp_id, scale=scale,
              elapsed_s=elapsed)
    if verbose:
        console(result.render())
        if plot:
            from .plot import plot_experiment

            figure = plot_experiment(result)
            if figure:
                console()
                console(figure)
        console(f"  [{exp_id} completed in {elapsed:.1f}s at scale={scale}]")
    if out_dir is not None:
        from ..io import write_stats_json

        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{exp_id}.csv").write_text(result.to_csv() + "\n")
        write_stats_json(
            out / f"{exp_id}.stats.json", result,
            extra={"scale": scale, "elapsed_s": elapsed},
        )
    return result


def representative_runs(scale: str = "full"):
    """Execute one representative traced problem of the recon family.

    Experiments aggregate many simulated runs into tables; tracing and
    profiling instead re-execute a single *representative* problem — an
    ARD factor+solve and a classical-RD solve on the same Helmholtz
    matrix and rank count — with per-rank tracing enabled.  Used by
    both ``trace`` and ``profile`` harness subcommands so their
    timelines describe the same runs.

    Returns
    -------
    ``((n, m, p, r), fact, rd_result)`` where ``fact`` is the traced
    :class:`~repro.core.ard.ARDFactorization` (``factor_result`` /
    ``last_solve_result`` populated) and ``rd_result`` the traced
    single-RHS classical-RD :class:`~repro.comm.stats.SimulationResult`.
    """
    from ..comm import run_spmd
    from ..core.ard import ARDFactorization
    from ..core.distribute import distribute_matrix, distribute_rhs
    from ..core.rd import rd_solve_spmd
    from ..workloads import helmholtz_block_system, random_rhs
    from .experiments import _CM

    if scale == "smoke":
        n, m, p, r = 64, 4, 4, 8
    else:
        n, m, p, r = 256, 8, 8, 32
    matrix, _ = helmholtz_block_system(n, m)
    b = random_rhs(n, m, r, seed=0)

    fact = ARDFactorization(matrix, nranks=p, cost_model=_CM, trace=True)
    fact.solve(b)
    chunks = distribute_matrix(matrix, p)
    d_chunks = distribute_rhs(b[:, :, :1], p)
    rd_result = run_spmd(
        rd_solve_spmd, p, cost_model=_CM, copy_messages=False,
        rank_args=[(c, d) for c, d in zip(chunks, d_chunks)], trace=True,
    )
    return (n, m, p, r), fact, rd_result


def trace_experiment(
    exp_id: str,
    scale: str = "full",
    *,
    out_dir: str | pathlib.Path = "results",
    verbose: bool = True,
) -> pathlib.Path:
    """Run an experiment's representative solves traced; write the trace.

    Experiments aggregate many simulated runs into tables, so instead of
    tracing every run, this re-executes one *representative* problem of
    the experiment's family — an ARD factor+solve and a classical-RD
    solve on the same matrix and rank count — with per-rank tracing
    enabled, then writes ``<exp_id>.trace.json`` (Chrome trace-event
    JSON; open in https://ui.perfetto.dev or ``chrome://tracing``) with
    one timeline track per simulated rank and prints the measured
    :class:`~repro.obs.report.PhaseReport` breakdowns.

    Parameters
    ----------
    exp_id:
        Registry key (validated against :data:`EXPERIMENTS`).
    scale:
        ``"smoke"`` traces a seconds-scale problem (N=64, M=4, P=4,
        R=8); ``"full"`` a paper-scale one (N=256, M=8, P=8, R=32).
    out_dir:
        Directory for ``<exp_id>.trace.json`` (default ``results/``),
        or — when the path ends in ``.json`` — the exact trace file to
        write (``python -m repro.harness trace <exp-id> --out PATH``).
    verbose:
        Print the phase reports and the output path.

    Returns
    -------
    The path of the written trace file.
    """
    from ..obs import build_phase_report, write_chrome_trace

    get_experiment(exp_id)  # validate the id before doing any work
    (n, m, p, r), fact, rd_result = representative_runs(scale)

    out = pathlib.Path(out_dir)
    if out.suffix == ".json":
        target = out
        out = out.parent
    else:
        target = out / f"{exp_id}.trace.json"
    out.mkdir(parents=True, exist_ok=True)
    path = write_chrome_trace(
        target,
        {"ard": fact, "rd (1 rhs)": rd_result},
        critpath=True,
    )
    _log.info("trace.written", exp_id=exp_id, scale=scale, path=str(path))
    if verbose:
        ard_report = build_phase_report(
            [("factor", fact.factor_result),
             ("solve", fact.last_solve_result)]
        )
        rd_report = build_phase_report([("solve", rd_result)])
        console(f"[{exp_id}] representative traced runs "
                f"(N={n}, M={m}, P={p}, R={r}, scale={scale})")
        console()
        console("ARD " + ard_report.render())
        console()
        console("RD, single RHS " + rd_report.render())
        console()
        console(f"wrote {path}")
    return path


def run_all(
    scale: str = "full",
    *,
    out_dir: str | pathlib.Path | None = None,
    verbose: bool = True,
    plot: bool = False,
) -> dict[str, ExperimentResult]:
    """Run every registered experiment; returns results keyed by id."""
    results = {}
    for exp_id in EXPERIMENTS:
        results[exp_id] = run_experiment(
            exp_id, scale, out_dir=out_dir, verbose=verbose, plot=plot
        )
    return results
