"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` from NumPy, etc.)
propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "SingularBlockError",
    "StabilityWarning",
    "CommError",
    "DeadlockError",
    "SpmdDivergenceError",
    "UnconsumedMessageError",
    "UnconsumedMessageWarning",
    "RankError",
    "TagError",
    "ConfigError",
    "ExperimentError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceClosedError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible or malformed shape."""


class SingularBlockError(ReproError, ValueError):
    """A block that must be inverted (e.g. a superdiagonal block ``U_i``
    in the recursive doubling recurrence) is singular to working
    precision.

    Attributes
    ----------
    block_index:
        Global block-row index of the offending block, or ``None`` when
        unknown (e.g. inside a batched factorization).
    """

    def __init__(self, message: str, block_index: int | None = None):
        super().__init__(message)
        self.block_index = block_index


class StabilityWarning(UserWarning):
    """Emitted when diagnostics indicate the recurrence-based transform
    is likely to amplify rounding error (large transfer-product growth)."""


class CommError(ReproError, RuntimeError):
    """Base class for errors raised by the simulated message-passing
    runtime (:mod:`repro.comm`)."""


class DeadlockError(CommError):
    """The SPMD program can make no further progress: every live rank is
    blocked on a receive/collective that can never be satisfied."""


class SpmdDivergenceError(CommError):
    """The runtime verifier observed two ranks disagreeing on the
    collective call sequence: at the same position in a communicator's
    schedule one rank entered a different collective (or a different
    root) than another.  Raised at the *first* divergent call, in the
    rank that arrived second, with both ranks' recent traces."""


class UnconsumedMessageError(CommError):
    """The runtime verifier found messages still sitting in inboxes
    when the simulation finalized: some rank sent a message that no
    rank ever received (sender, destination and tag are reported)."""


class UnconsumedMessageWarning(UserWarning):
    """Non-verify-mode counterpart of :class:`UnconsumedMessageError`:
    the simulation finished with unreceived messages left in inboxes."""


class RankError(CommError, ValueError):
    """A rank argument is outside ``[0, comm.size)`` or otherwise invalid."""


class TagError(CommError, ValueError):
    """A message tag is invalid (negative or non-integer)."""


class ConfigError(ReproError, ValueError):
    """An invalid global or per-call configuration value was supplied."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment definition in :mod:`repro.harness` is malformed or
    references unknown components."""


class ServiceError(ReproError, RuntimeError):
    """Base class for errors raised by the solver service layer
    (:mod:`repro.service`)."""


class ServiceOverloadError(ServiceError):
    """The service's admission queue is full and its overload policy is
    ``"reject"`` — the caller should back off and retry."""


class ServiceClosedError(ServiceError):
    """A request was submitted to (or was still pending in) a service
    that has been closed."""


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before its solve completed."""
