"""SARIF 2.1.0 rendering for ``repro.check`` findings.

Emits the minimal static-analysis interchange document GitHub's code
scanning ingests (``github/codeql-action/upload-sarif``): one run with
a tool descriptor carrying the rule catalog, and one result per
finding with the rule id, level, message and physical location.  Both
the lint pass and the protocol analyzer share this renderer via
``--format sarif``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from .linter import Finding
from .rules import RULES

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rel(path: str, base: pathlib.Path) -> str:
    """Repository-relative forward-slash URI when possible."""
    try:
        return pathlib.Path(path).resolve().relative_to(base).as_posix()
    except ValueError:
        return pathlib.PurePath(path).as_posix()


def to_sarif(findings: Iterable[Finding], *, tool_name: str = "repro.check"
             ) -> dict:
    """Build the SARIF document as a plain dict."""
    findings = list(findings)
    base = pathlib.Path.cwd().resolve()
    used = sorted({f.rule_id for f in findings})
    rules = [
        {
            "id": rule_id,
            "name": RULES[rule_id].name,
            "shortDescription": {"text": RULES[rule_id].summary},
            "help": {"text": RULES[rule_id].hint},
        }
        for rule_id in used
        if rule_id in RULES
    ]
    results = []
    seen = set()
    for f in findings:
        uri = _rel(f.path, base)
        key = (f.rule_id, uri, f.line, f.col)
        if key in seen:
            # Multi-P proto runs repeat a finding at the same site with
            # slightly different rank lists; one annotation per site.
            continue
        seen.add(key)
        results.append(
            {
                "ruleId": f.rule_id,
                "level": "warning" if f.severity == "warning" else "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": {
                                "startLine": f.line,
                                "startColumn": max(f.col, 0) + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: Iterable[Finding], *,
                 tool_name: str = "repro.check") -> str:
    return json.dumps(to_sarif(findings, tool_name=tool_name), indent=2)
