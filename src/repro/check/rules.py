"""Rule catalog for the SPMD static analyzer (:mod:`repro.check`).

Every finding produced by :mod:`repro.check.linter` carries the id of
one of the rules below.  Ids are stable — suppression comments
(``# repro: noqa[RC101]``), docs/CHECKING.md and CI output all refer to
them — so rules are never renumbered, only added.

The rules encode *this repository's* correctness contracts rather than
generic style: the SPMD solvers in :mod:`repro.core` are only correct
when every rank executes the same sequence of collectives, every
nonblocking request is completed, and shared state is confined to the
runtime layers that are audited for it.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "Rule",
    "RULES",
    "ALL_RULE_IDS",
    "WARNING_RULE_IDS",
    "get_rule",
    "render_catalog",
]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One lint rule: stable id, short name, what it flags, how to fix.

    Attributes
    ----------
    rule_id:
        Stable identifier (``RC###``) used in findings and suppression
        comments.
    name:
        Short kebab-case label for reports.
    summary:
        One-line description of the hazard the rule detects.
    hint:
        Actionable fix guidance appended to every finding.
    """

    rule_id: str
    name: str
    summary: str
    hint: str


RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "RC100",
            "syntax-error",
            "File could not be parsed as Python.",
            "Fix the syntax error; none of the other rules ran on this file.",
        ),
        Rule(
            "RC101",
            "rank-conditional-collective",
            "Collective call (bcast/allreduce/scan/barrier/...) inside a "
            "rank-conditional branch: ranks taking the other branch never "
            "enter the collective, so the participating ranks hang.",
            "Hoist the collective out of the rank branch so every rank of "
            "the communicator calls it, or derive a sub-communicator with "
            "comm.split() and call the collective on that.",
        ),
        Rule(
            "RC102",
            "unwaited-request",
            "Nonblocking isend/irecv whose Request handle is discarded or "
            "never used: the receive never actually happens (irecv matches "
            "lazily in Request.wait), leaving the message to poison a later "
            "wildcard receive or trip the finalize sweep.",
            "Keep the Request and call .wait() (or Request.waitall) on it; "
            "if the result is truly unneeded, use blocking send/recv.",
        ),
        Rule(
            "RC103",
            "raw-thread-primitive",
            "Raw threading primitive (Thread/Lock/Condition/...) outside "
            "the audited concurrency layers (comm/, service/, obs/): ad-hoc "
            "locking bypasses the runtime's deadlock verifier and its "
            "single-condition-variable discipline.",
            "Route concurrency through repro.comm (simulated ranks) or "
            "repro.service (worker pool); if a new layer genuinely needs a "
            "primitive, move it under an audited package.",
        ),
        Rule(
            "RC104",
            "all-drift",
            "__all__ disagrees with the module's actual top-level "
            "definitions: it names something undefined, or a public "
            "function/class is missing from it (star-imports and API docs "
            "silently lose the symbol).",
            "Add missing public names to __all__, remove stale entries, or "
            "prefix genuinely-internal definitions with an underscore.",
        ),
        Rule(
            "RC105",
            "bare-except",
            "Bare `except:` swallows SystemExit/KeyboardInterrupt and the "
            "runtime's CommAborted control-flow, hiding rank failures as "
            "hangs.",
            "Catch a concrete exception type, or `except Exception:` at "
            "the very least.",
        ),
        Rule(
            "RC106",
            "mutable-default-arg",
            "Mutable default argument ([], {}, set(), ...) is shared "
            "across calls — and across simulated ranks, since every rank "
            "thread shares the same function object.",
            "Default to None and create the container inside the function.",
        ),
        Rule(
            "RC107",
            "bare-print",
            "Bare print() in library code bypasses the structured "
            "telemetry pipeline: the output carries no level, no trace "
            "context, and cannot be captured, filtered or shipped like "
            "repro.obs.log records.",
            "Use repro.obs.log — get_logger(component) for telemetry "
            "events, console() for deliberate CLI/report output; bare "
            "print() is allowed only in __main__ modules and "
            "util/tables.py.",
        ),
        Rule(
            "RC108",
            "unentered-span",
            "Tracer span context manager created but never entered: a "
            "bare span(...) / tracer.span(...) / kernel_time(...) "
            "expression statement constructs the context manager and "
            "drops it, so no interval is ever recorded and the phase "
            "timeline silently loses it (reports and critical-path "
            "analysis then under-attribute that work).",
            "Enter the span with `with span(...):` (or use "
            "Tracer.closed_span for an already-measured interval).",
        ),
        Rule(
            "RC200",
            "proto-analysis-error",
            "The protocol analyzer could not complete symbolic execution "
            "of this program (interpreter failure or step budget "
            "exhausted); the communication graph was not fully checked.",
            "Simplify the entry point (see docs/CHECKING.md, "
            "'What makes a program analyzable'), or wrap the solver in a "
            "composition driver like repro.check.entries does.",
        ),
        Rule(
            "RC201",
            "unmatched-message",
            "A send has no matching receive (the message would trip the "
            "finalize sweep), or a receive has no matching send (the "
            "rank would block forever).",
            "Make the send/recv pair symmetric: same communicator, "
            "matching source/dest and tag, on a code path both ranks "
            "actually execute at this rank count.",
        ),
        Rule(
            "RC202",
            "tag-or-peer-mismatch",
            "A blocked receive and a pending send almost match: same "
            "rank pair but different tag, or same tag but the send "
            "targets / the receive names the wrong peer.",
            "Align the tag and peer arguments of the send/recv pair; "
            "per-level tags must use the same level arithmetic on both "
            "sides.",
        ),
        Rule(
            "RC203",
            "send-recv-deadlock",
            "A cycle of ranks each blocked in recv waiting on the next "
            "(e.g. a ring of recv-then-send): deadlocks immediately here "
            "and under MPI rendezvous semantics even when rewritten as "
            "blocking sends.",
            "Break the cycle: stagger the order by parity (even ranks "
            "send first), or use isend/irecv so one side's operation is "
            "posted before blocking.",
        ),
        Rule(
            "RC204",
            "collective-divergence",
            "Ranks of one communicator diverge in their collective "
            "sequence: different op at the same position, mismatched "
            "root, or a collective entered by only a subset of the "
            "ranks.",
            "Every rank of the communicator must call the same "
            "collectives in the same order with the same root; hoist "
            "collectives out of rank-dependent branches.",
        ),
        Rule(
            "RC205",
            "mutate-in-flight",
            "An array is mutated between isend() and the matching "
            "Request.wait(): the runtime sends payloads by reference "
            "(zero-copy), so the receiver can observe the torn write.",
            "Complete the request (req.wait()) before writing to the "
            "buffer, or send a copy: comm.isend(buf.copy(), ...).",
        ),
        Rule(
            "RC206",
            "mutate-received-view",
            "A payload received from another rank is mutated in place: "
            "received objects are zero-copy views of the sender's "
            "buffers (shared-memory backend: views into the shm "
            "segment), so the write corrupts the sender's data.",
            "Copy before writing: x = comm.recv(...).copy() — or treat "
            "received payloads as read-only.",
        ),
        Rule(
            "RC207",
            "proto-unanalyzable",
            "Symbolic execution hit a rank-dependent condition or loop "
            "bound it could not fold while communication happens inside "
            "it, or an unresolvable peer/tag expression: the analyzer "
            "proceeded under an assumption, so protocol defects behind "
            "this point may be missed (warning, not an error).",
            "Make the rank expression foldable (derive it from "
            "comm.rank/comm.size and constants), hoist the comm call "
            "out of the unanalyzable region, or pass concrete arguments "
            "via a composition driver (see repro.check.entries).",
        ),
    )
}

#: Rules whose findings are advisory: they flag analyzer blind spots,
#: not proven protocol defects.  ``repro.check proto`` exits 0 when only
#: these fire (unless ``--strict``).
WARNING_RULE_IDS: frozenset[str] = frozenset({"RC200", "RC207"})

ALL_RULE_IDS: frozenset[str] = frozenset(RULES)


def get_rule(rule_id: str) -> Rule:
    """Return the :class:`Rule` for ``rule_id`` (raises ``KeyError``)."""
    return RULES[rule_id]


def render_catalog() -> str:
    """Human-readable catalog, one block per rule (used by the CLI)."""
    blocks = []
    for rule in RULES.values():
        blocks.append(
            f"{rule.rule_id} ({rule.name})\n"
            f"  {rule.summary}\n"
            f"  fix: {rule.hint}"
        )
    return "\n\n".join(blocks)
