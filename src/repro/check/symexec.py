"""Symbolic per-rank interpreter for the SPMD protocol analyzer.

This module is the dataflow layer of :mod:`repro.check.proto`: it
abstractly interprets one rank's view of an SPMD program function over
stdlib :mod:`ast`, folding ``comm.rank`` / ``comm.size``, arithmetic,
comparisons and concretely-bounded loops, so that every communication
call reaches the matching engine with concrete peers and tags whenever
the program determines them.

Value model (:class:`Val`): a value is either *concrete* (a Python
scalar, a tuple/list/dict of Vals, an interpreted class instance, a
function, a communicator, a request handle) or the :data:`UNKNOWN`
sentinel.  Every potentially-mutable value carries an *alias set* of
integer buffer ids — views share the id set object itself, so writes
through any alias are attributed to the same buffers — and a
``rank_dep`` flag recording provable derivation from ``comm.rank``
(used to decide when an unfoldable branch is a real analyzability gap,
RC207, rather than a rank-uniform assumption).

Modules are resolved by parsing source files, never by importing:
a small allowlist of protocol-relevant modules is interpreted
(solvers, the affine semigroup, analysis entry drivers); everything
else — numpy, the numeric kernels, observability — is *opaque*: calls
into it return fresh unknown buffers.  See docs/CHECKING.md for the
analyzability contract.
"""

from __future__ import annotations

import ast
import itertools
import pathlib
from typing import Any, Callable

__all__ = [
    "UNKNOWN",
    "Val",
    "Inst",
    "FuncVal",
    "ClassVal",
    "ModVal",
    "CommVal",
    "ReqVal",
    "ExternalRef",
    "Module",
    "ModuleRegistry",
    "SymInterpreter",
    "PathExit",
    "AnalysisLimit",
    "INTERPRETED_MODULES",
]


class _Unknown:
    """Singleton sentinel for statically-undetermined values."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNKNOWN"


UNKNOWN = _Unknown()

#: Modules whose source the analyzer interprets; everything else is
#: opaque.  The allowlist covers exactly the modules that participate
#: in communication protocols (plus the alias-relevant affine pairs).
INTERPRETED_MODULES = frozenset(
    {
        "repro.core.rd",
        "repro.core.ard",
        "repro.core.spike",
        "repro.core.bcyclic",
        "repro.core.engine",
        "repro.core.scan_affine",
        "repro.prefix.affine",
        "repro.check.entries",
    }
)

#: Well-known constants of opaque modules the analyzer must fold.
_OPAQUE_CONSTS: dict[str, Any] = {
    "repro.comm.ANY_SOURCE": -1,
    "repro.comm.ANY_TAG": -1,
    "repro.comm.communicator.ANY_SOURCE": -1,
    "repro.comm.communicator.ANY_TAG": -1,
}

#: ndarray methods returning a view (result aliases the receiver).
_ALIAS_METHODS = frozenset(
    {"reshape", "ravel", "view", "transpose", "squeeze", "swapaxes",
     "diagonal", "real", "imag"}
)

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset(
    {"fill", "sort", "put", "itemset", "partition", "resize", "setflags"}
)

#: Attributes of unknown objects that are scalars, not views.
_SCALAR_ATTRS = frozenset(
    {"shape", "ndim", "size", "dtype", "nbytes", "itemsize", "flags"}
)


class Val:
    """One abstract value: concrete payload or UNKNOWN + alias ids."""

    __slots__ = ("c", "ids", "rank_dep")

    def __init__(self, c: Any, ids: set[int] | None = None,
                 rank_dep: bool = False):
        self.c = c
        self.ids = ids if ids is not None else set()
        self.rank_dep = rank_dep

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Val({self.c!r}, ids={sorted(self.ids)}, rd={self.rank_dep})"


class Inst:
    """Instance of an interpreted class (or dataclass)."""

    __slots__ = ("cls", "attrs")

    def __init__(self, cls: "ClassVal | None"):
        self.cls = cls
        self.attrs: dict[str, Val] = {}


class FuncVal:
    """An interpreted function: AST node + defining module."""

    __slots__ = ("name", "node", "module")

    def __init__(self, name: str, node: ast.FunctionDef | ast.Lambda,
                 module: "Module"):
        self.name = name
        self.node = node
        self.module = module


class ClassVal:
    """An interpreted class definition."""

    __slots__ = ("name", "node", "module", "is_dataclass", "fields",
                 "consts", "has_bases")

    def __init__(self, name: str, node: ast.ClassDef, module: "Module"):
        self.name = name
        self.node = node
        self.module = module
        self.has_bases = bool(node.bases)
        self.is_dataclass = any(
            _decorator_name(d) == "dataclass" for d in node.decorator_list
        )
        # Dataclass fields: annotated assignments in body order, with
        # (lazily evaluated) defaults.
        self.fields: list[tuple[str, ast.expr | None]] = []
        self.consts: dict[str, ast.expr] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if not stmt.target.id.startswith("_"):
                    self.fields.append((stmt.target.id, stmt.value))
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                tgt = stmt.targets[0]
                if isinstance(tgt, ast.Name):
                    self.consts[tgt.id] = stmt.value

    def lookup(self, name: str) -> tuple[str, ast.FunctionDef] | None:
        """Find a method by name; returns (kind, node) where kind is
        ``"method" | "property" | "classmethod" | "staticmethod"``."""
        for stmt in self.node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                kind = "method"
                for deco in stmt.decorator_list:
                    dn = _decorator_name(deco)
                    if dn in ("property", "classmethod", "staticmethod"):
                        kind = dn
                return kind, stmt
        return None


class ModVal:
    """A module reference: interpreted (has a Module) or opaque."""

    __slots__ = ("name", "module")

    def __init__(self, name: str, module: "Module | None"):
        self.name = name
        self.module = module


class CommVal:
    """A communicator: engine port + group of world ranks."""

    __slots__ = ("port", "key", "group", "myrank")

    def __init__(self, port: Any, key: tuple, group: tuple[int, ...],
                 myrank: int):
        self.port = port
        self.key = key
        self.group = group
        self.myrank = myrank


class ReqVal:
    """A nonblocking-request handle tracked by the engine."""

    __slots__ = ("rid", "kind")

    def __init__(self, rid: int, kind: str):
        self.rid = rid
        self.kind = kind


class ExternalRef:
    """Dotted reference into an opaque module (``numpy.zeros`` ...)."""

    __slots__ = ("qualname",)

    def __init__(self, qualname: str):
        self.qualname = qualname


class _Bound:
    """Interpreted function bound to an instance (or class)."""

    __slots__ = ("func", "self_val")

    def __init__(self, func: FuncVal, self_val: Val | None):
        self.func = func
        self.self_val = self_val


class _CommOp:
    """A communicator method about to be called."""

    __slots__ = ("comm", "name")

    def __init__(self, comm: CommVal, name: str):
        self.comm = comm
        self.name = name


class _ExtOp:
    """A method on an unknown/opaque receiver."""

    __slots__ = ("base", "name")

    def __init__(self, base: Val, name: str):
        self.base = base
        self.name = name


class _ReqOp:
    __slots__ = ("req", "name")

    def __init__(self, req: ReqVal, name: str):
        self.req = req
        self.name = name


class _SeqOp:
    """A method on a concrete list/tuple/dict value."""

    __slots__ = ("base", "name")

    def __init__(self, base: Val, name: str):
        self.base = base
        self.name = name


class PathExit(Exception):
    """An interpreted ``raise`` executed: the rank leaves the program."""

    def __init__(self, site: str, detail: str = ""):
        super().__init__(detail or site)
        self.site = site
        self.detail = detail


class AnalysisLimit(Exception):
    """Interpreter budget exhausted or unsupported construct hit."""

    def __init__(self, site: str, detail: str):
        super().__init__(f"{detail} at {site}")
        self.site = site
        self.detail = detail


class _Return(Exception):
    def __init__(self, value: Val):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_scalar(c: Any) -> bool:
    return c is None or isinstance(c, (bool, int, float, complex, str, bytes))


class Module:
    """One parsed-and-lazily-evaluated interpreted module."""

    __slots__ = ("name", "path", "source", "tree", "env", "ready")

    def __init__(self, name: str, path: str, source: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        self.env: dict[str, Val] = {}
        self.ready = False


class ModuleRegistry:
    """Resolve dotted module names to parsed sources, never importing.

    ``search_roots`` are directories containing top-level packages
    (the repo's ``src/`` is always included so ``repro.*`` resolves);
    ``interpreted`` is the exact-name allowlist of modules whose code
    is symbolically executed — all other modules are opaque.
    """

    def __init__(self, search_roots: list[pathlib.Path] | None = None,
                 interpreted: frozenset[str] = INTERPRETED_MODULES):
        src_root = pathlib.Path(__file__).resolve().parents[2]
        roots = [src_root]
        for root in search_roots or []:
            root = pathlib.Path(root).resolve()
            if root not in roots:
                roots.append(root)
        self.search_roots = roots
        self.interpreted = set(interpreted)
        self._cache: dict[str, Module | None] = {}
        self._loading: set[str] = set()

    def add_entry_module(self, name: str, path: str, source: str,
                         tree: ast.Module) -> Module:
        """Register the analysis entry file as an interpreted module."""
        mod = Module(name, path, source, tree)
        self._cache[name] = mod
        self.interpreted.add(name)
        return mod

    def locate(self, dotted: str) -> pathlib.Path | None:
        rel = pathlib.Path(*dotted.split("."))
        for root in self.search_roots:
            for cand in (root / rel.with_suffix(".py"),
                         root / rel / "__init__.py"):
                if cand.is_file():
                    return cand
        return None

    def resolve(self, dotted: str) -> Module | None:
        """Return the interpreted Module for ``dotted``, else None."""
        if dotted in self._cache:
            return self._cache[dotted]
        if dotted not in self.interpreted or dotted in self._loading:
            self._cache.setdefault(dotted, None)
            return self._cache[dotted]
        path = self.locate(dotted)
        if path is None:
            self._cache[dotted] = None
            return None
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            self._cache[dotted] = None
            return None
        mod = Module(dotted, str(path), source, tree)
        self._cache[dotted] = mod
        return mod

    def source_for(self, path: str) -> str | None:
        """Source text of an interpreted module by file path (noqa)."""
        for mod in self._cache.values():
            if mod is not None and mod.path == path:
                return mod.source
        try:
            return pathlib.Path(path).read_text(encoding="utf-8")
        except OSError:
            return None


class SymInterpreter:
    """Abstract interpreter for one rank of an SPMD program.

    ``engine`` implements the communication side effects (see
    :class:`repro.check.proto._MatchEngine`); ``rank=None`` runs in
    module-evaluation mode where communication is impossible.
    """

    #: Statement budget per rank (runaway/unbounded-loop backstop).
    MAX_STEPS = 400_000
    #: Interpreted-call depth budget.
    MAX_DEPTH = 60

    def __init__(self, registry: ModuleRegistry, engine: Any = None,
                 rank: int | None = None):
        self.registry = registry
        self.engine = engine
        self.rank = rank
        self.steps = 0
        self.depth = 0
        self._ids = itertools.count(1) if engine is None else None
        # Stack of (site, rank_dep, [comm_seen]) for unknown guards.
        self.guards: list[list] = []
        self.current_module: Module | None = None
        self.current_line: int = 0

    # -- small factories -------------------------------------------------

    def new_id(self) -> int:
        if self.engine is not None:
            return self.engine.new_buffer(self.rank)
        return -next(self._ids)  # module-eval ids: ownerless

    def fresh_unknown(self, rank_dep: bool = False) -> Val:
        return Val(UNKNOWN, {self.new_id()}, rank_dep)

    def const(self, c: Any, rank_dep: bool = False) -> Val:
        return Val(c, set(), rank_dep)

    def container(self, c: Any, rank_dep: bool = False) -> Val:
        return Val(c, {self.new_id()}, rank_dep)

    def site(self, node: ast.AST | None = None) -> str:
        line = getattr(node, "lineno", None) or self.current_line
        path = self.current_module.path if self.current_module else "<?>"
        return f"{path}:{line}"

    def loc(self, node: ast.AST | None = None) -> tuple[str, int, int]:
        path = self.current_module.path if self.current_module else "<?>"
        return (
            path,
            getattr(node, "lineno", None) or self.current_line or 1,
            getattr(node, "col_offset", 0),
        )

    def _tick(self, node: ast.AST) -> None:
        self.steps += 1
        line = getattr(node, "lineno", None)
        if line:
            self.current_line = line
        if self.steps > self.MAX_STEPS:
            raise AnalysisLimit(self.site(node), "statement budget exhausted")

    # -- module environments ---------------------------------------------

    def module_env(self, mod: Module) -> dict[str, Val]:
        if mod.ready:
            return mod.env
        mod.ready = True  # set first: tolerate import cycles
        saved = (self.current_module, self.current_line)
        self.current_module = mod
        for stmt in mod.tree.body:
            try:
                self.exec_stmt(stmt, mod.env)
            except (PathExit, _Return, _Break, _Continue):
                break
            except AnalysisLimit:
                raise
            except Exception:
                continue  # best-effort: missing names degrade to UNKNOWN
        self.current_module, self.current_line = saved
        return mod.env

    def load_module(self, dotted: str) -> Val:
        mod = self.registry.resolve(dotted)
        if mod is not None:
            self.module_env(mod)
        return self.const(ModVal(dotted, mod))

    # -- program entry ----------------------------------------------------

    def run_function(self, func: FuncVal, args: list[Val],
                     kwargs: dict[str, Val] | None = None) -> Val:
        return self.call_funcval(func, args, kwargs or {}, node=func.node)

    # -- statements --------------------------------------------------------

    def exec_body(self, body: list[ast.stmt], env: dict[str, Val]) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, node: ast.stmt, env: dict[str, Val]) -> None:
        self._tick(node)
        method = getattr(self, "stmt_" + type(node).__name__, None)
        if method is None:
            return  # unsupported statement kinds are no-ops
        method(node, env)

    def stmt_Expr(self, node: ast.Expr, env) -> None:
        self.eval(node.value, env)

    def stmt_Pass(self, node, env) -> None:
        pass

    def stmt_Assert(self, node, env) -> None:
        pass  # assertions assumed to hold

    def stmt_Global(self, node, env) -> None:
        pass

    def stmt_Nonlocal(self, node, env) -> None:
        pass

    def stmt_Return(self, node: ast.Return, env) -> None:
        value = self.eval(node.value, env) if node.value else self.const(None)
        raise _Return(value)

    def stmt_Break(self, node, env) -> None:
        raise _Break()

    def stmt_Continue(self, node, env) -> None:
        raise _Continue()

    def stmt_Raise(self, node: ast.Raise, env) -> None:
        raise PathExit(self.site(node), "raise executed")

    def stmt_Delete(self, node: ast.Delete, env) -> None:
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                env.pop(tgt.id, None)

    def stmt_Import(self, node: ast.Import, env) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if alias.asname:
                env[alias.asname] = self.load_module(alias.name)
            else:
                env[top] = self.load_module(top)

    def stmt_ImportFrom(self, node: ast.ImportFrom, env) -> None:
        base = self._resolve_from(node)
        mod = self.registry.resolve(base)
        menv = self.module_env(mod) if mod is not None else None
        for alias in node.names:
            if alias.name == "*":
                if menv:
                    for k, v in menv.items():
                        if not k.startswith("_"):
                            env[k] = v
                continue
            bind = alias.asname or alias.name
            if menv is not None and alias.name in menv:
                env[bind] = menv[alias.name]
                continue
            # Sub-module import (from repro.core import rd) or opaque.
            sub = f"{base}.{alias.name}"
            if self.registry.resolve(sub) is not None:
                env[bind] = self.load_module(sub)
            elif menv is not None:
                env[bind] = Val(UNKNOWN)
            else:
                qual = f"{base}.{alias.name}"
                if qual in _OPAQUE_CONSTS:
                    env[bind] = self.const(_OPAQUE_CONSTS[qual])
                else:
                    env[bind] = self.const(ExternalRef(qual))

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        cur = self.current_module.name if self.current_module else ""
        parts = cur.split(".")
        # level 1 = current package; the module itself counts as one part.
        parts = parts[: len(parts) - node.level]
        if node.module:
            parts.append(node.module)
        return ".".join(parts)

    def stmt_FunctionDef(self, node: ast.FunctionDef, env) -> None:
        env[node.name] = self.const(
            FuncVal(node.name, node, self.current_module)
        )

    stmt_AsyncFunctionDef = stmt_FunctionDef

    def stmt_ClassDef(self, node: ast.ClassDef, env) -> None:
        env[node.name] = self.const(
            ClassVal(node.name, node, self.current_module)
        )

    def stmt_Assign(self, node: ast.Assign, env) -> None:
        value = self.eval(node.value, env)
        for target in node.targets:
            self.assign(target, value, env, node)

    def stmt_AnnAssign(self, node: ast.AnnAssign, env) -> None:
        if node.value is not None:
            self.assign(node.target, self.eval(node.value, env), env, node)

    def stmt_AugAssign(self, node: ast.AugAssign, env) -> None:
        op = type(node.op).__name__
        value = self.eval(node.value, env)
        target = node.target
        if isinstance(target, ast.Name):
            old = env.get(target.id, Val(UNKNOWN))
            if old.ids:
                # In-place update of a buffer: a mutation, ids preserved.
                self.mutation(old.ids, node, f"augmented assignment to "
                                            f"'{target.id}'")
                env[target.id] = Val(UNKNOWN, old.ids,
                                     old.rank_dep or value.rank_dep)
            else:
                env[target.id] = self.binop(op, old, value, node)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = self.eval(target.value, env)
            if base.ids:
                what = ast.unparse(target) if hasattr(ast, "unparse") else "?"
                self.mutation(base.ids, node,
                              f"augmented assignment to {what}")

    def stmt_If(self, node: ast.If, env) -> None:
        cond = self.eval(node.test, env)
        t = self.truth(cond)
        if t is True:
            self.exec_body(node.body, env)
        elif t is False:
            self.exec_body(node.orelse, env)
        else:
            branch = self._choose_branch(node.body, node.orelse)
            with self._guard(node, cond.rank_dep):
                self.exec_body(branch, env)

    def stmt_While(self, node: ast.While, env) -> None:
        iters = 0
        while True:
            cond = self.eval(node.test, env)
            t = self.truth(cond)
            if t is False:
                break
            if t is not True:
                # Unknown trip count: analyze the body once, assuming
                # every rank agrees, then stop.
                self.note_assumption(
                    f"loop at {self.site(node)} has an unknown trip "
                    f"count; body analyzed once")
                with self._guard(node, cond.rank_dep):
                    try:
                        self.exec_body(node.body, env)
                    except _Break:
                        pass
                    except _Continue:
                        pass
                break
            try:
                self.exec_body(node.body, env)
            except _Break:
                break
            except _Continue:
                pass
            iters += 1
        else:  # pragma: no cover
            pass
        if t is False and node.orelse:
            self.exec_body(node.orelse, env)

    def stmt_For(self, node: ast.For, env) -> None:
        it = self.eval(node.iter, env)
        items = self.iterate(it)
        if items is None:
            # Unknown iterable: bind the target to an unknown element
            # (aliasing the iterable) and analyze the body once.
            self.note_assumption(
                f"loop at {self.site(node)} iterates an unknown "
                f"sequence; body analyzed once")
            elem = Val(UNKNOWN, it.ids, it.rank_dep)
            self.assign(node.target, elem, env, node)
            with self._guard(node, it.rank_dep):
                try:
                    self.exec_body(node.body, env)
                except (_Break, _Continue):
                    pass
            return
        broke = False
        for item in items:
            self.assign(node.target, item, env, node)
            try:
                self.exec_body(node.body, env)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke and node.orelse:
            self.exec_body(node.orelse, env)

    def stmt_With(self, node: ast.With, env) -> None:
        for item in node.items:
            ctx = self.eval(item.context_expr, env)
            if item.optional_vars is not None:
                self.assign(item.optional_vars, ctx, env, node)
        self.exec_body(node.body, env)

    def stmt_Try(self, node: ast.Try, env) -> None:
        # Assume the happy path: run the body; handlers are dead code.
        # PathExit/control-flow exceptions propagate past handlers.
        try:
            self.exec_body(node.body, env)
        finally:
            self.exec_body(node.finalbody, env)
        if node.orelse:
            self.exec_body(node.orelse, env)

    # -- branch policy ----------------------------------------------------

    @staticmethod
    def _raises(body: list[ast.stmt]) -> bool:
        return any(isinstance(s, ast.Raise) for s in body)

    def _choose_branch(self, body, orelse):
        """Unknown condition: prefer the branch that does not raise
        (error-exit avoidance), else assume True uniformly."""
        if self._raises(body) and not self._raises(orelse):
            return orelse
        return body

    class _GuardCtx:
        def __init__(self, interp, node, rank_dep):
            self.interp = interp
            self.entry = [interp.site(node), rank_dep, False]

        def __enter__(self):
            self.interp.guards.append(self.entry)
            return self

        def __exit__(self, *exc):
            self.interp.guards.pop()
            return False

    def _guard(self, node, rank_dep: bool):
        return self._GuardCtx(self, node, rank_dep)

    def comm_event_hook(self, node: ast.AST) -> None:
        """Called for every comm op: flag rank-dependent unknown guards."""
        for entry in self.guards:
            site, rank_dep, _ = entry
            entry[2] = True
            if rank_dep and self.engine is not None:
                self.engine.warn_unanalyzable(
                    self.loc(node),
                    "communication inside a rank-dependent branch or "
                    f"loop the analyzer could not fold (guard at {site}); "
                    "analysis assumed all ranks take the same path",
                )

    def note_assumption(self, text: str) -> None:
        if self.engine is not None:
            self.engine.note_assumption(self.rank, text)

    def mutation(self, ids: set[int], node: ast.AST, desc: str) -> None:
        if self.engine is not None and ids:
            self.engine.mutation(self.rank, ids, self.loc(node), desc)

    # -- assignment --------------------------------------------------------

    def assign(self, target: ast.expr, value: Val, env, node) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value, env, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            self.unpack(target.elts, value, env, node)
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value, env)
            if isinstance(base.c, Inst):
                if self.engine is not None and base.ids:
                    owner_foreign = self.engine.any_foreign(self.rank,
                                                            base.ids)
                    if owner_foreign:
                        self.mutation(base.ids, node,
                                      f"attribute store .{target.attr}")
                base.c.attrs[target.attr] = value
            # Attribute stores on opaque objects are not tracked.
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value, env)
            idx = self.eval(target.slice, env)
            if isinstance(base.c, list) and _is_scalar(idx.c) \
                    and isinstance(idx.c, int) \
                    and -len(base.c) <= idx.c < len(base.c):
                base.c[idx.c] = value
            elif isinstance(base.c, dict) and _is_scalar(idx.c) \
                    and idx.c is not UNKNOWN:
                try:
                    base.c[idx.c] = value
                except TypeError:
                    pass
            if base.ids:
                what = target.value
                name = what.id if isinstance(what, ast.Name) else "buffer"
                self.mutation(base.ids, node, f"subscript store into "
                                              f"'{name}'")

    def unpack(self, targets: list[ast.expr], value: Val, env, node) -> None:
        if isinstance(value.c, (tuple, list)) and len(value.c) == len(targets) \
                and not any(isinstance(t, ast.Starred) for t in targets):
            for tgt, item in zip(targets, value.c):
                self.assign(tgt, item, env, node)
            return
        # Unknown (or mismatched) source: every target aliases it.
        for tgt in targets:
            self.assign(tgt, Val(UNKNOWN, value.ids, value.rank_dep),
                        env, node)

    # -- truthiness / folding ---------------------------------------------

    def truth(self, val: Val):
        c = val.c
        if c is UNKNOWN:
            return UNKNOWN
        if _is_scalar(c):
            return bool(c)
        if isinstance(c, (tuple, list, dict)):
            return bool(c)
        if isinstance(c, (Inst, FuncVal, ClassVal, ModVal, CommVal, ReqVal,
                          ExternalRef, _Bound, _CommOp, _ExtOp, range)):
            return True
        return UNKNOWN

    def join(self, items: list[Val]) -> Val:
        ids: set[int] = set()
        rank_dep = False
        for item in items:
            ids |= item.ids
            rank_dep = rank_dep or item.rank_dep
        return Val(UNKNOWN, ids, rank_dep)

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, env) -> Val:
        self._tick(node)
        method = getattr(self, "eval_" + type(node).__name__, None)
        if method is None:
            return Val(UNKNOWN)
        return method(node, env)

    def eval_Constant(self, node: ast.Constant, env) -> Val:
        return self.const(node.value)

    def eval_Name(self, node: ast.Name, env) -> Val:
        if node.id in env:
            return env[node.id]
        menv = self.current_module.env if self.current_module else {}
        if node.id in menv:
            return menv[node.id]
        if node.id in _BUILTIN_NAMES:
            return self.const(_BuiltinRef(node.id))
        return Val(UNKNOWN)

    def eval_NamedExpr(self, node: ast.NamedExpr, env) -> Val:
        value = self.eval(node.value, env)
        self.assign(node.target, value, env, node)
        return value

    def eval_Tuple(self, node: ast.Tuple, env) -> Val:
        items = self._elts(node.elts, env)
        if items is None:
            return Val(UNKNOWN)
        return self.container(tuple(items))

    def eval_List(self, node: ast.List, env) -> Val:
        items = self._elts(node.elts, env)
        if items is None:
            return Val(UNKNOWN)
        return self.container(list(items))

    def eval_Set(self, node: ast.Set, env) -> Val:
        for elt in node.elts:
            self.eval(elt, env)
        return self.fresh_unknown()

    def _elts(self, elts, env) -> list[Val] | None:
        out = []
        for elt in elts:
            if isinstance(elt, ast.Starred):
                star = self.eval(elt.value, env)
                items = self.iterate(star)
                if items is None:
                    return None
                out.extend(items)
            else:
                out.append(self.eval(elt, env))
        return out

    def eval_Dict(self, node: ast.Dict, env) -> Val:
        out: dict[Any, Val] = {}
        ok = True
        for key, value in zip(node.keys, node.values):
            v = self.eval(value, env)
            if key is None:
                ok = False
                continue
            k = self.eval(key, env)
            if _is_scalar(k.c) and k.c is not UNKNOWN:
                out[k.c] = v
            else:
                ok = False
        if not ok and not out:
            return self.fresh_unknown()
        return self.container(out)

    def eval_JoinedStr(self, node: ast.JoinedStr, env) -> Val:
        parts = []
        for v in node.values:
            if isinstance(v, ast.Constant):
                parts.append(str(v.value))
            elif isinstance(v, ast.FormattedValue):
                inner = self.eval(v.value, env)
                if _is_scalar(inner.c) and inner.c is not UNKNOWN:
                    parts.append(str(inner.c))
                else:
                    parts.append(None)
            else:
                parts.append(None)
        if any(p is None for p in parts):
            return Val(UNKNOWN)
        return self.const("".join(parts))

    def eval_Lambda(self, node: ast.Lambda, env) -> Val:
        return self.const(FuncVal("<lambda>", node, self.current_module))

    def eval_Slice(self, node: ast.Slice, env) -> Val:
        lo = self.eval(node.lower, env).c if node.lower else None
        hi = self.eval(node.upper, env).c if node.upper else None
        st = self.eval(node.step, env).c if node.step else None
        if UNKNOWN in (lo, hi, st):
            return Val(UNKNOWN)
        try:
            return self.const(slice(lo, hi, st))
        except TypeError:
            return Val(UNKNOWN)

    def eval_IfExp(self, node: ast.IfExp, env) -> Val:
        cond = self.eval(node.test, env)
        t = self.truth(cond)
        if t is True:
            return self.eval(node.body, env)
        if t is False:
            return self.eval(node.orelse, env)
        with self._guard(node, cond.rank_dep):
            return self.eval(node.body, env)

    def eval_BoolOp(self, node: ast.BoolOp, env) -> Val:
        is_and = isinstance(node.op, ast.And)
        result = None
        rank_dep = False
        for expr in node.values:
            val = self.eval(expr, env)
            rank_dep = rank_dep or val.rank_dep
            t = self.truth(val)
            if t is UNKNOWN:
                result = UNKNOWN
                continue
            if is_and and t is False:
                return val
            if not is_and and t is True:
                return val
            if result is not UNKNOWN:
                result = val
        if result is UNKNOWN or result is None:
            return Val(UNKNOWN, set(), rank_dep)
        return result

    def eval_UnaryOp(self, node: ast.UnaryOp, env) -> Val:
        val = self.eval(node.operand, env)
        if _is_scalar(val.c) and val.c is not UNKNOWN:
            try:
                op = type(node.op).__name__
                if op == "Not":
                    return self.const(not val.c, val.rank_dep)
                if op == "USub":
                    return self.const(-val.c, val.rank_dep)
                if op == "UAdd":
                    return self.const(+val.c, val.rank_dep)
                if op == "Invert":
                    return self.const(~val.c, val.rank_dep)
            except TypeError:
                pass
        return Val(UNKNOWN, set(val.ids), val.rank_dep)

    _BINOPS: dict[str, Callable[[Any, Any], Any]] = {
        "Add": lambda a, b: a + b,
        "Sub": lambda a, b: a - b,
        "Mult": lambda a, b: a * b,
        "Div": lambda a, b: a / b,
        "FloorDiv": lambda a, b: a // b,
        "Mod": lambda a, b: a % b,
        "Pow": lambda a, b: a ** b,
        "LShift": lambda a, b: a << b,
        "RShift": lambda a, b: a >> b,
        "BitOr": lambda a, b: a | b,
        "BitAnd": lambda a, b: a & b,
        "BitXor": lambda a, b: a ^ b,
    }

    def binop(self, op: str, left: Val, right: Val, node) -> Val:
        rank_dep = left.rank_dep or right.rank_dep
        lc, rc = left.c, right.c
        if _is_scalar(lc) and lc is not UNKNOWN and _is_scalar(rc) \
                and rc is not UNKNOWN:
            fn = self._BINOPS.get(op)
            if fn is not None:
                try:
                    return self.const(fn(lc, rc), rank_dep)
                except Exception:
                    return Val(UNKNOWN, set(), rank_dep)
        # Concrete sequence concatenation / repetition.
        if op == "Add" and isinstance(lc, (tuple, list)) \
                and isinstance(rc, type(lc)):
            return self.container(lc + rc, rank_dep)
        if op == "Mult" and isinstance(lc, (tuple, list)) \
                and isinstance(rc, int) and rc is not UNKNOWN:
            return self.container(lc * rc, rank_dep)
        if left.ids or right.ids or lc is UNKNOWN or rc is UNKNOWN:
            # Array arithmetic allocates a fresh result buffer.
            return self.fresh_unknown(rank_dep)
        return Val(UNKNOWN, set(), rank_dep)

    def eval_BinOp(self, node: ast.BinOp, env) -> Val:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        return self.binop(type(node.op).__name__, left, right, node)

    _CMPOPS: dict[str, Callable[[Any, Any], Any]] = {
        "Eq": lambda a, b: a == b,
        "NotEq": lambda a, b: a != b,
        "Lt": lambda a, b: a < b,
        "LtE": lambda a, b: a <= b,
        "Gt": lambda a, b: a > b,
        "GtE": lambda a, b: a >= b,
    }

    def _concrete(self, val: Val):
        """Python value for comparison folding, or UNKNOWN."""
        c = val.c
        if _is_scalar(c) and c is not UNKNOWN:
            return c
        if isinstance(c, (tuple, list)):
            out = []
            for item in c:
                ic = self._concrete(item)
                if ic is UNKNOWN:
                    return UNKNOWN
                out.append(ic)
            return tuple(out) if isinstance(c, tuple) else out
        return UNKNOWN

    def eval_Compare(self, node: ast.Compare, env) -> Val:
        left = self.eval(node.left, env)
        rank_dep = left.rank_dep
        result = True
        for op, comp in zip(node.ops, node.comparators):
            right = self.eval(comp, env)
            rank_dep = rank_dep or right.rank_dep
            verdict = self._compare_one(type(op).__name__, left, right)
            if verdict is UNKNOWN:
                result = UNKNOWN
            elif not verdict:
                return self.const(False, rank_dep)
            left = right
        if result is UNKNOWN:
            return Val(UNKNOWN, set(), rank_dep)
        return self.const(True, rank_dep)

    def _compare_one(self, op: str, left: Val, right: Val):
        lc = self._concrete(left)
        rc = self._concrete(right)
        if op in ("Is", "IsNot"):
            if left.c is None and right.c is None:
                return op == "Is"
            one_none = (left.c is None) != (right.c is None)
            if one_none and UNKNOWN not in (left.c, right.c):
                return op == "IsNot"
            if lc is not UNKNOWN and rc is not UNKNOWN:
                return (lc is rc) if op == "Is" else (lc is not rc)
            return UNKNOWN
        if op in ("In", "NotIn"):
            if rc is UNKNOWN or lc is UNKNOWN:
                return UNKNOWN
            try:
                hit = lc in rc
            except TypeError:
                return UNKNOWN
            return hit if op == "In" else not hit
        if lc is UNKNOWN or rc is UNKNOWN:
            return UNKNOWN
        fn = self._CMPOPS.get(op)
        if fn is None:
            return UNKNOWN
        try:
            return bool(fn(lc, rc))
        except TypeError:
            return UNKNOWN

    # -- attribute access --------------------------------------------------

    def eval_Attribute(self, node: ast.Attribute, env) -> Val:
        base = self.eval(node.value, env)
        return self.attr(base, node.attr, node)

    def attr(self, base: Val, name: str, node) -> Val:
        c = base.c
        if isinstance(c, CommVal):
            return self.comm_attr(c, name)
        if isinstance(c, ModVal):
            if c.module is not None:
                menv = self.module_env(c.module)
                if name in menv:
                    return menv[name]
                return Val(UNKNOWN)
            qual = f"{c.name}.{name}"
            if qual in _OPAQUE_CONSTS:
                return self.const(_OPAQUE_CONSTS[qual])
            return self.const(ExternalRef(qual))
        if isinstance(c, ExternalRef):
            qual = f"{c.qualname}.{name}"
            if qual in _OPAQUE_CONSTS:
                return self.const(_OPAQUE_CONSTS[qual])
            return self.const(ExternalRef(qual))
        if isinstance(c, Inst):
            if name in c.attrs:
                return c.attrs[name]
            if c.cls is not None:
                found = c.cls.lookup(name)
                if found is not None:
                    kind, fnode = found
                    fv = FuncVal(name, fnode, c.cls.module)
                    if kind == "property":
                        return self.call_funcval(fv, [base], {}, node)
                    if kind == "staticmethod":
                        return self.const(fv)
                    if kind == "classmethod":
                        return self.const(_Bound(fv, self.const(c.cls)))
                    return self.const(_Bound(fv, base))
                if name in c.cls.consts:
                    saved = self.current_module
                    self.current_module = c.cls.module
                    try:
                        return self.eval(c.cls.consts[name],
                                         c.cls.module.env)
                    finally:
                        self.current_module = saved
            return Val(UNKNOWN, set(base.ids), base.rank_dep)
        if isinstance(c, ClassVal):
            found = c.lookup(name)
            if found is not None:
                kind, fnode = found
                fv = FuncVal(name, fnode, c.module)
                if kind == "classmethod":
                    return self.const(_Bound(fv, base))
                return self.const(fv)
            if name in c.consts:
                return self.eval(c.consts[name], c.module.env)
            return Val(UNKNOWN)
        if isinstance(c, ReqVal):
            return self.const(_ReqOp(c, name))
        if isinstance(c, FuncVal):
            return Val(UNKNOWN)
        if isinstance(c, (tuple, list, dict)):
            return self.const(_SeqOp(base, name))
        if _is_scalar(c) and c is not UNKNOWN:
            return self.const(_SeqOp(base, name))  # str/int methods
        # Unknown base: attribute is a view unless it is a known scalar.
        if name in _SCALAR_ATTRS:
            return Val(UNKNOWN, set(), base.rank_dep)
        return self.const(_ExtOp(base, name)) if True else None

    def comm_attr(self, comm: CommVal, name: str) -> Val:
        if name == "rank":
            return self.const(comm.myrank, rank_dep=True)
        if name == "size":
            return self.const(len(comm.group))
        if name == "ANY_SOURCE" or name == "ANY_TAG":
            return self.const(-1)
        from ..comm.optable import OP_TABLE

        if name in OP_TABLE:
            return self.const(_CommOp(comm, name))
        return Val(UNKNOWN)

    # -- subscripts --------------------------------------------------------

    def eval_Subscript(self, node: ast.Subscript, env) -> Val:
        base = self.eval(node.value, env)
        idx = self.eval(node.slice, env)
        return self.subscript(base, idx, node)

    def subscript(self, base: Val, idx: Val, node) -> Val:
        c = base.c
        ic = idx.c
        rank_dep = base.rank_dep or idx.rank_dep
        if isinstance(c, (tuple, list)):
            if isinstance(ic, int) and not isinstance(ic, bool):
                if -len(c) <= ic < len(c):
                    return c[ic]
                return Val(UNKNOWN, set(base.ids), rank_dep)
            if isinstance(ic, slice):
                try:
                    sub = c[ic]
                    return self.container(sub, rank_dep)
                except (TypeError, ValueError):
                    pass
            return self.join(list(c)) if c else Val(UNKNOWN, set(), rank_dep)
        if isinstance(c, dict):
            if _is_scalar(ic) and ic is not UNKNOWN:
                try:
                    if ic in c:
                        return c[ic]
                except TypeError:
                    pass
                return Val(UNKNOWN, set(base.ids), rank_dep)
            return self.join(list(c.values())) if c else \
                Val(UNKNOWN, set(), rank_dep)
        if isinstance(c, str) and _is_scalar(ic) and ic is not UNKNOWN:
            try:
                return self.const(c[ic], rank_dep)
            except Exception:
                return Val(UNKNOWN, set(), rank_dep)
        if isinstance(c, range) and isinstance(ic, int):
            try:
                return self.const(c[ic], rank_dep)
            except IndexError:
                return Val(UNKNOWN, set(), rank_dep)
        # Unknown base (ndarray...): the result is a view.
        return Val(UNKNOWN, set(base.ids), rank_dep)

    def eval_Starred(self, node: ast.Starred, env) -> Val:
        return self.eval(node.value, env)

    # -- comprehensions ----------------------------------------------------

    def _comp_items(self, node, env) -> list[Val] | None:
        """Evaluate a single-generator comprehension concretely."""
        if len(node.generators) != 1:
            return None
        gen = node.generators[0]
        if gen.is_async:
            return None
        source = self.eval(gen.iter, env)
        items = self.iterate(source)
        if items is None:
            return None
        out = []
        inner = dict(env)
        for item in items:
            self.assign(gen.target, item, inner, node)
            keep = True
            for cond in gen.ifs:
                t = self.truth(self.eval(cond, inner))
                if t is False:
                    keep = False
                    break
            if keep:
                out.append(inner)
                out[-1] = dict(inner)
        return [dict(frame) for frame in out] if out or items == [] else []

    def _run_comprehension(self, node, env, build):
        if len(node.generators) != 1 or node.generators[0].is_async:
            return self.fresh_unknown()
        gen = node.generators[0]
        source = self.eval(gen.iter, env)
        items = self.iterate(source)
        if items is None:
            return Val(UNKNOWN, set(source.ids), source.rank_dep)
        out = []
        inner = dict(env)
        for item in items:
            self.assign(gen.target, item, inner, node)
            keep = True
            for cond in gen.ifs:
                t = self.truth(self.eval(cond, inner))
                if t is False:
                    keep = False
                    break
            if keep:
                out.append(build(inner))
        return out

    def eval_ListComp(self, node: ast.ListComp, env) -> Val:
        out = self._run_comprehension(
            node, env, lambda inner: self.eval(node.elt, inner))
        if isinstance(out, Val):
            return out
        return self.container(out)

    def eval_GeneratorExp(self, node: ast.GeneratorExp, env) -> Val:
        out = self._run_comprehension(
            node, env, lambda inner: self.eval(node.elt, inner))
        if isinstance(out, Val):
            return out
        return self.container(tuple(out))

    def eval_SetComp(self, node: ast.SetComp, env) -> Val:
        out = self._run_comprehension(
            node, env, lambda inner: self.eval(node.elt, inner))
        if isinstance(out, Val):
            return out
        return self.fresh_unknown()

    def eval_DictComp(self, node: ast.DictComp, env) -> Val:
        def build(inner):
            return (self.eval(node.key, inner), self.eval(node.value, inner))

        out = self._run_comprehension(node, env, build)
        if isinstance(out, Val):
            return out
        result: dict[Any, Val] = {}
        for k, v in out:
            if _is_scalar(k.c) and k.c is not UNKNOWN:
                result[k.c] = v
        return self.container(result)

    # -- iteration ---------------------------------------------------------

    def iterate(self, val: Val) -> list[Val] | None:
        """Concrete item list of an iterable, or None when unknown."""
        c = val.c
        if isinstance(c, (tuple, list)):
            return list(c)
        if isinstance(c, dict):
            return [self.const(k) for k in c]
        if isinstance(c, range):
            if len(c) > 100_000:
                return None
            return [self.const(i, val.rank_dep) for i in c]
        if isinstance(c, str):
            return [self.const(ch) for ch in c]
        return None

    # -- calls -------------------------------------------------------------

    def eval_Call(self, node: ast.Call, env) -> Val:
        func = self.eval(node.func, env)
        args: list[Val] = []
        args_unknown = False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                star = self.eval(arg.value, env)
                items = self.iterate(star)
                if items is None:
                    args_unknown = True
                else:
                    args.extend(items)
            else:
                args.append(self.eval(arg, env))
        kwargs: dict[str, Val] = {}
        for kw in node.keywords:
            if kw.arg is None:
                kwval = self.eval(kw.value, env)
                if isinstance(kwval.c, dict):
                    for k, v in kwval.c.items():
                        if isinstance(k, str):
                            kwargs[k] = v
                else:
                    args_unknown = True
            else:
                kwargs[kw.arg] = self.eval(kw.value, env)
        return self.call(func, args, kwargs, node, args_unknown)

    def call(self, func: Val, args: list[Val], kwargs: dict[str, Val],
             node: ast.AST, args_unknown: bool = False) -> Val:
        c = func.c
        if isinstance(c, _CommOp):
            if self.engine is None:
                return Val(UNKNOWN)
            return self.engine.comm_call(self, c.comm, c.name, args, kwargs,
                                         node)
        if isinstance(c, _ReqOp):
            if self.engine is None:
                return Val(UNKNOWN)
            if c.name == "wait":
                return self.engine.wait(self, c.req, node)
            return Val(UNKNOWN)  # .test(): not modelled
        if isinstance(c, FuncVal):
            return self.call_funcval(c, args, kwargs, node,
                                     args_unknown=args_unknown)
        if isinstance(c, _Bound):
            return self.call_funcval(c.func, [c.self_val] + args, kwargs,
                                     node, args_unknown=args_unknown)
        if isinstance(c, ClassVal):
            return self.instantiate(c, args, kwargs, node)
        if isinstance(c, _SeqOp):
            return self.seq_call(c, args, kwargs, node)
        if isinstance(c, _BuiltinRef):
            return self.builtin_call(c.name, args, kwargs, node)
        if isinstance(c, ExternalRef):
            return self.external_call(c.qualname, args, kwargs, node)
        if isinstance(c, _ExtOp):
            return self.extmethod_call(c, args, kwargs, node)
        # Calling an unknown value: opaque.
        return self.external_call("<unknown>", args, kwargs, node)

    def call_funcval(self, func: FuncVal, args: list[Val],
                     kwargs: dict[str, Val], node: ast.AST,
                     args_unknown: bool = False) -> Val:
        if self.depth >= self.MAX_DEPTH:
            return self.fresh_unknown()
        frame: dict[str, Val] = {}
        fnode = func.node
        fargs = fnode.args
        names = [a.arg for a in fargs.posonlyargs] + \
                [a.arg for a in fargs.args]
        saved = (self.current_module, self.current_line)
        self.current_module = func.module
        try:
            if args_unknown:
                for name in names + [a.arg for a in fargs.kwonlyargs]:
                    frame[name] = Val(UNKNOWN)
            else:
                # Positional binding + *args overflow.
                npos = min(len(args), len(names))
                for name, val in zip(names, args):
                    frame[name] = val
                if fargs.vararg is not None:
                    frame[fargs.vararg.arg] = self.container(
                        tuple(args[npos:]))
                # Defaults (evaluated in the callee's module env).
                defaults = fargs.defaults
                for name, dflt in zip(names[len(names) - len(defaults):],
                                      defaults):
                    if name not in frame:
                        frame[name] = self.eval(dflt, func.module.env
                                                if func.module else {})
                for a, dflt in zip(fargs.kwonlyargs, fargs.kw_defaults):
                    if dflt is not None and a.arg not in frame:
                        frame[a.arg] = self.eval(dflt, func.module.env
                                                 if func.module else {})
                extra: dict[str, Val] = {}
                for key, val in kwargs.items():
                    if key in names or key in {a.arg
                                               for a in fargs.kwonlyargs}:
                        frame[key] = val
                    else:
                        extra[key] = val
                if fargs.kwarg is not None:
                    frame[fargs.kwarg.arg] = self.container(extra)
                for name in names + [a.arg for a in fargs.kwonlyargs]:
                    frame.setdefault(name, Val(UNKNOWN))
            self.depth += 1
            try:
                if isinstance(fnode, ast.Lambda):
                    return self.eval(fnode.body, frame)
                self.exec_body(fnode.body, frame)
                return self.const(None)
            except _Return as ret:
                return ret.value
            finally:
                self.depth -= 1
        finally:
            self.current_module, self.current_line = saved

    def instantiate(self, cls: ClassVal, args: list[Val],
                    kwargs: dict[str, Val], node: ast.AST) -> Val:
        inst = Inst(cls)
        val = Val(inst, {self.new_id()})
        if cls.is_dataclass:
            field_names = [f[0] for f in cls.fields]
            for name, arg in zip(field_names, args):
                inst.attrs[name] = arg
            for key, arg in kwargs.items():
                inst.attrs[key] = arg
            for name, default in cls.fields:
                if name not in inst.attrs:
                    if default is not None:
                        saved = self.current_module
                        self.current_module = cls.module
                        try:
                            inst.attrs[name] = self.eval(default,
                                                         cls.module.env)
                        finally:
                            self.current_module = saved
                    else:
                        inst.attrs[name] = Val(UNKNOWN)
            return val
        found = cls.lookup("__init__")
        if found is not None:
            _, fnode = found
            fv = FuncVal("__init__", fnode, cls.module)
            self.call_funcval(fv, [val] + args, kwargs, node)
        return val

    # -- opaque / builtin calls -------------------------------------------

    def external_call(self, qualname: str, args: list[Val],
                      kwargs: dict[str, Val], node: ast.AST) -> Val:
        # Request.waitall(reqs) and friends: complete every handle.
        if qualname.rsplit(".", 1)[-1] == "waitall" and self.engine is not None:
            for arg in args:
                for req in self._collect_reqs(arg):
                    self.engine.wait(self, req, node)
            return self.const(None)
        rank_dep = any(a.rank_dep for a in args) or \
            any(v.rank_dep for v in kwargs.values())
        return self.fresh_unknown(rank_dep)

    def _collect_reqs(self, val: Val) -> list[ReqVal]:
        out = []
        if isinstance(val.c, ReqVal):
            out.append(val.c)
        elif isinstance(val.c, (tuple, list)):
            for item in val.c:
                out.extend(self._collect_reqs(item))
        return out

    def extmethod_call(self, op: _ExtOp, args: list[Val],
                       kwargs: dict[str, Val], node: ast.AST) -> Val:
        base = op.base
        rank_dep = base.rank_dep or any(a.rank_dep for a in args)
        if op.name == "copy":
            return self.fresh_unknown(rank_dep)
        if op.name in _ALIAS_METHODS:
            return Val(UNKNOWN, base.ids, rank_dep)
        if op.name in _MUTATING_METHODS:
            self.mutation(base.ids, node, f"in-place method .{op.name}()")
            return self.const(None)
        return self.fresh_unknown(rank_dep)

    def seq_call(self, op: _SeqOp, args: list[Val], kwargs: dict[str, Val],
                 node: ast.AST) -> Val:
        base, name = op.base, op.name
        c = base.c
        if isinstance(c, list):
            if name == "append":
                if args:
                    c.append(args[0])
                return self.const(None)
            if name == "extend":
                items = self.iterate(args[0]) if args else None
                if items is not None:
                    c.extend(items)
                else:
                    self.mutation(base.ids, node, "list.extend(<unknown>)")
                return self.const(None)
            if name == "pop":
                if c and not args:
                    return c.pop()
                return self.join(list(c))
        if isinstance(c, (tuple, list)):
            if name == "index" and args:
                target = self._concrete(args[0])
                if target is not UNKNOWN:
                    for i, item in enumerate(c):
                        ic = self._concrete(item)
                        if ic is not UNKNOWN and ic == target:
                            return self.const(i)
                return Val(UNKNOWN)
            if name == "count":
                return Val(UNKNOWN)
            if name == "copy":
                return self.container(list(c))
        if isinstance(c, dict):
            if name == "get" and args:
                k = self._concrete(args[0])
                if k is not UNKNOWN:
                    try:
                        if k in c:
                            return c[k]
                    except TypeError:
                        return Val(UNKNOWN)
                    return args[1] if len(args) > 1 else self.const(None)
                return self.join(list(c.values()))
            if name == "keys":
                return self.container([self.const(k) for k in c])
            if name == "values":
                return self.container(list(c.values()))
            if name == "items":
                return self.container(
                    [self.container((self.const(k), v))
                     for k, v in c.items()])
            if name == "copy":
                return self.container(dict(c))
        if _is_scalar(c) and c is not UNKNOWN:
            cargs = [self._concrete(a) for a in args]
            ckw = {k: self._concrete(v) for k, v in kwargs.items()}
            if UNKNOWN not in cargs and UNKNOWN not in ckw.values():
                try:
                    return self.const(getattr(c, name)(*cargs, **ckw))
                except Exception:
                    return Val(UNKNOWN)
        return Val(UNKNOWN)

    def builtin_call(self, name: str, args: list[Val],
                     kwargs: dict[str, Val], node: ast.AST) -> Val:
        rank_dep = any(a.rank_dep for a in args)
        cargs = [self._concrete(a) for a in args]
        folded = UNKNOWN not in cargs and not kwargs
        if name == "range" and folded:
            try:
                return Val(range(*cargs), set(), rank_dep)
            except (TypeError, ValueError):
                return Val(UNKNOWN, set(), rank_dep)
        if name in ("len",) and args:
            c = args[0].c
            if isinstance(c, (tuple, list, dict, str, range)):
                return self.const(len(c), rank_dep)
            return Val(UNKNOWN, set(), rank_dep)
        if name in ("int", "float", "bool", "abs", "str", "round",
                    "min", "max", "sum", "sorted", "repr", "ord", "chr",
                    "divmod", "hash", "any", "all"):
            if folded:
                try:
                    out = getattr(__import__("builtins"), name)(*cargs)
                    if _is_scalar(out):
                        return self.const(out, rank_dep)
                    if isinstance(out, (tuple, list)):
                        return self.container(
                            type(out)(self.const(x) for x in out), rank_dep)
                except Exception:
                    pass
            return Val(UNKNOWN, set(), rank_dep)
        if name in ("list", "tuple"):
            if not args:
                return self.container([] if name == "list" else ())
            items = self.iterate(args[0])
            if items is None:
                return Val(UNKNOWN, set(args[0].ids), rank_dep)
            return self.container(
                list(items) if name == "list" else tuple(items), rank_dep)
        if name == "dict" and not args:
            return self.container(dict(kwargs))
        if name == "enumerate" and args:
            items = self.iterate(args[0])
            if items is None:
                return Val(UNKNOWN, set(args[0].ids), rank_dep)
            start = 0
            if len(args) > 1 and isinstance(cargs[1], int):
                start = cargs[1]
            return self.container(
                [self.container((self.const(i + start), item))
                 for i, item in enumerate(items)], rank_dep)
        if name == "zip":
            lists = [self.iterate(a) for a in args]
            if any(item is None for item in lists):
                return Val(UNKNOWN, set(), rank_dep)
            return self.container(
                [self.container(tuple(row)) for row in zip(*lists)],
                rank_dep)
        if name == "reversed" and args:
            items = self.iterate(args[0])
            if items is None:
                return Val(UNKNOWN, set(args[0].ids), rank_dep)
            return self.container(list(reversed(items)), rank_dep)
        if name == "isinstance":
            return Val(UNKNOWN)
        if name == "print":
            return self.const(None)
        if name == "getattr" and len(args) >= 2 and isinstance(cargs[1], str):
            return self.attr(args[0], cargs[1], node)
        return self.fresh_unknown(rank_dep)


class _BuiltinRef:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


_BUILTIN_NAMES = frozenset(
    {
        "range", "len", "int", "float", "bool", "str", "abs", "round",
        "min", "max", "sum", "sorted", "reversed", "enumerate", "zip",
        "list", "tuple", "dict", "set", "isinstance", "print", "getattr",
        "repr", "ord", "chr", "divmod", "hash", "any", "all", "object",
        "type", "frozenset", "bytearray", "slice", "map", "filter",
    }
)
