"""Runtime SPMD verification: collective lockstep cross-checking.

:class:`SpmdVerifier` is the dynamic half of :mod:`repro.check`.  One
instance is shared by every rank of a simulation when it runs with
``run_spmd(..., verify=True)`` (or ``REPRO_VERIFY=1``); the
communicator reports each outermost collective call into it.

For every communicator (identified by its ``comm_key``) the verifier
keeps a per-rank call counter.  The first rank to reach position ``i``
of a communicator's schedule records its signature ``(op, root, size)``
there; every other rank is compared against it on arrival.  A mismatch
means the SPMD program diverged — e.g. one rank entered ``bcast`` while
the others entered ``allreduce`` — and raises
:class:`~repro.exceptions.SpmdDivergenceError` *at the first divergent
call*, naming both ranks, both operations, and both ranks' recent
collective history, instead of letting the mismatched point-to-point
schedules deadlock.

Completed schedule positions (seen by all ``size`` ranks of the
communicator) are discarded, so memory stays bounded by how far ranks
drift apart, not by program length.  Each rank additionally maintains a
rolling BLAKE2b digest of its full sequence; matching digests in the
reports make "these ranks agreed up to here" auditable at a glance.

The exact wait-for-graph deadlock analysis — the other dynamic check —
lives in :mod:`repro.comm.runtime` itself because it needs the
runtime's inbox state; it is always on.  See docs/CHECKING.md.
"""

from __future__ import annotations

import collections
import hashlib
import threading
from typing import Any

from ..exceptions import SpmdDivergenceError

__all__ = ["CollectiveRecord", "SpmdVerifier"]

#: How many recent collectives per rank are kept for divergence reports.
HISTORY_LIMIT = 12


class CollectiveRecord:
    """One collective call as recorded by the verifier."""

    __slots__ = ("comm_key", "index", "op", "root", "size")

    def __init__(self, comm_key: tuple, index: int, op: str,
                 root: int | None, size: int):
        self.comm_key = comm_key
        self.index = index
        self.op = op
        self.root = root
        self.size = size

    def signature(self) -> tuple:
        return (self.op, self.root, self.size)

    def __repr__(self) -> str:
        root = "" if self.root is None else f", root={self.root}"
        return f"#{self.index} {self.op}(size={self.size}{root})"


class SpmdVerifier:
    """Cross-rank collective-sequence checker for one simulation.

    Thread-safe: ranks call :meth:`record_collective` concurrently.
    """

    def __init__(self, nranks: int, history_limit: int = HISTORY_LIMIT):
        self.nranks = nranks
        self._lock = threading.Lock()
        # (comm_key, index) -> [signature, first_rank, ranks_seen]
        self._pending: dict[tuple, list] = {}
        # (rank, comm_key) -> next schedule index for that rank
        self._cursor: collections.defaultdict[tuple, int] = (
            collections.defaultdict(int)
        )
        self._history: dict[int, collections.deque] = {
            r: collections.deque(maxlen=history_limit) for r in range(nranks)
        }
        self._digests: dict[int, Any] = {
            r: hashlib.blake2b(digest_size=6) for r in range(nranks)
        }
        self.collectives_checked = 0

    def record_collective(self, rank: int, comm_key: tuple, op: str,
                          root: int | None, size: int) -> int:
        """Check one outermost collective call against the schedule.

        Returns the call's index in ``comm_key``'s schedule; raises
        :class:`SpmdDivergenceError` when ``rank`` disagrees with the
        first rank that reached the same index.
        """
        record = CollectiveRecord(comm_key, 0, op, root, size)
        with self._lock:
            index = self._cursor[(rank, comm_key)]
            self._cursor[(rank, comm_key)] = index + 1
            record.index = index
            self._history[rank].append(record)
            self._digests[rank].update(repr(record).encode())
            self.collectives_checked += 1
            slot = self._pending.get((comm_key, index))
            if slot is None:
                self._pending[(comm_key, index)] = [record.signature(), rank, 1]
                return index
            signature, first_rank, seen = slot
            if signature != record.signature():
                raise SpmdDivergenceError(
                    self._divergence_report_locked(rank, record,
                                                   first_rank, signature)
                )
            slot[2] = seen + 1
            if slot[2] >= size:
                del self._pending[(comm_key, index)]
            return index

    def _divergence_report_locked(self, rank: int, record: CollectiveRecord,
                                  first_rank: int, first_sig: tuple) -> str:
        op0, root0, size0 = first_sig
        root_txt = "" if record.root is None else f", root={record.root}"
        root0_txt = "" if root0 is None else f", root={root0}"
        lines = [
            f"SPMD divergence at collective #{record.index} on "
            f"communicator {record.comm_key!r}:",
            f"  rank {rank} called {record.op}(size={record.size}{root_txt})",
            f"  rank {first_rank} called {op0}(size={size0}{root0_txt}) "
            f"[first to arrive]",
            self._trace_line_locked(rank),
            self._trace_line_locked(first_rank),
        ]
        return "\n".join(lines)

    def _trace_line_locked(self, rank: int) -> str:
        history = ", ".join(repr(r) for r in self._history[rank]) or "(none)"
        digest = self._digests[rank].hexdigest()
        return f"  rank {rank} recent collectives [digest {digest}]: {history}"

    def digest(self, rank: int) -> str:
        """Hex digest of ``rank``'s collective sequence so far."""
        with self._lock:
            return self._digests[rank].hexdigest()
