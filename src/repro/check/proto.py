"""Static SPMD protocol analyzer (``python -m repro.check proto``).

For each rank count ``P`` requested, every SPMD *program function* of
the target module — a top-level function whose first parameter is
named ``comm`` — is symbolically executed once per rank in ``0..P-1``
by :class:`repro.check.symexec.SymInterpreter`, with the rank
executions coordinated through the lockstep matching engine below.
The engine mirrors the runtime matching contract of
:mod:`repro.comm.runtime` (eager buffered sends, MPI-style
``(communicator, source, tag)`` receive matching with ``-1``
wildcards, collectives completing when every rank of the communicator
arrives), so the per-rank communication graphs are *matched while they
are extracted* and defects surface exactly where the runtime would
hang or diverge:

- a receive no send can ever satisfy, or a send nobody receives
  (RC201), near-matches with a wrong tag or peer (RC202);
- cyclic recv-before-send patterns (RC203, via the same wait-for-graph
  used by the runtime heartbeat detector);
- collective sequence divergence, checked both at arrival (wrong op or
  root at a slot) and at deadlock (a collective some ranks never
  enter) in the style of the runtime ``SpmdVerifier`` (RC204);
- zero-copy aliasing hazards: mutation of a buffer with an in-flight
  ``isend`` (RC205) and mutation of a payload received from another
  rank (RC206) — tracked through alias sets that survive views,
  tuple packing and attribute storage.

Findings reuse the linter's :class:`~repro.check.linter.Finding` and
``# repro: noqa[...]`` plumbing; the Communicator surface comes from
:mod:`repro.comm.optable`, not hard-coded names.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib.util
import itertools
import pathlib
import threading
import time

from ..comm.matching import WaitInfo, deadlock_report, find_wait_cycle
from ..comm.optable import OP_TABLE
from .linter import Finding, apply_suppressions
from .rules import WARNING_RULE_IDS
from .symexec import (
    UNKNOWN,
    AnalysisLimit,
    CommVal,
    FuncVal,
    ModuleRegistry,
    PathExit,
    ReqVal,
    SymInterpreter,
    Val,
)

__all__ = [
    "ProgramRun",
    "analyze_path",
    "analyze_target",
    "discover_programs",
    "resolve_target",
    "render_explain",
]

#: Default per-(program, P) wall-clock budget, seconds.
RUN_TIMEOUT = 10.0

_WORLD_KEY = ("world",)

#: Per-op keyword defaults mirroring the Communicator signatures.
_DEFAULTS: dict[str, dict[str, object]] = {
    "send": {"tag": 0},
    "isend": {"tag": 0},
    "recv": {"source": -1, "tag": -1},
    "irecv": {"source": -1, "tag": -1},
    "sendrecv": {"sendtag": 0, "source": -1, "recvtag": -1},
    "bcast": {"obj": None, "root": 0},
    "gather": {"root": 0},
    "scatter": {"objs": None, "root": 0},
    "reduce": {"root": 0},
    "split": {"key": 0},
}


class _Abort(Exception):
    """Internal: unwind a rank thread after the analysis aborted."""


class _Msg:
    """One in-flight message envelope (mirrors the runtime's)."""

    __slots__ = ("comm_key", "source", "tag", "payload", "source_world",
                 "dest_world", "loc", "op")

    def __init__(self, comm_key, source, tag, payload, source_world,
                 dest_world, loc, op):
        self.comm_key = comm_key
        self.source = source            # communicator-local sender rank
        self.tag = tag                  # int, or None when unfoldable
        self.payload = payload
        self.source_world = source_world
        self.dest_world = dest_world
        self.loc = loc
        self.op = op


class _Slot:
    """One collective position of one communicator."""

    __slots__ = ("op", "root", "group", "loc", "arrived", "meta",
                 "results", "done", "index")

    def __init__(self, op, root, group, loc, index):
        self.op = op
        self.root = root                # local root rank, or None
        self.group = group              # world ranks of the communicator
        self.loc = loc                  # site of the first arrival
        self.index = index
        self.arrived: dict[int, object] = {}   # world rank -> payload
        self.meta: dict[int, tuple] = {}       # world rank -> arrival loc
        self.results: dict[int, Val] = {}
        self.done = False


def _match(pending: list, comm_key, source: int, tag: int):
    """Pop the first matching message; ``None`` wildcards on the send
    side (an unfoldable tag) match any receive and vice versa."""
    for i, msg in enumerate(pending):
        if msg.comm_key != comm_key:
            continue
        if source >= 0 and msg.source != source:
            continue
        if tag >= 0 and msg.tag is not None and msg.tag != tag:
            continue
        return pending.pop(i)
    return None


def _peek(pending, comm_key, source: int, tag: int) -> bool:
    for msg in pending:
        if msg.comm_key != comm_key:
            continue
        if source >= 0 and msg.source != source:
            continue
        if tag >= 0 and msg.tag is not None and msg.tag != tag:
            continue
        return True
    return False


def _as_int(val: Val | None):
    if val is None:
        return None
    c = val.c
    if isinstance(c, bool):
        return int(c)
    if isinstance(c, int):
        return c
    return None


def _fmt_loc(loc) -> str:
    return f"{loc[0]}:{loc[1]}"


class _Engine:
    """Lockstep matching engine shared by the per-rank interpreters."""

    def __init__(self, nranks: int, entry_path: str, deadline: float):
        self.nranks = nranks
        self.entry_path = entry_path
        self.deadline = deadline
        self.cond = threading.Condition()
        self.pending: dict[int, list[_Msg]] = {r: [] for r in range(nranks)}
        self.waiting: dict[int, WaitInfo] = {}
        self.wait_meta: dict[int, tuple] = {}     # rank -> (loc, op)
        self.coll_blocked: dict[int, tuple] = {}  # rank -> (comm_key, idx)
        self.slots: dict[tuple, _Slot] = {}
        self.cursors: dict[tuple, int] = {}
        self.coll_hist: dict[int, list[str]] = {r: [] for r in range(nranks)}
        self.finished: set[int] = set()
        self.exited: dict[int, str] = {}
        self.inflight: dict[int, dict[int, tuple]] = {
            r: {} for r in range(nranks)
        }
        self.irecv_specs: dict[int, tuple] = {}
        self.owner: dict[int, int | None] = {}
        self.events: dict[int, list[str]] = {r: [] for r in range(nranks)}
        self.assumptions: dict[int, list[str]] = {
            r: [] for r in range(nranks)
        }
        self._raw: list[tuple] = []     # (rule, loc, message, rank)
        self._sites: set[tuple] = set()
        self._ids = itertools.count(1)
        self._rids = itertools.count(1)
        self.aborted = False

    # -- interpreter-facing hooks -----------------------------------------

    def new_buffer(self, rank: int | None) -> int:
        bid = next(self._ids)
        self.owner[bid] = rank
        return bid

    def any_foreign(self, rank: int | None, ids: set[int]) -> bool:
        return any(
            self.owner.get(bid) not in (None, rank) for bid in ids
        )

    def warn_unanalyzable(self, loc, message: str) -> None:
        self._finding("RC207", loc, message)

    def note_assumption(self, rank: int | None, text: str) -> None:
        if rank is None:
            return
        notes = self.assumptions[rank]
        if text not in notes:
            notes.append(text)

    def mutation(self, rank: int | None, ids: set[int], loc,
                 desc: str) -> None:
        if rank is None or not ids:
            return
        with self.cond:
            for _rid, (mids, sloc, _op) in self.inflight[rank].items():
                if ids & mids:
                    self._finding(
                        "RC205", loc,
                        f"{desc} writes to a buffer that is still in "
                        f"flight: an isend posted at {_fmt_loc(sloc)} has "
                        "not been waited, and the runtime ships payloads "
                        "by reference (zero-copy), so the receiver can "
                        "observe the torn write",
                        rank=rank,
                    )
                    break
            for bid in ids:
                own = self.owner.get(bid)
                if own is not None and own != rank:
                    self._finding(
                        "RC206", loc,
                        f"{desc} writes to a zero-copy payload received "
                        f"from rank {own}: received objects are views of "
                        "the sender's buffers, so the write corrupts the "
                        "sender's data; copy before writing",
                        rank=rank,
                    )
                    break

    # -- findings ----------------------------------------------------------

    def _finding(self, rule: str, loc, message: str,
                 rank: int | None = None) -> None:
        if loc is None:
            loc = (self.entry_path, 1, 0)
        self._raw.append((rule, loc, message, rank))

    def collect_findings(self) -> list[Finding]:
        """Merge per-rank duplicates: one finding per (rule, site)."""
        merged: dict[tuple, tuple[str, tuple, str, list[int]]] = {}
        order: list[tuple] = []
        for rule, loc, message, rank in self._raw:
            key = (rule, loc[0], loc[1], loc[2])
            if key not in merged:
                merged[key] = (rule, loc, message, [])
                order.append(key)
            if rank is not None and rank not in merged[key][3]:
                merged[key][3].append(rank)
        out = []
        for key in order:
            rule, loc, message, ranks = merged[key]
            if ranks:
                noun = "rank" if len(ranks) == 1 else "ranks"
                message = (
                    f"{message} [{noun} "
                    f"{', '.join(str(r) for r in sorted(ranks))}]"
                )
            severity = "warning" if rule in WARNING_RULE_IDS else "error"
            out.append(Finding(rule, loc[0], loc[1], loc[2], message,
                               severity))
        return out

    # -- lifecycle ---------------------------------------------------------

    def rank_finished(self, rank: int) -> None:
        with self.cond:
            self.finished.add(rank)
            self._maybe_stuck()
            self.cond.notify_all()

    def finalize(self) -> None:
        """After every rank exits: sweep messages nobody received."""
        for dest, msgs in self.pending.items():
            for msg in msgs:
                tag = "any tag" if msg.tag is None else f"tag {msg.tag}"
                self._finding(
                    "RC201", msg.loc,
                    f"message sent to rank {msg.dest_world} ({tag}) is "
                    "never received: no receive on the destination rank "
                    "matches it before the program ends",
                    rank=msg.source_world,
                )

    def _abort(self) -> None:
        self.aborted = True
        self.cond.notify_all()

    def _check_abort(self) -> None:
        if self.aborted:
            raise _Abort()

    def _timed_wait(self) -> None:
        remaining = self.deadline - time.monotonic()
        if remaining <= 0:
            self._finding(
                "RC200", None,
                "analysis wall-clock budget exhausted while ranks were "
                "still executing; the communication graph was not fully "
                "checked",
            )
            self._abort()
            raise _Abort()
        self.cond.wait(min(0.1, remaining))

    # -- dispatch from the interpreter ------------------------------------

    def comm_call(self, interp: SymInterpreter, comm: CommVal, name: str,
                  args: list[Val], kwargs: dict[str, Val], node) -> Val:
        spec = OP_TABLE.get(name)
        if spec is None:
            return interp.fresh_unknown()
        interp.comm_event_hook(node)
        vals: dict[str, Val] = {}
        for pname, val in zip(spec.params, args):
            vals[pname] = val
        for key, val in kwargs.items():
            vals[key] = val
        defaults = _DEFAULTS.get(name, {})

        def get(pname: str) -> Val:
            if pname in vals:
                return vals[pname]
            if pname in defaults:
                return Val(defaults[pname])
            return Val(UNKNOWN)

        loc = interp.loc(node)
        if spec.kind == "local":
            return interp.const(None)
        if spec.kind == "collective":
            return self._collective(interp, comm, name, spec, get, loc)
        # -- point to point ---------------------------------------------
        if name in ("send", "isend"):
            return self._send(interp, comm, name, get("obj"), get("dest"),
                              get("tag"), loc)
        if name == "recv":
            src, tag = self._recv_args(interp, comm, get, "source", "tag",
                                       loc)
            return self._recv_block(interp, comm, src, tag, loc, "recv")
        if name == "irecv":
            src, tag = self._recv_args(interp, comm, get, "source", "tag",
                                       loc)
            rid = next(self._rids)
            self.irecv_specs[rid] = (comm, src, tag, loc)
            self.events[interp.rank].append(
                f"irecv(source={src}, tag={tag}) -> req#{rid}"
                f" @ {_fmt_loc(loc)}"
            )
            return interp.const(ReqVal(rid, "irecv"))
        if name == "sendrecv":
            self._send(interp, comm, "send", get("obj"), get("dest"),
                       get("sendtag"), loc)
            src, tag = self._recv_args(interp, comm, get, "source",
                                       "recvtag", loc)
            return self._recv_block(interp, comm, src, tag, loc, "sendrecv")
        return interp.fresh_unknown()

    def wait(self, interp: SymInterpreter, req: ReqVal, node) -> Val:
        loc = interp.loc(node)
        if req.kind == "isend":
            with self.cond:
                self.inflight[interp.rank].pop(req.rid, None)
            self.events[interp.rank].append(
                f"wait(req#{req.rid}) @ {_fmt_loc(loc)}"
            )
            return interp.const(None)
        spec = self.irecv_specs.pop(req.rid, None)
        if spec is None:   # double wait: runtime returns the cached result
            return Val(UNKNOWN)
        comm, src, tag, _post_loc = spec
        return self._recv_block(interp, comm, src, tag, loc,
                                f"wait(req#{req.rid})")

    # -- point to point ----------------------------------------------------

    def _send(self, interp, comm: CommVal, op: str, payload: Val,
              dest: Val, tag: Val, loc) -> Val:
        rank = interp.rank
        d = _as_int(dest)
        t = _as_int(tag)
        result = interp.const(None)
        if op == "isend":
            rid = next(self._rids)
            with self.cond:
                self.inflight[rank][rid] = (frozenset(payload.ids), loc, op)
            result = interp.const(ReqVal(rid, "isend"))
        if d is None:
            self._finding(
                "RC207", loc,
                f"{op} destination could not be folded to a concrete "
                "rank; the message was dropped from the analysis",
            )
            return result
        if not 0 <= d < len(comm.group):
            self._finding(
                "RC202", loc,
                f"{op} targets rank {d} but the communicator has only "
                f"{len(comm.group)} rank(s)",
                rank=rank,
            )
            return result
        if t is None and tag.c is not UNKNOWN:
            t = None  # non-int concrete tag: keep as wildcard
        if t is None:
            self._finding(
                "RC207", loc,
                f"{op} tag could not be folded to a concrete value; it "
                "matches any receive tag in the analysis",
            )
        msg = _Msg(comm.key, comm.myrank, t, payload, rank,
                   comm.group[d], loc, op)
        with self.cond:
            self._check_abort()
            self.pending[comm.group[d]].append(msg)
            self.events[rank].append(
                f"{op}(dest={d}, tag={t if t is not None else '?'})"
                f" @ {_fmt_loc(loc)}"
            )
            self.cond.notify_all()
        return result

    def _recv_args(self, interp, comm, get, src_name, tag_name, loc):
        src = _as_int(get(src_name))
        tag = _as_int(get(tag_name))
        if src is None and get(src_name).c is not UNKNOWN:
            src = -1
        if tag is None and get(tag_name).c is not UNKNOWN:
            tag = -1
        if src is None:
            self._finding(
                "RC207", loc,
                "receive source could not be folded to a concrete rank; "
                "analyzed as a wildcard (ANY_SOURCE)",
            )
            src = -1
        if tag is None:
            self._finding(
                "RC207", loc,
                "receive tag could not be folded to a concrete value; "
                "analyzed as a wildcard (ANY_TAG)",
            )
            tag = -1
        if src >= len(comm.group):
            self._finding(
                "RC202", loc,
                f"receive names source rank {src} but the communicator "
                f"has only {len(comm.group)} rank(s)",
                rank=interp.rank,
            )
            src = -1
        return src, tag

    def _recv_block(self, interp, comm: CommVal, src: int, tag: int, loc,
                    op: str) -> Val:
        rank = interp.rank
        source_world = comm.group[src] if src >= 0 else None
        with self.cond:
            self.events[rank].append(
                f"{op}(source={src if src >= 0 else 'any'}, "
                f"tag={tag if tag >= 0 else 'any'}) @ {_fmt_loc(loc)}"
            )
            while True:
                self._check_abort()
                msg = _match(self.pending[rank], comm.key, src, tag)
                if msg is not None:
                    self.events[rank].append(
                        f"  -> matched {msg.op} from rank "
                        f"{msg.source_world} posted at {_fmt_loc(msg.loc)}"
                    )
                    return msg.payload
                self.waiting[rank] = WaitInfo(comm.key, src, tag,
                                              source_world, None)
                self.wait_meta[rank] = (loc, op)
                try:
                    self._maybe_stuck()
                    self._check_abort()
                    self._timed_wait()
                finally:
                    self.waiting.pop(rank, None)
                    self.wait_meta.pop(rank, None)

    # -- collectives -------------------------------------------------------

    def _collective(self, interp, comm: CommVal, name: str, spec, get,
                    loc) -> Val:
        rank = interp.rank
        root = None
        if spec.root_param is not None:
            root_val = get(spec.params[spec.root_param])
            root = _as_int(root_val)
            if root is None and root_val.rank_dep:
                # A rank-uniform unknown root (e.g. derived from an
                # allgather every rank folds identically) is safe to
                # treat as a wildcard; a rank-*dependent* one means the
                # ranks may disagree — that the analyzer cannot check.
                self._finding(
                    "RC207", loc,
                    f"{name} root is rank-dependent and could not be "
                    "folded to a concrete rank; root divergence across "
                    "ranks cannot be checked here",
                )
        if name == "split":
            color_val = get("color")
            color = _as_int(color_val)
            if color is None and color_val.c is None:
                color = None    # explicit None: this rank opts out
            elif color is None:
                if color_val.c is not UNKNOWN and _is_hashable(color_val.c):
                    color = color_val.c
                else:
                    self._finding(
                        "RC207", loc,
                        "split color could not be folded; this rank is "
                        "analyzed as its own singleton communicator",
                    )
                    color = f"?{rank}"
            payload = (color, _as_int(get("key")), color_val.c is None)
        elif spec.payload_param is not None:
            payload = get(spec.params[spec.payload_param])
        else:
            payload = Val(None)

        ck = comm.key
        with self.cond:
            self._check_abort()
            idx = self.cursors.get((rank, ck), 0)
            self.cursors[(rank, ck)] = idx + 1
            slot = self.slots.get((ck, idx))
            if slot is None:
                slot = _Slot(name, root, comm.group, loc, idx)
                self.slots[(ck, idx)] = slot
            else:
                if slot.op != name:
                    self._divergence(rank, comm, slot, name, loc)
                    raise _Abort()
                if root is not None:
                    if slot.root is None:
                        slot.root = root
                    elif slot.root != root:
                        self._divergence(rank, comm, slot, name, loc,
                                         root=root)
                        raise _Abort()
            slot.arrived[rank] = payload
            slot.meta[rank] = loc
            desc = name if root is None else f"{name}(root={root})"
            self.coll_hist[rank].append(
                f"{desc}#{idx} @ {_fmt_loc(loc)}"
            )
            self.events[rank].append(f"{desc} #{idx} @ {_fmt_loc(loc)}")
            if len(slot.arrived) == len(slot.group):
                self._complete_slot(comm, slot)
                slot.done = True
                self.cond.notify_all()
                return slot.results.get(rank, interp.const(None))
            self.coll_blocked[rank] = (ck, idx)
            try:
                while not slot.done:
                    self._check_abort()
                    self._maybe_stuck()
                    self._check_abort()
                    self._timed_wait()
            finally:
                self.coll_blocked.pop(rank, None)
            return slot.results.get(rank, interp.const(None))

    def _divergence(self, rank, comm, slot: _Slot, name: str, loc,
                    root=None) -> None:
        if root is not None:
            what = (
                f"collective '{name}' at position {slot.index} of "
                f"communicator {comm.key!r} is called with root="
                f"{slot.root} by rank(s) {sorted(slot.arrived)} but "
                f"root={root} here"
            )
        else:
            what = (
                f"rank calls collective '{name}' at position "
                f"{slot.index} of communicator {comm.key!r}, but rank(s) "
                f"{sorted(slot.arrived)} call '{slot.op}' there (first "
                f"arrival at {_fmt_loc(slot.loc)})"
            )
        self._finding("RC204", loc, what + self._histories(), rank=rank)
        self._abort()

    def _histories(self) -> str:
        lines = []
        for rank in sorted(self.coll_hist):
            hist = self.coll_hist[rank][-6:]
            if hist:
                lines.append(f"rank {rank}: " + " ; ".join(hist))
        if not lines:
            return ""
        return "; recent collective sequences -> " + " | ".join(lines)

    def _complete_slot(self, comm: CommVal, slot: _Slot) -> None:
        group = slot.group
        size = len(group)
        name = slot.op
        if name == "barrier":
            for r in group:
                slot.results[r] = Val(None)
            return
        if name == "dup":
            key = comm.key + (("dup", slot.index),)
            for i, r in enumerate(group):
                slot.results[r] = Val(CommVal(self, key, group, i))
            return
        if name == "split":
            buckets: dict[object, list[tuple]] = {}
            for r in group:
                color, key, opted_out = slot.arrived[r]
                if opted_out:
                    slot.results[r] = Val(None)
                    continue
                local = group.index(r)
                sort_key = key if key is not None else local
                buckets.setdefault(color, []).append((sort_key, local, r))
            for color, members in buckets.items():
                members.sort()
                new_group = tuple(r for _, _, r in members)
                new_key = comm.key + (("split", slot.index, color),)
                for i, (_, _, r) in enumerate(members):
                    slot.results[r] = Val(CommVal(self, new_key,
                                                  new_group, i))
            return
        payloads = {r: slot.arrived[r] for r in group}
        union_ids: set[int] = set()
        for val in payloads.values():
            union_ids |= val.ids
        root_world = group[slot.root] if slot.root is not None else None
        if name == "bcast":
            if root_world is not None:
                result = payloads[root_world]
            else:
                result = Val(UNKNOWN, union_ids)
            for r in group:
                slot.results[r] = result
            return
        if name in ("gather", "reduce"):
            for r in group:
                if root_world is None:
                    slot.results[r] = Val(UNKNOWN, set(union_ids))
                elif r != root_world:
                    slot.results[r] = Val(None)
                elif name == "gather":
                    slot.results[r] = Val(
                        [payloads[q] for q in group],
                        {self.new_buffer(r)},
                    )
                else:
                    slot.results[r] = Val(UNKNOWN, {self.new_buffer(r)})
            return
        if name == "allgather":
            for r in group:
                slot.results[r] = Val([payloads[q] for q in group],
                                      {self.new_buffer(r)})
            return
        if name == "scatter":
            objs = payloads[root_world] if root_world is not None else None
            for i, r in enumerate(group):
                if objs is not None and isinstance(objs.c, (list, tuple)) \
                        and len(objs.c) == size:
                    slot.results[r] = objs.c[i]
                elif objs is not None:
                    slot.results[r] = Val(UNKNOWN, set(objs.ids))
                else:
                    slot.results[r] = Val(UNKNOWN, set(union_ids))
            return
        if name == "alltoall":
            concrete = all(
                isinstance(payloads[q].c, (list, tuple))
                and len(payloads[q].c) == size
                for q in group
            )
            for i, r in enumerate(group):
                if concrete:
                    slot.results[r] = Val(
                        [payloads[q].c[i] for q in group],
                        {self.new_buffer(r)},
                    )
                else:
                    slot.results[r] = Val(UNKNOWN, set(union_ids))
            return
        # allreduce / scan / exscan: a fresh reduced value per rank.
        for r in group:
            slot.results[r] = Val(UNKNOWN, {self.new_buffer(r)})

    # -- deadlock detection ------------------------------------------------

    def _maybe_stuck(self) -> None:
        if self.aborted:
            return
        active = set(range(self.nranks)) - self.finished
        blocked = set(self.waiting) | set(self.coll_blocked)
        if not active or active - blocked:
            return
        for rank, (ck, idx) in self.coll_blocked.items():
            if self.slots[(ck, idx)].done:
                return
        for rank, w in self.waiting.items():
            if _peek(self.pending[rank], w.comm_key, w.source, w.tag):
                return
        self._classify_deadlock()
        self._abort()

    def _classify_deadlock(self) -> None:
        emitted = False
        for (ck, idx), slot in sorted(self.slots.items(),
                                      key=lambda kv: kv[1].index):
            if slot.done or not slot.arrived:
                continue
            waiting_here = [r for r, key in self.coll_blocked.items()
                            if key == (ck, idx)]
            if not waiting_here:
                continue
            missing = [r for r in slot.group if r not in slot.arrived]
            details = []
            for r in missing:
                if r in self.finished:
                    details.append(f"rank {r} already finished"
                                   + (f" ({self.exited[r]})"
                                      if r in self.exited else ""))
                elif r in self.waiting:
                    meta = self.wait_meta.get(r)
                    at = f" at {_fmt_loc(meta[0])}" if meta else ""
                    details.append(f"rank {r} is blocked in a receive"
                                   f"{at}")
                elif r in self.coll_blocked:
                    ok, oi = self.coll_blocked[r]
                    other = self.slots[(ok, oi)]
                    details.append(
                        f"rank {r} is blocked in collective "
                        f"'{other.op}' at {_fmt_loc(other.meta[r])}")
                else:
                    details.append(f"rank {r} never reaches it")
            self._finding(
                "RC204", slot.loc,
                f"collective '{slot.op}' at position {slot.index} of "
                f"communicator {ck!r} is entered by rank(s) "
                f"{sorted(slot.arrived)} but never by rank(s) "
                f"{missing}: " + "; ".join(details) + self._histories(),
            )
            emitted = True
        if emitted:
            return
        cycle = find_wait_cycle(self.waiting)
        if cycle:
            loc, _op = self.wait_meta.get(cycle[0],
                                          ((self.entry_path, 1, 0), ""))
            hops = " -> ".join(f"rank {r}" for r in cycle + cycle[:1])
            describes = "; ".join(
                self.waiting[r].describe(r) for r in cycle
            )
            self._finding(
                "RC203", loc,
                f"send-recv deadlock: wait-for cycle {hops}; every rank "
                "in the cycle blocks in a receive before its own send "
                f"executes ({describes})",
            )
            return
        for rank in sorted(self.waiting):
            w = self.waiting[rank]
            loc, op = self.wait_meta.get(rank, ((self.entry_path, 1, 0),
                                                "recv"))
            near = self._near_match(rank, w)
            if near is not None:
                msg, kind = near
                self._finding("RC202", loc, msg, rank=rank)
                continue
            src = "any rank" if w.source < 0 else f"rank {w.source}"
            tag = "any tag" if w.tag < 0 else f"tag {w.tag}"
            self._finding(
                "RC201", loc,
                f"{op} from {src} ({tag}) blocks forever: no rank ever "
                "sends a matching message on communicator "
                f"{w.comm_key!r}",
                rank=rank,
            )

    def _near_match(self, rank: int, w: WaitInfo):
        for dest, msgs in self.pending.items():
            for msg in msgs:
                if msg.comm_key != w.comm_key:
                    continue
                src_ok = w.source < 0 or msg.source == w.source
                tag_ok = (w.tag < 0 or msg.tag is None
                          or msg.tag == w.tag)
                if dest == rank and src_ok and not tag_ok:
                    return (
                        f"receive (tag {w.tag}) and the pending send "
                        f"from rank {msg.source_world} posted at "
                        f"{_fmt_loc(msg.loc)} name the same rank pair "
                        f"but different tags (send uses tag {msg.tag})",
                        "tag",
                    )
                if dest == rank and tag_ok and not src_ok:
                    return (
                        f"receive names source rank {w.source} but the "
                        f"only pending send with a matching tag comes "
                        f"from rank {msg.source} (posted at "
                        f"{_fmt_loc(msg.loc)})",
                        "peer",
                    )
                if dest != rank and tag_ok and src_ok:
                    return (
                        f"a send with matching source and tag is "
                        f"pending, but it targets rank {msg.dest_world} "
                        f"instead of this rank (posted at "
                        f"{_fmt_loc(msg.loc)})",
                        "dest",
                    )
        return None

    def deadlock_summary(self) -> str:
        """Runtime-style wait-for report (used by --explain)."""
        return deadlock_report(self.waiting, self.nranks
                               - len(self.finished))


def _is_hashable(obj) -> bool:
    try:
        hash(obj)
    except TypeError:
        return False
    return True


# -- analysis driver -------------------------------------------------------


@dataclasses.dataclass
class ProgramRun:
    """Result of analyzing one program function at one rank count."""

    program: str
    path: str
    nranks: int
    findings: list[Finding]
    events: dict[int, list[str]]
    assumptions: dict[int, list[str]]
    seconds: float

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "path": self.path,
            "nranks": self.nranks,
            "findings": [f.to_dict() for f in self.findings],
            "events": {str(r): ev for r, ev in self.events.items()},
            "assumptions": {str(r): notes
                            for r, notes in self.assumptions.items()
                            if notes},
            "seconds": round(self.seconds, 3),
        }


def discover_programs(tree: ast.Module) -> list[str]:
    """Top-level SPMD program functions: first parameter named ``comm``."""
    out = []
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name.startswith("_"):
            continue
        params = node.args.posonlyargs + node.args.args
        if params and params[0].arg == "comm":
            out.append(node.name)
    return out


def resolve_target(target: str) -> str:
    """Resolve a module dotted name or file path to a source path.

    Never executes the target: dotted names are located by searching
    the analyzer's roots first and falling back to
    ``importlib.util.find_spec`` (which may import parent packages but
    not the module itself).
    """
    p = pathlib.Path(target)
    if p.is_file():
        return str(p)
    if "/" not in target and not target.endswith(".py"):
        located = ModuleRegistry().locate(target)
        if located is not None:
            return str(located)
        try:
            spec = importlib.util.find_spec(target)
        except (ImportError, ValueError, ModuleNotFoundError):
            spec = None
        if spec is not None and spec.origin and spec.origin != "built-in":
            return spec.origin
    raise FileNotFoundError(
        f"cannot resolve analysis target {target!r} to a Python source "
        "file (pass a file path or an importable module name)"
    )


def _module_name_for(path: pathlib.Path) -> tuple[str, pathlib.Path]:
    """Dotted name of ``path`` by walking up package __init__ files,
    plus the search root that contains the top-level package."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:
        parts = [path.stem]
    return ".".join(parts), parent


def analyze_path(path: str, ranks: list[int], programs: list[str] | None
                 = None, timeout: float = RUN_TIMEOUT
                 ) -> list[ProgramRun]:
    """Analyze every SPMD program of ``path`` at every rank count."""
    source = pathlib.Path(path).read_text(encoding="utf-8")
    tree = ast.parse(source, filename=path)
    found = discover_programs(tree)
    if programs:
        missing = sorted(set(programs) - set(found))
        if missing:
            raise ValueError(
                f"no SPMD program function(s) {missing} in {path} "
                f"(found: {found or 'none'})"
            )
        found = [name for name in found if name in programs]
    mod_name, root = _module_name_for(pathlib.Path(path))
    runs = []
    for name in found:
        for nranks in ranks:
            runs.append(
                _run_one(path, source, tree, mod_name, root, name,
                         nranks, timeout)
            )
    return runs


def analyze_target(target: str, ranks: list[int],
                   programs: list[str] | None = None,
                   timeout: float = RUN_TIMEOUT) -> list[ProgramRun]:
    return analyze_path(resolve_target(target), ranks, programs, timeout)


def _run_one(path: str, source: str, tree: ast.Module, mod_name: str,
             root: pathlib.Path, program: str, nranks: int,
             timeout: float) -> ProgramRun:
    start = time.monotonic()
    registry = ModuleRegistry(search_roots=[root])
    entry = registry.add_entry_module(mod_name, path, source, tree)
    engine = _Engine(nranks, path, deadline=start + timeout)

    # Evaluate all interpreted module tops once, rank-neutrally, before
    # the rank threads start (module-level buffers are ownerless and
    # the lazy path would otherwise race).
    preload = SymInterpreter(registry, engine, rank=None)
    try:
        preload.module_env(entry)
        for name in sorted(registry.interpreted):
            mod = registry.resolve(name)
            if mod is not None:
                preload.module_env(mod)
    except AnalysisLimit as exc:
        engine._finding("RC200", (path, 1, 0),
                        f"module evaluation failed: {exc.detail}")

    func_val = entry.env.get(program)
    if func_val is None or not isinstance(func_val.c, FuncVal):
        engine._finding(
            "RC200", (path, 1, 0),
            f"program function {program!r} did not evaluate to an "
            "interpretable function",
        )
        return _report(engine, registry, program, path, nranks, start)

    fnode = func_val.c.node
    nparams = len(fnode.args.posonlyargs) + len(fnode.args.args)

    def run_rank(rank: int) -> None:
        interp = SymInterpreter(registry, engine, rank=rank)
        interp.current_module = entry
        comm = Val(CommVal(engine, _WORLD_KEY, tuple(range(nranks)),
                           rank))
        args = [comm] + [interp.fresh_unknown()
                         for _ in range(nparams - 1)]
        try:
            interp.run_function(func_val.c, args)
        except PathExit as exc:
            engine.exited[rank] = f"raised at {exc.site}"
            engine.events[rank].append(f"raise -> rank exits "
                                       f"({exc.site})")
        except _Abort:
            pass
        except AnalysisLimit as exc:
            engine._finding(
                "RC200", interp.loc(None),
                f"symbolic execution aborted: {exc.detail}",
                rank=rank,
            )
            with engine.cond:
                engine._abort()
        except RecursionError:
            engine._finding(
                "RC200", interp.loc(None),
                "symbolic execution exceeded the recursion limit",
                rank=rank,
            )
            with engine.cond:
                engine._abort()
        except Exception as exc:  # noqa: BLE001 - report, don't crash CI
            engine._finding(
                "RC200", interp.loc(None),
                f"interpreter failure: {type(exc).__name__}: {exc}",
                rank=rank,
            )
            with engine.cond:
                engine._abort()
        finally:
            engine.rank_finished(rank)

    threads = [
        threading.Thread(target=run_rank, args=(rank,),
                         name=f"proto-rank-{rank}", daemon=True)
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + 5.0)
    if any(t.is_alive() for t in threads):
        with engine.cond:
            engine._finding(
                "RC200", (path, 1, 0),
                "analysis threads failed to terminate within the "
                "wall-clock budget",
            )
            engine._abort()
        for t in threads:
            t.join(timeout=2.0)
    if not engine.aborted:
        engine.finalize()
    return _report(engine, registry, program, path, nranks, start)


def _report(engine: _Engine, registry: ModuleRegistry, program: str,
            path: str, nranks: int, start: float) -> ProgramRun:
    findings = engine.collect_findings()
    by_path: dict[str, list[Finding]] = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    kept: list[Finding] = []
    for fpath, group in by_path.items():
        src = registry.source_for(fpath)
        kept.extend(apply_suppressions(group, src) if src else group)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return ProgramRun(
        program=program,
        path=path,
        nranks=nranks,
        findings=kept,
        events=engine.events,
        assumptions=engine.assumptions,
        seconds=time.monotonic() - start,
    )


def render_explain(run: ProgramRun) -> str:
    """Per-rank event sequences, mirroring the runtime divergence
    report's recent-history format."""
    lines = [f"== {run.program} @ P={run.nranks} "
             f"({run.seconds:.2f}s) =="]
    for rank in sorted(run.events):
        lines.append(f"rank {rank}:")
        events = run.events[rank]
        if not events:
            lines.append("  (no communication)")
        for event in events:
            lines.append(f"  {event}")
        for note in run.assumptions.get(rank, []):
            lines.append(f"  note: {note}")
    if run.findings:
        lines.append("findings:")
        for f in run.findings:
            lines.append("  " + f.format())
    else:
        lines.append("findings: none")
    return "\n".join(lines)
