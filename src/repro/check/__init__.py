"""SPMD correctness analysis: static lint pass + runtime verifier.

Two cooperating layers catch communication-structure bugs — the failure
class that otherwise only surfaces as a multi-second deadlock timeout:

**Static** (:mod:`repro.check.linter`): an AST analyzer with
repo-specific rules (collectives under rank-conditional branches,
discarded nonblocking requests, raw threading primitives outside the
audited layers, ``__all__`` drift, bare ``except:``, mutable default
arguments).  Run it as ``python -m repro.check lint src`` — CI does on
every push.  Suppress a finding with ``# repro: noqa[RC101]`` (several
codes comma-separate: ``# repro: noqa[RC101, RC106]``).

**Static protocol analysis** (:mod:`repro.check.proto`): symbolic
per-rank execution of SPMD program functions at concrete rank counts,
matching the extracted communication graphs across ranks — unmatched
messages, tag/peer mismatches, recv cycles, collective divergence and
zero-copy aliasing hazards (RC2xx) before anything runs.  Run it as
``python -m repro.check proto repro.check.entries --ranks 2,4,8``.

**Dynamic** (:mod:`repro.check.verifier` plus the wait-for-graph
analysis inside :mod:`repro.comm.runtime`): with
``run_spmd(..., verify=True)`` or ``REPRO_VERIFY=1`` the runtime
cross-checks every rank's collective call sequence and reports the
first divergent call with both ranks' traces; unreceived messages at
finalize become errors.  Deadlocks are always diagnosed exactly from
the rank→(source, tag) wait-for graph — reporting the actual cycle —
rather than by a wall-clock stall heuristic.

See docs/CHECKING.md for the rule catalog and diagnostics reference.
"""

from .linter import (
    Finding,
    apply_suppressions,
    lint_file,
    lint_paths,
    lint_source,
)
from .proto import (
    ProgramRun,
    analyze_path,
    analyze_target,
    render_explain,
)
from .rules import ALL_RULE_IDS, RULES, WARNING_RULE_IDS, Rule, get_rule
from .sarif import render_sarif, to_sarif
from .verifier import CollectiveRecord, SpmdVerifier

__all__ = [
    "Finding",
    "apply_suppressions",
    "lint_source",
    "lint_file",
    "lint_paths",
    "ProgramRun",
    "analyze_path",
    "analyze_target",
    "render_explain",
    "Rule",
    "RULES",
    "ALL_RULE_IDS",
    "WARNING_RULE_IDS",
    "get_rule",
    "render_sarif",
    "to_sarif",
    "SpmdVerifier",
    "CollectiveRecord",
]
