"""AST-based SPMD lint pass (stdlib :mod:`ast` only, no dependencies).

Entry points: :func:`lint_source` for one buffer, :func:`lint_paths`
for files/directory trees (``python -m repro.check lint src`` wraps the
latter).  The rule catalog lives in :mod:`repro.check.rules`.

Findings are suppressed per line with ``# repro: noqa[RC101]`` (or a
blanket ``# repro: noqa``); the suppression comment must sit on the
line the finding points at.

The checks are deliberately conservative: a rule fires only on
patterns this codebase treats as contract violations, so the shipped
tree lints clean and CI can fail on any new finding.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import Iterable, Sequence

from ..comm.optable import COLLECTIVE_OPS
from .rules import RULES

__all__ = [
    "Finding",
    "apply_suppressions",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Names whose value is (derived from) the executing rank.
_RANK_NAMES = frozenset({"rank", "vrank", "myrank", "my_rank", "rank_id"})

#: threading attributes that count as raw concurrency primitives.
#: (``threading.local`` and introspection helpers are deliberately
#: absent — thread-local state is not a locking hazard.)
_THREAD_PRIMITIVES = frozenset(
    {
        "Thread",
        "Timer",
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
    }
)

#: Directory names whose files may use raw threading primitives.
THREADING_ALLOWLIST = frozenset({"comm", "service", "obs", "check"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One finding: rule id, location, message, severity.

    ``severity`` is ``"error"`` for proven defects and ``"warning"``
    for advisory findings (the protocol analyzer's analyzability
    notes); the lint pass only ever emits errors.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def format(self, *, hint: bool = False) -> str:
        sev = "" if self.severity == "error" else f" {self.severity}:"
        text = (
            f"{self.path}:{self.line}:{self.col}:{sev} "
            f"{self.rule_id} {self.message}"
        )
        if hint:
            text += f"\n    fix: {RULES[self.rule_id].hint}"
        return text

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule ids (``None`` = all rules)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
    return out


def apply_suppressions(
    findings: Iterable[Finding], source: str
) -> list[Finding]:
    """Drop findings silenced by a ``# repro: noqa[...]`` on their line.

    Shared by the lint pass and the protocol analyzer (which attributes
    findings to lines of the modules it interpreted symbolically).
    """
    suppress = _suppressions(source)
    kept = []
    for finding in findings:
        rules = suppress.get(finding.line, ...)
        if rules is None or (rules is not ... and finding.rule_id in rules):
            continue
        kept.append(finding)
    return kept


def _print_exempt(path: str) -> bool:
    """Is ``path`` allowed to use bare ``print()`` (RC107)?

    Exempt: CLI entry modules (``__main__.py``), the plain-text table
    renderer (``util/tables.py``), and anything outside a ``repro``
    package tree (fixtures, scripts, the default ``<string>`` buffer) —
    the rule targets library code that should speak the structured
    telemetry protocol of :mod:`repro.obs.log`.
    """
    p = pathlib.PurePath(path)
    if "repro" not in p.parts:
        return True
    if p.name == "__main__.py":
        return True
    return p.name == "tables.py" and len(p.parts) >= 2 and p.parts[-2] == "util"


def _is_rank_dependent(node: ast.AST) -> bool:
    """Does the expression read the executing rank (``comm.rank``, a
    ``rank``/``vrank`` local, ...)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _RANK_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in _RANK_NAMES:
            return True
    return False


def _collective_call_name(node: ast.Call) -> str | None:
    """Return the collective op name when ``node`` looks like a
    collective call on a communicator, else ``None``.

    Matches ``<expr>.bcast(...)`` where the receiver expression mentions
    a name containing ``comm`` (``comm``, ``subcomm``, ``self.comm`` …)
    — this keeps ``functools.reduce`` and ``np.add.reduce`` out.
    """
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in COLLECTIVE_OPS:
        return None
    for sub in ast.walk(func.value):
        if isinstance(sub, ast.Name) and "comm" in sub.id.lower():
            return func.attr
        if isinstance(sub, ast.Attribute) and "comm" in sub.attr.lower():
            return func.attr
    return None


def _is_request_call(node: ast.AST) -> str | None:
    """Return ``"isend"``/``"irecv"`` when ``node`` is such a call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("isend", "irecv")
    ):
        return node.func.attr
    return None


def _walk_scope(body: Sequence[ast.stmt]) -> Iterable[ast.AST]:
    """Walk statements without descending into nested function/class
    scopes (their bodies are visited as scopes of their own)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue  # nested scope: visited as a scope of its own
        stack.extend(ast.iter_child_nodes(node))


class _Visitor(ast.NodeVisitor):
    """Single-pass visitor implementing RC101-RC103 and RC105-RC108."""

    def __init__(self, path: str, findings: list[Finding]):
        self.path = path
        self.findings = findings
        self._rank_guard: list[int] = []  # linenos of enclosing rank-ifs
        self._thread_aliases: set[str] = set()  # `import threading as t`
        self._thread_names: set[str] = set()  # `from threading import Lock`
        self._span_names: set[str] = set()  # `from repro.obs import span`
        self._thread_allowed = any(
            part in THREADING_ALLOWLIST
            for part in pathlib.PurePath(path).parts
        )
        self._print_exempt = _print_exempt(path)

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule_id,
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                message,
            )
        )

    # -- RC101: collectives under rank-conditional control flow ----------

    def visit_If(self, node: ast.If) -> None:
        dep = _is_rank_dependent(node.test)
        if dep:
            self._rank_guard.append(node.lineno)
        self.visit(node.test)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        if dep:
            self._rank_guard.pop()

    def visit_IfExp(self, node: ast.IfExp) -> None:
        dep = _is_rank_dependent(node.test)
        if dep:
            self._rank_guard.append(node.lineno)
        self.generic_visit(node)
        if dep:
            self._rank_guard.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._rank_guard:
            op = _collective_call_name(node)
            if op is not None:
                self._emit(
                    "RC101",
                    node,
                    f"collective '{op}' called inside a rank-conditional "
                    f"branch (guard at line {self._rank_guard[-1]}); every "
                    f"rank of the communicator must call it in the same "
                    f"sequence",
                )
        self._check_thread_primitive(node)
        self._check_bare_print(node)
        self.generic_visit(node)

    # -- RC107: bare print() in library code ------------------------------

    def _check_bare_print(self, node: ast.Call) -> None:
        if self._print_exempt:
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self._emit(
                "RC107",
                node,
                "bare print() in library code; route output through "
                "repro.obs.log (get_logger for telemetry events, "
                "console for CLI output)",
            )

    # -- RC103: raw threading primitives ---------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "threading":
                self._thread_aliases.add(alias.asname or "threading")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "threading":
            for alias in node.names:
                if alias.name in _THREAD_PRIMITIVES:
                    self._thread_names.add(alias.asname or alias.name)
        if node.module and "obs" in node.module.split("."):
            for alias in node.names:
                if alias.name in ("span", "kernel_time"):
                    self._span_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _check_thread_primitive(self, node: ast.Call) -> None:
        if self._thread_allowed:
            return
        func = node.func
        name = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._thread_aliases
            and func.attr in _THREAD_PRIMITIVES
        ):
            name = f"threading.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in self._thread_names:
            name = func.id
        if name is not None:
            allowed = ", ".join(sorted(THREADING_ALLOWLIST))
            self._emit(
                "RC103",
                node,
                f"raw thread primitive {name}() outside the audited "
                f"concurrency layers ({allowed})",
            )

    # -- RC108: span context manager created but never entered ------------

    def visit_Expr(self, node: ast.Expr) -> None:
        self._check_unentered_span(node)
        self.generic_visit(node)

    def _check_unentered_span(self, node: ast.Expr) -> None:
        """A bare ``span(...)`` / ``tracer.span(...)`` expression
        statement builds the context manager and drops it — nothing is
        recorded.  Bare names fire only when ``span``/``kernel_time``
        was imported from an ``obs`` module; attribute calls only when
        the receiver mentions a tracer (``ctx.tracer.span(...)``),
        keeping unrelated ``.span`` attributes out."""
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        name = None
        if isinstance(func, ast.Name) and func.id in self._span_names:
            name = func.id
        elif (isinstance(func, ast.Attribute)
              and func.attr in ("span", "kernel_time")):
            for sub in ast.walk(func.value):
                if ((isinstance(sub, ast.Name)
                     and "tracer" in sub.id.lower())
                        or (isinstance(sub, ast.Attribute)
                            and "tracer" in sub.attr.lower())):
                    name = func.attr
                    break
        if name is not None:
            self._emit(
                "RC108",
                node,
                f"span context manager {name}(...) created but never "
                f"entered; the interval is not recorded — use "
                f"'with {name}(...):'",
            )

    # -- RC105: bare except ----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "RC105",
                node,
                "bare 'except:' also catches SystemExit/KeyboardInterrupt "
                "and the runtime's abort signal",
            )
        self.generic_visit(node)

    # -- RC106 + RC102: per-scope checks ---------------------------------

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = None
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                bad = {"List": "[]", "Dict": "{}", "Set": "{...}"}[
                    type(default).__name__
                ]
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            ):
                bad = f"{default.func.id}()"
            if bad is not None:
                self._emit(
                    "RC106",
                    default,
                    f"mutable default argument {bad} in '{node.name}' is "
                    f"shared across calls (and across rank threads)",
                )

    @staticmethod
    def _handle_key(target: ast.expr) -> str | None:
        """Trackable handle name for an assignment target: a plain name
        (``req``) or a dotted attribute path (``self.req``)."""
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            base = _Visitor._handle_key(target.value)
            return None if base is None else f"{base}.{target.attr}"
        return None

    def _check_requests(self, body: Sequence[ast.stmt], *,
                        attr_pass: bool = False) -> None:
        """RC102: discarded or never-used requests.

        Handles are tracked through plain-name assignment and tuple/list
        unpacking of a tuple of request calls within one lexical scope.
        Attribute-path handles (``self.req = comm.irecv(...)``) are
        object state rather than lexical scope — the wait often lives in
        a sibling method — so they are checked in a separate whole-file
        pass (``attr_pass=True``) where a load of the same dotted path
        anywhere in the module counts as use.
        """
        assigned: dict[str, tuple[int, int, str]] = {}
        loaded: set[str] = set()

        def record(target: ast.expr, value: ast.expr, node: ast.stmt) -> None:
            op = _is_request_call(value)
            if op is None:
                return
            key = self._handle_key(target)
            if key is not None and ("." in key) == attr_pass:
                assigned[key] = (node.lineno, node.col_offset, op)

        if attr_pass:
            nodes: Iterable[ast.AST] = (
                sub for stmt in body for sub in ast.walk(stmt)
            )
        else:
            nodes = _walk_scope(body)
        for node in nodes:
            if isinstance(node, ast.Expr) and not attr_pass:
                op = _is_request_call(node.value)
                if op is not None:
                    self._emit(
                        "RC102",
                        node,
                        f"Request returned by {op}() is discarded; the "
                        f"operation is never completed",
                    )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                    node.value, (ast.Tuple, ast.List)
                ):
                    # ra, rb = comm.isend(...), comm.irecv(...)
                    if len(target.elts) == len(node.value.elts):
                        for tgt, val in zip(target.elts, node.value.elts):
                            record(tgt, val, node)
                else:
                    record(target, node.value, node)
        # Loads — including inside nested functions/lambdas (closures)
        # — count as use, as do loads of a tracked attribute path.
        for node in body:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    loaded.add(sub.id)
                elif isinstance(sub, ast.Attribute) and isinstance(
                    sub.ctx, ast.Load
                ):
                    key = self._handle_key(sub)
                    if key is not None:
                        loaded.add(key)
        for name, (lineno, col, op) in assigned.items():
            if name not in loaded:
                self.findings.append(
                    Finding(
                        "RC102",
                        self.path,
                        lineno,
                        col,
                        f"Request from {op}() assigned to '{name}' but "
                        f"never used — call .wait() on it",
                    )
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_requests(node.body)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_requests(node.body)
        self.generic_visit(node)

    def visit_Module(self, node: ast.Module) -> None:
        self._check_requests(node.body)
        self._check_requests(node.body, attr_pass=True)
        self.generic_visit(node)


def _check_all_drift(tree: ast.Module, path: str, findings: list[Finding]) -> None:
    """RC104: compare ``__all__`` against actual top-level definitions."""
    all_node: ast.Assign | None = None
    all_names: list[str] | None = None
    defined: set[str] = set()
    public_defs: set[str] = set()
    has_getattr = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
            if node.name == "__getattr__":
                has_getattr = True
            elif not node.name.startswith("_"):
                public_defs.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
                    if target.id == "__all__" and isinstance(
                        node.value, (ast.List, ast.Tuple)
                    ):
                        all_node = node
                        all_names = [
                            elt.value
                            for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defined.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                defined.add((alias.asname or alias.name).split(".")[0])
    if all_names is None or all_node is None:
        return
    undefined = [n for n in all_names if n not in defined]
    if undefined and has_getattr:
        undefined = []  # PEP 562 lazy exports resolve at attribute access
    missing = sorted(public_defs - set(all_names))
    if undefined:
        findings.append(
            Finding(
                "RC104",
                path,
                all_node.lineno,
                all_node.col_offset,
                "__all__ names undefined symbol(s): " + ", ".join(undefined),
            )
        )
    if missing:
        findings.append(
            Finding(
                "RC104",
                path,
                all_node.lineno,
                all_node.col_offset,
                "public definition(s) missing from __all__: "
                + ", ".join(missing),
            )
        )


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one source buffer; return findings after noqa filtering."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                "RC100",
                path,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                f"syntax error: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    _Visitor(path, findings).visit(tree)
    _check_all_drift(tree, path, findings)
    kept = apply_suppressions(findings, source)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept


def lint_file(path: str | pathlib.Path) -> list[Finding]:
    """Lint one file on disk."""
    p = pathlib.Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: Iterable[str | pathlib.Path]) -> list[Finding]:
    """Lint files and/or directory trees (``*.py``, sorted, deduped)."""
    files: list[pathlib.Path] = []
    for entry in paths:
        p = pathlib.Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    seen: set[pathlib.Path] = set()
    findings: list[Finding] = []
    for f in files:
        resolved = f.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        findings.extend(lint_file(f))
    return findings
