"""Canonical analysis entry points for the shipped SPMD solvers.

The protocol analyzer (:mod:`repro.check.proto`) discovers *program
functions* — top-level functions whose first parameter is ``comm`` —
and symbolically executes each one per rank.  The solver APIs are
multi-phase (factor then solve, with rank state threaded between
them), so analyzing a single phase in isolation would start from an
unknown state and degrade to warnings.  This module composes each
solver's phases into one driver per algorithm with concrete
rank-independent configuration, which is exactly how the engine and
the benchmarks call them.

CI runs ``python -m repro.check proto repro.check.entries --ranks
2,4,8`` as a regression gate: all four programs must analyze clean.
"""

from __future__ import annotations

from ..core.ard import ard_factor_spmd, ard_solve_spmd
from ..core.bcyclic import bcyclic_solve_spmd
from ..core.rd import rd_solve_spmd
from ..core.spike import spike_factor_spmd, spike_solve_spmd

__all__ = [
    "rd_program",
    "ard_program",
    "spike_program",
    "bcyclic_program",
]


def rd_program(comm, chunk, d_rows):
    """Classical recursive doubling: one butterfly pass per RHS column."""
    return rd_solve_spmd(comm, chunk, d_rows)


def ard_program(comm, chunk, d_rows):
    """Accelerated RD: matrix-only factor phase, then the vector solve."""
    state = ard_factor_spmd(comm, chunk)
    return ard_solve_spmd(comm, state, d_rows)


def spike_program(comm, chunk, d_rows):
    """SPIKE with the root-gathered reduced system (the default mode)."""
    state = spike_factor_spmd(comm, chunk, reduced_mode="root")
    return spike_solve_spmd(comm, state, d_rows)


def bcyclic_program(comm, row, rhs):
    """Block cyclic reduction with one block row per rank."""
    return bcyclic_solve_spmd(comm, row, rhs, comm.size)
