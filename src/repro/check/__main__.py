"""Command-line entry point for the SPMD correctness analyzer.

Usage::

    python -m repro.check lint [PATH ...] [--format text|json|sarif]
    python -m repro.check proto TARGET --ranks P[,P2,...]
                                [--program NAME ...] [--explain]
                                [--format text|json|sarif] [--strict]
    python -m repro.check rules

``lint`` exits 0 when clean and 1 when it produced findings (2 on bad
usage), so it slots directly into CI next to ruff.  PATH defaults to
``src``.

``proto`` symbolically executes every SPMD program function of TARGET
(a module dotted name or file path) once per rank for each requested
rank count, matching the extracted communication graphs across ranks.
It exits 1 only on *error*-severity findings (RC201-RC206); advisory
RC200/RC207 analyzability warnings exit 0 unless ``--strict``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .linter import lint_paths
from .rules import render_catalog

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="SPMD correctness analyzer (static passes).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_p = sub.add_parser("lint", help="lint Python sources for SPMD hazards")
    lint_p.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    lint_p.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format (default: text)")
    lint_p.add_argument("--hints", action="store_true",
                        help="append each rule's fix hint to its findings")

    proto_p = sub.add_parser(
        "proto",
        help="statically match per-rank communication graphs",
    )
    proto_p.add_argument("target",
                         help="module dotted name or .py file to analyze")
    proto_p.add_argument("--ranks", default="2",
                         help="comma-separated rank counts (default: 2)")
    proto_p.add_argument("--program", action="append", default=None,
                         metavar="NAME",
                         help="restrict to specific program function(s)")
    proto_p.add_argument("--explain", action="store_true",
                         help="print the derived per-rank event sequences")
    proto_p.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text",
                         help="output format (default: text)")
    proto_p.add_argument("--strict", action="store_true",
                         help="exit 1 on RC200/RC207 warnings too")
    proto_p.add_argument("--timeout", type=float, default=None,
                         help="per-(program, P) wall-clock budget, seconds")

    sub.add_parser("rules", help="print the rule catalog")

    args = parser.parse_args(argv)
    if args.command == "rules":
        print(render_catalog())
        return 0
    if args.command == "proto":
        return _proto(args)

    findings = lint_paths(args.paths)
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.format == "sarif":
        from .sarif import render_sarif

        print(render_sarif(findings, tool_name="repro.check lint"))
    else:
        for finding in findings:
            print(finding.format(hint=args.hints))
        n = len(findings)
        tag = "finding" if n == 1 else "findings"
        print(f"repro.check: {n} {tag} in {', '.join(args.paths)}",
              file=sys.stderr)
    return 1 if findings else 0


def _proto(args: argparse.Namespace) -> int:
    from .proto import RUN_TIMEOUT, analyze_target, render_explain

    try:
        ranks = sorted({int(p.strip()) for p in args.ranks.split(",")
                        if p.strip()})
    except ValueError:
        print(f"repro.check proto: bad --ranks value {args.ranks!r}",
              file=sys.stderr)
        return 2
    if not ranks or min(ranks) < 1:
        print("repro.check proto: --ranks needs positive integers",
              file=sys.stderr)
        return 2
    try:
        runs = analyze_target(args.target, ranks, programs=args.program,
                              timeout=args.timeout or RUN_TIMEOUT)
    except (FileNotFoundError, ValueError, SyntaxError) as exc:
        print(f"repro.check proto: {exc}", file=sys.stderr)
        return 2
    if not runs:
        print(f"repro.check proto: no SPMD program functions (first "
              f"parameter 'comm') found in {args.target}",
              file=sys.stderr)
        return 2

    errors = sum(len(run.errors) for run in runs)
    warnings = sum(len(run.warnings) for run in runs)
    if args.format == "json":
        print(json.dumps([run.to_dict() for run in runs], indent=2))
    elif args.format == "sarif":
        from .sarif import render_sarif

        findings = [f for run in runs for f in run.findings]
        print(render_sarif(findings, tool_name="repro.check proto"))
    else:
        for run in runs:
            if args.explain:
                print(render_explain(run))
            else:
                status = "clean" if not run.findings else (
                    f"{len(run.errors)} error(s), "
                    f"{len(run.warnings)} warning(s)"
                )
                print(f"{run.program} @ P={run.nranks}: {status} "
                      f"({run.seconds:.2f}s)")
                for f in run.findings:
                    print("  " + f.format())
        total = sum(run.seconds for run in runs)
        print(
            f"repro.check proto: {len(runs)} run(s), {errors} error(s), "
            f"{warnings} warning(s) in {total:.2f}s",
            file=sys.stderr,
        )
    if errors:
        return 1
    if args.strict and warnings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
