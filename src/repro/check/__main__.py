"""Command-line entry point for the SPMD correctness analyzer.

Usage::

    python -m repro.check lint [PATH ...] [--format text|json] [--hints]
    python -m repro.check rules

``lint`` exits 0 when clean and 1 when it produced findings (2 on bad
usage), so it slots directly into CI next to ruff.  PATH defaults to
``src``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .linter import lint_paths
from .rules import render_catalog

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="SPMD correctness analyzer (static lint pass).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_p = sub.add_parser("lint", help="lint Python sources for SPMD hazards")
    lint_p.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    lint_p.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    lint_p.add_argument("--hints", action="store_true",
                        help="append each rule's fix hint to its findings")

    sub.add_parser("rules", help="print the rule catalog")

    args = parser.parse_args(argv)
    if args.command == "rules":
        print(render_catalog())
        return 0

    findings = lint_paths(args.paths)
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format(hint=args.hints))
        n = len(findings)
        tag = "finding" if n == 1 else "findings"
        print(f"repro.check: {n} {tag} in {', '.join(args.paths)}",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
