"""Solver service layer: factorization cache + request batching.

The paper's contribution is amortization — ARD factors the
matrix-valued prefix once and serves ``R`` right-hand sides at
``O(M^2 R)`` each instead of ``O(M^3 R)``.  The one-shot
``solve()``/``factor()`` API leaves realizing that payoff to the
caller; this package *holds* factorizations across requests and turns
the ``O(R)`` reuse into measured throughput for a request stream
(the repeated-RHS workload shape — domain decomposition sweeps,
implicit time stepping, eigenvalue iteration — that motivates
block-tridiagonal solvers in Terekhov, arXiv:1108.4181, and Belov et
al., arXiv:1505.06864).

Three layers, composable and individually testable:

:mod:`repro.service.fingerprint`
    Content-addressed cache keys: matrix fingerprint × method ×
    rank geometry.
:mod:`repro.service.cache`
    :class:`FactorizationCache` — thread-safe LRU with a byte-size
    budget, single-flight factorization, and hit/miss/eviction
    counters.
:mod:`repro.service.batcher` / :mod:`repro.service.service`
    :class:`SolverService` — bounded admission queue, worker threads,
    a :class:`RequestBatcher` that coalesces queued requests against
    the same factorization into one multi-RHS solve, per-request
    deadlines, reject/block backpressure, and graceful drain.

Quick start
-----------
>>> from repro.service import SolverService
>>> from repro.workloads import poisson_block_system, random_rhs
>>> A, _ = poisson_block_system(16, 4)
>>> with SolverService(method="ard", nranks=4) as svc:
...     h = svc.register(A, eager=True)
...     tickets = [svc.submit(h, random_rhs(16, 4, nrhs=1, seed=s))
...                for s in range(8)]
...     xs = [t.result() for t in tickets]
>>> svc.metrics_snapshot()["cache"]["misses"]
1

Benchmark: ``python -m repro.harness serve-bench`` and
``benchmarks/bench_service.py``; architecture notes in
``docs/SERVICE.md``.
"""

from .batcher import RequestBatcher, SolveRequest
from .cache import CacheStats, FactorizationCache
from .fingerprint import factor_key
from .service import FactorHandle, SolverService, SolveTicket

__all__ = [
    "SolverService",
    "FactorHandle",
    "SolveTicket",
    "FactorizationCache",
    "CacheStats",
    "RequestBatcher",
    "SolveRequest",
    "factor_key",
]
