"""Request batching: coalesce single-RHS solves into multi-RHS calls.

The paper's amortization is only realized when right-hand sides reach
the factorization *together*: one ``ARDFactorization.solve(B)`` with
``R`` columns costs one vector-scan round trip, while ``R`` separate
single-column solves cost ``R`` of them.  The batcher therefore holds
each arriving request briefly and flushes all requests targeting the
same cached factorization as one batched solve.

A per-key queue is *ready* to flush when any of:

- its queued RHS column count has reached ``max_batch_rhs``
  (size trigger),
- its oldest request has waited ``window`` seconds (latency trigger —
  the knob trading per-request latency for batching efficiency), or
- the caller forces a flush (service drain).

Keys currently being served are *busy*: their new arrivals accumulate
into the next batch instead of racing a second concurrent solve against
the same factorization — back-to-back batches per key, maximal
coalescing under load.

This class is deliberately lock-free *bookkeeping only*: every method
must be called while holding the owning service's lock (it is the
condition-variable state of :class:`repro.service.service.SolverService`,
not a standalone queue).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any

import numpy as np

__all__ = ["SolveRequest", "RequestBatcher"]


@dataclasses.dataclass
class SolveRequest:
    """One admitted solve request, normalized and awaiting batching.

    Attributes
    ----------
    key:
        Factorization cache key (the batching axis).
    handle:
        The :class:`~repro.service.service.FactorHandle` naming the
        matrix/method/nranks — carried so a cache miss (first use or
        post-eviction) can rebuild the factorization.
    bb / original:
        Right-hand side normalized to ``(N, M, r)`` plus the caller's
        layout for :func:`~repro.linalg.blocktridiag.restore_rhs_shape`.
    future:
        Resolved with the solution (caller layout) or an exception.
    enqueued:
        ``time.monotonic()`` at admission (window trigger + queue-wait
        metrics).
    deadline:
        Absolute ``time.monotonic()`` bound on *queue* time, or
        ``None``; requests still queued past it fail with
        :class:`~repro.exceptions.DeadlineExceededError`.
    trace:
        The request's :class:`~repro.obs.context.TraceContext`
        (trace id + per-request id), minted at admission; the serving
        worker installs it so the batch's spans, log records, and
        nested SPMD runs correlate back to this request.
    """

    key: str
    handle: Any
    bb: np.ndarray
    original: tuple
    future: Future
    enqueued: float
    deadline: float | None = None
    trace: Any = None

    @property
    def nrhs(self) -> int:
        """Number of RHS columns this request contributes."""
        return self.bb.shape[2]


class _KeyQueue:
    """Pending requests for one cache key, in arrival order."""

    __slots__ = ("requests", "rhs_total")

    def __init__(self) -> None:
        self.requests: list[SolveRequest] = []
        self.rhs_total = 0


class RequestBatcher:
    """Per-key pending queues with window/size flush triggers."""

    def __init__(self, window: float = 0.002, max_batch_rhs: int = 128):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch_rhs < 1:
            raise ValueError(f"max_batch_rhs must be >= 1, got {max_batch_rhs}")
        self.window = window
        self.max_batch_rhs = max_batch_rhs
        # Key order tracks each queue's oldest pending request (FIFO
        # across keys): re-inserted on partial flush, so iteration
        # order is oldest-first.
        self._queues: OrderedDict[str, _KeyQueue] = OrderedDict()
        self._busy: set[str] = set()
        self.pending_requests = 0
        self.pending_rhs = 0

    # -- producer side -----------------------------------------------------

    def put(self, request: SolveRequest) -> None:
        """Queue one request under its key."""
        q = self._queues.get(request.key)
        if q is None:
            q = self._queues[request.key] = _KeyQueue()
        q.requests.append(request)
        q.rhs_total += request.nrhs
        self.pending_requests += 1
        self.pending_rhs += request.nrhs

    # -- consumer side -----------------------------------------------------

    def _ready(self, q: _KeyQueue, now: float, flush_all: bool) -> bool:
        if flush_all or q.rhs_total >= self.max_batch_rhs:
            return True
        return now - q.requests[0].enqueued >= self.window

    def take(self, now: float, flush_all: bool = False
             ) -> list[SolveRequest] | None:
        """Claim the oldest ready batch, marking its key busy.

        Returns up to ``max_batch_rhs`` RHS columns of requests for one
        key (always at least one request), or ``None`` if nothing is
        ready.  The caller must :meth:`release` the key when the batch
        has been served.
        """
        for key, q in self._queues.items():
            if key in self._busy or not self._ready(q, now, flush_all):
                continue
            batch: list[SolveRequest] = []
            taken_rhs = 0
            while q.requests and (not batch
                                  or taken_rhs + q.requests[0].nrhs
                                  <= self.max_batch_rhs):
                req = q.requests.pop(0)
                taken_rhs += req.nrhs
                batch.append(req)
            q.rhs_total -= taken_rhs
            self.pending_requests -= len(batch)
            self.pending_rhs -= taken_rhs
            if q.requests:
                # Leftovers start a fresh window at the back of the
                # key order (their own arrival times still bound it).
                self._queues.move_to_end(key)
            else:
                del self._queues[key]
            self._busy.add(key)
            return batch
        return None

    def release(self, key: str) -> None:
        """Un-busy ``key`` after its batch was served."""
        self._busy.discard(key)

    def expedite(self) -> None:
        """Expire every pending window immediately (explicit flush).

        Backdates each queued request's arrival by one window, so the
        next :meth:`take` sees every non-busy key as ready without
        special-casing the readiness logic.
        """
        for q in self._queues.values():
            for req in q.requests:
                req.enqueued -= self.window

    def next_ready_in(self, now: float) -> float | None:
        """Seconds until the earliest non-busy window expires.

        ``None`` when nothing pending can become ready by time alone
        (empty, or all pending keys busy) — the caller then waits for a
        put/release notification instead of polling.
        """
        earliest: float | None = None
        for key, q in self._queues.items():
            if key in self._busy:
                continue
            expires = q.requests[0].enqueued + self.window
            if earliest is None or expires < earliest:
                earliest = expires
        return None if earliest is None else max(0.0, earliest - now)

    @property
    def idle(self) -> bool:
        """True when nothing is pending and nothing is being served."""
        return not self._queues and not self._busy

    def drain_pending(self) -> list[SolveRequest]:
        """Remove and return every pending request (abandon drain)."""
        out: list[SolveRequest] = []
        for q in self._queues.values():
            out.extend(q.requests)
        self._queues.clear()
        self.pending_requests = 0
        self.pending_rhs = 0
        return out
