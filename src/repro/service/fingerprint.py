"""Cache keys for factorizations.

A factorization is reusable only for an *identical solve configuration*:
the same matrix contents, the same method, and — for the distributed
methods — the same simulated rank geometry (an
:class:`~repro.core.ard.ARDFactorization` built with ``nranks=4``
stores four rank states and cannot serve a two-rank replay).  The cache
key therefore combines the matrix's content fingerprint
(:meth:`~repro.linalg.blocktridiag.BlockTridiagonalMatrix.fingerprint`)
with the method name and normalized rank count.

Sequential methods (``"thomas"``, ``"cyclic"``) ignore ``nranks``; the
key normalizes theirs to 1 so ``factor_key(A, "thomas", 4)`` and
``factor_key(A, "thomas", 1)`` share one cache entry.
"""

from __future__ import annotations

from ..core.api import FACTOR_METHODS
from ..exceptions import ConfigError, ShapeError
from ..linalg.blocktridiag import BlockTridiagonalMatrix

__all__ = ["factor_key", "DISTRIBUTED_METHODS"]

DISTRIBUTED_METHODS = ("ard", "spike")


def factor_key(matrix: BlockTridiagonalMatrix, method: str,
               nranks: int) -> str:
    """Deterministic cache key for ``factor(matrix, method, nranks)``.

    >>> import numpy as np
    >>> from repro.workloads import poisson_block_system
    >>> A, _ = poisson_block_system(8, 2)
    >>> B = A.copy()
    >>> factor_key(A, "ard", 4) == factor_key(B, "ard", 4)
    True
    >>> factor_key(A, "ard", 4) == factor_key(A, "ard", 2)
    False
    >>> factor_key(A, "thomas", 4) == factor_key(A, "thomas", 1)
    True
    """
    if not isinstance(matrix, BlockTridiagonalMatrix):
        raise ShapeError(
            f"matrix must be a BlockTridiagonalMatrix, got {type(matrix).__name__}"
        )
    if method not in FACTOR_METHODS:
        raise ConfigError(
            f"unknown factor method {method!r}; choose from {FACTOR_METHODS}"
        )
    if nranks < 1:
        raise ShapeError(f"nranks must be >= 1, got {nranks}")
    if method not in DISTRIBUTED_METHODS:
        nranks = 1
    return f"{method}:p{nranks}:{matrix.fingerprint()}"
