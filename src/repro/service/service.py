"""The in-process solver service: cache + batcher + worker pool.

:class:`SolverService` turns the library's one-shot ``factor``/``solve``
calls into a long-lived request-serving component:

- :meth:`~SolverService.register` fingerprints a matrix and returns a
  :class:`FactorHandle` (optionally factoring eagerly through the
  cache);
- :meth:`~SolverService.submit` admits a request ``(handle-or-matrix,
  b)`` and returns a future-backed :class:`SolveTicket`;
- worker threads drain the :class:`~repro.service.batcher.RequestBatcher`,
  resolve the factorization through the single-flight
  :class:`~repro.service.cache.FactorizationCache`, and serve each
  batch as **one** multi-RHS ``factorization.solve(B)`` — the paper's
  ``O(M^2 R)`` amortized solve instead of ``R`` independent passes.

Admission control is explicit: at most ``max_pending`` requests may be
queued; past that the service either raises
:class:`~repro.exceptions.ServiceOverloadError` (``overload="reject"``,
the default — callers see backpressure immediately) or blocks the
submitting thread until space frees (``overload="block"``).  A
per-request ``deadline`` bounds *queue* time: requests still waiting
when it expires fail with
:class:`~repro.exceptions.DeadlineExceededError` without consuming
solve work (a request already picked up is always served — the result
is imminent and discarding it would waste the batch).

Observability: every lifecycle stage is measured.  With ``trace=True``
each worker records ``cat="request"`` spans (``queued`` /
``factor`` / ``solved``) on its own :class:`~repro.obs.tracer.Tracer`
(:meth:`~SolverService.traces` returns the per-worker timelines), and
:meth:`~SolverService.metrics_snapshot` merges the
:class:`~repro.obs.MetricsRegistry` instruments with the cache's
hit/miss/eviction counters into one JSON-serializable dict.

Telemetry pipeline (docs/OBSERVABILITY.md):

- every admitted request gets a :class:`~repro.obs.context.TraceContext`
  child (fresh ``request_id``; the caller's ``trace_id`` is adopted
  when one is active).  The serving worker installs it, so lifecycle
  spans, structured log records (:mod:`repro.obs.log`, component
  ``"service"``), and the nested SPMD rank spans of the solve all share
  one ``trace_id`` — :meth:`~SolverService.write_trace` merges them
  into one Chrome trace;
- ``expose_http=True`` (or a port number) starts a loopback
  :class:`~repro.obs.http.TelemetryServer` with ``/metrics``
  (Prometheus text), ``/healthz``, ``/traces``, ``/critpath``, and
  ``/incidents``;
- ``health=True`` (default: on iff the endpoint is exposed) runs the
  numerical-health probes of :mod:`repro.obs.health`: per-solve
  residual norm, plus pivot growth and a condition estimate once per
  factorization (on the cache-miss path, where their cost amortizes).

Incident capture (docs/INCIDENTS.md): each worker thread carries a
:class:`~repro.obs.flightrec.FlightRecorder` ring recording batch
phases.  On a deadline breach, an admission-reject storm, or a health
``page`` the service snapshots the worker rings into an incident
bundle (:mod:`repro.obs.postmortem`), rate-limited per reason type by
:attr:`SolverService.incident_cooldown_s`; the bundle store is listed
at ``/incidents``.
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any

import numpy as np

from ..comm import CostModel
from ..core.api import FACTOR_METHODS, factor
from ..exceptions import (
    ConfigError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadError,
    ShapeError,
)
from ..linalg.blocktridiag import (
    BlockTridiagonalMatrix,
    reshape_rhs,
    restore_rhs_shape,
)
from ..obs import (
    FlightRecorder,
    HealthThresholds,
    IncidentStore,
    MetricsRegistry,
    RankTrace,
    TelemetryServer,
    Tracer,
    capture_incident,
    classify_reason,
    current_trace_context,
    flight_recording,
    get_logger,
    new_trace_context,
    note_event,
    probe_factor,
    probe_solve,
    trace_context,
)
from .batcher import RequestBatcher, SolveRequest
from .cache import FactorizationCache
from .fingerprint import factor_key

__all__ = ["SolverService", "FactorHandle", "SolveTicket"]

_log = get_logger("service")

#: Traced batches retained for /traces and write_trace (newest wins).
_TRACE_SEGMENT_LIMIT = 32


class _LifecycleTraces:
    """Adapter presenting worker lifecycle timelines to the Chrome
    exporter (which expects ``.traces`` and ``.virtual_time``)."""

    __slots__ = ("traces", "virtual_time")

    def __init__(self, traces: list[RankTrace]):
        self.traces = traces
        self.virtual_time = 0.0


@dataclasses.dataclass(frozen=True)
class FactorHandle:
    """A registered (matrix, method, nranks) triple with its cache key.

    The handle keeps the matrix by reference so the service can
    re-factor after an eviction; it carries no factorization itself —
    ownership stays with the cache.
    """

    matrix: BlockTridiagonalMatrix
    method: str
    nranks: int
    key: str
    #: The planner decision behind this handle when the service runs
    #: with ``method="auto"``; ``None`` for explicit methods.
    plan: Any = None

    @property
    def fingerprint(self) -> str:
        """The matrix content fingerprint portion of the key."""
        return self.key.rsplit(":", 1)[1]


class SolveTicket:
    """Future-backed receipt for one submitted request.

    ``trace_id`` / ``request_id`` identify the request in the
    structured log, the lifecycle spans, and the merged Chrome trace.
    """

    __slots__ = ("key", "nrhs", "trace_id", "request_id", "_future")

    def __init__(self, key: str, nrhs: int, future: Future,
                 trace_id: str | None = None,
                 request_id: str | None = None):
        self.key = key
        self.nrhs = nrhs
        self.trace_id = trace_id
        self.request_id = request_id
        self._future = future

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block for the solution (caller's RHS layout)."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block for completion; the exception if the request failed."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """Whether the request has completed (either way)."""
        return self._future.done()


class SolverService:
    """Thread-safe in-process solve service (factor cache + batching).

    Parameters
    ----------
    method / nranks / cost_model:
        Defaults applied when :meth:`submit` receives a bare matrix
        instead of a :class:`FactorHandle`.  The default method is
        ``"auto"``: the autotuned planner
        (:mod:`repro.perfmodel.planner`) resolves each registered
        matrix to a concrete method/configuration, cached per matrix
        fingerprint alongside the factorization; pass an explicit
        method to opt out.
    workers:
        Worker threads serving batches (>= 1).  Batches for distinct
        keys run concurrently; per key, batches are serialized so a
        factorization never serves two overlapping replays.
    max_pending:
        Admission bound on queued requests.
    overload:
        ``"reject"`` (raise :class:`~repro.exceptions.ServiceOverloadError`)
        or ``"block"`` (wait for queue space).
    batch_window:
        Seconds a request may wait for coalescing partners (the
        latency/batching trade-off; 0 still coalesces whatever
        accumulated while workers were busy).
    max_batch_rhs:
        RHS-column cap per flushed batch.
    cache:
        A shared :class:`~repro.service.cache.FactorizationCache`;
        by default a private 256 MiB one.
    trace:
        Record per-request lifecycle spans on per-worker tracers, run
        the underlying distributed factorizations with per-rank tracing
        enabled, and retain the most recent traced batches for
        :meth:`write_trace` / the ``/traces`` endpoint.
    expose_http:
        Start a loopback :class:`~repro.obs.http.TelemetryServer`
        serving ``/metrics`` (Prometheus text), ``/healthz``, and
        ``/traces``.  ``True`` binds an ephemeral port (read it from
        :attr:`http`), an ``int`` binds that port, ``False`` (default)
        exposes nothing.
    health:
        Numerical-health probing (:mod:`repro.obs.health`): per-solve
        residual gauge plus per-factorization pivot growth and
        condition estimate.  ``True``/``False`` force it, a
        :class:`~repro.obs.health.HealthThresholds` enables it with
        custom warn/page limits, and ``None`` (default) enables it
        exactly when the HTTP endpoint is exposed.

    Example
    -------
    >>> from repro.service import SolverService
    >>> from repro.workloads import poisson_block_system, random_rhs
    >>> A, _ = poisson_block_system(16, 4)
    >>> b = random_rhs(16, 4, nrhs=1, seed=0)
    >>> with SolverService(method="ard", nranks=4) as svc:
    ...     h = svc.register(A)
    ...     x = svc.solve(h, b)
    >>> bool(A.residual(x, b) < 1e-5)
    True
    """

    #: Minimum seconds between captured incidents of the same reason
    #: type — deadline breaches and reject storms recur in bursts and
    #: one bundle per burst is the useful granularity.  Tests lower it
    #: to capture every forced failure.
    incident_cooldown_s = 30.0
    #: An admission-reject storm is this many rejects inside
    #: :attr:`reject_storm_window_s` seconds.
    reject_storm_threshold = 10
    #: See :attr:`reject_storm_threshold`.
    reject_storm_window_s = 1.0

    def __init__(
        self,
        *,
        method: str = "auto",
        nranks: int = 1,
        cost_model: CostModel | None = None,
        workers: int = 2,
        max_pending: int = 256,
        overload: str = "reject",
        batch_window: float = 0.002,
        max_batch_rhs: int = 128,
        cache: FactorizationCache | None = None,
        trace: bool = False,
        expose_http: bool | int = False,
        health: bool | HealthThresholds | None = None,
    ):
        if method not in FACTOR_METHODS:
            raise ConfigError(
                f"unknown factor method {method!r}; choose from {FACTOR_METHODS}"
            )
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        if overload not in ("reject", "block"):
            raise ConfigError(
                f"overload must be 'reject' or 'block', got {overload!r}"
            )
        self.method = method
        self.nranks = nranks
        self.cost_model = cost_model
        self.max_pending = max_pending
        self.overload = overload
        self.trace = trace
        self.cache = cache if cache is not None else FactorizationCache()
        self.metrics = MetricsRegistry()
        if health is None:
            health = expose_http is not False
        if isinstance(health, HealthThresholds):
            self.health_thresholds: HealthThresholds | None = health
        else:
            self.health_thresholds = HealthThresholds() if health else None
        self._last_health: Any | None = None
        self._segments: deque[tuple[str, list[tuple[str, Any]]]] = deque(
            maxlen=_TRACE_SEGMENT_LIMIT)
        self._batcher = RequestBatcher(window=batch_window,
                                       max_batch_rhs=max_batch_rhs)
        #: (matrix fingerprint, nranks) -> resolved Plan, for
        #: ``method="auto"`` — same granularity as the factor cache.
        self._plan_cache: dict[tuple[str, int], Any] = {}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._closing = False
        self._abandon = False
        from ..config import get_config

        cfg = get_config()
        self._flightrecs: list[FlightRecorder | None] = [
            FlightRecorder(i, cfg.flightrec_capacity) if cfg.flightrec
            else None
            for i in range(workers)
        ]
        self._incident_last: dict[str, float] = {}
        self._reject_times: deque[float] = deque(
            maxlen=self.reject_storm_threshold)
        self._tracers = [Tracer(rank=i) for i in range(workers)]
        self._threads = [
            threading.Thread(target=self._worker, args=(i,),
                             name=f"repro-service-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()
        self.http: TelemetryServer | None = None
        if expose_http is not False:
            port = 0 if expose_http is True else int(expose_http)
            self.http = TelemetryServer(
                self.metrics_snapshot,
                health_provider=self._health_snapshot,
                traces_provider=self._trace_snapshot,
                critpath_provider=self._critpath_snapshot,
                incidents_provider=self._incidents_snapshot,
                port=port,
            ).start()
            _log.info("http.started", url=self.http.url)

    # -- registration ------------------------------------------------------

    def register(self, matrix: BlockTridiagonalMatrix, *,
                 method: str | None = None, nranks: int | None = None,
                 eager: bool = False) -> FactorHandle:
        """Fingerprint ``matrix`` and return its :class:`FactorHandle`.

        ``eager=True`` factors immediately through the cache (warming
        it on the caller's thread); otherwise the first request pays
        the factor cost.
        """
        method = self.method if method is None else method
        nranks = self.nranks if nranks is None else nranks
        plan = None
        if method == "auto":
            plan = self._plan_for(matrix, nranks)
            method = plan.method
            nranks = plan.nranks
        handle = FactorHandle(
            matrix=matrix, method=method, nranks=nranks,
            key=factor_key(matrix, method, nranks), plan=plan,
        )
        if eager:
            self._factorization(handle)
        return handle

    def _plan_for(self, matrix: BlockTridiagonalMatrix, nranks: int) -> Any:
        """Resolve (and cache) the planner decision for one matrix.

        The plan is cached per (matrix fingerprint, rank count) —
        exactly the granularity of the factorization cache — so the
        planner runs once per distinct matrix, not once per request.
        The batcher's coalescing width is the representative RHS panel:
        that is the width the service actually solves at.
        """
        from ..core.api import _AUTO_FACTOR_PORTFOLIO
        from ..perfmodel.planner import plan as resolve_plan

        key = (matrix.fingerprint(), nranks)
        with self._lock:
            cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        chosen = resolve_plan(
            matrix.nblocks, matrix.block_size, p=nranks,
            r=self._batcher.max_batch_rhs, dtype=matrix.dtype,
            methods=_AUTO_FACTOR_PORTFOLIO,
        )
        _log.info("plan.selected", fingerprint=key[0], **chosen.to_dict())
        note_event("plan.selected", fingerprint=key[0], **chosen.to_dict())
        self.metrics.counter("plans.resolved").inc()
        with self._lock:
            self._plan_cache[key] = chosen
        return chosen

    def evict(self, target: FactorHandle | str) -> bool:
        """Drop the cached factorization for a handle (or raw key)."""
        key = target.key if isinstance(target, FactorHandle) else target
        return self.cache.evict(key)

    def _factorization(self, handle: FactorHandle) -> tuple[Any, bool]:
        def build() -> Any:
            if handle.plan is None:
                return factor(handle.matrix, method=handle.method,
                              nranks=handle.nranks,
                              cost_model=self.cost_model, trace=self.trace)
            from ..config import config_context

            with config_context(**handle.plan.config_overrides()):
                return factor(handle.matrix, method=handle.method,
                              nranks=handle.nranks,
                              cost_model=self.cost_model, trace=self.trace,
                              backend=handle.plan.comm_backend)

        fact, hit = self.cache.get_or_create(handle.key, build)
        if not hit and self.health_thresholds is not None:
            # Matrix-level probes amortize per cache key: pivot growth
            # and the condition estimate are paid once on the miss path,
            # never per batch.
            self._last_health = probe_factor(
                handle.matrix, fact, thresholds=self.health_thresholds,
                registry=self.metrics,
            )
            self._check_health_page(op="factor")
        return fact, hit

    # -- submission --------------------------------------------------------

    def _as_handle(self, target: FactorHandle | BlockTridiagonalMatrix
                   ) -> FactorHandle:
        if isinstance(target, FactorHandle):
            return target
        if isinstance(target, BlockTridiagonalMatrix):
            return self.register(target)
        raise ShapeError(
            "submit target must be a FactorHandle or BlockTridiagonalMatrix, "
            f"got {type(target).__name__}"
        )

    def submit(self, target: FactorHandle | BlockTridiagonalMatrix,
               b: np.ndarray, *, deadline: float | None = None) -> SolveTicket:
        """Admit one solve request; returns immediately with a ticket.

        Parameters
        ----------
        target:
            A :class:`FactorHandle` from :meth:`register`, or a bare
            matrix (registered on the fly with the service defaults).
        b:
            Right-hand side(s) in any layout accepted by
            :func:`repro.linalg.blocktridiag.reshape_rhs` — a flat
            1-D vector, ``(N, M)``, ``(N*M, R)``, or ``(N, M, R)``.
            The solution comes back in the same layout.
        deadline:
            Optional bound, in seconds from now, on the request's
            *queue* time.
        """
        handle = self._as_handle(target)
        m = handle.matrix
        bb, original = reshape_rhs(b, m.nblocks, m.block_size)
        if deadline is not None and deadline <= 0:
            raise ConfigError(f"deadline must be > 0 seconds, got {deadline}")
        now = time.monotonic()
        # Correlation: adopt the caller's trace (so a traced outer
        # operation owns this request) or mint a fresh one, then derive
        # the per-request child id.
        caller_ctx = current_trace_context()
        req_ctx = (caller_ctx or new_trace_context()).for_request()
        request = SolveRequest(
            key=handle.key, handle=handle, bb=bb, original=original,
            future=Future(), enqueued=now,
            deadline=None if deadline is None else now + deadline,
            trace=req_ctx,
        )
        with self._lock:
            if self._closing:
                raise ServiceClosedError("service is closed to new requests")
            if self._batcher.pending_requests >= self.max_pending:
                if self.overload == "reject":
                    self.metrics.counter("requests.rejected").inc()
                    err = ServiceOverloadError(
                        f"admission queue full ({self.max_pending} pending)"
                    )
                    self._note_reject(err)
                    raise err
                self.metrics.counter("requests.blocked").inc()
                while (self._batcher.pending_requests >= self.max_pending
                       and not self._closing):
                    self._space.wait()
                if self._closing:
                    raise ServiceClosedError("service closed while blocked "
                                             "on admission")
            self._batcher.put(request)
            self.metrics.counter("requests.submitted").inc()
            self.metrics.gauge("queue.depth").set(
                self._batcher.pending_requests)
            self._cond.notify()
        _log.info("request.submitted", key=handle.key, nrhs=request.nrhs,
                  trace_id=req_ctx.trace_id, request_id=req_ctx.request_id)
        return SolveTicket(handle.key, request.nrhs, request.future,
                           trace_id=req_ctx.trace_id,
                           request_id=req_ctx.request_id)

    def solve(self, target: FactorHandle | BlockTridiagonalMatrix,
              b: np.ndarray, *, deadline: float | None = None,
              timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience: ``submit(...).result(timeout)``."""
        return self.submit(target, b, deadline=deadline).result(timeout)

    # -- worker loop -------------------------------------------------------

    def _worker(self, index: int) -> None:
        tracer = self._tracers[index]
        recorder = self._flightrecs[index]
        with flight_recording(recorder):
            while True:
                with self._cond:
                    batch = None
                    while batch is None:
                        if self._abandon:
                            return
                        batch = self._batcher.take(time.monotonic(),
                                                   flush_all=self._closing)
                        if batch is not None:
                            break
                        if self._closing and self._batcher.idle:
                            self._cond.notify_all()
                            return
                        self._cond.wait(
                            timeout=self._batcher.next_ready_in(
                                time.monotonic()))
                    self.metrics.gauge("queue.depth").set(
                        self._batcher.pending_requests)
                    self._space.notify_all()
                try:
                    if recorder is not None:
                        with recorder.phase_span(f"batch:{batch[0].key}"):
                            self._serve(batch, tracer)
                    else:
                        self._serve(batch, tracer)
                finally:
                    with self._cond:
                        self._batcher.release(batch[0].key)
                        self._cond.notify_all()

    @staticmethod
    def _ids_of(req: SolveRequest) -> dict[str, Any]:
        """Correlation attrs of a request for spans and log records."""
        if req.trace is None:
            return {}
        return {"trace_id": req.trace.trace_id,
                "request_id": req.trace.request_id}

    def _serve(self, batch: list[SolveRequest], tracer: Tracer) -> None:
        taken = time.monotonic()
        taken_w = time.perf_counter()
        live: list[SolveRequest] = []
        for req in batch:
            queued_s = taken - req.enqueued
            self.metrics.summary("queued.wall_s").observe(queued_s)
            if self.trace:
                tracer.closed_span(
                    "queued", "request",
                    0.0, 0.0, taken_w - queued_s, taken_w,
                    key=req.key, nrhs=req.nrhs, **self._ids_of(req),
                )
            if req.deadline is not None and taken > req.deadline:
                self.metrics.counter("requests.expired").inc()
                _log.warning("request.expired", key=req.key,
                             queued_s=queued_s, **self._ids_of(req))
                expired = DeadlineExceededError(
                    f"request spent {queued_s * 1e3:.1f} ms queued, past "
                    "its deadline"
                )
                # Capture before resolving the future so a waiter that
                # wakes immediately already sees ``incident_path``.
                self._capture_service_incident(
                    expired, rank=tracer.rank, op="queued",
                    extra={"key": req.key, "queued_s": queued_s,
                           **self._ids_of(req)})
                req.future.set_exception(expired)
            else:
                live.append(req)
        if not live:
            return
        lead = live[0]
        try:
            # The batch executes under the lead request's TraceContext:
            # the nested SPMD runs (factor/solve), health probes, and
            # log records all inherit its trace_id.
            with trace_context(lead.trace):
                t0 = time.perf_counter()
                fact, hit = self._factorization(lead.handle)
                t1 = time.perf_counter()
                if not hit:
                    self.metrics.summary("factor.wall_s").observe(t1 - t0)
                    if self.trace:
                        tracer.closed_span("factor", "request", 0.0, 0.0,
                                           t0, t1, key=lead.key,
                                           **self._ids_of(lead))
                if len(live) == 1:
                    big = lead.bb
                else:
                    big = np.concatenate([r.bb for r in live], axis=2)
                if lead.handle.plan is not None:
                    # Replays honor the planned kernel configuration,
                    # not whatever config the worker thread inherited.
                    from ..config import config_context

                    with config_context(
                            **lead.handle.plan.config_overrides()):
                        x = fact.solve(big)
                else:
                    x = fact.solve(big)
                t2 = time.perf_counter()
                if self.health_thresholds is not None:
                    xx = np.asarray(x).reshape(big.shape)
                    self._last_health = probe_solve(
                        lead.handle.matrix, xx, big,
                        thresholds=self.health_thresholds,
                        registry=self.metrics,
                    )
                    self._check_health_page(op="solve")
        except BaseException as exc:
            self.metrics.counter("requests.failed").inc(len(live))
            _log.error("request.failed", message=str(exc), key=lead.key,
                       batch=len(live), **self._ids_of(lead))
            self._capture_service_incident(
                exc, rank=tracer.rank, op="serve",
                extra={"key": lead.key, "batch": len(live),
                       **self._ids_of(lead)})
            for req in live:
                req.future.set_exception(exc)
            return
        nrhs = big.shape[2]
        if hit:
            # Request-level amortization: everything in this batch rode
            # a factorization someone else already paid for.
            self.metrics.counter("requests.served_from_cache").inc(len(live))
        self.metrics.counter("batches").inc()
        self.metrics.counter("rhs.solved").inc(nrhs)
        self.metrics.summary("batch.size").observe(nrhs)
        self.metrics.summary("solve.wall_s").observe(t2 - t1)
        if self.trace:
            tracer.closed_span("solved", "request", 0.0, 0.0, t1, t2,
                               key=lead.key, batch=len(live), nrhs=nrhs,
                               cache_hit=hit, **self._ids_of(lead))
            self._collect_segments(lead, fact)
        col = 0
        for req in live:
            piece = x[:, :, col:col + req.nrhs]
            col += req.nrhs
            req.future.set_result(restore_rhs_shape(piece, req.original))
            self.metrics.counter("requests.completed").inc()
            _log.info("request.served", key=req.key, nrhs=req.nrhs,
                      batch=len(live), cache_hit=hit, **self._ids_of(req))

    def _collect_segments(self, lead: SolveRequest, fact: Any) -> None:
        """Retain the batch's traced SPMD segments for :meth:`write_trace`.

        Sequential factorizations (thomas/cyclic) never run on the
        simulated runtime and contribute nothing.
        """
        solve_result = getattr(fact, "last_solve_result", None)
        if solve_result is None or getattr(solve_result, "traces", None) is None:
            return
        segments: list[tuple[str, Any]] = []
        factor_result = getattr(fact, "factor_result", None)
        if factor_result is not None and getattr(factor_result, "traces",
                                                 None) is not None:
            segments.append(("factor", factor_result))
        segments.append(("solve", solve_result))
        rid = lead.trace.request_id if lead.trace is not None else "?"
        self._segments.append((f"request {rid}", segments))

    def flush(self) -> None:
        """Make every queued request immediately flushable.

        Collapses the remaining batch windows (queued requests stop
        waiting for coalescing partners); batches still respect
        ``max_batch_rhs`` and per-key serialization.
        """
        with self._lock:
            self._batcher.expedite()
            self._cond.notify_all()

    # -- lifecycle ---------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting requests and shut the workers down.

        ``drain=True`` (default) serves everything already queued
        (flushing partial batches immediately); ``drain=False`` fails
        pending requests with
        :class:`~repro.exceptions.ServiceClosedError`.  Idempotent.
        """
        with self._lock:
            self._closing = True
            if not drain:
                self._abandon = True
                abandoned = self._batcher.drain_pending()
            else:
                abandoned = []
            self._cond.notify_all()
            self._space.notify_all()
        for req in abandoned:
            self.metrics.counter("requests.failed").inc()
            req.future.set_exception(
                ServiceClosedError("service closed before this request ran"))
        for t in self._threads:
            t.join(timeout)
        if self.http is not None:
            self.http.stop()
            self.http = None

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=exc == (None, None, None))

    # -- observability -----------------------------------------------------

    def traces(self) -> list[RankTrace]:
        """Per-worker request-lifecycle timelines (``trace=True`` runs)."""
        return [t.finish() for t in self._tracers]

    def write_trace(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write one merged Chrome trace of the service's activity.

        Combines the worker lifecycle timelines (``cat="request"``
        spans, one tid per worker) with the retained per-batch SPMD
        rank timelines (``trace=True`` services only) into one file —
        every event's ``args`` carry the ``trace_id`` of the request
        that produced it, so one solve is followable from admission
        through its rank spans in Perfetto.
        """
        from ..obs import write_chrome_trace

        source: dict[str, Any] = {
            "service lifecycle": [("requests",
                                   _LifecycleTraces(self.traces()))],
        }
        for label, segments in list(self._segments):
            source[label] = segments
        return write_chrome_trace(path, source)

    # -- incident capture --------------------------------------------------

    def _capture_service_incident(self, exc: BaseException | None, *,
                                  rank: int | None = None,
                                  op: str | None = None,
                                  extra: dict[str, Any] | None = None) -> None:
        """Best-effort service-side incident capture (docs/INCIDENTS.md).

        Snapshots every worker's flight-recorder ring into one bundle,
        rate-limited per reason type by :attr:`incident_cooldown_s`.
        ``exc=None`` records a health ``page`` (the one service failure
        with no exception object).  Never raises — capture must not
        mask or delay the failure being reported.
        """
        try:
            from ..config import get_config

            if not get_config().flightrec:
                return
            if exc is not None and getattr(exc, "incident_path",
                                           None) is not None:
                return
            if exc is None:
                report = self._last_health
                reason: dict[str, Any] = {
                    "type": "health_page", "exception": None,
                    "message": "; ".join(report.messages)
                    if report is not None else "health page",
                    "rank": rank, "op": op,
                }
            else:
                reason = classify_reason(exc, rank=rank, op=op)
            now = time.monotonic()
            last = self._incident_last.get(reason["type"])
            if last is not None and now - last < self.incident_cooldown_s:
                return
            self._incident_last[reason["type"]] = now
            rings = {
                i: (rec.snapshot() if rec is not None else None)
                for i, rec in enumerate(self._flightrecs)
            }
            path = capture_incident(
                reason, backend="service", nranks=len(self._flightrecs),
                rings=rings, trace_ctx=current_trace_context(), extra=extra,
            )
            if exc is not None and path is not None:
                exc.incident_path = path
        except Exception:  # pragma: no cover - capture is best-effort
            _log.warning("incident.capture_failed", op=op or "?")

    def _note_reject(self, err: ServiceOverloadError) -> None:
        """Track one admission reject; capture on a reject storm.

        A storm is :attr:`reject_storm_threshold` rejects inside
        :attr:`reject_storm_window_s` seconds — one slow consumer
        bouncing off a full queue is backpressure working as designed,
        a whole window of rejects is an incident.
        """
        now = time.monotonic()
        self._reject_times.append(now)
        if (len(self._reject_times) == self._reject_times.maxlen
                and now - self._reject_times[0] <= self.reject_storm_window_s):
            self._capture_service_incident(
                err, op="admit",
                extra={"rejects": len(self._reject_times),
                       "window_s": now - self._reject_times[0],
                       "max_pending": self.max_pending})

    def _check_health_page(self, *, op: str) -> None:
        """Capture an incident when the latest health probe paged."""
        report = self._last_health
        if report is not None and getattr(report, "status", "ok") == "page":
            self._capture_service_incident(None, op=op)

    def _incidents_snapshot(self) -> dict[str, Any]:
        """The ``/incidents`` document: on-disk bundle summaries,
        newest first (see :class:`repro.obs.postmortem.IncidentStore`)."""
        store = IncidentStore()
        return {
            "enabled": store.enabled,
            "directory": str(store.directory) if store.enabled else None,
            "retention": store.retention,
            "incidents": store.list(),
        }

    def _health_snapshot(self) -> dict[str, Any]:
        """The ``/healthz`` document (see :mod:`repro.obs.health`)."""
        if self.health_thresholds is None:
            return {"status": "ok", "probes": "disabled"}
        if self._last_health is None:
            return {"status": "ok", "probes": "no solves yet",
                    "thresholds": self.health_thresholds.to_dict()}
        return self._last_health.to_dict()

    def _trace_snapshot(self) -> dict[str, Any]:
        """The ``/traces`` document: retained traced batches, newest
        last, plus lifecycle span counts per worker."""
        batches = []
        for label, segments in list(self._segments):
            entry: dict[str, Any] = {"label": label}
            for seg_label, result in segments:
                trace_id = next(
                    (t.trace_id for t in (result.traces or [])
                     if getattr(t, "trace_id", None) is not None), None)
                if trace_id is not None:
                    entry["trace_id"] = trace_id
                entry[seg_label] = {
                    "virtual_time": result.virtual_time,
                    "nranks": result.nranks,
                }
            batches.append(entry)
        return {
            "traces": batches,
            "workers": [{"worker": t.rank, "spans": len(t.spans)}
                        for t in self._tracers],
        }

    def _critpath_snapshot(self) -> dict[str, Any]:
        """The ``/critpath`` document: critical-path analysis of the
        most recently retained traced batch (``trace=True`` services;
        ``{"critpath": None}`` when nothing is retained yet)."""
        from ..obs import analyze_critical_path

        for label, segments in reversed(list(self._segments)):
            report = analyze_critical_path(segments)
            return {"label": label, "critpath": report.to_dict()}
        return {"critpath": None}

    def metrics_snapshot(self) -> dict[str, Any]:
        """Service metrics merged with the cache counters.

        One JSON-serializable dict::

            {"counters": ..., "gauges": ..., "summaries": ...,
             "cache": {"hits": ..., "misses": ..., "hit_rate": ...}}
        """
        snap = self.metrics.snapshot()
        snap["cache"] = self.cache.stats().to_dict()
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SolverService(method={self.method!r}, nranks={self.nranks}, "
                f"workers={len(self._threads)}, "
                f"pending={self._batcher.pending_requests}, "
                f"closed={self._closing})")
