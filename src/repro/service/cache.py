"""Thread-safe factorization cache: LRU, byte budget, single-flight.

The cache holds factored solvers keyed by :func:`~repro.service.fingerprint.factor_key`
so a request stream pays each matrix's ``O(M^3)`` factor cost once and
every later right-hand side only the ``O(M^2)`` solve cost — the
amortization the paper's ARD split exists to enable.

Three properties matter under concurrency:

**Single-flight.**  When many threads miss on the same key at once,
exactly one (the *leader*) builds the factorization; the rest wait on
its completion event and share the result.  A failed build propagates
the leader's exception to every waiter — retrying an already-failing
factorization from each waiter would multiply the damage, not fix it.

**Byte budget.**  Every entry is charged its factorization's ``nbytes``
(all factorization classes expose it); inserting past ``max_bytes``
evicts least-recently-used entries until the budget holds again.  A
single entry larger than the whole budget is still admitted (evicting
everything else) — rejecting it would livelock the request that needs
it.

**Honest counters.**  ``hits`` counts requests served without building
(including single-flight waiters), ``misses`` counts builds, and
``evictions``/``bytes`` track the budget.  :meth:`FactorizationCache.stats`
snapshots them; the solver service merges this into its
:class:`repro.obs.MetricsRegistry` snapshot.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterator

__all__ = ["FactorizationCache", "CacheStats"]

_DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclasses.dataclass
class CacheStats:
    """Point-in-time snapshot of one cache's counters.

    ``hits`` includes single-flight waiters (requests that arrived
    during a build and shared its result without building); ``misses``
    counts actual factorizations performed.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes: int
    max_bytes: int | None
    max_entries: int | None

    @property
    def hit_rate(self) -> float | None:
        """``hits / (hits + misses)``, or ``None`` before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form, including the rate."""
        out = dataclasses.asdict(self)
        out["hit_rate"] = self.hit_rate
        return out


class _InFlight:
    """One in-progress build: waiters block on ``event``."""

    __slots__ = ("event", "fact", "exc")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.fact: Any = None
        self.exc: BaseException | None = None


def _entry_nbytes(fact: Any) -> int:
    """Byte charge for a cached factorization."""
    nbytes = getattr(fact, "nbytes", None)
    return int(nbytes) if nbytes is not None else 0


class FactorizationCache:
    """LRU cache of factorization objects with a byte-size budget.

    Parameters
    ----------
    max_bytes:
        Eviction budget over the entries' ``nbytes`` (default 256 MiB);
        ``None`` disables byte-based eviction.
    max_entries:
        Optional cap on the entry count (handy for deterministic LRU
        tests); ``None`` disables it.

    Example
    -------
    >>> from repro.core.api import factor
    >>> from repro.service import FactorizationCache, factor_key
    >>> from repro.workloads import poisson_block_system
    >>> A, _ = poisson_block_system(8, 2)
    >>> cache = FactorizationCache()
    >>> key = factor_key(A, "thomas", 1)
    >>> f1, hit1 = cache.get_or_create(key, lambda: factor(A, method="thomas"))
    >>> f2, hit2 = cache.get_or_create(key, lambda: factor(A, method="thomas"))
    >>> (hit1, hit2, f1 is f2)
    (False, True, True)
    """

    def __init__(self, max_bytes: int | None = _DEFAULT_MAX_BYTES,
                 max_entries: int | None = None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._inflight: dict[str, _InFlight] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The cached factorization for ``key`` (refreshing its LRU
        position), or ``None``.  Counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def get_or_create(self, key: str,
                      build: Callable[[], Any]) -> tuple[Any, bool]:
        """Return ``(factorization, hit)``, building at most once per key.

        On a miss the calling thread becomes the build leader; threads
        that miss on the same key while the build is in progress wait
        for the leader instead of building again (single-flight) and
        count as hits.  If the leader's ``build()`` raises, every
        waiter re-raises that exception.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry[0], True
                flight = self._inflight.get(key)
                if flight is None:
                    flight = self._inflight[key] = _InFlight()
                    leader = True
                else:
                    leader = False
            if leader:
                try:
                    fact = build()
                except BaseException as exc:
                    with self._lock:
                        flight.exc = exc
                        del self._inflight[key]
                    flight.event.set()
                    raise
                with self._lock:
                    flight.fact = fact
                    del self._inflight[key]
                    self._misses += 1
                    self._insert_locked(key, fact)
                flight.event.set()
                return fact, False
            flight.event.wait()
            if flight.exc is not None:
                raise flight.exc
            if flight.fact is not None:
                with self._lock:
                    self._hits += 1
                    if key in self._entries:
                        self._entries.move_to_end(key)
                return flight.fact, True
            # Leader vanished without result or exception (evicted
            # between set() and our wakeup is impossible — fact is kept
            # on the flight record — so this is unreachable), but loop
            # defensively rather than return None.

    # -- mutation ----------------------------------------------------------

    def put(self, key: str, fact: Any) -> None:
        """Insert (or replace) an entry, applying the eviction budget."""
        with self._lock:
            self._insert_locked(key, fact)

    def evict(self, key: str) -> bool:
        """Drop one entry; ``True`` if it was present.  Counts as an
        (explicit) eviction."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            self._evictions += 1
            return True

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        with self._lock:
            n = len(self._entries)
            self._evictions += n
            self._entries.clear()
            self._bytes = 0
            return n

    def _insert_locked(self, key: str, fact: Any) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        nbytes = _entry_nbytes(fact)
        self._entries[key] = (fact, nbytes)
        self._bytes += nbytes
        while len(self._entries) > 1 and (
            (self.max_bytes is not None and self._bytes > self.max_bytes)
            or (self.max_entries is not None
                and len(self._entries) > self.max_entries)
        ):
            _, (_, dropped) = self._entries.popitem(last=False)
            self._bytes -= dropped
            self._evictions += 1

    # -- introspection -----------------------------------------------------

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Iterator[str]:
        """Cached keys in LRU order (least recent first)."""
        with self._lock:
            return iter(list(self._entries))

    @property
    def nbytes(self) -> int:
        """Current total byte charge of all entries."""
        return self._bytes

    def stats(self) -> CacheStats:
        """Consistent snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes=self._bytes,
                max_bytes=self.max_bytes,
                max_entries=self.max_entries,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (f"FactorizationCache(entries={s.entries}, bytes={s.bytes}, "
                f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})")
