"""Block banded generalization of accelerated recursive doubling.

Extends the paper's tridiagonal algorithm (bandwidth 1) to symmetric
block bandwidth ``b``: the affine-recurrence state grows to ``2bM``,
the closing system to ``bM``, and everything else — traced scan,
replay, factor/solve split, iterative refinement — carries over
unchanged (see :mod:`repro.banded.solver`).
"""

from .matrix import BlockBandedMatrix
from .solver import (
    BandedARDFactorization,
    BandedChunk,
    BandedTransferOperators,
    banded_ard_factor_spmd,
    banded_ard_solve_spmd,
)
from .solver import distribute_banded

__all__ = [
    "BlockBandedMatrix",
    "BandedARDFactorization",
    "BandedChunk",
    "BandedTransferOperators",
    "banded_ard_factor_spmd",
    "banded_ard_solve_spmd",
    "distribute_banded",
]
