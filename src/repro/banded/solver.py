"""Accelerated recursive doubling for block *banded* systems.

The generalization the tridiagonal paper points toward: with symmetric
block bandwidth ``b``, solving row ``i`` for its newest unknown
``x_{i+b}`` yields an order-``2b`` affine recurrence on the state

``t_i = [x_{i+b-1}; x_{i+b-2}; ...; x_{i-b}]``   (``2b`` blocks, newest first)

``t_{i+1} = A_i t_i + [g_i; 0; ...],    g_i = U_i^{-1} d_i``

with ``A_i`` the block companion of ``T_{i,j} = -U_i^{-1} A_{i, b-1-j}``
and ``U_i`` the outermost superdiagonal block (which must be
invertible).  Everything else is *unchanged* from the tridiagonal case:
affine maps of dimension ``2bM`` compose associatively, the traced
Kogge–Stone scan (:mod:`repro.core.scan_affine`, dimension-agnostic) is
reused verbatim for the factor/replay split, and the last ``b`` block
rows close the system with one ``bM x bM`` solve for
``X0 = [x_{b-1}; ...; x_0]``.

Costs: factor ``O((bM)^3 (N/P + log P) / b)``-ish (``2b`` products of
``M x 2bM`` per row locally, ``(2bM)^3`` per scan round), solve
``O((bM)^2 R (N/P + log P) / b)`` — the same R-fold acceleration.

Requirements: ``N >= 2b + 1``, invertible outermost superdiagonal
blocks, bounded transfer growth for accuracy (same law as the
tridiagonal case; iterative refinement applies through the shared
mixin).  Bandwidth 1 reproduces the tridiagonal ARD exactly (tested).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.refine import RefinableFactorization
from ..core.scan_affine import ScanTrace, affine_scan, replay_scan
from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU, gemm
from ..prefix.affine import AffinePair
from ..util.partition import BlockPartition
from .matrix import BlockBandedMatrix

__all__ = [
    "BandedChunk",
    "BandedTransferOperators",
    "BandedARDRankState",
    "distribute_banded",
    "banded_ard_factor_spmd",
    "banded_ard_solve_spmd",
    "BandedARDFactorization",
]

_TAG_CLOSE_COEFF = 501
_TAG_CLOSE_RHS = 502


@dataclasses.dataclass
class BandedChunk:
    """One rank's contiguous block rows of a distributed banded matrix.

    ``rows[c, j]`` is band offset ``c - b`` of global row ``lo + j``.
    """

    nblocks: int
    bandwidth: int
    lo: int
    hi: int
    rows: np.ndarray  # (2b+1, h, M, M)

    def __post_init__(self) -> None:
        b = self.bandwidth
        h = self.hi - self.lo
        if not 0 <= self.lo <= self.hi <= self.nblocks:
            raise ShapeError(
                f"invalid row range [{self.lo}, {self.hi}) for N={self.nblocks}"
            )
        if self.rows.ndim != 4 or self.rows.shape[0] != 2 * b + 1 \
                or self.rows.shape[1] != h:
            raise ShapeError(
                f"rows must be ({2 * b + 1}, {h}, M, M), got {self.rows.shape}"
            )

    @property
    def nrows(self) -> int:
        """Owned block rows ``h``."""
        return self.hi - self.lo

    @property
    def block_size(self) -> int:
        """Block order ``M``."""
        return self.rows.shape[2]

    @property
    def ntransfer(self) -> int:
        """Owned transfer rows: global rows ``i < N - b``."""
        return max(0, min(self.hi, self.nblocks - self.bandwidth) - self.lo)

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the band storage."""
        return self.rows.dtype


def distribute_banded(matrix: BlockBandedMatrix, nranks: int) -> list[BandedChunk]:
    """Split a banded matrix into per-rank row chunks."""
    part = BlockPartition(nblocks=matrix.nblocks, nranks=nranks)
    return [
        BandedChunk(
            nblocks=matrix.nblocks,
            bandwidth=matrix.bandwidth,
            lo=lo,
            hi=hi,
            rows=matrix.bands[:, lo:hi].copy(),
        )
        for lo, hi in part
    ]


class BandedTransferOperators:
    """Per-chunk transfer coefficients ``T_{i,j}`` plus ``U_i`` factors."""

    __slots__ = ("lo", "ntransfer", "block_size", "bandwidth", "t", "ulu", "dtype")

    def __init__(self, chunk: BandedChunk):
        b = chunk.bandwidth
        m = chunk.block_size
        nt = chunk.ntransfer
        self.lo = chunk.lo
        self.ntransfer = nt
        self.block_size = m
        self.bandwidth = b
        self.dtype = chunk.dtype
        if nt > 0:
            outer = chunk.rows[2 * b, :nt]  # offset +b coefficients
            self.ulu = BatchedLU(outer, block_offset=chunk.lo)
            # T[i, j] = -U_i^{-1} A_{i, b-1-j}: coefficient of state slot j.
            self.t = np.empty((nt, 2 * b, m, m), dtype=chunk.dtype)
            for j in range(2 * b):
                offset_index = b + (b - 1 - j)  # band array index of A_{i, b-1-j}
                self.t[:, j] = -self.ulu.solve(chunk.rows[offset_index, :nt])
        else:
            self.ulu = None
            self.t = np.empty((0, 2 * b, m, m), dtype=chunk.dtype)

    def g(self, d_rows: np.ndarray) -> np.ndarray:
        """``g_i = U_i^{-1} d_i`` for the chunk's transfer rows."""
        if self.ntransfer == 0:
            return np.empty(
                (0, self.block_size, d_rows.shape[2] if d_rows.ndim == 3 else 1),
                dtype=self.dtype,
            )
        return self.ulu.solve(np.asarray(d_rows)[: self.ntransfer])


def _matrix_aggregate(ops: BandedTransferOperators) -> np.ndarray:
    """Composed matrix part of the chunk's transfers, ``(2bM, 2bM)``.

    Exploits the companion structure: only the top block row is new each
    step, the rest shift down — ``2b`` products of ``(M, 2bM)`` per row.
    """
    b, m = ops.bandwidth, ops.block_size
    dim = 2 * b * m
    window = [np.zeros((m, dim), dtype=ops.dtype) for _ in range(2 * b)]
    for j in range(2 * b):
        window[j][:, j * m:(j + 1) * m] = np.eye(m, dtype=ops.dtype)
    for i in range(ops.ntransfer):
        new = np.zeros((m, dim), dtype=ops.dtype)
        for j in range(2 * b):
            new += gemm(ops.t[i, j], window[j])
        window = [new] + window[:-1]
    return np.concatenate(window, axis=0)


def _vector_aggregate(ops: BandedTransferOperators, g_rows: np.ndarray
                      ) -> np.ndarray:
    """Composed vector part of the chunk's transfers, ``(2bM, R)``."""
    b, m = ops.bandwidth, ops.block_size
    r = g_rows.shape[2]
    window = [np.zeros((m, r), dtype=ops.dtype) for _ in range(2 * b)]
    for i in range(ops.ntransfer):
        new = g_rows[i].astype(ops.dtype, copy=True)
        for j in range(2 * b):
            new += gemm(ops.t[i, j], window[j])
        window = [new] + window[:-1]
    return np.concatenate(window, axis=0)


def _forward_rows(ops: BandedTransferOperators, g_rows: np.ndarray,
                  entry_state: np.ndarray, nrows: int, skip: int = 0
                  ) -> np.ndarray:
    """Recover the chunk's ``nrows`` solution rows from the entry state.

    ``entry_state`` is ``t_s`` (``2bM x R``) with ``s`` the number of
    transfers preceding this rank; block ``p`` of the state is
    ``x_{s + b - 1 - p}``.  ``skip = lo - s`` is nonzero only for ranks
    whose rows all lie in the transfer-free tail (``lo > N - b``), where
    every output row is read from the state directly; otherwise the
    first ``b`` rows come from the state and the rest from the
    recurrence.
    """
    b, m = ops.bandwidth, ops.block_size
    r = entry_state.shape[1]
    out = np.empty((nrows, m, r), dtype=np.result_type(ops.dtype, entry_state.dtype))
    window = [entry_state[j * m:(j + 1) * m] for j in range(2 * b)]
    first = min(nrows, b - skip)
    for j in range(first):
        out[j] = window[b - 1 - skip - j]
    for step in range(max(0, nrows - first)):
        new = g_rows[step].astype(out.dtype, copy=True)
        for j in range(2 * b):
            new += gemm(ops.t[step, j], window[j])
        window = [new] + window[:-1]
        out[first + step] = new
    return out


@dataclasses.dataclass
class BandedARDRankState:
    """Per-rank stored banded-ARD factorization."""

    chunk: BandedChunk
    ops: BandedTransferOperators
    trace: ScanTrace
    closing_rank: int
    ranges: list[tuple[int, int]]
    closing_lu: BatchedLU | None
    closing_rows: np.ndarray | None  # (b_close, 2b+1, M, M) at closing rank
    closing_positions: list[int] | None  # global indices of closing rows

    @property
    def nbytes(self) -> int:
        """Stored factorization footprint."""
        total = self.ops.t.nbytes + self.trace.nbytes
        if self.ops.ulu is not None:
            total += self.ops.ulu.nbytes
        if self.closing_lu is not None:
            total += self.closing_lu.nbytes
        return total


def _closing_owner_sends(comm, chunk: BandedChunk, ranges, closing_rank,
                         payload_rows: np.ndarray, tag: int):
    """Ship this rank's rows in ``[N-b, N)`` to the closing rank; on the
    closing rank, assemble them in global row order and return them."""
    n, b = chunk.nblocks, chunk.bandwidth
    window_lo = n - b
    my_lo = max(chunk.lo, window_lo)
    if my_lo < chunk.hi and comm.rank != closing_rank:
        comm.send(
            (my_lo, payload_rows[..., my_lo - chunk.lo: chunk.hi - chunk.lo, :, :]),
            closing_rank, tag,
        )
    if comm.rank != closing_rank:
        return None
    pieces: dict[int, np.ndarray] = {}
    if my_lo < chunk.hi:
        pieces[my_lo] = payload_rows[..., my_lo - chunk.lo: chunk.hi - chunk.lo, :, :]
    # Which other ranks own rows in the closing window?
    for rank, (lo, hi) in enumerate(ranges):
        if rank == comm.rank:
            continue
        if max(lo, window_lo) < hi:
            start, piece = comm.recv(source=rank, tag=tag)
            pieces[start] = piece
    ordered = [pieces[k] for k in sorted(pieces)]
    return np.concatenate(ordered, axis=-3)


def banded_ard_factor_spmd(comm, chunk: BandedChunk) -> BandedARDRankState:
    """Factor phase of banded ARD (matrix-only work, once per matrix)."""
    n, b, m = chunk.nblocks, chunk.bandwidth, chunk.block_size
    if n < 2 * b + 1:
        raise ShapeError(
            f"banded ARD needs N >= 2b+1 (N={n}, b={b}); use a dense or "
            "tridiagonal solver for tiny systems"
        )
    ops = BandedTransferOperators(chunk)
    agg = _matrix_aggregate(ops)
    pair = AffinePair(agg, np.zeros((agg.shape[0], 0), dtype=agg.dtype),
                      validate=False)
    result, trace = affine_scan(comm, pair, record=True)
    assert trace is not None

    ranges = comm.allgather((chunk.lo, chunk.hi))
    closing_rank = max(r for r, (lo, hi) in enumerate(ranges) if hi == n and lo < hi)

    closing_lu = None
    closing_rows = None
    closing_positions = None
    coeff = _closing_owner_sends(comm, chunk, ranges, closing_rank,
                                 chunk.rows, _TAG_CLOSE_COEFF)
    if comm.rank == closing_rank:
        closing_rows = coeff  # (2b+1, b, M, M): rows N-b .. N-1
        closing_positions = list(range(n - b, n))
        f_cols = result.inclusive.a[:, : b * m]   # maps X0 -> t_{N-b}
        k_mat = np.zeros((b * m, b * m), dtype=chunk.dtype)
        for r_idx, i in enumerate(closing_positions):
            for k in range(-b, b + 1):
                j = i + k
                if not 0 <= j < n:
                    continue
                coeff_block = closing_rows[b + k, r_idx]
                pos = (n - 1) - j  # block position of x_j inside t_{N-b}
                k_mat[r_idx * m:(r_idx + 1) * m, :] += gemm(
                    coeff_block, f_cols[pos * m:(pos + 1) * m, :]
                )
        closing_lu = BatchedLU(k_mat[None], block_offset=n - 1)
    return BandedARDRankState(
        chunk=chunk, ops=ops, trace=trace, closing_rank=closing_rank,
        ranges=ranges, closing_lu=closing_lu, closing_rows=closing_rows,
        closing_positions=closing_positions,
    )


def banded_ard_solve_spmd(comm, state: BandedARDRankState,
                          d_rows: np.ndarray) -> np.ndarray:
    """Solve phase of banded ARD (matrix–vector work per RHS batch)."""
    chunk = state.chunk
    n, b, m = chunk.nblocks, chunk.bandwidth, chunk.block_size
    d_rows = np.asarray(d_rows)
    if d_rows.ndim != 3 or d_rows.shape[:2] != (chunk.nrows, m):
        raise ShapeError(
            f"rhs rows must be ({chunk.nrows}, {m}, R), got {d_rows.shape}"
        )
    r = d_rows.shape[2]
    g_rows = state.ops.g(d_rows)
    q_agg = _vector_aggregate(state.ops, g_rows)
    q_inc, q_exc = replay_scan(comm, q_agg, state.trace)

    d_close = _closing_owner_sends(
        comm, chunk, state.ranges, state.closing_rank,
        d_rows[None, ...], _TAG_CLOSE_RHS,
    )
    x0 = None
    if comm.rank == state.closing_rank:
        d_close = d_close[0]  # (b, M, R)
        rhs = np.empty((b * m, r), dtype=q_inc.dtype)
        for r_idx, i in enumerate(state.closing_positions):
            acc = d_close[r_idx].astype(q_inc.dtype, copy=True)
            for k in range(-b, b + 1):
                j = i + k
                if not 0 <= j < n:
                    continue
                pos = (n - 1) - j
                acc -= gemm(state.closing_rows[b + k, r_idx],
                            q_inc[pos * m:(pos + 1) * m])
            rhs[r_idx * m:(r_idx + 1) * m] = acc
        x0 = state.closing_lu.solve(
            rhs.reshape(1, b * m, r)
        )[0]
    x0 = comm.bcast(x0, root=state.closing_rank)

    entry = gemm(state.trace.a_exclusive[:, : b * m], x0) + q_exc
    # Entry state is t_s with s = transfers preceding this rank; for
    # ranks entirely inside the transfer-free tail (lo > N - b) the
    # state index saturates at N - b.
    s = min(chunk.lo, n - b)
    return _forward_rows(state.ops, g_rows, entry, chunk.nrows,
                         skip=chunk.lo - s)


class BandedARDFactorization(RefinableFactorization):
    """Driver-level banded ARD: factor once, solve many.

    Example
    -------
    >>> import numpy as np
    >>> from repro.banded import BandedARDFactorization
    >>> from repro.workloads import banded_oscillatory_system, random_rhs
    >>> A, _ = banded_oscillatory_system(24, 3, bandwidth=2)
    >>> F = BandedARDFactorization(A, nranks=4)
    >>> bvec = random_rhs(24, 3, nrhs=5, seed=0)
    >>> bool(A.residual(F.solve(bvec), bvec) < 1e-9)
    True
    """

    def __init__(self, matrix: BlockBandedMatrix, nranks: int = 1,
                 cost_model=None):
        from ..comm import run_spmd

        if not isinstance(matrix, BlockBandedMatrix):
            raise ShapeError(
                f"matrix must be a BlockBandedMatrix, got {type(matrix).__name__}"
            )
        if nranks < 1:
            raise ShapeError(f"nranks must be >= 1, got {nranks}")
        self.matrix = matrix
        self.nblocks = matrix.nblocks
        self.block_size = matrix.block_size
        self.bandwidth = matrix.bandwidth
        self.nranks = nranks
        self.cost_model = cost_model
        self._run_spmd = run_spmd
        chunks = distribute_banded(matrix, nranks)
        self.factor_result = run_spmd(
            banded_ard_factor_spmd, nranks,
            cost_model=cost_model, copy_messages=False,
            rank_args=[(c,) for c in chunks],
        )
        self._states = list(self.factor_result.values)
        self.last_solve_result = None

    @property
    def factor_virtual_time(self) -> float:
        """Modelled parallel time of the factor phase."""
        return self.factor_result.virtual_time

    @property
    def nbytes(self) -> int:
        """Total stored factorization footprint across ranks."""
        return sum(s.nbytes for s in self._states)

    def _solve_normalized(self, bb: np.ndarray) -> np.ndarray:
        part = BlockPartition(nblocks=self.nblocks, nranks=self.nranks)
        d_chunks = [bb[lo:hi].copy() for lo, hi in part]
        result = self._run_spmd(
            banded_ard_solve_spmd, self.nranks,
            cost_model=self.cost_model, copy_messages=False,
            rank_args=[(s, d) for s, d in zip(self._states, d_chunks)],
        )
        self.last_solve_result = result
        pieces = [v for v in result.values if v.shape[0] > 0]
        return np.concatenate(pieces, axis=0)
