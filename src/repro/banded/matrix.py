"""Block banded matrices with symmetric bandwidth ``b``.

Generalizes :class:`repro.linalg.blocktridiag.BlockTridiagonalMatrix`
(the ``b = 1`` case) to ``2b + 1`` block bands: block row ``i`` of
``A x = d`` reads

``sum_{k=-b}^{b}  A_{i,k} x_{i+k} = d_i``   (terms outside ``[0, N)`` absent).

Storage: one array ``bands`` of shape ``(2b + 1, N, M, M)`` where
``bands[b + k, i]`` is the coefficient of ``x_{i+k}`` in row ``i``
(rows whose offset falls outside the matrix hold zero blocks), chosen so
per-row slicing — what the distributed solver needs — is contiguous.
"""

from __future__ import annotations

import numpy as np

from ..config import get_config
from ..exceptions import ShapeError
from ..linalg.blocktridiag import reshape_rhs, restore_rhs_shape

__all__ = ["BlockBandedMatrix"]


class BlockBandedMatrix:
    """Block banded matrix with ``N`` block rows, block size ``M`` and
    symmetric block bandwidth ``b``.

    Parameters
    ----------
    bands:
        ``(2b + 1, N, M, M)`` array as described in the module
        docstring.  Out-of-range band entries must be zero (validated).
    copy:
        Copy the input (default).
    """

    __slots__ = ("bands",)

    def __init__(self, bands: np.ndarray, *, copy: bool = True):
        bands = np.asarray(bands)
        if bands.ndim != 4 or bands.shape[0] % 2 == 0 \
                or bands.shape[2] != bands.shape[3]:
            raise ShapeError(
                f"bands must be (2b+1, N, M, M), got {bands.shape}"
            )
        if bands.shape[1] < 1:
            raise ShapeError("matrix must have at least one block row")
        dtype = bands.dtype
        if dtype.kind not in "fc":
            dtype = get_config().dtype
        self.bands = np.array(bands, dtype=dtype, copy=copy)
        b = self.bandwidth
        n = self.nblocks
        for k in range(-b, b + 1):
            band = self.bands[b + k]
            # Row i references x_{i+k}: invalid when i + k outside [0, N).
            bad_rows = [i for i in range(n)
                        if not 0 <= i + k < n and np.any(band[i] != 0)]
            if bad_rows:
                raise ShapeError(
                    f"band offset {k} has nonzero out-of-range rows {bad_rows}"
                )

    # -- metadata ----------------------------------------------------------

    @property
    def bandwidth(self) -> int:
        """Symmetric block bandwidth ``b``."""
        return (self.bands.shape[0] - 1) // 2

    @property
    def nblocks(self) -> int:
        """Number of block rows ``N``."""
        return self.bands.shape[1]

    @property
    def block_size(self) -> int:
        """Block order ``M``."""
        return self.bands.shape[2]

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the band storage."""
        return self.bands.dtype

    @property
    def shape(self) -> tuple[int, int]:
        """Dense shape ``(N*M, N*M)``."""
        nm = self.nblocks * self.block_size
        return (nm, nm)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_tridiagonal(cls, matrix) -> "BlockBandedMatrix":
        """Adopt a :class:`BlockTridiagonalMatrix` as bandwidth-1 banded."""
        n, m = matrix.nblocks, matrix.block_size
        bands = np.zeros((3, n, m, m), dtype=matrix.dtype)
        bands[1] = matrix.diag
        if n > 1:
            bands[0, 1:] = matrix.lower
            bands[2, :-1] = matrix.upper
        return cls(bands, copy=False)

    @classmethod
    def from_dense(cls, a: np.ndarray, block_size: int, bandwidth: int
                   ) -> "BlockBandedMatrix":
        """Extract a block banded matrix from a dense array.

        Raises :class:`~repro.exceptions.ShapeError` if nonzeros lie
        outside the band.
        """
        a = np.asarray(a)
        m, b = block_size, bandwidth
        if a.ndim != 2 or a.shape[0] != a.shape[1] or a.shape[0] % m:
            raise ShapeError(
                f"dense input must be square with order divisible by {m}"
            )
        n = a.shape[0] // m
        bands = np.zeros((2 * b + 1, n, m, m), dtype=a.dtype)
        for i in range(n):
            for j in range(n):
                block = a[i * m:(i + 1) * m, j * m:(j + 1) * m]
                if abs(j - i) <= b:
                    bands[b + (j - i), i] = block
                elif np.any(block != 0):
                    raise ShapeError(
                        f"nonzero block ({i}, {j}) outside bandwidth {b}"
                    )
        return cls(bands, copy=False)

    # -- operations ----------------------------------------------------------

    def block(self, i: int, j: int) -> np.ndarray:
        """The ``(i, j)`` block (zero outside the band)."""
        n, b = self.nblocks, self.bandwidth
        if not (0 <= i < n and 0 <= j < n):
            raise ShapeError(f"block index ({i}, {j}) out of range")
        if abs(j - i) > b:
            return np.zeros((self.block_size,) * 2, dtype=self.dtype)
        return self.bands[b + (j - i), i]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` (layouts as for the tridiagonal type)."""
        n, m, b = self.nblocks, self.block_size, self.bandwidth
        xb, original = reshape_rhs(x, n, m)
        y = np.zeros_like(xb)
        for k in range(-b, b + 1):
            lo = max(0, -k)
            hi = min(n, n - k)
            if lo < hi:
                y[lo:hi] += np.matmul(self.bands[b + k, lo:hi], xb[lo + k:hi + k])
        return restore_rhs_shape(y, original)

    def residual(self, x: np.ndarray, rhs: np.ndarray, relative: bool = True
                 ) -> float:
        """Max-norm residual ``||A x - rhs||`` (relative by default)."""
        r = np.abs(np.asarray(self.matvec(x)) - np.asarray(rhs)).max()
        if relative:
            scale = np.abs(rhs).max()
            if scale > 0:
                return float(r / scale)
        return float(r)

    def to_dense(self) -> np.ndarray:
        """Materialize the dense matrix (small reference checks only)."""
        n, m, b = self.nblocks, self.block_size, self.bandwidth
        out = np.zeros((n * m, n * m), dtype=self.dtype)
        for k in range(-b, b + 1):
            for i in range(max(0, -k), min(n, n - k)):
                j = i + k
                out[i * m:(i + 1) * m, j * m:(j + 1) * m] = self.bands[b + k, i]
        return out

    def copy(self) -> "BlockBandedMatrix":
        """Deep copy."""
        return BlockBandedMatrix(self.bands, copy=True)

    def allclose(self, other: "BlockBandedMatrix", rtol: float = 1e-12,
                 atol: float = 0.0) -> bool:
        """Elementwise comparison of equal-structure matrices."""
        return (
            self.bands.shape == other.bands.shape
            and bool(np.allclose(self.bands, other.bands, rtol=rtol, atol=atol))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockBandedMatrix(N={self.nblocks}, M={self.block_size}, "
            f"b={self.bandwidth}, dtype={self.dtype})"
        )
