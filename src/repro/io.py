"""Persistence for factorizations and matrices.

The factor-once / solve-many workflow often spans *runs*, not just
calls: a production code factors the operator once and reuses it across
restarts.  These helpers save and load the library's factorization
objects (ARD, SPIKE, Thomas, cyclic reduction) and
:class:`~repro.linalg.blocktridiag.BlockTridiagonalMatrix` instances
with a small versioned envelope so stale files fail loudly instead of
mysteriously.

Format: a pickle stream prefixed by a header dict recording the library
version, the payload class, and problem dimensions.  Like all pickle
formats, load only files you trust.
"""

from __future__ import annotations

import pathlib
import pickle
from typing import Any

from . import __version__
from .exceptions import ReproError

__all__ = ["save", "load", "write_stats_json", "FormatError",
           "SAVABLE_CLASSES", "STATS_SCHEMA_VERSION"]

_MAGIC = "repro-factorization-v1"

#: Version stamped into every ``*.stats.json`` document; bump when the
#: document shape changes incompatibly so downstream consumers (the
#: perf-trajectory gate, dashboards) can dispatch on it.
STATS_SCHEMA_VERSION = 1


class FormatError(ReproError, ValueError):
    """The file is not a repro save file or is incompatible."""


def _savable_classes() -> dict[str, type]:
    from .banded.matrix import BlockBandedMatrix
    from .banded.solver import BandedARDFactorization
    from .core.ard import ARDFactorization
    from .core.cyclic_reduction import CyclicReductionFactorization
    from .core.spike import SpikeFactorization
    from .core.thomas import ThomasFactorization
    from .linalg.blocktridiag import BlockTridiagonalMatrix

    return {
        cls.__name__: cls
        for cls in (
            ARDFactorization,
            SpikeFactorization,
            ThomasFactorization,
            CyclicReductionFactorization,
            BlockTridiagonalMatrix,
            BandedARDFactorization,
            BlockBandedMatrix,
        )
    }


#: Names of the classes :func:`save` accepts.
SAVABLE_CLASSES = tuple(sorted(
    ("ARDFactorization", "SpikeFactorization", "ThomasFactorization",
     "CyclicReductionFactorization", "BlockTridiagonalMatrix",
     "BandedARDFactorization", "BlockBandedMatrix")
))


def save(path: str | pathlib.Path, obj: Any) -> pathlib.Path:
    """Save a factorization or matrix to ``path``.

    Returns the resolved path.  Raises
    :class:`~repro.exceptions.ReproError` for unsupported objects.
    """
    classes = _savable_classes()
    name = type(obj).__name__
    if name not in classes or not isinstance(obj, classes[name]):
        raise ReproError(
            f"cannot save object of type {name}; supported: {SAVABLE_CLASSES}"
        )
    header = {
        "magic": _MAGIC,
        "library_version": __version__,
        "class": name,
        "nblocks": getattr(obj, "nblocks", None),
        "block_size": getattr(obj, "block_size", None),
    }
    path = pathlib.Path(path)
    with open(path, "wb") as fh:
        pickle.dump(header, fh, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def _json_default(obj: Any):
    """Coerce numpy scalars/arrays for ``json.dumps``."""
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(
        f"object of type {type(obj).__name__} is not JSON serializable"
    )


def write_stats_json(path: str | pathlib.Path, obj: Any,
                     extra: dict | None = None) -> pathlib.Path:
    """Write a statistics document as human-diffable JSON.

    ``obj`` may be a plain dict or any object exposing
    ``to_stats_dict()`` / ``to_dict()`` (e.g.
    :class:`~repro.harness.experiments.ExperimentResult`,
    :class:`~repro.comm.stats.SimulationResult`); ``extra`` entries are
    merged on top.  Numpy scalars and arrays are converted.  The
    document is stamped with ``"schema_version"``
    (:data:`STATS_SCHEMA_VERSION`) and a ``"written_at"`` ISO-8601 UTC
    timestamp unless the caller already provided them.  The harness
    writes one ``<exp_id>.stats.json`` per experiment next to its CSV
    output.  Returns the path.
    """
    import datetime
    import json

    if hasattr(obj, "to_stats_dict"):
        obj = obj.to_stats_dict()
    elif hasattr(obj, "to_dict"):
        obj = obj.to_dict()
    if extra:
        obj = {**obj, **extra}
    if isinstance(obj, dict):
        obj = dict(obj)  # never mutate the caller's document
        obj.setdefault("schema_version", STATS_SCHEMA_VERSION)
        obj.setdefault(
            "written_at",
            datetime.datetime.now(datetime.timezone.utc).isoformat(),
        )
    path = pathlib.Path(path)
    path.write_text(json.dumps(obj, indent=2, default=_json_default) + "\n")
    return path


def load(path: str | pathlib.Path, expect: str | None = None) -> Any:
    """Load a previously saved object.

    Parameters
    ----------
    path:
        File written by :func:`save`.
    expect:
        Optional class name to require (e.g. ``"ARDFactorization"``);
        a mismatch raises :class:`FormatError` before unpickling the
        payload.

    Warning
    -------
    Uses :mod:`pickle`: only load files you trust.
    """
    path = pathlib.Path(path)
    with open(path, "rb") as fh:
        try:
            header = pickle.load(fh)
        except Exception as exc:
            raise FormatError(f"{path} is not a repro save file: {exc}") from exc
        if not isinstance(header, dict) or header.get("magic") != _MAGIC:
            raise FormatError(f"{path} is not a repro save file (bad header)")
        name = header.get("class")
        classes = _savable_classes()
        if name not in classes:
            raise FormatError(f"{path} contains unknown class {name!r}")
        if expect is not None and name != expect:
            raise FormatError(
                f"{path} contains {name}, expected {expect}"
            )
        obj = pickle.load(fh)
    if not isinstance(obj, classes[name]):
        raise FormatError(
            f"{path} payload is {type(obj).__name__}, header said {name}"
        )
    return obj
