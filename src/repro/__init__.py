"""repro — Accelerated Recursive Doubling for Block Tridiagonal Systems.

A from-scratch reproduction of S. Seal, *An Accelerated Recursive
Doubling Algorithm for Block Tridiagonal Systems*, IPDPS 2014.

Quick start
-----------
>>> import numpy as np
>>> from repro import BlockTridiagonalMatrix, solve
>>> from repro.workloads import poisson_block_system
>>> A, _ = poisson_block_system(nblocks=32, block_size=4, seed=0)
>>> rng = np.random.default_rng(0)
>>> b = rng.normal(size=(32, 4, 3))          # 3 right-hand sides
>>> x = solve(A, b, method="ard", nranks=4)
>>> float(np.max(np.abs(A.matvec(x) - b))) < 1e-8
True

Layout
------
``repro.core``
    The paper's contribution: recursive doubling (RD), accelerated
    recursive doubling (ARD), plus block Thomas and block cyclic
    reduction baselines.
``repro.comm``
    Simulated SPMD message-passing runtime with virtual-time modelling.
``repro.linalg`` / ``repro.workloads``
    Block linear algebra substrate and workload generators.
``repro.prefix``
    Generic parallel-prefix (scan) framework over semigroups.
``repro.perfmodel`` / ``repro.harness``
    Analytic cost models and the experiment harness that regenerates
    every table/figure in EXPERIMENTS.md.
``repro.obs``
    Per-rank tracing and metrics: phase spans on the virtual and wall
    clocks, phase breakdown reports, Chrome trace export
    (``solve(..., trace=True)``; see docs/OBSERVABILITY.md).
``repro.service``
    In-process solver service for request streams: content-addressed
    factorization cache (LRU + byte budget + single-flight), request
    batching into multi-RHS solves, bounded admission with
    backpressure (see docs/SERVICE.md).
"""

from .config import ReproConfig, config_context, get_config, set_config
from .exceptions import (
    CommError,
    ConfigError,
    DeadlockError,
    ExperimentError,
    RankError,
    ReproError,
    ShapeError,
    SingularBlockError,
    StabilityWarning,
    TagError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "ReproConfig",
    "config_context",
    "get_config",
    "set_config",
    # exceptions
    "ReproError",
    "ShapeError",
    "SingularBlockError",
    "StabilityWarning",
    "CommError",
    "DeadlockError",
    "RankError",
    "TagError",
    "ConfigError",
    "ExperimentError",
    # re-exported lazily below
    "BlockTridiagonalMatrix",
    "solve",
    "factor",
    "fingerprint",
    "ARDFactorization",
    "SolverService",
    "run_spmd",
]


def __getattr__(name: str):
    """Lazily re-export the headline API to keep import time low and
    avoid import cycles while submodules are still being loaded."""
    if name == "BlockTridiagonalMatrix":
        from .linalg.blocktridiag import BlockTridiagonalMatrix

        return BlockTridiagonalMatrix
    if name in ("solve", "factor", "fingerprint"):
        from .core import api

        return getattr(api, name)
    if name == "ARDFactorization":
        from .core.ard import ARDFactorization

        return ARDFactorization
    if name == "SolverService":
        from .service import SolverService

        return SolverService
    if name == "run_spmd":
        from .comm import run_spmd

        return run_spmd
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
