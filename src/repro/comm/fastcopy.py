"""Structure-aware payload copying for the send path.

The runtime copies every payload at send time (``copy_messages=True``)
so in-process sharing cannot mask aliasing bugs that real distributed
memory would expose.  The seed implementation bottomed out in
``copy.deepcopy`` for any object without a ``copy()`` method — which
walks the object graph through pickle-style introspection, orders of
magnitude slower than ``ndarray.copy()`` for the array-of-blocks
payloads this library actually sends.

:func:`fastcopy` replaces that fallback with a structural protocol:

- ``numpy.ndarray`` → ``.copy()`` (one memcpy);
- immutable scalars (``None``/bool/int/float/complex/str/bytes and
  NumPy scalars) → passed through;
- tuples (including namedtuples), lists, dicts → rebuilt with each
  element fast-copied;
- objects with a ``copy()`` method (:class:`~repro.prefix.affine.
  AffinePair`, :class:`~repro.linalg.blockops.BatchedLU`, …) → that
  method;
- dataclasses (scan-record entries and friends) → shallow ``copy.copy``
  with every field fast-copied and re-set (``object.__setattr__``, so
  frozen dataclasses work);
- anything else → ``copy.deepcopy``, *counted*, so
  :class:`~repro.comm.stats.RankStats` (``payload_deepcopies``) and the
  obs layer show exactly how often the slow path still fires.
"""

from __future__ import annotations

import copy as _copy
import dataclasses
from typing import Any

import numpy as np

__all__ = ["fastcopy", "fastcopy_counted"]

_SCALARS = (type(None), bool, int, float, complex, str, bytes, np.generic)

# The protocol branch for a payload class never changes, so it is
# resolved once per type and memoized — the send path then pays one
# dict lookup instead of re-walking the isinstance chain per object
# (payload streams repeat a handful of types millions of times).
_ARRAY, _SCALAR, _NAMEDTUPLE, _TUPLE, _LIST, _DICT, _COPYABLE, \
    _DATACLASS, _DEEP = range(9)
_DISPATCH: dict[type, int] = {}


def _classify(tp: type) -> int:
    if issubclass(tp, np.ndarray):
        return _ARRAY
    if issubclass(tp, _SCALARS):
        return _SCALAR
    if issubclass(tp, tuple):
        return _NAMEDTUPLE if hasattr(tp, "_fields") else _TUPLE
    if issubclass(tp, list):
        return _LIST
    if issubclass(tp, dict):
        return _DICT
    if callable(getattr(tp, "copy", None)):
        return _COPYABLE
    if dataclasses.is_dataclass(tp):
        return _DATACLASS
    return _DEEP


def _walk(obj: Any, counts: list) -> Any:
    tp = obj.__class__
    kind = _DISPATCH.get(tp)
    if kind is None:
        kind = _DISPATCH[tp] = _classify(tp)
    if kind == _ARRAY:
        return obj.copy()
    if kind == _SCALAR:
        return obj
    if kind == _TUPLE:
        return tuple(_walk(item, counts) for item in obj)
    if kind == _NAMEDTUPLE:  # rebuild positionally
        return tp(*(_walk(item, counts) for item in obj))
    if kind == _LIST:
        return [_walk(item, counts) for item in obj]
    if kind == _DICT:
        return {k: _walk(v, counts) for k, v in obj.items()}
    if kind == _COPYABLE:
        return obj.copy()
    if kind == _DATACLASS:
        dup = _copy.copy(obj)
        for f in dataclasses.fields(obj):
            object.__setattr__(dup, f.name, _walk(getattr(obj, f.name), counts))
        return dup
    counts[0] += 1
    return _copy.deepcopy(obj)


def fastcopy_counted(obj: Any) -> tuple[Any, int]:
    """Copy ``obj`` structurally; also return the deepcopy-fallback count.

    The count is the number of sub-objects the protocol did not
    recognize (each handed to ``copy.deepcopy``) — zero for every
    payload type the library sends on its own.
    """
    counts = [0]
    return _walk(obj, counts), counts[0]


def fastcopy(obj: Any) -> Any:
    """Copy ``obj`` so sender and receiver never alias memory."""
    return _walk(obj, [0])
