"""Per-rank statistics and aggregate simulation results."""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

__all__ = ["RankStats", "SimulationResult"]


@dataclasses.dataclass
class RankStats:
    """Counters accumulated by one simulated rank.

    Attributes
    ----------
    virtual_time:
        Final value of the rank's virtual clock (modelled seconds).
    flops:
        Flops recorded by the rank's counter.
    flops_by_kernel:
        Breakdown of ``flops`` by kernel name.
    bytes_sent / msgs_sent:
        Point-to-point traffic originated by this rank (collectives are
        built on point-to-point, so their traffic is included).
    """

    rank: int
    virtual_time: float = 0.0
    flops: int = 0
    flops_by_kernel: dict[str, int] = dataclasses.field(default_factory=dict)
    bytes_sent: int = 0
    msgs_sent: int = 0


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one :func:`repro.comm.runtime.run_spmd` execution.

    Attributes
    ----------
    values:
        Per-rank return values of the SPMD function, indexed by rank.
    stats:
        Per-rank :class:`RankStats`.
    wall_time:
        Real (host) seconds the simulation took to execute.
    """

    values: list[Any]
    stats: list[RankStats]
    wall_time: float

    @property
    def nranks(self) -> int:
        return len(self.values)

    @property
    def virtual_time(self) -> float:
        """Modelled parallel makespan: max final clock across ranks."""
        return max((s.virtual_time for s in self.stats), default=0.0)

    @property
    def total_flops(self) -> int:
        return sum(s.flops for s in self.stats)

    @property
    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_msgs_sent(self) -> int:
        return sum(s.msgs_sent for s in self.stats)

    def value(self, rank: int = 0) -> Any:
        """Return value of ``rank`` (root by default)."""
        return self.values[rank]

    def flops_by_kernel(self) -> dict[str, int]:
        """Aggregate kernel-level flop breakdown over all ranks."""
        out: dict[str, int] = {}
        for s in self.stats:
            for kernel, flops in s.flops_by_kernel.items():
                out[kernel] = out.get(kernel, 0) + flops
        return out

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"P={self.nranks} T_virtual={self.virtual_time:.3e}s "
            f"flops={self.total_flops:.3e} msgs={self.total_msgs_sent} "
            f"bytes={self.total_bytes_sent} wall={self.wall_time:.3f}s"
        )


def as_values(result: "SimulationResult | Sequence[Any]") -> list[Any]:
    """Normalize either a result object or a plain list into values."""
    if isinstance(result, SimulationResult):
        return result.values
    return list(result)
