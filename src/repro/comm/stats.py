"""Per-rank statistics and aggregate simulation results."""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

__all__ = ["RankStats", "SimulationResult", "as_values"]


@dataclasses.dataclass
class RankStats:
    """Counters accumulated by one simulated rank.

    Attributes
    ----------
    virtual_time:
        Final value of the rank's virtual clock (modelled seconds).
    flops:
        Flops recorded by the rank's counter.
    flops_by_kernel:
        Breakdown of ``flops`` by kernel name.
    bytes_sent / msgs_sent:
        Point-to-point traffic originated by this rank (collectives are
        built on point-to-point, so their traffic is included).
    payload_copies / payload_deepcopies:
        Send-path copy accounting (``copy_messages=True`` runs only):
        messages whose payload was copied at post time, and how many
        sub-objects within them fell through the structural
        :func:`~repro.comm.fastcopy.fastcopy` protocol to
        ``copy.deepcopy``.  A nonzero deepcopy count means some payload
        type should be taught to the protocol.  The process backend
        counts a deepcopy whenever a payload serialized without any
        out-of-band buffer (its analogous slow path).
    shm_sends / shm_bytes:
        Process-backend transport accounting: messages whose NumPy
        payload crossed through a shared-memory segment (zero-copy
        receive), and the total segment bytes.  Always zero under the
        thread backend.
    coll_counts / coll_bytes:
        Per-collective call counts and the point-to-point bytes this
        rank sent *inside* each collective (``bcast`` / ``allgather`` /
        ``allreduce`` / ``scan`` / …), keyed by collective name.  Only
        the outermost user-facing call is counted: ``allgather`` does
        not additionally count its internal ``gather`` + ``bcast``.
    """

    rank: int
    virtual_time: float = 0.0
    flops: int = 0
    flops_by_kernel: dict[str, int] = dataclasses.field(default_factory=dict)
    bytes_sent: int = 0
    msgs_sent: int = 0
    payload_copies: int = 0
    payload_deepcopies: int = 0
    shm_sends: int = 0
    shm_bytes: int = 0
    coll_counts: dict[str, int] = dataclasses.field(default_factory=dict)
    coll_bytes: dict[str, int] = dataclasses.field(default_factory=dict)

    def record_collective(self, name: str, nbytes: int) -> None:
        """Count one user-facing collective call and its p2p bytes."""
        self.coll_counts[name] = self.coll_counts.get(name, 0) + 1
        self.coll_bytes[name] = self.coll_bytes.get(name, 0) + int(nbytes)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dict of all counters."""
        return {
            "rank": self.rank,
            "virtual_time": self.virtual_time,
            "flops": int(self.flops),
            "flops_by_kernel": {k: int(v)
                                for k, v in self.flops_by_kernel.items()},
            "bytes_sent": int(self.bytes_sent),
            "msgs_sent": int(self.msgs_sent),
            "payload_copies": int(self.payload_copies),
            "payload_deepcopies": int(self.payload_deepcopies),
            "shm_sends": int(self.shm_sends),
            "shm_bytes": int(self.shm_bytes),
            "coll_counts": dict(self.coll_counts),
            "coll_bytes": dict(self.coll_bytes),
        }


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one :func:`repro.comm.runtime.run_spmd` execution.

    Attributes
    ----------
    values:
        Per-rank return values of the SPMD function, indexed by rank.
    stats:
        Per-rank :class:`RankStats`.
    wall_time:
        Real (host) seconds the simulation took to execute.
    traces:
        Per-rank :class:`repro.obs.tracer.RankTrace` timelines when the
        simulation ran with ``trace=True``; ``None`` otherwise.
    trace_id:
        Correlation id of the :class:`repro.obs.context.TraceContext`
        this run executed under (adopted from the caller or minted when
        tracing); ``None`` for uncorrelated runs.
    backend:
        Execution backend that produced this result: ``"threads"``
        (virtual-time reference) or ``"processes"`` (true multi-core;
        ``wall_time`` is then a real parallel measurement).
    """

    values: list[Any]
    stats: list[RankStats]
    wall_time: float
    traces: list[Any] | None = None
    trace_id: str | None = None
    backend: str = "threads"

    @property
    def nranks(self) -> int:
        return len(self.values)

    @property
    def virtual_time(self) -> float:
        """Modelled parallel makespan: max final clock across ranks."""
        return max((s.virtual_time for s in self.stats), default=0.0)

    @property
    def total_flops(self) -> int:
        return sum(s.flops for s in self.stats)

    @property
    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_msgs_sent(self) -> int:
        return sum(s.msgs_sent for s in self.stats)

    def value(self, rank: int = 0) -> Any:
        """Return value of ``rank`` (root by default)."""
        return self.values[rank]

    def flops_by_kernel(self) -> dict[str, int]:
        """Aggregate kernel-level flop breakdown over all ranks."""
        out: dict[str, int] = {}
        for s in self.stats:
            for kernel, flops in s.flops_by_kernel.items():
                out[kernel] = out.get(kernel, 0) + flops
        return out

    def collective_counts(self) -> dict[str, int]:
        """Aggregate per-collective call counts over all ranks."""
        out: dict[str, int] = {}
        for s in self.stats:
            for name, count in s.coll_counts.items():
                out[name] = out.get(name, 0) + count
        return out

    def collective_bytes(self) -> dict[str, int]:
        """Aggregate per-collective p2p bytes over all ranks."""
        out: dict[str, int] = {}
        for s in self.stats:
            for name, nbytes in s.coll_bytes.items():
                out[name] = out.get(name, 0) + nbytes
        return out

    def phase_report(self, label: str = "run"):
        """Build a :class:`repro.obs.report.PhaseReport` from this
        result's traces; ``None`` when the run was not traced."""
        from ..obs.report import build_phase_report

        return build_phase_report([(label, self)])

    def to_dict(self, include_ranks: bool = True) -> dict[str, Any]:
        """JSON-serializable summary (excludes ``values`` / ``traces``).

        ``include_ranks=False`` drops the per-rank detail, leaving only
        the aggregates — handy for compact trajectory logs.
        """
        out: dict[str, Any] = {
            "nranks": self.nranks,
            "backend": self.backend,
            "virtual_time": self.virtual_time,
            "wall_time": self.wall_time,
            "total_flops": int(self.total_flops),
            "total_bytes_sent": int(self.total_bytes_sent),
            "total_msgs_sent": int(self.total_msgs_sent),
            "flops_by_kernel": {k: int(v)
                                for k, v in self.flops_by_kernel().items()},
            "collective_counts": self.collective_counts(),
            "collective_bytes": self.collective_bytes(),
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if include_ranks:
            out["ranks"] = [s.to_dict() for s in self.stats]
        return out

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"P={self.nranks} T_virtual={self.virtual_time:.3e}s "
            f"flops={self.total_flops:.3e} msgs={self.total_msgs_sent} "
            f"bytes={self.total_bytes_sent} wall={self.wall_time:.3f}s"
        )


def as_values(result: "SimulationResult | Sequence[Any]") -> list[Any]:
    """Normalize either a result object or a plain list into values."""
    if isinstance(result, SimulationResult):
        return result.values
    return list(result)
