"""Thread-based SPMD runtime with virtual-time accounting.

:func:`run_spmd` executes one Python function on ``nranks`` simulated
ranks (one thread each).  Ranks communicate through an in-process
mailbox fabric with MPI-like matching (communicator, source, tag) and
carry :class:`~repro.comm.clock.VirtualClock` instances so that the
simulation yields a modelled parallel makespan in addition to real
results (see DESIGN.md, "Hardware substitution").

Key properties
--------------
- **Deterministic virtual time.**  Clocks advance from counted flops and
  modelled message latencies only; host thread scheduling cannot change
  the virtual makespan because receives advance to the *modelled*
  arrival time of the matched message.
- **Deadlock detection.**  When every live rank is blocked on a receive
  and no message has been delivered for ``deadlock_timeout`` real
  seconds, the runtime aborts all ranks with
  :class:`~repro.exceptions.DeadlockError` instead of hanging the test
  suite.
- **Value semantics.**  Message payloads are copied at send time by
  default, so in-process sharing cannot mask bugs that real distributed
  memory would expose.
"""

from __future__ import annotations

import copy as _copy
import itertools
import threading
import time
from typing import Any, Callable, Sequence

import numpy as np

from ..exceptions import CommError, DeadlockError
from ..obs.tracer import Tracer, tracing
from ..util.flops import FlopCounter, counting_flops
from .clock import VirtualClock
from .costmodel import CostModel, DEFAULT_COST_MODEL, payload_nbytes
from .stats import RankStats, SimulationResult

__all__ = ["Runtime", "RankContext", "run_spmd", "CommAborted"]


class CommAborted(CommError):
    """Raised in ranks blocked on communication when the simulation is
    aborted because another rank failed (or a deadlock was detected)."""


class _Message:
    """Internal envelope for one point-to-point message."""

    __slots__ = ("comm_key", "source", "tag", "payload", "nbytes", "arrival_time", "seq")

    def __init__(self, comm_key, source, tag, payload, nbytes, arrival_time, seq):
        self.comm_key = comm_key
        self.source = source
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.arrival_time = arrival_time
        self.seq = seq


def _copy_payload(obj: Any) -> Any:
    """Copy a payload so sender and receiver never alias memory."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes, np.generic)):
        return obj
    if isinstance(obj, tuple):
        return tuple(_copy_payload(item) for item in obj)
    if isinstance(obj, list):
        return [_copy_payload(item) for item in obj]
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    clone = getattr(obj, "copy", None)
    if callable(clone):
        return clone()
    return _copy.deepcopy(obj)


class RankContext:
    """Per-rank simulation state: clock, flop counter, statistics."""

    __slots__ = ("rank", "clock", "counter", "stats", "runtime", "tracer",
                 "coll_depth")

    def __init__(self, rank: int, runtime: "Runtime"):
        self.rank = rank
        self.runtime = runtime
        self.counter = FlopCounter()
        self.clock = VirtualClock(runtime.cost_model, self.counter)
        self.stats = RankStats(rank=rank)
        self.tracer = (
            Tracer(rank=rank, clock=self.clock, counter=self.counter,
                   stats=self.stats)
            if runtime.trace else None
        )
        # Collective nesting depth: user-facing collectives compose
        # (allgather = gather + bcast), so only depth-0 entries count.
        self.coll_depth = 0

    def finalize_stats(self) -> RankStats:
        self.clock.sync_compute()
        self.stats.virtual_time = self.clock.now
        self.stats.flops = self.counter.total
        self.stats.flops_by_kernel = self.counter.snapshot()
        return self.stats


class Runtime:
    """Mailbox fabric shared by all ranks of one simulation.

    Not constructed directly by users; :func:`run_spmd` owns the
    lifecycle.  All shared state is guarded by a single condition
    variable — message granularity in this library is coarse (block
    matrices), so one lock is not a bottleneck.
    """

    def __init__(
        self,
        nranks: int,
        cost_model: CostModel,
        *,
        copy_messages: bool = True,
        deadlock_timeout: float = 5.0,
        poll_interval: float = 0.05,
        trace: bool = False,
    ):
        if nranks <= 0:
            raise CommError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.cost_model = cost_model
        self.copy_messages = copy_messages
        self.trace = trace
        self.deadlock_timeout = deadlock_timeout
        self.poll_interval = poll_interval
        self._cond = threading.Condition()
        self._inboxes: list[list[_Message]] = [[] for _ in range(nranks)]
        self._n_live = nranks
        self._n_blocked = 0
        self._abort: BaseException | None = None
        self._last_progress = time.monotonic()
        self._seq = itertools.count()
        self.contexts = [RankContext(r, self) for r in range(nranks)]

    # -- sending ---------------------------------------------------------

    def post(self, ctx: RankContext, comm_key, dest_world: int, source_commrank: int,
             tag: int, payload: Any) -> None:
        """Deposit a message into ``dest_world``'s inbox (eager send)."""
        if not 0 <= dest_world < self.nranks:
            raise CommError(f"destination {dest_world} out of range")
        ctx.clock.sync_compute()
        ctx.clock.charge_overhead()
        if self.copy_messages:
            payload = _copy_payload(payload)
        nbytes = payload_nbytes(payload)
        arrival = ctx.clock.now + self.cost_model.message_time(nbytes)
        ctx.stats.bytes_sent += nbytes
        ctx.stats.msgs_sent += 1
        if ctx.tracer is not None:
            ctx.tracer.instant("send", dest=dest_world, tag=tag, nbytes=nbytes)
        msg = _Message(comm_key, source_commrank, tag, payload, nbytes, arrival, next(self._seq))
        with self._cond:
            if self._abort is not None:
                raise CommAborted("simulation aborted") from self._abort
            self._inboxes[dest_world].append(msg)
            self._last_progress = time.monotonic()
            self._cond.notify_all()

    # -- receiving -------------------------------------------------------

    def _find(self, inbox: list[_Message], comm_key, source: int, tag: int) -> _Message | None:
        for i, msg in enumerate(inbox):
            if msg.comm_key != comm_key:
                continue
            if source >= 0 and msg.source != source:
                continue
            if tag >= 0 and msg.tag != tag:
                continue
            return inbox.pop(i)
        return None

    def match(self, ctx: RankContext, comm_key, source: int, tag: int) -> _Message:
        """Block until a matching message arrives; return it.

        ``source``/``tag`` of ``-1`` act as wildcards (ANY_SOURCE /
        ANY_TAG).  Matching is in arrival order among candidates.
        """
        v_wait = ctx.clock.sync_compute()
        w_wait = time.perf_counter() if ctx.tracer is not None else 0.0
        inbox = self._inboxes[ctx.rank]
        with self._cond:
            while True:
                if self._abort is not None:
                    raise CommAborted("simulation aborted") from self._abort
                msg = self._find(inbox, comm_key, source, tag)
                if msg is not None:
                    self._last_progress = time.monotonic()
                    break
                self._n_blocked += 1
                try:
                    self._cond.wait(timeout=self.poll_interval)
                finally:
                    self._n_blocked -= 1
                if self._abort is not None:
                    raise CommAborted("simulation aborted") from self._abort
                self._check_deadlock_locked()
        ctx.clock.charge_overhead()
        ctx.clock.advance_to(msg.arrival_time)
        if ctx.tracer is not None:
            ctx.tracer.closed_span(
                "recv", "comm", v_wait, ctx.clock.now,
                w_wait, time.perf_counter(),
                source=msg.source, tag=msg.tag, nbytes=msg.nbytes,
            )
        return msg

    def _check_deadlock_locked(self) -> None:
        """Abort if every live rank is blocked and nothing has moved."""
        # Caller holds the lock and is itself about to block again, so it
        # counts as blocked for the all-ranks-stuck test.
        if self._n_blocked + 1 < self._n_live:
            return
        if time.monotonic() - self._last_progress < self.deadlock_timeout:
            return
        pending = sum(len(box) for box in self._inboxes)
        err = DeadlockError(
            f"all {self._n_live} live rank(s) blocked on receives with no "
            f"progress for {self.deadlock_timeout:.1f}s "
            f"({pending} unmatched message(s) in flight)"
        )
        self._abort = err
        self._cond.notify_all()
        raise err

    # -- lifecycle -------------------------------------------------------

    def rank_finished(self) -> None:
        with self._cond:
            self._n_live -= 1
            self._last_progress = time.monotonic()
            self._cond.notify_all()

    def abort(self, exc: BaseException) -> None:
        """Abort the simulation; blocked ranks raise :class:`CommAborted`."""
        with self._cond:
            if self._abort is None:
                self._abort = exc
            self._cond.notify_all()


def run_spmd(
    fn: Callable[..., Any],
    nranks: int,
    *args: Any,
    cost_model: CostModel | None = None,
    copy_messages: bool = True,
    deadlock_timeout: float = 5.0,
    rank_args: Sequence[tuple] | None = None,
    count_flops: bool = True,
    trace: bool = False,
    **kwargs: Any,
) -> SimulationResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    fn:
        The SPMD program.  Its first argument is the rank's
        :class:`repro.comm.communicator.Communicator`.
    nranks:
        Number of simulated ranks (threads).  ``nranks == 1`` executes
        on the calling thread with no thread spawn.
    cost_model:
        Machine model for virtual time; defaults to
        :data:`repro.comm.costmodel.DEFAULT_COST_MODEL`.
    copy_messages:
        Copy payloads at send time (distributed-memory semantics).
        Disable only for trusted benchmark inner loops.
    deadlock_timeout:
        Real seconds of global stall before raising
        :class:`~repro.exceptions.DeadlockError`.
    rank_args:
        Optional per-rank extra positional arguments: ``rank_args[r]``
        is appended after ``args`` for rank ``r``.
    count_flops:
        Enable flop accounting inside every rank (default on: the
        virtual-time model derives compute time from counted flops).
        Workers otherwise inherit the caller's configuration.
    trace:
        Give every rank a :class:`repro.obs.tracer.Tracer` (installed
        thread-locally for the duration of ``fn``) and return the
        per-rank timelines on ``SimulationResult.traces``.  Off by
        default; when off, instrumented code pays only the no-op span
        guard.

    Returns
    -------
    SimulationResult
        Per-rank return values and statistics (plus traces when
        ``trace=True``).

    Raises
    ------
    Exception
        The first (lowest-rank) exception raised inside ``fn`` is
        re-raised in the caller after all ranks have stopped.
    """
    import dataclasses as _dc

    from ..config import get_config, install_config
    from .communicator import Communicator  # deferred: avoids import cycle

    worker_config = _dc.replace(get_config(), flop_counting=count_flops)
    if rank_args is not None and len(rank_args) != nranks:
        raise CommError(
            f"rank_args has {len(rank_args)} entries for {nranks} ranks"
        )
    runtime = Runtime(
        nranks,
        cost_model or DEFAULT_COST_MODEL,
        copy_messages=copy_messages,
        deadlock_timeout=deadlock_timeout,
        trace=trace,
    )
    values: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks
    start = time.perf_counter()

    def worker(rank: int) -> None:
        ctx = runtime.contexts[rank]
        comm = Communicator(runtime, ctx, comm_key=("world",), group=list(range(nranks)), rank=rank)
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        previous_config = get_config()
        install_config(worker_config)
        try:
            with counting_flops(ctx.counter):
                if ctx.tracer is not None:
                    with tracing(ctx.tracer):
                        values[rank] = fn(comm, *args, *extra, **kwargs)
                else:
                    values[rank] = fn(comm, *args, *extra, **kwargs)
        except CommAborted as exc:
            errors[rank] = exc
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            runtime.abort(exc)
        finally:
            ctx.finalize_stats()
            runtime.rank_finished()
            install_config(previous_config)

    if nranks == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(r,), name=f"repro-rank-{r}", daemon=True)
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    wall = time.perf_counter() - start
    primary = next(
        (e for e in errors if e is not None and not isinstance(e, CommAborted)),
        None,
    )
    if primary is not None:
        raise primary
    aborted = next((e for e in errors if e is not None), None)
    if aborted is not None:
        raise aborted
    stats = [ctx.stats for ctx in runtime.contexts]
    traces = (
        [ctx.tracer.finish() for ctx in runtime.contexts] if trace else None
    )
    return SimulationResult(
        values=values, stats=stats, wall_time=wall, traces=traces
    )
