"""Thread-based SPMD runtime with virtual-time accounting.

:func:`run_spmd` executes one Python function on ``nranks`` simulated
ranks (one thread each).  Ranks communicate through an in-process
mailbox fabric with MPI-like matching (communicator, source, tag) and
carry :class:`~repro.comm.clock.VirtualClock` instances so that the
simulation yields a modelled parallel makespan in addition to real
results (see DESIGN.md, "Hardware substitution").

This thread backend is the *reference semantics*; ``run_spmd`` can
alternatively dispatch the same program to the process backend
(:mod:`repro.comm.mp`) for true multi-core execution — select it with
``backend="processes"`` or the ``comm_backend`` config field (see
docs/BACKENDS.md).  Matching and deadlock reporting are shared between
backends through :mod:`repro.comm.matching`.

Key properties
--------------
- **Deterministic virtual time.**  Clocks advance from counted flops and
  modelled message latencies only; host thread scheduling cannot change
  the virtual makespan because receives advance to the *modelled*
  arrival time of the matched message.
- **Exact deadlock detection.**  The runtime maintains a wait-for graph
  (rank → the ``(source, tag)`` it is blocked on).  The moment every
  unfinished rank is blocked in a receive that no in-flight message can
  satisfy, the simulation provably cannot progress — sends are eager,
  so only a running rank could ever deliver a new message — and all
  ranks abort with a :class:`~repro.exceptions.DeadlockError` that
  names the wait-for cycle (or the blocked set) and any unmatched
  messages.  A rank in a long local compute phase is *not* blocked, so
  wall-clock stalls never produce false positives.
- **Optional SPMD verification.**  With ``verify=True`` (or
  ``REPRO_VERIFY=1``) a :class:`repro.check.verifier.SpmdVerifier`
  cross-checks every rank's collective call sequence, reporting the
  first divergent collective, and messages left unreceived at finalize
  raise :class:`~repro.exceptions.UnconsumedMessageError` (they warn in
  default mode).  See docs/CHECKING.md.
- **Value semantics.**  Message payloads are copied at send time by
  default, so in-process sharing cannot mask bugs that real distributed
  memory would expose.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import warnings
from typing import Any, Callable, Sequence

from ..exceptions import (
    CommError,
    DeadlockError,
    UnconsumedMessageError,
    UnconsumedMessageWarning,
)
from ..obs.context import (
    TraceContext,
    current_trace_context,
    new_trace_context,
    trace_context,
)
from ..obs.flightrec import FlightRecorder, flight_recording
from ..obs.tracer import Tracer, kernel_time, tracing
from ..util.flops import FlopCounter, counting_flops
from .clock import VirtualClock
from .costmodel import CostModel, DEFAULT_COST_MODEL, payload_nbytes
from .fastcopy import fastcopy_counted
from .matching import WaitInfo, deadlock_report, match_in, peek_in
from .stats import RankStats, SimulationResult

__all__ = ["Runtime", "RankContext", "run_spmd", "CommAborted"]


class CommAborted(CommError):
    """Raised in ranks blocked on communication when the simulation is
    aborted because another rank failed (or a deadlock was detected)."""


class _Message:
    """Internal envelope for one point-to-point message.

    ``source`` is the sender's rank *within* ``comm_key``;
    ``source_world`` its world rank (kept for diagnostics).
    """

    __slots__ = ("comm_key", "source", "tag", "payload", "nbytes",
                 "arrival_time", "seq", "source_world", "trace_id")

    def __init__(self, comm_key, source, tag, payload, nbytes, arrival_time,
                 seq, source_world, trace_id=None):
        self.comm_key = comm_key
        self.source = source
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.arrival_time = arrival_time
        self.seq = seq
        self.source_world = source_world
        # Correlation id of the operation the sender was executing
        # (see repro.obs.context); None when the run is uncorrelated.
        self.trace_id = trace_id


class RankContext:
    """Per-rank simulation state: clock, flop counter, statistics."""

    __slots__ = ("rank", "clock", "counter", "stats", "runtime", "tracer",
                 "trace_ctx", "coll_depth", "current_coll", "flightrec")

    def __init__(self, rank: int, runtime: "Runtime"):
        self.rank = rank
        self.runtime = runtime
        self.counter = FlopCounter()
        self.clock = VirtualClock(runtime.cost_model, self.counter)
        self.stats = RankStats(rank=rank)
        # Per-rank child of the run's TraceContext (rank filled in),
        # installed thread-locally for the duration of the rank fn.
        self.trace_ctx = (
            runtime.trace_ctx.for_rank(rank)
            if runtime.trace_ctx is not None else None
        )
        self.tracer = (
            Tracer(rank=rank, clock=self.clock, counter=self.counter,
                   stats=self.stats,
                   trace_id=(runtime.trace_ctx.trace_id
                             if runtime.trace_ctx is not None else None))
            if runtime.trace else None
        )
        # Always-on flight recorder (black-box ring; see
        # repro.obs.flightrec) — None when disabled by config.
        cap = runtime.flightrec_capacity
        self.flightrec = (FlightRecorder(rank, cap, clock=self.clock)
                          if cap else None)
        # Collective nesting depth: user-facing collectives compose
        # (allgather = gather + bcast), so only depth-0 entries count.
        self.coll_depth = 0
        # Name of the outermost collective this rank is inside, if any;
        # read by deadlock reports to say what op a blocked rank was in.
        self.current_coll: str | None = None

    def finalize_stats(self) -> RankStats:
        self.clock.sync_compute()
        self.stats.virtual_time = self.clock.now
        self.stats.flops = self.counter.total
        self.stats.flops_by_kernel = self.counter.snapshot()
        return self.stats


class Runtime:
    """Mailbox fabric shared by all ranks of one simulation.

    Not constructed directly by users; :func:`run_spmd` owns the
    lifecycle.  All shared state is guarded by a single condition
    variable — message granularity in this library is coarse (block
    matrices), so one lock is not a bottleneck.
    """

    def __init__(
        self,
        nranks: int,
        cost_model: CostModel,
        *,
        copy_messages: bool = True,
        poll_interval: float = 0.05,
        trace: bool = False,
        verify: bool = False,
        trace_ctx: TraceContext | None = None,
    ):
        if nranks <= 0:
            raise CommError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.cost_model = cost_model
        self.copy_messages = copy_messages
        self.trace = trace
        self.trace_ctx = trace_ctx
        self.poll_interval = poll_interval
        if verify:
            from ..check.verifier import SpmdVerifier  # deferred: cycle

            self.verifier: Any | None = SpmdVerifier(nranks)
        else:
            self.verifier = None
        self._cond = threading.Condition()
        self._inboxes: list[list[_Message]] = [[] for _ in range(nranks)]
        self._n_live = nranks
        self._waiting: dict[int, WaitInfo] = {}
        self._abort: BaseException | None = None
        self._seq = itertools.count()
        from ..config import get_config  # deferred: avoids import cycle

        cfg = get_config()
        self.flightrec_capacity = (cfg.flightrec_capacity
                                   if cfg.flightrec else 0)
        self.contexts = [RankContext(r, self) for r in range(nranks)]

    # -- sending ---------------------------------------------------------

    def post(self, ctx: RankContext, comm_key, dest_world: int, source_commrank: int,
             tag: int, payload: Any) -> None:
        """Deposit a message into ``dest_world``'s inbox (eager send)."""
        if not 0 <= dest_world < self.nranks:
            raise CommError(f"destination {dest_world} out of range")
        ctx.clock.sync_compute()
        ctx.clock.charge_overhead()
        if self.copy_messages:
            with kernel_time("comm.copy"):
                payload, ndeep = fastcopy_counted(payload)
            ctx.stats.payload_copies += 1
            ctx.stats.payload_deepcopies += ndeep
        nbytes = payload_nbytes(payload)
        arrival = ctx.clock.now + self.cost_model.message_time(nbytes)
        ctx.stats.bytes_sent += nbytes
        ctx.stats.msgs_sent += 1
        seq = next(self._seq)
        if ctx.tracer is not None:
            # The ``seq`` identifier is the cross-rank happens-before
            # edge: the matched receive records the same value, so
            # repro.obs.critpath can reconstruct the send->recv DAG.
            ctx.tracer.instant("send", dest=dest_world, tag=tag,
                               nbytes=nbytes, seq=seq, arrival=arrival)
        fr = ctx.flightrec
        if fr is not None:
            fr.record_send(dest_world, tag, seq, nbytes)
        msg = _Message(comm_key, source_commrank, tag, payload, nbytes, arrival,
                       seq, ctx.rank,
                       trace_id=(ctx.trace_ctx.trace_id
                                 if ctx.trace_ctx is not None else None))
        with self._cond:
            if self._abort is not None:
                raise CommAborted("simulation aborted") from self._abort
            self._inboxes[dest_world].append(msg)
            self._cond.notify_all()

    # -- receiving -------------------------------------------------------

    def match(self, ctx: RankContext, comm_key, source: int, tag: int, *,
              source_world: int | None = None) -> _Message:
        """Block until a matching message arrives; return it.

        ``source``/``tag`` of ``-1`` act as wildcards (ANY_SOURCE /
        ANY_TAG).  Matching is in arrival order among candidates.
        ``source_world`` is the awaited sender's world rank when the
        caller knows it; it feeds the wait-for graph used for exact
        deadlock detection and its diagnostics.
        """
        v_wait = ctx.clock.sync_compute()
        w_wait = time.perf_counter() if ctx.tracer is not None else 0.0
        inbox = self._inboxes[ctx.rank]
        with self._cond:
            if self._abort is not None:
                raise CommAborted("simulation aborted") from self._abort
            msg = match_in(inbox, comm_key, source, tag)
            if msg is None:
                fr = ctx.flightrec
                if fr is not None:
                    # Recorded *before* blocking so a deadlocked rank's
                    # ring ends with the wait it is stuck in.
                    fr.record_wait(
                        ctx.current_coll or "recv",
                        source_world if source_world is not None else source,
                        tag,
                    )
                self._waiting[ctx.rank] = WaitInfo(
                    comm_key, source, tag, source_world, ctx.current_coll
                )
                try:
                    while True:
                        self._check_deadlock_locked()
                        self._cond.wait(timeout=self.poll_interval)
                        if self._abort is not None:
                            raise CommAborted("simulation aborted") from self._abort
                        msg = match_in(inbox, comm_key, source, tag)
                        if msg is not None:
                            break
                finally:
                    del self._waiting[ctx.rank]
        ctx.clock.charge_overhead()
        ctx.clock.advance_to(msg.arrival_time)
        if ctx.tracer is not None:
            ctx.tracer.closed_span(
                "recv", "comm", v_wait, ctx.clock.now,
                w_wait, time.perf_counter(),
                source=msg.source, tag=msg.tag, nbytes=msg.nbytes,
                seq=msg.seq, source_world=msg.source_world,
                arrival=msg.arrival_time,
            )
        fr = ctx.flightrec
        if fr is not None:
            fr.record_recv(msg.source_world, msg.tag, msg.seq, msg.nbytes)
            sender_fr = self.contexts[msg.source_world].flightrec
            if sender_fr is not None:
                sender_fr.mark_consumed(msg.seq)
        return msg

    def _check_deadlock_locked(self) -> None:
        """Abort with a precise report when no progress is possible.

        Deadlock is declared *exactly*: every unfinished rank is blocked
        in :meth:`match` and none of their pending receives can be
        satisfied by a message already in flight.  Sends are eager, so
        under that condition no new message can ever appear — ranks in
        long local compute phases keep the check from firing because
        they are live but not waiting.
        """
        if self._n_live <= 0 or len(self._waiting) < self._n_live:
            return
        for rank, wait in self._waiting.items():
            if peek_in(self._inboxes[rank], wait.comm_key, wait.source,
                       wait.tag):
                return  # that rank will wake and match within poll_interval
        err = DeadlockError(deadlock_report(
            self._waiting, self._n_live,
            unmatched_lines=self._unconsumed_lines(),
        ))
        self._abort = err
        self._cond.notify_all()
        raise err

    def _unconsumed_lines(self) -> list[str]:
        """Describe every message still sitting in an inbox."""
        return [
            f"message: rank {msg.source_world} -> rank {dest} "
            f"(tag {msg.tag}, {msg.nbytes} bytes) on communicator "
            f"{msg.comm_key!r}"
            for dest, box in enumerate(self._inboxes)
            for msg in box
        ]

    # -- lifecycle -------------------------------------------------------

    def rank_finished(self) -> None:
        with self._cond:
            self._n_live -= 1
            self._cond.notify_all()

    def abort(self, exc: BaseException) -> None:
        """Abort the simulation; blocked ranks raise :class:`CommAborted`."""
        with self._cond:
            if self._abort is None:
                self._abort = exc
            self._cond.notify_all()


def run_spmd(
    fn: Callable[..., Any],
    nranks: int,
    *args: Any,
    cost_model: CostModel | None = None,
    copy_messages: bool = True,
    rank_args: Sequence[tuple] | None = None,
    count_flops: bool = True,
    trace: bool = False,
    verify: bool | None = None,
    backend: str | None = None,
    **kwargs: Any,
) -> SimulationResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    fn:
        The SPMD program.  Its first argument is the rank's
        :class:`repro.comm.communicator.Communicator`.
    nranks:
        Number of simulated ranks.  ``nranks == 1`` executes on the
        calling thread with no thread or process spawn.
    cost_model:
        Machine model for virtual time; defaults to
        :data:`repro.comm.costmodel.DEFAULT_COST_MODEL`.
    copy_messages:
        Copy payloads at send time (distributed-memory semantics).
        Disable only for trusted benchmark inner loops.  The process
        backend always has value semantics (payloads cross a process
        boundary), so it ignores ``copy_messages=False``.
    rank_args:
        Optional per-rank extra positional arguments: ``rank_args[r]``
        is appended after ``args`` for rank ``r``.
    count_flops:
        Enable flop accounting inside every rank (default on: the
        virtual-time model derives compute time from counted flops).
        Workers otherwise inherit the caller's configuration.
    trace:
        Give every rank a :class:`repro.obs.tracer.Tracer` (installed
        thread-locally for the duration of ``fn``) and return the
        per-rank timelines on ``SimulationResult.traces``.  Off by
        default; when off, instrumented code pays only the no-op span
        guard.
    verify:
        Enable the SPMD runtime verifier
        (:class:`repro.check.verifier.SpmdVerifier`): every rank's
        collective call sequence is cross-checked so a divergent rank
        raises :class:`~repro.exceptions.SpmdDivergenceError` at the
        first mismatched collective, and messages left unreceived at
        finalize raise
        :class:`~repro.exceptions.UnconsumedMessageError` (without
        verification they only warn).  ``None`` (the default) defers
        to the ``REPRO_VERIFY`` environment variable.
    backend:
        ``"threads"`` (reference, virtual-time) or ``"processes"``
        (true multi-core via :mod:`repro.comm.mp`).  ``None`` (the
        default) defers to the ``comm_backend`` config field.  The
        process backend requires ``fn`` and its arguments to be
        picklable; when they are not, the run falls back to threads
        with a one-time warning (see docs/BACKENDS.md).

    Returns
    -------
    SimulationResult
        Per-rank return values and statistics (plus traces when
        ``trace=True``).

    Raises
    ------
    Exception
        The first (lowest-rank) exception raised inside ``fn`` is
        re-raised in the caller after all ranks have stopped.
    """
    import dataclasses as _dc

    from ..config import get_config, install_config
    from .communicator import Communicator  # deferred: avoids import cycle

    if "deadlock_timeout" in kwargs:
        # Removed after one release as a deprecated no-op.  Without this
        # check it would silently forward to ``fn`` as a program kwarg.
        raise TypeError(
            "run_spmd() no longer accepts 'deadlock_timeout': deadlock "
            "detection is exact (wait-for graph; see docs/CHECKING.md) "
            "-- drop the argument"
        )
    config = get_config()
    if backend is None:
        backend = config.comm_backend
    if backend not in ("threads", "processes"):
        raise CommError(
            f"unknown backend {backend!r}: expected 'threads' or "
            f"'processes'"
        )
    worker_config = _dc.replace(config, flop_counting=count_flops)
    if rank_args is not None and len(rank_args) != nranks:
        raise CommError(
            f"rank_args has {len(rank_args)} entries for {nranks} ranks"
        )
    if verify is None:
        verify = os.environ.get("REPRO_VERIFY", "").strip().lower() not in (
            "", "0", "false", "no",
        )
    if backend == "processes" and nranks > 1:
        from . import mp  # deferred: spawn machinery only when selected

        dispatched = mp.run_spmd_processes(
            fn, nranks, *args,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            rank_args=rank_args, worker_config=worker_config,
            trace=trace, verify=verify, **kwargs,
        )
        if dispatched is not None:
            return dispatched
        # fn/args were unpicklable: mp warned and deferred to threads.
    # Correlation: adopt the caller's active TraceContext (e.g. a service
    # request), or mint a fresh one when tracing so the per-rank spans of
    # this run already share one trace_id.
    run_ctx = current_trace_context()
    if run_ctx is None and trace:
        run_ctx = new_trace_context()
    runtime = Runtime(
        nranks,
        cost_model or DEFAULT_COST_MODEL,
        copy_messages=copy_messages,
        trace=trace,
        verify=verify,
        trace_ctx=run_ctx,
    )
    values: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks
    start = time.perf_counter()

    def worker(rank: int) -> None:
        ctx = runtime.contexts[rank]
        comm = Communicator(runtime, ctx, comm_key=("world",), group=list(range(nranks)), rank=rank)
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        previous_config = get_config()
        install_config(worker_config)
        def call() -> Any:
            with flight_recording(ctx.flightrec):
                if ctx.tracer is not None:
                    with tracing(ctx.tracer):
                        return fn(comm, *args, *extra, **kwargs)
                return fn(comm, *args, *extra, **kwargs)

        try:
            with counting_flops(ctx.counter):
                if ctx.trace_ctx is not None:
                    with trace_context(ctx.trace_ctx):
                        values[rank] = call()
                else:
                    values[rank] = call()
        except CommAborted as exc:
            errors[rank] = exc
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            runtime.abort(exc)
        finally:
            ctx.finalize_stats()
            runtime.rank_finished()
            install_config(previous_config)

    if nranks == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(r,), name=f"repro-rank-{r}", daemon=True)
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    wall = time.perf_counter() - start

    def capture(exc: BaseException) -> None:
        # Incident bundle on any failure path (see repro.obs.postmortem);
        # must never mask the original exception.
        if not runtime.flightrec_capacity:
            return
        try:
            from ..obs.postmortem import record_failure

            rank = next((i for i, e in enumerate(errors) if e is exc), None)
            record_failure(
                exc, backend="threads", nranks=nranks,
                rings={r: (c.flightrec.snapshot()
                           if c.flightrec is not None else None)
                       for r, c in enumerate(runtime.contexts)},
                trace_ctx=run_ctx, rank=rank,
            )
        except Exception:  # pragma: no cover - capture is best-effort
            pass

    primary = next(
        (e for e in errors if e is not None and not isinstance(e, CommAborted)),
        None,
    )
    if primary is not None:
        capture(primary)
        raise primary
    aborted = next((e for e in errors if e is not None), None)
    if aborted is not None:
        capture(aborted)
        raise aborted
    leftover = runtime._unconsumed_lines()
    if leftover:
        report = (
            f"simulation finalized with {len(leftover)} unreceived "
            f"message(s):\n  " + "\n  ".join(leftover)
        )
        if runtime.verifier is not None:
            err = UnconsumedMessageError(report)
            capture(err)
            raise err
        warnings.warn(report, UnconsumedMessageWarning, stacklevel=2)
    stats = [ctx.stats for ctx in runtime.contexts]
    traces = (
        [ctx.tracer.finish() for ctx in runtime.contexts] if trace else None
    )
    return SimulationResult(
        values=values, stats=stats, wall_time=wall, traces=traces,
        trace_id=run_ctx.trace_id if run_ctx is not None else None,
        backend="threads",
    )
