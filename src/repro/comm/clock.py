"""Per-rank virtual clocks.

Each simulated rank carries a :class:`VirtualClock` that advances with
modelled compute and communication time.  Clocks are causally ordered:
a receive completes no earlier than the message's modelled arrival, so
the maximum final clock over ranks is the modelled parallel makespan —
the quantity the paper's scaling figures plot.

Compute time is accounted *lazily*: linear-algebra kernels record flops
into the rank's :class:`repro.util.flops.FlopCounter`, and
:meth:`VirtualClock.sync_compute` converts the flops accumulated since
the previous synchronization into clock time.  The runtime calls it at
every communication event, which is exactly when cross-rank causality
needs the clock to be current.
"""

from __future__ import annotations

from ..util.flops import FlopCounter
from .costmodel import CostModel

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotone virtual clock for one simulated rank.

    Parameters
    ----------
    cost_model:
        Machine model used to convert flops to seconds.
    counter:
        Flop counter whose growth drives compute-time accounting; may be
        ``None`` for simulations that only model communication.
    """

    __slots__ = ("cost_model", "counter", "_now", "_flops_seen")

    def __init__(self, cost_model: CostModel, counter: FlopCounter | None = None):
        self.cost_model = cost_model
        self.counter = counter
        self._now = 0.0
        self._flops_seen = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds (without syncing compute)."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance the clock by a non-negative duration."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._now += seconds

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t`` if ``t`` is in the future."""
        if t > self._now:
            self._now = t

    def sync_compute(self) -> float:
        """Fold newly recorded flops into the clock; return the new time."""
        if self.counter is not None:
            total = self.counter.total
            delta = total - self._flops_seen
            if delta > 0:
                self._now += self.cost_model.compute_time(delta)
                self._flops_seen = total
        return self._now

    def charge_overhead(self) -> None:
        """Charge the per-message CPU overhead to this rank."""
        self._now += self.cost_model.overhead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.3e}s)"
