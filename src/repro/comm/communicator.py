"""MPI-flavoured communicator for the simulated runtime.

The API mirrors mpi4py's lowercase (pickle-based) object interface —
``send``/``recv``/``bcast``/``allgather``/… — so the distributed solvers
in :mod:`repro.core` read like ordinary mpi4py programs and could be
ported to a real cluster by swapping the communicator object.

Differences from real MPI, by design:

- sends are *eager* (buffered): ``send`` never blocks, so there are no
  rendezvous deadlocks from send/send cycles;
- payloads are passed by value (copied at send time) unless the runtime
  was created with ``copy_messages=False``;
- collectives are implemented on top of point-to-point with the
  standard tree / recursive-doubling schedules (see
  :mod:`repro.comm.collectives`), so modelled collective costs follow
  the same ``O(log P)`` shapes the paper assumes.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager, nullcontext
from typing import Any, Callable, Sequence

from ..exceptions import RankError, TagError
from .costmodel import payload_nbytes
from .runtime import RankContext, Runtime, _Message

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Request", "Communicator", "SUM", "MAX", "MIN"]

ANY_SOURCE = -1
ANY_TAG = -1

#: User tags must be below this; the collective engine owns the rest.
MAX_USER_TAG = 1 << 24
_COLL_TAG_BASE = MAX_USER_TAG
_COLL_TAG_MOD = 1 << 20


def SUM(a, b):
    """Elementwise/builtin sum reduction (works on numbers and arrays)."""
    return a + b


def MAX(a, b):
    """Maximum reduction.  Uses ``numpy.maximum`` for arrays."""
    import numpy as np

    if hasattr(a, "shape") or hasattr(b, "shape"):
        return np.maximum(a, b)
    return max(a, b)


def MIN(a, b):
    """Minimum reduction.  Uses ``numpy.minimum`` for arrays."""
    import numpy as np

    if hasattr(a, "shape") or hasattr(b, "shape"):
        return np.minimum(a, b)
    return min(a, b)


@dataclasses.dataclass
class Status:
    """Receive status: who sent the matched message and how big it was."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0

    def _fill(self, msg: _Message) -> None:
        self.source = msg.source
        self.tag = msg.tag
        self.nbytes = msg.nbytes


class Request:
    """Handle for a nonblocking operation.

    Sends are eager, so send requests are born complete; receive
    requests perform the blocking match on :meth:`wait`.
    """

    __slots__ = ("_thunk", "_done", "_value")

    def __init__(self, thunk: Callable[[], Any] | None = None, value: Any = None):
        self._thunk = thunk
        self._done = thunk is None
        self._value = value

    def test(self) -> tuple[bool, Any]:
        """Non-destructively report completion (never blocks for sends;
        for receives, completion is only discovered via :meth:`wait`)."""
        return self._done, self._value if self._done else None

    def wait(self) -> Any:
        """Block until complete; return the received object (or ``None``
        for sends)."""
        if not self._done:
            assert self._thunk is not None
            self._value = self._thunk()
            self._thunk = None
            self._done = True
        return self._value

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> list[Any]:
        """Wait on every request; return their values in order."""
        return [req.wait() for req in requests]


class Communicator:
    """A group of simulated ranks with isolated message matching.

    Instances are created by :func:`repro.comm.runtime.run_spmd` (the
    world communicator) or by :meth:`split`/:meth:`dup`.  A communicator
    is bound to one rank's context: each rank holds its own instance.
    """

    def __init__(self, runtime: Runtime, ctx: RankContext, comm_key: tuple,
                 group: list[int], rank: int):
        self._runtime = runtime
        self._ctx = ctx
        self._key = comm_key
        self._group = group
        self._rank = rank
        self._coll_seq = 0
        self._derive_seq = 0

    # -- introspection ---------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._group)

    @property
    def clock(self):
        """The rank's :class:`~repro.comm.clock.VirtualClock` (synced)."""
        self._ctx.clock.sync_compute()
        return self._ctx.clock

    @property
    def stats(self):
        """The rank's live :class:`~repro.comm.stats.RankStats`."""
        return self._ctx.stats

    def advance_clock(self, seconds: float) -> None:
        """Charge explicit modelled time (non-flop work) to this rank."""
        self._ctx.clock.sync_compute()
        self._ctx.clock.advance(seconds)

    # -- validation ------------------------------------------------------

    def _check_rank(self, r: int, what: str) -> int:
        if not 0 <= r < self.size:
            raise RankError(f"{what} {r} out of range for size {self.size}")
        return r

    @staticmethod
    def _check_tag(tag: int) -> int:
        if not isinstance(tag, int) or not 0 <= tag < MAX_USER_TAG:
            raise TagError(f"tag must be an int in [0, {MAX_USER_TAG}), got {tag!r}")
        return tag

    # -- point-to-point --------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager (buffered) send: deposits the message and returns."""
        self._check_rank(dest, "dest")
        self._check_tag(tag)
        self._post(obj, dest, tag)

    def _post(self, obj: Any, dest: int, tag: int) -> None:
        self._runtime.post(
            self._ctx, self._key, self._group[dest], self._rank, tag, obj
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None) -> Any:
        """Blocking receive; returns the matched payload."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        if tag != ANY_TAG:
            self._check_tag(tag)
        return self._match(source, tag, status)

    def _match(self, source: int, tag: int, status: Status | None = None) -> Any:
        source_world = self._group[source] if source >= 0 else None
        msg = self._runtime.match(self._ctx, self._key, source, tag,
                                  source_world=source_world)
        if status is not None:
            status._fill(msg)
        return msg.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (identical to :meth:`send`; born complete)."""
        self.send(obj, dest, tag)
        return Request()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; the match happens in ``Request.wait``."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        if tag != ANY_TAG:
            self._check_tag(tag)
        return Request(thunk=lambda: self._match(source, tag))

    def sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG,
                 status: Status | None = None) -> Any:
        """Combined send + receive (safe under eager sends)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag, status)

    # -- collective plumbing ---------------------------------------------

    def _coll_tag(self) -> int:
        """Fresh collective-phase tag.  SPMD programs call collectives in
        lockstep, so per-instance sequencing stays consistent."""
        tag = _COLL_TAG_BASE + (self._coll_seq % _COLL_TAG_MOD)
        self._coll_seq += 1
        return tag

    @contextmanager
    def _collective_entry(self, name: str, root: int | None = None):
        """Account one user-facing collective call.

        Collectives compose (``allgather`` = ``gather`` + ``bcast``,
        ``allreduce`` = ``reduce`` + ``bcast``, …), so a per-context
        depth counter ensures only the *outermost* call is counted in
        :attr:`RankStats.coll_counts` and traced (``cat="coll"`` span
        when tracing is on).  Bytes are attributed as the delta of the
        rank's point-to-point ``bytes_sent`` across the call.

        When the runtime carries an
        :class:`~repro.check.verifier.SpmdVerifier`, the outermost call
        is also cross-checked against the other ranks' collective
        sequences — the check that turns a rank-divergent collective
        into an immediate :class:`~repro.exceptions.SpmdDivergenceError`
        instead of a downstream deadlock.
        """
        ctx = self._ctx
        ctx.coll_depth += 1
        if ctx.coll_depth > 1:
            try:
                yield
            finally:
                ctx.coll_depth -= 1
            return
        try:
            ctx.current_coll = name
            # Ring first, verify second: when the verifier rejects this
            # very call as divergent, the rank's black box must already
            # show the op it diverged on.
            fr = getattr(ctx, "flightrec", None)
            if fr is not None:
                fr.record_coll(name, root, self.size)
            verifier = self._runtime.verifier
            if verifier is not None:
                index = verifier.record_collective(
                    ctx.rank, self._key, name, root, self.size
                )
                if ctx.tracer is not None:
                    ctx.tracer.instant("coll.verified", cat="verify",
                                       op=name, seq=index)
        except BaseException:
            ctx.coll_depth -= 1
            ctx.current_coll = None
            raise
        bytes0 = ctx.stats.bytes_sent
        tracer = ctx.tracer
        span = (
            tracer.span(name, cat="coll", comm_size=self.size)
            if tracer is not None else nullcontext()
        )
        try:
            with span:
                yield
        finally:
            ctx.stats.record_collective(name, ctx.stats.bytes_sent - bytes0)
            ctx.coll_depth -= 1
            ctx.current_coll = None

    def _coll_send(self, obj: Any, dest: int, tag: int) -> None:
        self._check_rank(dest, "dest")
        self._post(obj, dest, tag)

    def _coll_recv(self, source: int, tag: int) -> Any:
        self._check_rank(source, "source")
        return self._match(source, tag)

    # -- collectives (implemented in repro.comm.collectives) --------------

    def barrier(self) -> None:
        """Synchronize all ranks (dissemination algorithm)."""
        from . import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns it."""
        from . import collectives

        return collectives.bcast(self, obj, root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank to ``root`` (list indexed by rank)."""
        from . import collectives

        return collectives.gather(self, obj, root)

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per rank to every rank."""
        from . import collectives

        return collectives.allgather(self, obj)

    def scatter(self, objs: Sequence[Any] | None = None, root: int = 0) -> Any:
        """Scatter ``objs`` (length ``size``, significant at root only)."""
        from . import collectives

        return collectives.scatter(self, objs, root)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all exchange."""
        from . import collectives

        return collectives.alltoall(self, objs)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] = SUM,
               root: int = 0) -> Any | None:
        """Reduce with binary ``op``; result only at ``root``."""
        from . import collectives

        return collectives.reduce(self, obj, op, root)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = SUM) -> Any:
        """Reduce with binary ``op``; result on every rank."""
        from . import collectives

        return collectives.allreduce(self, obj, op)

    def scan(self, obj: Any, op: Callable[[Any, Any], Any] = SUM) -> Any:
        """Inclusive prefix reduction over ranks (rank r gets
        ``op(...op(obj_0, obj_1)..., obj_r)``)."""
        from . import collectives

        return collectives.scan(self, obj, op)

    def exscan(self, obj: Any, op: Callable[[Any, Any], Any] = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        from . import collectives

        return collectives.exscan(self, obj, op)

    # -- communicator management -----------------------------------------

    def split(self, color: int, key: int = 0) -> "Communicator | None":
        """Partition ranks by ``color`` into disjoint sub-communicators.

        Ranks passing ``color=None`` receive ``None`` (like
        ``MPI_UNDEFINED``).  Within a color, new ranks are ordered by
        ``(key, old rank)``.
        """
        triples = self.allgather((color, key, self._rank))
        self._derive_seq += 1
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        local_ranks = [r for _, r in members]
        new_group = [self._group[r] for r in local_ranks]
        new_rank = local_ranks.index(self._rank)
        new_key = self._key + ("split", self._derive_seq, color)
        return Communicator(self._runtime, self._ctx, new_key, new_group, new_rank)

    def dup(self) -> "Communicator":
        """Duplicate the communicator with isolated message matching."""
        self.barrier()
        self._derive_seq += 1
        new_key = self._key + ("dup", self._derive_seq)
        return Communicator(self._runtime, self._ctx, new_key, list(self._group), self._rank)

    # -- misc --------------------------------------------------------------

    def payload_nbytes(self, obj: Any) -> int:
        """Expose the cost model's payload sizing (useful in tests)."""
        return payload_nbytes(obj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(rank={self._rank}, size={self.size}, key={self._key})"
