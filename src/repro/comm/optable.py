"""Machine-readable description of the Communicator's public op surface.

One :class:`OpSpec` per communication operation, keyed by method name.
This is the single source of truth consumed by the static tooling in
:mod:`repro.check` — the linter's collective-sequence rule (RC101) and
the protocol analyzer (``repro.check.proto``) both read this table
instead of hard-coding method names, so a new Communicator op only has
to be described once to be covered by every static pass.

The table is descriptive, not executable: :class:`~.communicator.
Communicator` does not consult it at runtime.  A conformance test
(tests/test_proto.py) asserts the table matches the actual
``Communicator`` surface so the two cannot drift apart.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "OpSpec",
    "OP_TABLE",
    "COLLECTIVE_OPS",
    "POINT_TO_POINT_OPS",
    "NONBLOCKING_OPS",
]


@dataclasses.dataclass(frozen=True)
class OpSpec:
    """Static description of one Communicator operation.

    Attributes
    ----------
    name:
        Method name on :class:`~repro.comm.communicator.Communicator`.
    kind:
        ``"p2p"`` (matched point-to-point), ``"collective"`` (must be
        called by every rank of the communicator in the same sequence),
        or ``"local"`` (completes without any partner).
    blocking:
        Whether the call can block waiting for a partner.  Sends are
        eager in this runtime (buffered, never block); receives and
        collectives block.
    returns:
        ``"none"``, ``"payload"``, ``"request"``, ``"comm"`` (a derived
        communicator, possibly ``None``), or ``"varies"``.
    payload_param / peer_param / tag_param / root_param:
        Positional index (into the method's non-``self`` parameters) of
        the outbound payload, the peer rank, the message tag, and the
        collective root — ``None`` where the op has no such parameter.
        Keyword names match the parameter name at that index.
    params:
        The non-``self`` parameter names in declaration order, for
        keyword-argument resolution.
    direction:
        ``"send"``, ``"recv"``, ``"both"`` or ``""`` — which way the
        payload moves, used by alias tracking to decide whether the
        payload enters an in-flight window (send side) or arrives as a
        zero-copy view (receive side).
    """

    name: str
    kind: str
    blocking: bool
    returns: str
    params: tuple[str, ...] = ()
    payload_param: int | None = None
    peer_param: int | None = None
    tag_param: int | None = None
    root_param: int | None = None
    direction: str = ""


OP_TABLE: dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        # -- point to point ------------------------------------------------
        OpSpec("send", "p2p", blocking=False, returns="none",
               params=("obj", "dest", "tag"),
               payload_param=0, peer_param=1, tag_param=2, direction="send"),
        OpSpec("recv", "p2p", blocking=True, returns="payload",
               params=("source", "tag", "status"),
               peer_param=0, tag_param=1, direction="recv"),
        OpSpec("isend", "p2p", blocking=False, returns="request",
               params=("obj", "dest", "tag"),
               payload_param=0, peer_param=1, tag_param=2, direction="send"),
        OpSpec("irecv", "p2p", blocking=False, returns="request",
               params=("source", "tag"),
               peer_param=0, tag_param=1, direction="recv"),
        OpSpec("sendrecv", "p2p", blocking=True, returns="payload",
               params=("obj", "dest", "sendtag", "source", "recvtag",
                       "status"),
               payload_param=0, peer_param=1, tag_param=2, direction="both"),
        # -- collectives ---------------------------------------------------
        OpSpec("barrier", "collective", blocking=True, returns="none"),
        OpSpec("bcast", "collective", blocking=True, returns="payload",
               params=("obj", "root"),
               payload_param=0, root_param=1, direction="both"),
        OpSpec("gather", "collective", blocking=True, returns="payload",
               params=("obj", "root"),
               payload_param=0, root_param=1, direction="both"),
        OpSpec("allgather", "collective", blocking=True, returns="payload",
               params=("obj",), payload_param=0, direction="both"),
        OpSpec("scatter", "collective", blocking=True, returns="payload",
               params=("objs", "root"),
               payload_param=0, root_param=1, direction="both"),
        OpSpec("alltoall", "collective", blocking=True, returns="payload",
               params=("objs",), payload_param=0, direction="both"),
        OpSpec("reduce", "collective", blocking=True, returns="payload",
               params=("obj", "op", "root"),
               payload_param=0, root_param=2, direction="both"),
        OpSpec("allreduce", "collective", blocking=True, returns="payload",
               params=("obj", "op"), payload_param=0, direction="both"),
        OpSpec("scan", "collective", blocking=True, returns="payload",
               params=("obj", "op"), payload_param=0, direction="both"),
        OpSpec("exscan", "collective", blocking=True, returns="payload",
               params=("obj", "op"), payload_param=0, direction="both"),
        OpSpec("split", "collective", blocking=True, returns="comm",
               params=("color", "key")),
        OpSpec("dup", "collective", blocking=True, returns="comm"),
        # -- local ---------------------------------------------------------
        OpSpec("advance_clock", "local", blocking=False, returns="none",
               params=("seconds",)),
    )
}

#: Collective operations whose call sequence must match across ranks.
COLLECTIVE_OPS: frozenset[str] = frozenset(
    name for name, spec in OP_TABLE.items() if spec.kind == "collective"
)

#: Matched point-to-point operations.
POINT_TO_POINT_OPS: frozenset[str] = frozenset(
    name for name, spec in OP_TABLE.items() if spec.kind == "p2p"
)

#: Operations returning a Request that must later be waited.
NONBLOCKING_OPS: frozenset[str] = frozenset(
    name for name, spec in OP_TABLE.items() if spec.returns == "request"
)
