"""Backend-agnostic message matching and wait-for-graph reporting.

Both execution backends implement the same MPI-like matching contract —
a receive names ``(communicator, source, tag)`` with ``-1`` wildcards,
and candidates match in arrival order — and both surface deadlocks with
the same style of report: one line per blocked rank plus the wait-for
cycle when one exists.  This module holds the shared pieces:

- :func:`match_in` / :func:`peek_in` search a pending-message list the
  way ``MPI_Recv`` matching does (first arrival that satisfies the
  triple).  The thread backend (:mod:`repro.comm.runtime`) applies them
  to its per-rank inboxes; the process backend
  (:mod:`repro.comm.mp`) applies them to each worker's local
  pending buffer.
- :class:`WaitInfo` describes what a blocked rank is matching — the
  node payload of the wait-for graph.
- :func:`find_wait_cycle` extracts one cycle from a wait-for graph
  (rank → awaited world rank), and :func:`deadlock_report` renders the
  full diagnostic.

Matched objects only need ``comm_key`` / ``source`` / ``tag``
attributes; both backends' message envelopes provide them.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["match_in", "peek_in", "WaitInfo", "find_wait_cycle",
           "deadlock_report"]


def match_in(pending: list, comm_key, source: int, tag: int) -> Any | None:
    """Pop and return the first pending message matching the triple.

    ``source``/``tag`` of ``-1`` act as wildcards (ANY_SOURCE /
    ANY_TAG).  Returns ``None`` when nothing matches.
    """
    for i, msg in enumerate(pending):
        if msg.comm_key != comm_key:
            continue
        if source >= 0 and msg.source != source:
            continue
        if tag >= 0 and msg.tag != tag:
            continue
        return pending.pop(i)
    return None


def peek_in(pending: Sequence, comm_key, source: int, tag: int) -> bool:
    """Non-destructive :func:`match_in`: is a matching message pending?"""
    for msg in pending:
        if msg.comm_key != comm_key:
            continue
        if source >= 0 and msg.source != source:
            continue
        if tag >= 0 and msg.tag != tag:
            continue
        return True
    return False


class WaitInfo:
    """One node of the wait-for graph: what a blocked rank is matching.

    ``source`` is communicator-local (``-1`` = wildcard);
    ``source_world`` is the awaited sender's world rank when known, and
    ``op`` the user-facing collective the rank is inside, if any.
    """

    __slots__ = ("comm_key", "source", "tag", "source_world", "op")

    def __init__(self, comm_key, source: int, tag: int,
                 source_world: int | None, op: str | None):
        self.comm_key = comm_key
        self.source = source
        self.tag = tag
        self.source_world = source_world
        self.op = op

    def describe(self, rank: int) -> str:
        src = ("any rank" if self.source < 0
               else f"rank {self.source_world if self.source_world is not None else self.source}")
        tag = "any tag" if self.tag < 0 else f"tag {self.tag}"
        inside = f" inside collective '{self.op}'" if self.op else ""
        return (f"rank {rank}{inside}: blocked receiving from {src} "
                f"({tag}) on communicator {self.comm_key!r}")

    def to_tuple(self) -> tuple:
        """Picklable form for cross-process heartbeat shipping."""
        return (self.comm_key, self.source, self.tag, self.source_world,
                self.op)

    @classmethod
    def from_tuple(cls, t: tuple) -> "WaitInfo":
        return cls(*t)


def find_wait_cycle(waiting: dict[int, WaitInfo]) -> list[int] | None:
    """Find one cycle in the wait-for graph (rank → awaited rank)."""
    graph = {
        rank: wait.source_world
        for rank, wait in waiting.items()
        if wait.source_world is not None
    }
    visited: set[int] = set()
    for start in graph:
        if start in visited:
            continue
        position: dict[int, int] = {}
        chain: list[int] = []
        node = start
        while node in graph and node not in visited and node not in position:
            position[node] = len(chain)
            chain.append(node)
            node = graph[node]
        visited.update(chain)
        if node in position:
            return chain[position[node]:]
    return None


def deadlock_report(waiting: dict[int, WaitInfo], n_blocked: int,
                    unmatched_lines: Sequence[str] = (),
                    headline: str | None = None) -> str:
    """Render the full deadlock diagnostic shared by both backends."""
    lines = [
        headline
        or (f"SPMD deadlock: all {n_blocked} unfinished rank(s) are "
            f"blocked on receives no in-flight message can satisfy.")
    ]
    cycle = find_wait_cycle(waiting)
    if cycle:
        hops = " -> ".join(f"rank {r}" for r in cycle + cycle[:1])
        lines.append(f"  wait-for cycle: {hops}")
    for rank in sorted(waiting):
        lines.append("  " + waiting[rank].describe(rank))
    for line in unmatched_lines:
        lines.append("  unmatched " + line)
    return "\n".join(lines)
