"""Process-based SPMD execution backend (true multi-core).

Runs the same programs as the thread backend — identical
:class:`~repro.comm.communicator.Communicator` API, collectives,
virtual-time accounting, verifier and deadlock diagnostics — but each
rank is a spawned worker process, so compute escapes the GIL and
wall-clock time becomes a real parallel measurement.  NumPy payloads
cross rank boundaries through shared-memory segments with zero-copy
receive (:mod:`repro.comm.shm`); envelopes and small objects ride
pickled control channels.

Select it per call (``run_spmd(..., backend="processes")``), per thread
(``set_config(comm_backend="processes")``), or per process
(``REPRO_COMM_BACKEND=processes``).  See docs/BACKENDS.md.
"""

from .backend import ProcessPool, run_spmd_processes, shutdown_pool
from .worker import MpRuntime, worker_main

__all__ = ["ProcessPool", "run_spmd_processes", "shutdown_pool",
           "MpRuntime", "worker_main"]
