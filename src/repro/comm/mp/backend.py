"""Parent-side orchestration of the process backend.

:func:`run_spmd_processes` is the entry point :func:`repro.comm.run_spmd`
dispatches to when ``backend="processes"``.  It leases a persistent
:class:`ProcessPool` of spawned workers (spawn, never fork: workers
must not inherit thread-local config, trace contexts, or log sinks),
ships the job per rank — function, arguments, and per-rank extras
packed through :mod:`repro.comm.shm` so NumPy data rides shared memory
— and then monitors the workers' control pipes:

- ``coll`` records feed the parent's real
  :class:`~repro.check.verifier.SpmdVerifier`, so collective-lockstep
  divergence is caught cross-process exactly as in the thread backend;
- ``wait`` heartbeats from blocked ranks populate a wait-for graph;
  when every unfinished rank has repeated an identical (wait, progress)
  report, no message can be in flight and the parent raises a
  :class:`~repro.exceptions.DeadlockError` rendered by the shared
  :func:`repro.comm.matching.deadlock_report`;
- ``done`` messages deliver each rank's value (shared-memory packed),
  :class:`~repro.comm.stats.RankStats`, optional
  :class:`~repro.obs.tracer.RankTrace`, and buffered structured-log
  records, which merge into the parent's sink under the run's single
  ``trace_id``.

Failure handling is deliberately blunt: any rank error, divergence,
deadlock, or worker death terminates the whole pool (a fresh one spawns
on the next job) — blocked peers need no cooperative abort protocol.
The clean path runs the exact-finalize handshake (see
:mod:`repro.comm.mp.worker`) so unreceived messages are detected
deterministically and mailboxes are provably empty between jobs.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
import time
import warnings
from multiprocessing import connection
from typing import Any, Sequence

from ...exceptions import (
    CommError,
    DeadlockError,
    UnconsumedMessageError,
    UnconsumedMessageWarning,
)
from ...obs.context import current_trace_context, new_trace_context
from ...obs.log import active_log
from .. import shm
from ..costmodel import CostModel
from ..matching import WaitInfo, deadlock_report
from ..stats import SimulationResult
from .worker import FINALIZE, FLIGHTREC_DUMP, JobSpec, worker_main

__all__ = ["ProcessPool", "run_spmd_processes", "shutdown_pool"]

#: Seconds between deadlock-analysis sweeps of the monitor loop.
_SWEEP_INTERVAL = 0.25

#: Identical consecutive (wait, progress) heartbeats required from
#: every unfinished rank before the parent declares deadlock.
_DEADLOCK_REPEATS = 2

_LEVEL_NAMES = {10: "debug", 20: "info", 30: "warning", 40: "error"}

_pool_ids = itertools.count(1)


class ProcessPool:
    """A set of persistent spawned workers with per-rank inbox queues.

    Spawn cost (~100 ms/worker: fresh interpreter + imports) is paid
    once and amortized over every subsequent :func:`run_spmd_processes`
    call; the pool only respawns when a job needs more ranks than it
    has workers or after a dirty shutdown.
    """

    def __init__(self, size: int):
        self.size = size
        self.pool_id = (os.getpid() << 8) | (next(_pool_ids) & 0xFF)
        self.prefix = shm.segment_prefix(self.pool_id)
        shm.register_pool(self.pool_id)
        ctx = multiprocessing.get_context("spawn")
        self.inboxes = [ctx.Queue() for _ in range(size)]
        self.conns: list[Any] = []
        self.procs: list[Any] = []
        for rank in range(size):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main, args=(rank, self.inboxes, child_conn),
                name=f"repro-mp-{rank}", daemon=True,
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)

    def alive(self) -> bool:
        return all(p.is_alive() for p in self.procs)

    def _cleanup(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for q in self.inboxes:
            q.cancel_join_thread()
            q.close()
        shm.sweep_prefix(self.pool_id)

    def stop(self) -> None:
        """Graceful shutdown: workers exit their loop, then cleanup."""
        for conn, proc in zip(self.conns, self.procs):
            try:
                conn.send(("stop",))
            except (OSError, ValueError):  # pragma: no cover - dead pipe
                pass
        for proc in self.procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._cleanup()

    def destroy(self) -> None:
        """Dirty shutdown: terminate everything, sweep segments."""
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=2.0)
        self._cleanup()


_pool: ProcessPool | None = None
# One lock serializes pool management and job execution: jobs own the
# whole fabric (inbox queues are per pool, not per job), so concurrent
# run_spmd calls from service threads queue up here.
_job_lock = threading.Lock()
_atexit_registered = False


def _ensure_pool(nranks: int) -> ProcessPool:
    global _pool, _atexit_registered
    if _pool is not None and (_pool.size < nranks or not _pool.alive()):
        _pool.destroy()
        _pool = None
    if _pool is None:
        _pool = ProcessPool(max(nranks, 2))
        if not _atexit_registered:
            _atexit_registered = True
            atexit.register(shutdown_pool)
    return _pool


def _discard_pool(pool: ProcessPool) -> None:
    global _pool
    pool.destroy()
    if _pool is pool:
        _pool = None


def shutdown_pool() -> None:
    """Stop the module's worker pool (no-op when none is running)."""
    global _pool
    with _job_lock:
        if _pool is not None:
            _pool.stop()
            _pool = None


def _unpack_error(error: tuple, rank: int) -> BaseException:
    payload, text = error
    if payload is not None:
        try:
            return pickle.loads(payload)
        except Exception:  # pragma: no cover - exotic exception type
            pass
    return CommError(f"rank {rank} failed in process backend:\n{text}")


class _Monitor:
    """State machine over the workers' control-pipe traffic for one job."""

    def __init__(self, pool: ProcessPool, nranks: int, verifier):
        self.pool = pool
        self.nranks = nranks
        self.verifier = verifier
        self.done: dict[int, tuple] = {}
        self.finalized: dict[int, list[str]] = {}
        # rank -> [wait_tuple, progress, pending_lines, repeats,
        #          sent_to, inbox_received]
        self.waiting: dict[int, list] = {}
        # Liveness bookkeeping for worker-death diagnostics: wall time
        # of the last control-pipe message per rank, and the last
        # (sent_to, inbox_received) totals a heartbeat reported.
        self.last_heartbeat: dict[int, float] = {}
        self.last_counts: dict[int, tuple] = {}

    def _handle(self, msg: tuple) -> None:
        kind = msg[0]
        if len(msg) > 1 and isinstance(msg[1], int):
            self.last_heartbeat[msg[1]] = time.monotonic()
        if kind == "done":
            rank = msg[1]
            self.done[rank] = msg[2:]
            self.waiting.pop(rank, None)
            if msg[7] is not None:  # sent_to of the done report
                self.last_counts[rank] = (msg[7], msg[8])
        elif kind == "wait":
            _, rank, wait_tuple, progress, lines, sent_to, received = msg
            self.last_counts[rank] = (sent_to, received)
            entry = self.waiting.get(rank)
            if entry is not None and entry[0] == wait_tuple and entry[1] == progress:
                entry[2] = lines
                entry[3] += 1
            else:
                self.waiting[rank] = [wait_tuple, progress, lines, 1,
                                      sent_to, received]
        elif kind == "wake":
            self.waiting.pop(msg[1], None)
        elif kind == "coll":
            if self.verifier is not None:
                _, rank, comm_key, op, root, size = msg
                # Raises SpmdDivergenceError on lockstep violation.
                self.verifier.record_collective(rank, comm_key, op, root, size)
        elif kind == "finalized":
            self.finalized[msg[1]] = msg[2]
        else:  # pragma: no cover - protocol violation
            raise CommError(f"unexpected control message {msg!r}")

    def _sweep(self) -> None:
        conns = self.pool.conns[:self.nranks]
        ready = connection.wait(conns, timeout=_SWEEP_INTERVAL)
        for conn in ready:
            while True:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    rank = self.pool.conns.index(conn)
                    raise self._death_error(rank) from None
                self._handle(msg)
                if not conn.poll():
                    break

    def _death_error(self, rank: int) -> CommError:
        """Worker-death error enriched with last-known liveness state."""
        proc = self.pool.procs[rank]
        proc.join(timeout=0.5)  # let the exit code land before reading it
        code = proc.exitcode
        hb = self.last_heartbeat.get(rank)
        age = (f"last heartbeat {time.monotonic() - hb:.1f}s ago"
               if hb is not None else "no heartbeat received")
        counts = self.last_counts.get(rank)
        if counts is not None:
            detail = (f"{age}; last report: {sum(counts[0])} envelope(s) "
                      f"sent, {counts[1]} received")
        else:
            detail = f"{age}; no send/receive counts reported"
        err = CommError(
            f"rank {rank} worker process died unexpectedly "
            f"(exit code {code}); {detail}"
        )
        err.failed_rank = rank  # type: ignore[attr-defined]
        return err

    def _check_deadlock(self) -> None:
        unfinished = [r for r in range(self.nranks) if r not in self.done]
        if not unfinished:
            return
        stable = all(
            r in self.waiting and self.waiting[r][3] >= _DEADLOCK_REPEATS
            for r in unfinished
        )
        if not stable:
            return
        # Conservation: the send counts of a finished rank (from its
        # 'done') and of a stably-blocked rank (from its heartbeat) are
        # final, so if any blocked rank has been sent more envelopes
        # than it has admitted, a message is still sitting in a queue
        # feeder thread — delivery pending, not deadlock.
        sent_to_by: dict[int, Sequence[int]] = {
            r: self.waiting[r][4] for r in unfinished
        }
        for r, d in self.done.items():
            if d[5] is not None:
                sent_to_by[r] = d[5]
        for r in unfinished:
            expected = sum(s[r] for s in sent_to_by.values())
            if expected > self.waiting[r][5]:
                return
        # Every unfinished rank has repeated an identical (wait,
        # progress) report across at least one full heartbeat interval
        # with every envelope addressed to it delivered: its queue was
        # empty and nothing it did could have fed a peer since — with
        # eager sends, no message can ever arrive.
        waiting = {
            r: WaitInfo.from_tuple(self.waiting[r][0]) for r in unfinished
        }
        unmatched = [
            line for r in sorted(unfinished) for line in self.waiting[r][2]
        ]
        raise DeadlockError(deadlock_report(
            waiting, len(unfinished), unmatched_lines=unmatched,
        ))

    def _raise_first_error(self) -> None:
        # done entries: (packed_value, stats, trace, log_lines, error,
        #                sent_to, inbox_received)
        errors = {r: d[4] for r, d in self.done.items() if d[4] is not None}
        if errors:
            rank = min(errors)
            exc = _unpack_error(errors[rank], rank)
            try:
                exc.failed_rank = rank  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - slotted exception
                pass
            raise exc

    def run_until_done(self) -> None:
        while len(self.done) < self.nranks:
            self._sweep()
            # A failed rank leaves its peers legitimately blocked; the
            # error outranks the deadlock its absence would look like.
            self._raise_first_error()
            self._check_deadlock()
        self._raise_first_error()

    def run_until_finalized(self) -> None:
        while len(self.finalized) < self.nranks:
            self._sweep()


def _collect_rings(pool: ProcessPool, monitor: _Monitor, nranks: int,
                   deadline: float = 1.5) -> dict[int, Any]:
    """Gather every rank's flight-recorder ring for an incident bundle.

    A rank that failed already shipped its ring on its ``done``
    message; live ranks (blocked in ``match`` or in the finalize
    handshake) are asked with a :data:`~repro.comm.mp.worker.FLIGHTREC_DUMP`
    inbox sentinel and answered over the control pipes within
    ``deadline`` seconds.  Dead or unresponsive ranks map to ``None``
    (the bundle marks their ring as lost).
    """
    rings: dict[int, Any] = {}
    for r, d in monitor.done.items():
        if len(d) > 7 and d[7] is not None:
            rings[r] = d[7]
    outstanding: set[int] = set()
    for r in range(nranks):
        if r in rings:
            continue
        if not pool.procs[r].is_alive():
            rings[r] = None
            continue
        try:
            pool.inboxes[r].put((FLIGHTREC_DUMP,))
            outstanding.add(r)
        except Exception:  # pragma: no cover - queue torn down
            rings[r] = None
    end = time.monotonic() + deadline
    while outstanding:
        remaining = end - time.monotonic()
        if remaining <= 0:
            break
        ready = connection.wait([pool.conns[r] for r in outstanding],
                                timeout=remaining)
        if not ready:
            break
        for conn in ready:
            r = pool.conns.index(conn)
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                rings[r] = None
                outstanding.discard(r)
                continue
            if msg[0] == "flightrec":
                rings[msg[1]] = msg[2]
                outstanding.discard(msg[1])
            # Anything else is stale wait/wake/coll traffic from the
            # failing job; the pool is being torn down, so drop it.
    for r in range(nranks):
        rings.setdefault(r, None)
    return rings


def _capture_mp_incident(exc: BaseException, pool: ProcessPool,
                         monitor: _Monitor, nranks: int, run_ctx) -> None:
    """Best-effort incident capture for a failed process-backend job."""
    try:
        from ...config import get_config

        if not get_config().flightrec:
            return
        from ...obs.postmortem import record_failure

        record_failure(
            exc, backend="processes", nranks=nranks,
            rings=_collect_rings(pool, monitor, nranks),
            trace_ctx=run_ctx,
        )
    except Exception:  # pragma: no cover - capture must never mask
        pass


_unpicklable_warned = False


def _pack_jobs(fn, args, kwargs, rank_args, nranks: int,
               prefix: str) -> list | None:
    """Shared-memory pack the per-rank job payloads.

    Returns ``None`` when the function or its arguments cannot be
    pickled (spawned workers import by reference, so e.g. closures
    from harness experiment definitions cannot cross) — the caller
    falls back to the thread backend.
    """
    global _unpicklable_warned
    packed: list = []
    try:
        for rank in range(nranks):
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            packed.append(
                shm.pack((fn, args, kwargs, extra), prefix=prefix)[0]
            )
    except Exception as exc:
        for p in packed:
            if p.shm_name:
                shm.release_segment(p.shm_name)
        if not _unpicklable_warned:
            _unpicklable_warned = True
            warnings.warn(
                f"process backend requires a picklable SPMD function and "
                f"arguments; falling back to the thread backend for "
                f"{getattr(fn, '__name__', fn)!r} ({exc})",
                RuntimeWarning,
                stacklevel=4,
            )
        return None
    return packed


def run_spmd_processes(
    fn,
    nranks: int,
    *args: Any,
    cost_model: CostModel,
    rank_args: Sequence[tuple] | None,
    worker_config,
    trace: bool,
    verify: bool,
    **kwargs: Any,
) -> SimulationResult | None:
    """Execute one SPMD job on the process pool.

    Returns ``None`` (after a one-time warning) when the job cannot be
    shipped to worker processes; :func:`repro.comm.run_spmd` then runs
    it on the thread backend instead.
    """
    import dataclasses as _dc

    # Workers must not re-dispatch to the process backend.
    worker_config = _dc.replace(worker_config, comm_backend="threads")
    run_ctx = current_trace_context()
    if run_ctx is None and trace:
        run_ctx = new_trace_context()
    sink = active_log()
    forward_logs = sink is not None
    log_level = _LEVEL_NAMES.get(sink.threshold, "info") if sink else "info"
    verifier = None
    if verify:
        from ...check.verifier import SpmdVerifier  # deferred: cycle

        verifier = SpmdVerifier(nranks)

    with _job_lock:
        pool = _ensure_pool(nranks)
        payloads = _pack_jobs(fn, args, kwargs, rank_args, nranks,
                              pool.prefix)
        if payloads is None:
            return None
        start = time.perf_counter()
        for rank in range(nranks):
            spec = JobSpec(
                nranks, payloads[rank], worker_config, run_ctx, trace,
                verify, cost_model, forward_logs, log_level, pool.prefix,
            )
            pool.conns[rank].send(("job", spec))
        monitor = _Monitor(pool, nranks, verifier)
        try:
            monitor.run_until_done()
            # Exact finalize: tell each rank the total envelope count
            # ever put into its queue; it absorbs the difference.
            totals = [0] * nranks
            for d in monitor.done.values():
                for dest, n in enumerate(d[5]):
                    totals[dest] += n
            for rank in range(nranks):
                pool.inboxes[rank].put((FINALIZE, totals[rank]))
            monitor.run_until_finalized()
        except BaseException as exc:
            # Snapshot all ranks' rings (over the still-open control
            # pipes) into an incident bundle before the pool dies.
            _capture_mp_incident(exc, pool, monitor, nranks, run_ctx)
            _discard_pool(pool)
            raise
        wall = time.perf_counter() - start

        values = [shm.unpack(monitor.done[r][0]) for r in range(nranks)]
        stats = [monitor.done[r][1] for r in range(nranks)]
        traces = [monitor.done[r][2] for r in range(nranks)] if trace else None
        if sink is not None:
            for rank in range(nranks):
                for line in monitor.done[rank][3]:
                    sink.write_raw(line)
        strays = [
            line for r in range(nranks) for line in monitor.finalized[r]
        ]

    if strays:
        report = (
            f"simulation finalized with {len(strays)} unreceived "
            f"message(s):\n  " + "\n  ".join(strays)
        )
        if verify:
            err = UnconsumedMessageError(report)
            try:
                from ...obs.postmortem import record_failure

                # Workers are already back in their job loop here, so
                # rings are unrecoverable; the stray-message report in
                # the reason text carries the diagnostic load.
                record_failure(err, backend="processes", nranks=nranks,
                               rings={}, trace_ctx=run_ctx)
            except Exception:  # pragma: no cover - capture is best-effort
                pass
            raise err
        warnings.warn(report, UnconsumedMessageWarning, stacklevel=3)
    return SimulationResult(
        values=values, stats=stats, wall_time=wall, traces=traces,
        trace_id=run_ctx.trace_id if run_ctx is not None else None,
        backend="processes",
    )
