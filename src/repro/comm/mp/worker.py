"""Worker-process side of the process backend.

Each pool worker runs :func:`worker_main`: a loop that receives job
descriptors over its control pipe, executes the SPMD function for its
rank, and ships results (value, stats, trace, buffered log records)
back to the parent.  Inside a job the worker builds an
:class:`MpRuntime` — a duck-type of the thread backend's
:class:`repro.comm.runtime.Runtime` mailbox contract (``post`` /
``match`` / ``verifier`` / ``cost_model`` / ``trace_ctx`` / ``trace``)
— so the unchanged :class:`repro.comm.communicator.Communicator` and
every collective schedule run on top of it.

Transport: envelopes are the same :class:`repro.comm.runtime._Message`
objects the thread backend uses, except the payload crosses the process
boundary as a :class:`repro.comm.shm.ShmPacked` (shared-memory segment
for NumPy buffers, in-band pickle for small objects) and is unpacked
lazily when matched.  Virtual time is preserved: the sender stamps the
modelled arrival from its own clock and the modelled payload size, so
both backends compute identical virtual makespans.

Two protocol properties matter for correctness:

- **Exact finalize.**  Inbox queues deliver through feeder threads, so
  a message can still be in flight when its sender reports ``done``.
  Every worker therefore reports how many envelopes it put into each
  destination queue; the parent's finalize sentinel tells each rank
  exactly how many envelopes it must still absorb before declaring its
  mailbox drained.  Messages never bleed between jobs, and unreceived
  messages are detected deterministically.
- **Deadlock visibility.**  A worker blocked in :meth:`MpRuntime.match`
  longer than the heartbeat interval reports its
  :class:`~repro.comm.matching.WaitInfo`, a progress counter, and its
  send/receive totals to the parent, which runs the shared
  wait-for-graph analysis (see :mod:`repro.comm.mp.backend`) and only
  declares deadlock once the totals prove no envelope is still in
  flight; a ``wake`` message retracts the report when the wait
  completes.

There is no graceful abort: when any rank errors (or the parent detects
deadlock or collective divergence), the parent terminates the pool and
re-raises — blocked peers need no cooperation to die.
"""

from __future__ import annotations

import io
import os
import pickle
import queue as queue_mod
import time
import traceback
from typing import Any

from ...exceptions import CommError
from ...obs.context import trace_context
from ...obs.flightrec import flight_recording
from ...obs.log import configure_logging, disable_logging
from ...obs.tracer import kernel_time, tracing
from ...util.flops import counting_flops
from .. import shm
from ..costmodel import payload_nbytes
from ..matching import WaitInfo, match_in
from ..runtime import RankContext, _Message

__all__ = ["MpRuntime", "VerifierProxy", "JobSpec", "worker_main",
           "FINALIZE", "FLIGHTREC_DUMP", "HEARTBEAT_INTERVAL"]

#: Seconds a blocked receive waits before (re)sending its wait-info
#: heartbeat to the parent's deadlock monitor.
HEARTBEAT_INTERVAL = 0.1

#: First element of the parent's finalize sentinel tuple.
FINALIZE = "__mp_finalize__"

#: Inbox sentinel asking a (possibly blocked) worker to ship its flight
#: recorder ring over the control pipe — sent by the parent while
#: capturing an incident bundle (see repro.obs.postmortem); the reply
#: is ``("flightrec", rank, snapshot)`` and the sentinel never counts
#: toward message or finalize accounting.
FLIGHTREC_DUMP = "__flightrec_dump__"

#: Per-send sequence space: world rank ``r`` issues seqs in
#: ``[r * _SEQ_STRIDE, (r+1) * _SEQ_STRIDE)`` so cross-rank send/recv
#: ids never collide without coordination (critpath matches on them).
_SEQ_STRIDE = 1 << 40


class JobSpec:
    """One SPMD job as shipped to a worker (all fields picklable).

    ``payload`` is the :class:`~repro.comm.shm.ShmPacked` form of
    ``(fn, args, kwargs, extra)`` where ``extra`` is the rank's
    ``rank_args`` entry — packed per rank so chunk arrays ride shared
    memory instead of the pipe.
    """

    __slots__ = ("nranks", "payload", "config", "trace_ctx", "trace",
                 "verify", "cost_model", "forward_logs", "log_level",
                 "prefix")

    def __init__(self, nranks, payload, config, trace_ctx, trace, verify,
                 cost_model, forward_logs, log_level, prefix):
        self.nranks = nranks
        self.payload = payload
        self.config = config
        self.trace_ctx = trace_ctx
        self.trace = trace
        self.verify = verify
        self.cost_model = cost_model
        self.forward_logs = forward_logs
        self.log_level = log_level
        self.prefix = prefix


class VerifierProxy:
    """Worker-side stand-in for :class:`repro.check.verifier.SpmdVerifier`.

    Streams every collective record to the parent (which feeds its real
    verifier) and returns the rank-local sequence index — the same value
    the in-process verifier would return, since indices are per
    ``(rank, comm_key)`` call order.
    """

    __slots__ = ("_conn", "_rank", "_indices")

    def __init__(self, conn, rank: int):
        self._conn = conn
        self._rank = rank
        self._indices: dict[Any, int] = {}

    def record_collective(self, rank: int, comm_key, op: str,
                          root: int | None, size: int) -> int:
        index = self._indices.get(comm_key, 0)
        self._indices[comm_key] = index + 1
        self._conn.send(("coll", self._rank, comm_key, op, root, size))
        return index


class MpRuntime:
    """One rank's view of the cross-process mailbox fabric.

    Duck-types the thread backend's ``Runtime`` contract used by
    :class:`~repro.comm.communicator.Communicator` and
    :class:`~repro.comm.runtime.RankContext`; there is no shared-state
    object — each rank owns its inbox queue and a pending buffer, and
    matching runs locally through :func:`repro.comm.matching.match_in`.
    """

    def __init__(self, rank: int, nranks: int, inboxes, conn, cost_model,
                 *, trace, trace_ctx, verify, prefix: str):
        self.nranks = nranks
        self.cost_model = cost_model
        self.trace = trace
        self.trace_ctx = trace_ctx
        self.copy_messages = True  # value semantics are structural here
        self.verifier = VerifierProxy(conn, rank) if verify else None
        self._rank = rank
        self._inboxes = inboxes
        self._inbox = inboxes[rank]
        self._conn = conn
        self._pending: list[_Message] = []
        self._seq = rank * _SEQ_STRIDE
        # Message churn counter (posts, arrivals, matches): a repeated
        # heartbeat with unchanged progress tells the parent this rank
        # cannot have satisfied anyone since the last report.
        self.progress = 0
        # Exact-finalize accounting: envelopes put per destination queue
        # and envelopes taken from the own queue (self-sends bypass it).
        self.sent_to = [0] * nranks
        self.inbox_received = 0
        self._prefix = prefix
        from ...config import get_config  # deferred: matches Runtime

        cfg = get_config()
        self.flightrec_capacity = (cfg.flightrec_capacity
                                   if cfg.flightrec else 0)
        # The rank's FlightRecorder, shared with its RankContext so the
        # FLIGHTREC_DUMP sentinel can snapshot it mid-block.
        self._flightrec = None

    # -- sending ---------------------------------------------------------

    def post(self, ctx: RankContext, comm_key, dest_world: int,
             source_commrank: int, tag: int, payload: Any) -> None:
        """Pack the payload and deposit it in ``dest_world``'s queue."""
        if not 0 <= dest_world < self.nranks:
            raise CommError(f"destination {dest_world} out of range")
        ctx.clock.sync_compute()
        ctx.clock.charge_overhead()
        # Modelled size/arrival come from the *original* payload so the
        # virtual timeline is bitwise the thread backend's; the packed
        # wire size is accounted separately (shm_bytes).
        nbytes = payload_nbytes(payload)
        arrival = ctx.clock.now + self.cost_model.message_time(nbytes)
        with kernel_time("comm.copy"):
            packed, used_shm = shm.pack(payload, prefix=self._prefix)
        ctx.stats.payload_copies += 1
        if used_shm:
            ctx.stats.shm_sends += 1
            ctx.stats.shm_bytes += packed.shm_size
        elif nbytes >= shm.DEFAULT_SHM_THRESHOLD:
            # A large payload that exposed no out-of-band buffer went
            # through a full pickle copy: the slow path analogous to
            # fastcopy's deepcopy fallback.
            ctx.stats.payload_deepcopies += 1
        ctx.stats.bytes_sent += nbytes
        ctx.stats.msgs_sent += 1
        self._seq += 1
        seq = self._seq
        if ctx.tracer is not None:
            ctx.tracer.instant("send", dest=dest_world, tag=tag,
                               nbytes=nbytes, seq=seq, arrival=arrival)
        fr = ctx.flightrec
        if fr is not None:
            fr.record_send(dest_world, tag, seq, nbytes)
        msg = _Message(comm_key, source_commrank, tag, packed, nbytes,
                       arrival, seq, self._rank,
                       trace_id=(ctx.trace_ctx.trace_id
                                 if ctx.trace_ctx is not None else None))
        self.progress += 1
        if dest_world == self._rank:
            self._pending.append(msg)
        else:
            self.sent_to[dest_world] += 1
            self._inboxes[dest_world].put(msg)

    # -- receiving -------------------------------------------------------

    def _dump_ring(self) -> None:
        """Reply to a FLIGHTREC_DUMP sentinel with this rank's ring."""
        fr = self._flightrec
        self._conn.send(("flightrec", self._rank,
                         fr.snapshot() if fr is not None else None))

    def _admit(self, item: Any) -> None:
        if not isinstance(item, _Message):
            if isinstance(item, tuple) and item and item[0] == FLIGHTREC_DUMP:
                self._dump_ring()
                return
            raise CommError(f"unexpected inbox item {item!r}")
        self._pending.append(item)
        self.inbox_received += 1
        self.progress += 1

    def _drain_inbox_nowait(self) -> None:
        while True:
            try:
                item = self._inbox.get_nowait()
            except queue_mod.Empty:
                return
            self._admit(item)

    def match(self, ctx: RankContext, comm_key, source: int, tag: int, *,
              source_world: int | None = None) -> _Message:
        """Block until a matching message arrives; return it unpacked."""
        v_wait = ctx.clock.sync_compute()
        w_wait = time.perf_counter() if ctx.tracer is not None else 0.0
        self._drain_inbox_nowait()
        msg = match_in(self._pending, comm_key, source, tag)
        if msg is None:
            fr = ctx.flightrec
            if fr is not None:
                # Recorded *before* blocking so a stuck rank's ring ends
                # with the wait it is stuck in (mirrors the thread
                # backend).
                fr.record_wait(
                    ctx.current_coll or "recv",
                    source_world if source_world is not None else source,
                    tag,
                )
        sent_hb = False
        while msg is None:
            try:
                item = self._inbox.get(timeout=HEARTBEAT_INTERVAL)
            except queue_mod.Empty:
                wait = WaitInfo(comm_key, source, tag, source_world,
                                ctx.current_coll)
                # Send/receive totals ride along so the parent can rule
                # out in-flight envelopes (queue feeder threads deliver
                # asynchronously) before declaring deadlock.
                self._conn.send(("wait", self._rank, wait.to_tuple(),
                                 self.progress, self._pending_lines(),
                                 tuple(self.sent_to), self.inbox_received))
                sent_hb = True
                continue
            self._admit(item)
            msg = match_in(self._pending, comm_key, source, tag)
        if sent_hb:
            self._conn.send(("wake", self._rank, self.progress))
        self.progress += 1
        msg.payload = shm.unpack(msg.payload)
        ctx.clock.charge_overhead()
        ctx.clock.advance_to(msg.arrival_time)
        fr = ctx.flightrec
        if fr is not None:
            fr.record_recv(msg.source_world, msg.tag, msg.seq, msg.nbytes)
            if msg.source_world == self._rank:
                # Self-sends retire locally; cross-process sends stay
                # registered in-flight (conservative drop accounting).
                fr.mark_consumed(msg.seq)
        if ctx.tracer is not None:
            ctx.tracer.closed_span(
                "recv", "comm", v_wait, ctx.clock.now,
                w_wait, time.perf_counter(),
                source=msg.source, tag=msg.tag, nbytes=msg.nbytes,
                seq=msg.seq, source_world=msg.source_world,
                arrival=msg.arrival_time,
            )
        return msg

    # -- finalize --------------------------------------------------------

    def _pending_lines(self) -> list[str]:
        return [
            f"message: rank {m.source_world} -> rank {self._rank} "
            f"(tag {m.tag}, {m.nbytes} bytes) on communicator "
            f"{m.comm_key!r}"
            for m in self._pending
        ]

    def absorb_finalize(self) -> list[str]:
        """Complete the exact-finalize handshake; return stray lines.

        Blocks for the parent's ``(FINALIZE, outstanding)`` sentinel,
        then absorbs exactly ``outstanding`` in-flight envelopes (the
        parent computed the count from every rank's send/receive
        totals), so the mailbox is provably empty afterwards.  Shared
        segments of stray payloads are unlinked here — an unreceived
        message cannot leak ``/dev/shm`` space.
        """
        outstanding: int | None = None
        while outstanding is None or outstanding > 0:
            item = self._inbox.get()
            if isinstance(item, _Message):
                self._admit(item)
                if outstanding is not None:
                    outstanding -= 1
                continue
            if isinstance(item, tuple) and item and item[0] == FLIGHTREC_DUMP:
                # Parent is capturing an incident while this rank waits
                # for a finalize that will never come; reply and keep
                # waiting (teardown follows).
                self._dump_ring()
                continue
            if item[0] != FINALIZE:  # pragma: no cover - protocol
                raise CommError(f"unexpected finalize item {item!r}")
            # Already-admitted envelopes count against the quota.
            outstanding = item[1] - self.inbox_received
            if outstanding < 0:  # pragma: no cover - protocol
                raise CommError("finalize accounting underflow")
        lines = self._pending_lines()
        for m in self._pending:
            if isinstance(m.payload, shm.ShmPacked) and m.payload.shm_name:
                shm.release_segment(m.payload.shm_name)
        self._pending.clear()
        return lines


def _capture_logs(spec: JobSpec) -> io.StringIO | None:
    """Route this worker's structured log into a memory buffer.

    The spawned child inherits ``REPRO_LOG`` from the parent; writing
    to that file directly would interleave with (and duplicate) the
    parent-side merge, so the env sink is always overridden: a buffer
    when the parent wants the records forwarded, disabled otherwise.
    """
    if not spec.forward_logs:
        disable_logging()
        return None
    buffer = io.StringIO()
    configure_logging(stream=buffer, level=spec.log_level)
    return buffer


def _pack_error(exc: BaseException) -> tuple:
    """Picklable ``(pickled-exc-or-None, text)`` pair for shipping."""
    text = "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))
    try:
        payload = pickle.dumps(exc)
    except Exception:
        payload = None
    return (payload, text)


def _run_job(spec: JobSpec, rank: int, inboxes, conn) -> None:
    from ...config import install_config
    from ..communicator import Communicator

    install_config(spec.config)
    log_buffer = _capture_logs(spec)
    runtime = MpRuntime(
        rank, spec.nranks, inboxes, conn, spec.cost_model,
        trace=spec.trace, trace_ctx=spec.trace_ctx, verify=spec.verify,
        prefix=spec.prefix,
    )
    ctx = RankContext(rank, runtime)
    runtime._flightrec = ctx.flightrec
    comm = Communicator(runtime, ctx, comm_key=("world",),
                        group=list(range(spec.nranks)), rank=rank)
    fn, args, kwargs, extra = shm.unpack(spec.payload)
    value: Any = None
    error: tuple | None = None

    def call() -> Any:
        with flight_recording(ctx.flightrec):
            if ctx.tracer is not None:
                with tracing(ctx.tracer):
                    return fn(comm, *args, *extra, **kwargs)
            return fn(comm, *args, *extra, **kwargs)

    try:
        with counting_flops(ctx.counter):
            if ctx.trace_ctx is not None:
                with trace_context(ctx.trace_ctx):
                    value = call()
            else:
                value = call()
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        error = _pack_error(exc)
    stats = ctx.finalize_stats()
    trace = ctx.tracer.finish() if ctx.tracer is not None else None
    log_lines = (log_buffer.getvalue().splitlines()
                 if log_buffer is not None else [])
    if log_buffer is not None:
        disable_logging()
    packed_value = None
    if error is None:
        try:
            packed_value, _ = shm.pack(value, prefix=spec.prefix)
        except Exception as exc:  # unpicklable return value
            error = _pack_error(CommError(
                f"rank {rank} returned an unpicklable value "
                f"({type(value).__name__}): {exc}"
            ))
    # The ring rides the done message only on error (the parent captures
    # an incident then); healthy completions keep the pipe traffic flat.
    ring = (ctx.flightrec.snapshot()
            if error is not None and ctx.flightrec is not None else None)
    conn.send(("done", rank, packed_value, stats, trace, log_lines, error,
               runtime.sent_to, runtime.inbox_received, ring))
    if error is not None:
        # The parent tears the pool down on any error; do not enter the
        # finalize handshake it will never run.
        return
    strays = runtime.absorb_finalize()
    conn.send(("finalized", rank, strays))


def worker_main(rank: int, inboxes, conn) -> None:
    """Entry point of one pool worker process (runs until 'stop')."""
    # The spawned interpreter must never re-enter the process backend
    # (a rank calling run_spmd nested runs it on threads) and must not
    # lazily adopt the parent's REPRO_LOG sink between jobs.
    os.environ["REPRO_COMM_BACKEND"] = "threads"
    disable_logging()
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            return
        if item[0] == "stop":
            return
        spec: JobSpec = item[1]
        try:
            _run_job(spec, rank, inboxes, conn)
        except BaseException as exc:  # noqa: BLE001 - last-resort report
            try:
                conn.send(("done", rank, None, None, None, [],
                           _pack_error(exc), None, 0, None))
            except Exception:  # pragma: no cover - pipe gone
                return
