"""Simulated message-passing substrate (the library's "MPI").

This package replaces the MPI cluster of the original paper with a
thread-based SPMD runtime whose API mirrors mpi4py's object interface
(see DESIGN.md, "Hardware substitution").  Entry point:

>>> from repro.comm import run_spmd
>>> def program(comm):
...     return comm.allreduce(comm.rank)
>>> result = run_spmd(program, 4)
>>> result.values
[6, 6, 6, 6]

Every rank runs ``program`` with its own :class:`Communicator`; the
returned :class:`~repro.comm.stats.SimulationResult` carries per-rank
return values plus modelled virtual times, flop counts and traffic.
"""

from .communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MAX,
    MIN,
    Request,
    Status,
    SUM,
)
from .costmodel import CostModel, DEFAULT_COST_MODEL, payload_nbytes
from .clock import VirtualClock
from .fastcopy import fastcopy, fastcopy_counted
from .matching import WaitInfo, deadlock_report, find_wait_cycle, match_in, peek_in
from .optable import (
    COLLECTIVE_OPS,
    NONBLOCKING_OPS,
    OP_TABLE,
    OpSpec,
    POINT_TO_POINT_OPS,
)
from .runtime import CommAborted, run_spmd
from .stats import RankStats, SimulationResult

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Request",
    "Status",
    "SUM",
    "MAX",
    "MIN",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "payload_nbytes",
    "VirtualClock",
    "fastcopy",
    "fastcopy_counted",
    "WaitInfo",
    "match_in",
    "peek_in",
    "find_wait_cycle",
    "deadlock_report",
    "OpSpec",
    "OP_TABLE",
    "COLLECTIVE_OPS",
    "POINT_TO_POINT_OPS",
    "NONBLOCKING_OPS",
    "CommAborted",
    "run_spmd",
    "RankStats",
    "SimulationResult",
]
