"""Collective operations built on point-to-point messaging.

Each collective uses the textbook schedule whose cost shape the paper's
analysis assumes:

================  =============================  =======================
collective        schedule                       modelled cost
================  =============================  =======================
barrier           dissemination                  ``O(alpha log P)``
bcast             binomial tree                  ``O((alpha + n b) log P)``
gather            binomial tree                  ``O(alpha log P + n b P)``
allgather         gather + bcast                 ``O(log P)`` rounds
scatter           direct sends from root         ``O(P)`` (setup only)
alltoall          cyclic pairwise exchange       ``P - 1`` rounds
reduce            binomial tree                  ``O((alpha + n b) log P)``
allreduce         reduce + bcast                 ``O(log P)`` rounds
scan / exscan     Kogge–Stone recursive doubling ``ceil(log2 P)`` rounds
================  =============================  =======================

``scan`` is the communication pattern at the heart of recursive
doubling: the solvers in :mod:`repro.core` use the same schedule
directly (via :mod:`repro.prefix`) so its cost is exercised both here
and there.

Reduction operators must be associative.  They are applied in rank
order, so non-commutative operators are safe for ``reduce(root=0)``,
``allreduce``, ``scan`` and ``exscan``; ``reduce`` with a non-zero root
rotates the combining order and therefore additionally requires
commutativity.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Sequence, TYPE_CHECKING

from ..exceptions import CommError

if TYPE_CHECKING:  # pragma: no cover
    from .communicator import Communicator

__all__ = [
    "barrier",
    "bcast",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "reduce",
    "allreduce",
    "scan",
    "exscan",
]


def _instrumented(name: str, root_arg: int | None = None):
    """Route a collective through ``Communicator._collective_entry``.

    The entry context counts the call and its bytes on the rank's
    :class:`~repro.comm.stats.RankStats` and, when tracing is active,
    wraps it in a ``cat="coll"`` span.  Composed collectives
    (``allgather`` calling ``gather`` + ``bcast``) nest entries; the
    depth guard inside ``_collective_entry`` counts only the outermost.

    ``root_arg`` names the position of the collective's ``root``
    parameter (after ``comm``) for rooted collectives; the value is
    forwarded so the runtime verifier can include the root in the
    cross-rank signature — ``bcast(root=0)`` vs ``bcast(root=1)`` is a
    divergence even though the op matches.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(comm: "Communicator", *args: Any, **kwargs: Any) -> Any:
            root = None
            if root_arg is not None:
                if "root" in kwargs:
                    root = kwargs["root"]
                elif len(args) > root_arg:
                    root = args[root_arg]
                else:
                    root = 0
            with comm._collective_entry(name, root=root):
                return fn(comm, *args, **kwargs)

        return wrapper

    return decorate


@_instrumented("barrier")
def barrier(comm: "Communicator") -> None:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of paired messages."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = comm._coll_tag()
    dist = 1
    while dist < size:
        comm._coll_send(None, (rank + dist) % size, tag)
        comm._coll_recv((rank - dist) % size, tag)
        dist <<= 1


@_instrumented("bcast", root_arg=1)
def bcast(comm: "Communicator", obj: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast from ``root``."""
    size, rank = comm.size, comm.rank
    comm._check_rank(root, "root")
    if size == 1:
        return obj
    tag = comm._coll_tag()
    vrank = (rank - root) % size
    mask = 1
    received = vrank == 0
    while mask < size:
        if vrank < mask:
            partner = vrank + mask
            if partner < size:
                comm._coll_send(obj, (partner + root) % size, tag)
        elif vrank < 2 * mask and not received:
            obj = comm._coll_recv(((vrank - mask) + root) % size, tag)
            received = True
        mask <<= 1
    return obj


@_instrumented("gather", root_arg=1)
def gather(comm: "Communicator", obj: Any, root: int = 0) -> list[Any] | None:
    """Binomial-tree gather; ``root`` returns a rank-indexed list."""
    size, rank = comm.size, comm.rank
    comm._check_rank(root, "root")
    if size == 1:
        return [obj]
    tag = comm._coll_tag()
    vrank = (rank - root) % size
    # Accumulate {vrank: payload}; leaves push up the tree.
    acc: dict[int, Any] = {vrank: obj}
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = vrank - mask
            comm._coll_send(acc, (parent + root) % size, tag)
            return None
        child = vrank + mask
        if child < size:
            incoming = comm._coll_recv((child + root) % size, tag)
            acc.update(incoming)
        mask <<= 1
    if vrank != 0:  # pragma: no cover - vrank 0 is the only non-sender
        return None
    return [acc[(r - root) % size] for r in range(size)]


@_instrumented("allgather")
def allgather(comm: "Communicator", obj: Any) -> list[Any]:
    """Gather to rank 0 followed by broadcast (two ``log P`` phases)."""
    items = gather(comm, obj, root=0)
    return bcast(comm, items, root=0)


@_instrumented("scatter", root_arg=1)
def scatter(comm: "Communicator", objs: Sequence[Any] | None, root: int = 0) -> Any:
    """Scatter ``objs`` (one per rank) from ``root`` via direct sends.

    Linear in P; used only in setup phases, never inside timed solver
    loops, so the simple schedule does not distort the modelled costs.
    """
    size, rank = comm.size, comm.rank
    comm._check_rank(root, "root")
    tag = comm._coll_tag()
    if rank == root:
        if objs is None:
            raise CommError("root must supply the sequence to scatter")
        items = list(objs)
        if len(items) != size:
            raise CommError(
                f"scatter needs exactly {size} items, got {len(items)}"
            )
        for dest in range(size):
            if dest != root:
                comm._coll_send(items[dest], dest, tag)
        return items[root]
    return comm._coll_recv(root, tag)


@_instrumented("alltoall")
def alltoall(comm: "Communicator", objs: Sequence[Any]) -> list[Any]:
    """Cyclic pairwise personalized exchange (``P - 1`` rounds)."""
    size, rank = comm.size, comm.rank
    items = list(objs)
    if len(items) != size:
        raise CommError(f"alltoall needs exactly {size} items, got {len(items)}")
    tag = comm._coll_tag()
    out: list[Any] = [None] * size
    out[rank] = items[rank]
    for shift in range(1, size):
        dest = (rank + shift) % size
        src = (rank - shift) % size
        comm._coll_send(items[dest], dest, tag)
        out[src] = comm._coll_recv(src, tag)
    return out


@_instrumented("reduce", root_arg=2)
def reduce(comm: "Communicator", obj: Any, op: Callable[[Any, Any], Any],
           root: int = 0) -> Any | None:
    """Binomial-tree reduction to ``root``.

    Combining order follows ranks rotated so that ``root`` is first;
    with ``root == 0`` this is exact rank order.
    """
    size, rank = comm.size, comm.rank
    comm._check_rank(root, "root")
    if size == 1:
        return obj
    tag = comm._coll_tag()
    vrank = (rank - root) % size
    acc = obj
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = vrank - mask
            comm._coll_send(acc, (parent + root) % size, tag)
            return None
        child = vrank + mask
        if child < size:
            high = comm._coll_recv((child + root) % size, tag)
            # `acc` covers lower vranks than `high`: combine low-first.
            acc = op(acc, high)
        mask <<= 1
    return acc


@_instrumented("allreduce")
def allreduce(comm: "Communicator", obj: Any, op: Callable[[Any, Any], Any]) -> Any:
    """Reduce to rank 0 then broadcast (strict rank-order combining)."""
    acc = reduce(comm, obj, op, root=0)
    return bcast(comm, acc, root=0)


@_instrumented("scan")
def scan(comm: "Communicator", obj: Any, op: Callable[[Any, Any], Any]) -> Any:
    """Kogge–Stone inclusive prefix over ranks.

    After ``ceil(log2 P)`` rounds, rank ``r`` holds
    ``op(obj_0, ..., obj_r)`` combined left-to-right.  This is the
    recursive-doubling schedule whose cost the paper's ``log P`` terms
    count.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    tag = comm._coll_tag()
    acc = obj
    dist = 1
    while dist < size:
        if rank + dist < size:
            comm._coll_send(acc, rank + dist, tag)
        if rank - dist >= 0:
            left = comm._coll_recv(rank - dist, tag)
            acc = op(left, acc)
        dist <<= 1
    return acc


@_instrumented("exscan")
def exscan(comm: "Communicator", obj: Any, op: Callable[[Any, Any], Any]) -> Any:
    """Exclusive prefix over ranks; rank 0 receives ``None``.

    Implemented as an inclusive scan followed by a right shift, adding
    one message round.
    """
    size, rank = comm.size, comm.rank
    inclusive = scan(comm, obj, op)
    if size == 1:
        return None
    tag = comm._coll_tag()
    if rank + 1 < size:
        comm._coll_send(inclusive, rank + 1, tag)
    if rank == 0:
        return None
    return comm._coll_recv(rank - 1, tag)
