"""Zero-copy NumPy payload transport over POSIX shared memory.

The process backend (:mod:`repro.comm.mp`) moves message envelopes over
pickled control channels, but the array payloads themselves — whose
shapes the hot paths know statically (factor scan ``(2M,2M)+(2M,R)``,
ARD replay ``(2M,R)``, SPIKE ``(M,M)``/``(M,R)``; see
docs/PORTING_TO_MPI.md) — travel through
:class:`multiprocessing.shared_memory.SharedMemory` segments:

- :func:`pack` pickles the payload with protocol 5, diverting every
  contiguous ``ndarray`` buffer *out of band* (``buffer_callback``), and
  writes the diverted buffers into one fresh shared-memory segment.
  That single write is the send-side copy — the same copy the thread
  backend's :func:`~repro.comm.fastcopy.fastcopy` performs, so
  ``copy_messages`` value semantics are preserved for free.
- :func:`unpack` attaches the segment and reconstructs the arrays as
  **views into the shared buffer** (NumPy's pickle-5 path rebuilds via
  ``frombuffer``): the receive side copies nothing.
- Ownership travels with the message.  The sender unregisters the
  segment from its ``resource_tracker`` after posting; the receiver
  leases it and a ``weakref.finalize`` on the view base closes and
  unlinks the segment once the last deserialized array is garbage
  collected.  Crashed receivers leave segments behind; the pool sweeps
  its name prefix (``/dev/shm/rshm…``) at shutdown.

Payloads whose array bytes fall below ``threshold`` stay in-band
(pickled buffers riding the control channel) — a few hundred bytes of
latency-bound traffic is cheaper than a segment round trip.  Packing
reports which path was taken so :class:`~repro.comm.stats.RankStats`
can prove the hot path stayed zero-copy (``shm_sends`` /
``payload_deepcopies``).
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

__all__ = ["ShmPacked", "pack", "unpack", "release_segment",
           "sweep_prefix", "segment_prefix", "register_pool",
           "DEFAULT_SHM_THRESHOLD"]

#: Below this many out-of-band array bytes, payloads stay in-band.
DEFAULT_SHM_THRESHOLD = 512

_seq = itertools.count()


def segment_prefix(pool_id: int) -> str:
    """Segment-name prefix for one pool (short: POSIX names are 31ch)."""
    return f"rshm{pool_id & 0xFFFFFFFF:08x}"


def _untrack(name: str) -> None:
    """Unregister a created segment from this process's resource tracker.

    Ownership of a posted segment transfers to the receiver; without
    this the creator's tracker would warn about — and unlink — segments
    it no longer owns.  Only the create side registers on Python
    ≤ 3.12, so only :func:`pack` calls this.
    """
    try:
        resource_tracker.unregister("/" + name.lstrip("/"), "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    Python ≤ 3.12 never tracks on attach; 3.13+ does unless told not
    to, which would double-unlink a segment the receiver only leases.
    """
    if _ATTACH_TRACKS:  # pragma: no cover - Python ≥ 3.13
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


_ATTACH_TRACKS = (
    "track" in shared_memory.SharedMemory.__init__.__code__.co_varnames)


class ShmPacked:
    """Wire form of one packed payload.

    ``data`` is the protocol-5 pickle stream; the diverted array
    buffers live either in the shared segment ``shm_name`` (at
    ``spans`` offsets) or inline in ``inline`` (small payloads).
    """

    __slots__ = ("data", "spans", "shm_name", "shm_size", "inline")

    def __init__(self, data: bytes, spans: tuple, shm_name: str | None,
                 shm_size: int, inline: tuple | None):
        self.data = data
        self.spans = spans
        self.shm_name = shm_name
        self.shm_size = shm_size
        self.inline = inline

    @property
    def nbytes(self) -> int:
        """Actual transported bytes (pickle stream + array buffers)."""
        return len(self.data) + self.shm_size + sum(
            len(b) for b in self.inline or ())


def pack(obj: Any, *, threshold: int = DEFAULT_SHM_THRESHOLD,
         prefix: str = "rshm0") -> tuple[ShmPacked, bool]:
    """Serialize ``obj``; returns ``(packed, used_shm)``.

    Contiguous array buffers totalling ``>= threshold`` bytes are
    written to a fresh shared-memory segment (zero-copy receive path);
    smaller payloads ride in-band.
    """
    _drain_pending()
    buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    if not buffers:
        return ShmPacked(data, (), None, 0, None), False
    views = [b.raw() for b in buffers]
    total = sum(v.nbytes for v in views)
    if total < threshold or total == 0:
        inline = tuple(bytes(v) for v in views)
        return ShmPacked(data, (), None, 0, inline), False
    name = f"{prefix}.{os.getpid() & 0xFFFFFF:x}.{next(_seq):x}"
    seg = shared_memory.SharedMemory(name=name, create=True, size=total)
    try:
        spans = []
        offset = 0
        dest = np.frombuffer(seg.buf, dtype=np.uint8)
        for v in views:
            n = v.nbytes
            dest[offset:offset + n] = np.frombuffer(v, dtype=np.uint8)
            spans.append((offset, n))
            offset += n
        packed = ShmPacked(data, tuple(spans), seg.name, total, None)
    finally:
        del dest
        seg.close()
        _untrack(seg.name)
    return packed, True


#: Segments unlinked but not yet closeable: the lease finalizer fires
#: while the dying arrays still export pointers into the mapping, so
#: ``close()`` raises BufferError there.  Holding the handle here keeps
#: ``SharedMemory.__del__`` from running against live exports; the list
#: drains on subsequent pack/unpack calls and at exit.
_PENDING_CLOSE: list[shared_memory.SharedMemory] = []


def _drain_pending() -> None:
    for seg in _PENDING_CLOSE[:]:
        try:
            seg.close()
        except BufferError:
            continue
        _PENDING_CLOSE.remove(seg)


def _release_shm(seg: shared_memory.SharedMemory) -> None:
    """Unlink a leased segment; the mapping closes once exports die."""
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    try:
        seg.close()
    except BufferError:
        _PENDING_CLOSE.append(seg)


def unpack(packed: ShmPacked) -> Any:
    """Reconstruct the payload; array data stays a view into the segment.

    The segment is leased to the deserialized object graph: a finalizer
    on the shared view base unlinks it when the last array dies.
    """
    _drain_pending()
    if packed.shm_name is None:
        return pickle.loads(packed.data, buffers=packed.inline or ())
    seg = _attach(packed.shm_name)
    base = np.frombuffer(seg.buf, dtype=np.uint8)
    views = [base[off:off + n] for off, n in packed.spans]
    obj = pickle.loads(packed.data, buffers=views)
    # The deserialized arrays chain to ``base`` through frombuffer; when
    # the last one is collected, base goes with it and the lease ends.
    weakref.finalize(base, _release_shm, seg)
    return obj


def release_segment(name: str) -> None:
    """Unlink a segment by name without deserializing (stray cleanup)."""
    try:
        seg = _attach(name)
    except FileNotFoundError:
        return
    _release_shm(seg)


def sweep_prefix(pool_id: int) -> int:
    """Unlink every leftover segment of one pool; returns the count.

    Linux keeps POSIX segments under ``/dev/shm``; on platforms without
    it this is a no-op (segments die with the namespace).
    """
    prefix = segment_prefix(pool_id)
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return 0
    removed = 0
    try:
        names = os.listdir(root)
    except OSError:  # pragma: no cover - permissions
        return 0
    for entry in names:
        if entry.startswith(prefix):
            release_segment(entry)
            removed += 1
    return removed


def _sweep_all_pools() -> None:  # pragma: no cover - exit path
    _drain_pending()
    for pool_id in list(_REGISTERED_POOLS):
        sweep_prefix(pool_id)


_REGISTERED_POOLS: set[int] = set()


def register_pool(pool_id: int) -> None:
    """Arrange for ``pool_id``'s leftover segments to be swept at exit."""
    if not _REGISTERED_POOLS:
        atexit.register(_sweep_all_pools)
    _REGISTERED_POOLS.add(pool_id)
