"""Communication/computation cost model for the simulated runtime.

The reproduction substitutes a virtual-time simulation for the paper's
MPI cluster (see DESIGN.md).  This module defines the machine model that
converts *counted* work — flops executed, bytes moved — into *modelled*
seconds.  The model is the classic alpha–beta (latency/bandwidth) model
with a per-message CPU overhead, i.e. a simplified LogGP:

- a message of ``b`` bytes travels in ``alpha + b * beta`` seconds,
- each endpoint additionally spends ``overhead`` seconds of CPU time,
- ``f`` flops of dense linear algebra take ``f / flop_rate`` seconds.

Default constants are representative of a 2014-era commodity cluster
(the paper's setting): ~1 us MPI latency, ~10 GB/s links, ~10 Gflop/s
per core.  :mod:`repro.perfmodel.machine` can calibrate ``flop_rate``
from a measured GEMM on the host.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Any

import numpy as np

from ..exceptions import ConfigError

__all__ = ["CostModel", "payload_nbytes", "DEFAULT_COST_MODEL"]


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Machine parameters of the virtual-time model.

    Attributes
    ----------
    latency:
        End-to-end message latency ``alpha`` in seconds.
    inv_bandwidth:
        Per-byte transfer time ``beta`` in seconds/byte.
    overhead:
        CPU time charged to each endpoint per message, in seconds.
    flop_rate:
        Dense linear-algebra throughput in flops/second.
    """

    latency: float = 1.0e-6
    inv_bandwidth: float = 1.0 / 10.0e9
    overhead: float = 0.25e-6
    flop_rate: float = 10.0e9

    def __post_init__(self) -> None:
        for name in ("latency", "inv_bandwidth", "overhead"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.flop_rate <= 0:
            raise ConfigError(f"flop_rate must be positive, got {self.flop_rate}")

    def message_time(self, nbytes: int) -> float:
        """Wire time for a message of ``nbytes`` bytes."""
        return self.latency + nbytes * self.inv_bandwidth

    def compute_time(self, flops: int | float) -> float:
        """Modelled seconds to execute ``flops`` floating-point operations."""
        return flops / self.flop_rate

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with some parameters replaced."""
        return dataclasses.replace(self, **overrides)


#: Shared default instance used when callers do not supply a model.
DEFAULT_COST_MODEL = CostModel()


def payload_nbytes(obj: Any) -> int:
    """Estimate the on-wire size of a message payload in bytes.

    NumPy arrays report their buffer size; containers sum their items
    plus a small per-item envelope; objects exposing an ``nbytes``
    attribute (e.g. :class:`repro.prefix.affine.AffinePair`) report it
    directly; anything else falls back to its pickled length.
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    if isinstance(obj, (tuple, list)):
        return 8 + sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if obj is None:
        return 1
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # opaque object; charge a nominal envelope
