"""Transfer operators: block rows as first-order affine recurrences.

With ``x_{-1} := 0``, block row ``i < N-1`` of ``A x = d`` solved for
``x_{i+1}`` gives

``x_{i+1} = T1_i x_i + T2_i x_{i-1} + g_i``

where ``T1_i = -U_i^{-1} D_i``, ``T2_i = -U_i^{-1} L_i`` and
``g_i = U_i^{-1} d_i``.  On the stacked state ``s_i = [x_i; x_{i-1}]``
this is the affine map ``s_{i+1} = A_i s_i + [g_i; 0]`` with

``A_i = [[T1_i, T2_i], [I, 0]]``.

:class:`TransferOperators` builds ``T1``/``T2`` (and keeps the LU
factors of the ``U_i`` for computing ``g`` per right-hand side — the
matrix/vector split that ARD's factorization stores).  The module also
provides the three structured local kernels every solver uses:

- :func:`local_matrix_aggregate` — the chunk's composed matrix part,
  exploiting the ``[[T1, T2], [I, 0]]`` structure (4 instead of 8
  ``M x M`` products per row);
- :func:`local_vector_aggregate` — the chunk's composed vector part
  (pure matrix–vector work, the per-RHS cost);
- :func:`forward_solution` — back-substitution: given the state at the
  chunk entry, produce the owned solution rows.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU, gemm
from .distribute import LocalChunk

__all__ = [
    "TransferOperators",
    "local_matrix_aggregate",
    "local_vector_aggregate",
    "forward_solution",
]


class TransferOperators:
    """Per-chunk transfer maps ``(T1_i, T2_i)`` plus the ``U_i`` factors.

    Built from a :class:`~repro.core.distribute.LocalChunk`; covers the
    chunk's ``ntransfer`` rows (all owned rows except a final closing
    row).  The construction is the ``O((N/P) M^3)`` matrix work that RD
    repeats per right-hand side and ARD performs once.
    """

    __slots__ = ("lo", "ntransfer", "block_size", "t1", "t2", "ulu", "dtype")

    def __init__(self, chunk: LocalChunk):
        t = chunk.ntransfer
        m = chunk.block_size
        self.lo = chunk.lo
        self.ntransfer = t
        self.block_size = m
        self.dtype = chunk.dtype
        if t > 0:
            # Factor the superdiagonal blocks; raises SingularBlockError
            # (with the global row index) if any is singular.
            self.ulu = BatchedLU(chunk.sup[:t], block_offset=chunk.lo)
            self.t1 = -self.ulu.solve(chunk.diag[:t])
            self.t2 = -self.ulu.solve(chunk.sub[:t])
        else:
            self.ulu = None
            self.t1 = np.empty((0, m, m), dtype=chunk.dtype)
            self.t2 = np.empty((0, m, m), dtype=chunk.dtype)

    def g(self, d_rows: np.ndarray) -> np.ndarray:
        """Compute ``g_i = U_i^{-1} d_i`` for the chunk's transfer rows.

        ``d_rows`` must be the ``(h, M, R)`` right-hand-side rows of the
        chunk; only the first ``ntransfer`` rows are consumed.
        """
        d_rows = np.asarray(d_rows)
        if d_rows.ndim != 3 or d_rows.shape[1] != self.block_size:
            raise ShapeError(
                f"rhs rows must be (h, {self.block_size}, R), got {d_rows.shape}"
            )
        if d_rows.shape[0] < self.ntransfer:
            raise ShapeError(
                f"need at least {self.ntransfer} rhs rows, got {d_rows.shape[0]}"
            )
        if self.ntransfer == 0:
            return np.empty((0, self.block_size, d_rows.shape[2]), dtype=self.dtype)
        return self.ulu.solve(d_rows[: self.ntransfer])

    @property
    def nbytes(self) -> int:
        total = self.t1.nbytes + self.t2.nbytes
        if self.ulu is not None:
            total += self.ulu.nbytes
        return total


def local_matrix_aggregate(ops: TransferOperators) -> np.ndarray:
    """Composed matrix part of the chunk's transfer maps as ``(2M, 2M)``.

    Maintains the invariant that the running product
    ``A_{i} ... A_{lo}`` has the form ``[[G, H], [Gp, Hp]]`` (its bottom
    half equals the previous step's top half), so each row costs four
    ``M x M`` products instead of a full ``(2M)^3`` multiply.
    """
    m = ops.block_size
    g_cur = np.eye(m, dtype=ops.dtype)
    h_cur = np.zeros((m, m), dtype=ops.dtype)
    g_prev = np.zeros((m, m), dtype=ops.dtype)
    h_prev = np.eye(m, dtype=ops.dtype)
    for j in range(ops.ntransfer):
        g_new = gemm(ops.t1[j], g_cur) + gemm(ops.t2[j], g_prev)
        h_new = gemm(ops.t1[j], h_cur) + gemm(ops.t2[j], h_prev)
        g_prev, h_prev = g_cur, h_cur
        g_cur, h_cur = g_new, h_new
    out = np.empty((2 * m, 2 * m), dtype=ops.dtype)
    out[:m, :m] = g_cur
    out[:m, m:] = h_cur
    out[m:, :m] = g_prev
    out[m:, m:] = h_prev
    return out


def local_vector_aggregate(ops: TransferOperators, g_rows: np.ndarray) -> np.ndarray:
    """Composed vector part of the chunk's transfer maps as ``(2M, R)``.

    Equals the state reached from ``s = 0`` by running the recurrence
    across the chunk — pure matrix–vector work, ``O((N/P) M^2 R)``.
    """
    m = ops.block_size
    if g_rows.shape[0] != ops.ntransfer:
        raise ShapeError(
            f"expected {ops.ntransfer} g rows, got {g_rows.shape[0]}"
        )
    r = g_rows.shape[2] if g_rows.ndim == 3 else 0
    v_cur = np.zeros((m, r), dtype=ops.dtype)
    v_prev = np.zeros((m, r), dtype=ops.dtype)
    for j in range(ops.ntransfer):
        v_new = gemm(ops.t1[j], v_cur) + gemm(ops.t2[j], v_prev) + g_rows[j]
        v_prev = v_cur
        v_cur = v_new
    return np.concatenate([v_cur, v_prev], axis=0)


def forward_solution(
    ops: TransferOperators,
    g_rows: np.ndarray,
    entry_state: np.ndarray,
    nrows: int,
) -> np.ndarray:
    """Back-substitution: produce the chunk's ``nrows`` solution rows.

    ``entry_state`` is ``s_lo = [x_lo; x_{lo-1}]`` of shape ``(2M, R)``.
    The first output row is ``x_lo``; subsequent rows apply the transfer
    recurrence.  Only the first ``nrows - 1`` transfer maps are needed
    (the chunk's last transfer produces the *next* rank's first row).
    """
    m = ops.block_size
    r = entry_state.shape[1]
    out = np.empty((nrows, m, r), dtype=ops.dtype)
    if nrows == 0:
        return out
    x_cur = entry_state[:m]
    x_prev = entry_state[m:]
    out[0] = x_cur
    steps = min(ops.ntransfer, nrows - 1)
    for j in range(steps):
        x_new = gemm(ops.t1[j], x_cur) + gemm(ops.t2[j], x_prev) + g_rows[j]
        x_prev = x_cur
        x_cur = x_new
        out[j + 1] = x_cur
    if steps < nrows - 1:
        raise ShapeError(
            f"chunk has {ops.ntransfer} transfers but {nrows} rows requested"
        )
    return out
