"""Transfer operators: block rows as first-order affine recurrences.

With ``x_{-1} := 0``, block row ``i < N-1`` of ``A x = d`` solved for
``x_{i+1}`` gives

``x_{i+1} = T1_i x_i + T2_i x_{i-1} + g_i``

where ``T1_i = -U_i^{-1} D_i``, ``T2_i = -U_i^{-1} L_i`` and
``g_i = U_i^{-1} d_i``.  On the stacked state ``s_i = [x_i; x_{i-1}]``
this is the affine map ``s_{i+1} = A_i s_i + [g_i; 0]`` with

``A_i = [[T1_i, T2_i], [I, 0]]``.

:class:`TransferOperators` builds ``T1``/``T2`` (and keeps the LU
factors of the ``U_i`` for computing ``g`` per right-hand side — the
matrix/vector split that ARD's factorization stores).  The module also
provides the three structured local kernels every solver uses:

- :func:`local_matrix_aggregate` — the chunk's composed matrix part,
  exploiting the ``[[T1, T2], [I, 0]]`` structure (4 instead of 8
  ``M x M`` products per row);
- :func:`local_vector_aggregate` — the chunk's composed vector part
  (pure matrix–vector work, the per-RHS cost);
- :func:`forward_solution` — back-substitution: given the state at the
  chunk entry, produce the owned solution rows.

Evaluation modes
----------------
Each kernel evaluates either *sequentially* (one block row per
iteration, ``h`` interpreter round-trips) or *level-wise*: the ``h``
transfer maps are stacked into a ``(h, 2M, 2M)`` batch and run through
the cached Blelloch tree of :class:`repro.prefix.batched.AffineLevels`
in ``O(log h)`` full-batch gemms.  Level-wise spends ~2x the matrix
flops and ~4x the vector flops to eliminate the per-row Python
dispatch — a win once ``h`` is large, ``M`` small, and the RHS panel
thin.  The choice is ``repro.config``'s ``recurrence_mode`` (``auto``
picks by ``(h, M, R)``, see docs/KERNELS.md); each decision is recorded
on the active trace as a ``recurrence.mode`` instant event.
"""

from __future__ import annotations

import numpy as np

from ..config import (
    DEFAULT_LEVELWISE_MAX_BLOCK,
    DEFAULT_LEVELWISE_MAX_RHS,
    DEFAULT_LEVELWISE_MIN_ROWS,
    get_config,
)
from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU, gemm
from ..obs.tracer import instant
from ..prefix.batched import AffineLevels
from .distribute import LocalChunk

__all__ = [
    "TransferOperators",
    "local_matrix_aggregate",
    "local_vector_aggregate",
    "forward_solution",
]

#: Documented default: ``auto`` switches to level-wise evaluation at
#: this many transfer rows.  The hot path reads the live
#: ``repro.config`` field ``levelwise_min_rows`` (this is its default),
#: so per-host tuning (``python -m repro.harness tune``) takes effect
#: without touching this module.
LEVELWISE_MIN_ROWS = DEFAULT_LEVELWISE_MIN_ROWS

#: Documented default: ``auto`` stays sequential above this block order
#: (the batched ``(2M, 2M)`` composites grow as ``M^3`` while the
#: structured sequential path only pays 4 ``M x M`` products per row).
#: Live config field: ``levelwise_max_block``.
LEVELWISE_MAX_BLOCK = DEFAULT_LEVELWISE_MAX_BLOCK

#: Documented default: ``auto`` keeps the *vector* kernels sequential
#: above this RHS panel width.  Level-wise vector evaluation spends ~4x
#: the flops of the sequential recurrence; that only pays while the
#: per-row dispatch overhead dominates, i.e. for thin panels.  Wide
#: panels are compute-bound and the sequential per-row gemms are
#: already efficient.  Live config field: ``levelwise_max_rhs``.
LEVELWISE_MAX_RHS = DEFAULT_LEVELWISE_MAX_RHS


def _use_levelwise(
    nrows: int, block_size: int, kernel: str, panel: int | None = None
) -> bool:
    """Resolve the configured ``recurrence_mode`` for one kernel call.

    ``panel`` is the RHS panel width for the vector kernels (``None``
    for the matrix aggregate, whose cost has no RHS dimension).  Records
    the decision as a ``recurrence.mode`` instant event on the active
    trace (no-op when tracing is off).
    """
    cfg = get_config()
    mode = cfg.recurrence_mode
    if mode == "sequential":
        levelwise = False
    elif mode == "levelwise":
        levelwise = nrows > 0
    else:
        levelwise = (
            nrows >= cfg.levelwise_min_rows
            and block_size <= cfg.levelwise_max_block
            and (panel is None or panel <= cfg.levelwise_max_rhs)
        )
    instant(
        "recurrence.mode",
        cat="detail",
        kernel=kernel,
        mode=mode,
        levelwise=levelwise,
        nrows=nrows,
        block_size=block_size,
        panel=panel,
    )
    return levelwise


class TransferOperators:
    """Per-chunk transfer maps ``(T1_i, T2_i)`` plus the ``U_i`` factors.

    Built from a :class:`~repro.core.distribute.LocalChunk`; covers the
    chunk's ``ntransfer`` rows (all owned rows except a final closing
    row).  The construction is the ``O((N/P) M^3)`` matrix work that RD
    repeats per right-hand side and ARD performs once.

    The level-wise evaluation path lazily builds (and caches) the
    Blelloch matrix tree over the stacked transfer maps — matrix-only
    work that, like the rest of this object, amortizes across solves.
    """

    __slots__ = ("lo", "ntransfer", "block_size", "t1", "t2", "ulu", "dtype",
                 "_levels")

    def __init__(self, chunk: LocalChunk):
        t = chunk.ntransfer
        m = chunk.block_size
        self.lo = chunk.lo
        self.ntransfer = t
        self.block_size = m
        self.dtype = chunk.dtype
        self._levels = None
        if t > 0:
            # Factor the superdiagonal blocks; raises SingularBlockError
            # (with the global row index) if any is singular.
            self.ulu = BatchedLU(chunk.sup[:t], block_offset=chunk.lo)
            self.t1 = -self.ulu.solve(chunk.diag[:t])
            self.t2 = -self.ulu.solve(chunk.sub[:t])
        else:
            self.ulu = None
            self.t1 = np.empty((0, m, m), dtype=chunk.dtype)
            self.t2 = np.empty((0, m, m), dtype=chunk.dtype)

    def g(self, d_rows: np.ndarray) -> np.ndarray:
        """Compute ``g_i = U_i^{-1} d_i`` for the chunk's transfer rows.

        ``d_rows`` must be the ``(h, M, R)`` right-hand-side rows of the
        chunk; only the first ``ntransfer`` rows are consumed.
        """
        d_rows = np.asarray(d_rows)
        if d_rows.ndim != 3 or d_rows.shape[1] != self.block_size:
            raise ShapeError(
                f"rhs rows must be (h, {self.block_size}, R), got {d_rows.shape}"
            )
        if d_rows.shape[0] < self.ntransfer:
            raise ShapeError(
                f"need at least {self.ntransfer} rhs rows, got {d_rows.shape[0]}"
            )
        if self.ntransfer == 0:
            return np.empty((0, self.block_size, d_rows.shape[2]), dtype=self.dtype)
        return self.ulu.solve(d_rows[: self.ntransfer])

    def stacked_maps(self) -> np.ndarray:
        """The transfer maps as one ``(ntransfer, 2M, 2M)`` batch."""
        m = self.block_size
        mats = np.zeros((self.ntransfer, 2 * m, 2 * m), dtype=self.dtype)
        mats[:, :m, :m] = self.t1
        mats[:, :m, m:] = self.t2
        idx = np.arange(m)
        mats[:, m + idx, idx] = 1.0
        return mats

    def levels(self) -> AffineLevels:
        """The cached Blelloch matrix tree over the transfer maps."""
        if self._levels is None:
            self._levels = AffineLevels(self.stacked_maps())
        return self._levels

    @property
    def nbytes(self) -> int:
        total = self.t1.nbytes + self.t2.nbytes
        if self.ulu is not None:
            total += self.ulu.nbytes
        if self._levels is not None:
            total += self._levels.nbytes
        return total


def _stacked_vectors(ops: TransferOperators, g_rows: np.ndarray) -> np.ndarray:
    """The vector parts ``b_j = [g_j; 0]`` as ``(ntransfer, 2M, R)``."""
    m = ops.block_size
    r = g_rows.shape[2]
    vecs = np.zeros((ops.ntransfer, 2 * m, r), dtype=ops.dtype)
    vecs[:, :m] = g_rows[: ops.ntransfer]
    return vecs


def local_matrix_aggregate(ops: TransferOperators) -> np.ndarray:
    """Composed matrix part of the chunk's transfer maps as ``(2M, 2M)``.

    Sequential mode maintains the invariant that the running product
    ``A_{i} ... A_{lo}`` has the form ``[[G, H], [Gp, Hp]]`` (its bottom
    half equals the previous step's top half), so each row costs four
    ``M x M`` products instead of a full ``(2M)^3`` multiply.
    Level-wise mode reads the cached Blelloch tree's root.
    """
    m = ops.block_size
    if _use_levelwise(ops.ntransfer, m, "matrix_aggregate"):
        # Copy: the root stays cached on the operators and the caller
        # may ship (or mutate) the aggregate.
        return ops.levels().total_matrix.copy()
    g_cur = np.eye(m, dtype=ops.dtype)
    h_cur = np.zeros((m, m), dtype=ops.dtype)
    g_prev = np.zeros((m, m), dtype=ops.dtype)
    h_prev = np.eye(m, dtype=ops.dtype)
    for j in range(ops.ntransfer):
        g_new = gemm(ops.t1[j], g_cur) + gemm(ops.t2[j], g_prev)
        h_new = gemm(ops.t1[j], h_cur) + gemm(ops.t2[j], h_prev)
        g_prev, h_prev = g_cur, h_cur
        g_cur, h_cur = g_new, h_new
    out = np.empty((2 * m, 2 * m), dtype=ops.dtype)
    out[:m, :m] = g_cur
    out[:m, m:] = h_cur
    out[m:, :m] = g_prev
    out[m:, m:] = h_prev
    return out


def local_vector_aggregate(ops: TransferOperators, g_rows: np.ndarray) -> np.ndarray:
    """Composed vector part of the chunk's transfer maps as ``(2M, R)``.

    Equals the state reached from ``s = 0`` by running the recurrence
    across the chunk — pure matrix–vector work, ``O((N/P) M^2 R)``
    sequentially, ``O(log h)`` batched gemms level-wise.
    """
    m = ops.block_size
    if g_rows.shape[0] != ops.ntransfer:
        raise ShapeError(
            f"expected {ops.ntransfer} g rows, got {g_rows.shape[0]}"
        )
    if g_rows.ndim == 3 and _use_levelwise(
        ops.ntransfer, m, "vector_aggregate", panel=g_rows.shape[2]
    ):
        return ops.levels().reduce_vectors(_stacked_vectors(ops, g_rows))
    r = g_rows.shape[2] if g_rows.ndim == 3 else 0
    v_cur = np.zeros((m, r), dtype=ops.dtype)
    v_prev = np.zeros((m, r), dtype=ops.dtype)
    for j in range(ops.ntransfer):
        v_new = gemm(ops.t1[j], v_cur) + gemm(ops.t2[j], v_prev) + g_rows[j]
        v_prev = v_cur
        v_cur = v_new
    return np.concatenate([v_cur, v_prev], axis=0)


def forward_solution(
    ops: TransferOperators,
    g_rows: np.ndarray,
    entry_state: np.ndarray,
    nrows: int,
) -> np.ndarray:
    """Back-substitution: produce the chunk's ``nrows`` solution rows.

    ``entry_state`` is ``s_lo = [x_lo; x_{lo-1}]`` of shape ``(2M, R)``.
    The first output row is ``x_lo``; subsequent rows apply the transfer
    recurrence.  Only the first ``nrows - 1`` transfer maps are needed
    (the chunk's last transfer produces the *next* rank's first row).

    Level-wise mode folds the entry state into the scan's first element
    so the Blelloch exclusive outputs are exactly the states ``s_j``.
    """
    m = ops.block_size
    r = entry_state.shape[1]
    out = np.empty((nrows, m, r), dtype=ops.dtype)
    if nrows == 0:
        return out
    steps = min(ops.ntransfer, nrows - 1)
    if steps < nrows - 1:
        raise ShapeError(
            f"chunk has {ops.ntransfer} transfers but {nrows} rows requested"
        )
    if (
        g_rows.shape[0] >= ops.ntransfer
        and _use_levelwise(ops.ntransfer, m, "forward_solution", panel=r)
    ):
        states = ops.levels().exclusive_states(
            _stacked_vectors(ops, g_rows), entry_state
        )
        take = min(nrows, ops.ntransfer)
        out[:take] = states[:take, :m]
        if nrows == ops.ntransfer + 1:
            # The exclusive scan yields s_0 .. s_{h-1}; the final row
            # needs s_h — one more application of the last map.
            last = states[-1] if ops.ntransfer else entry_state
            out[nrows - 1] = (
                gemm(ops.t1[steps - 1], last[:m])
                + gemm(ops.t2[steps - 1], last[m:])
                + g_rows[steps - 1]
            )
        return out
    x_cur = entry_state[:m]
    x_prev = entry_state[m:]
    out[0] = x_cur
    for j in range(steps):
        x_new = gemm(ops.t1[j], x_cur) + gemm(ops.t2[j], x_prev) + g_rows[j]
        x_prev = x_cur
        x_cur = x_new
        out[j + 1] = x_cur
    return out
