"""Shared phases of the recursive doubling solvers.

Both RD and ARD execute the same four phases (DESIGN.md, "The
algorithms"); this module implements each phase once so the two solvers
differ only in *when* the matrix work happens:

1. **Local build** — transfer operators + chunk aggregates
   (:mod:`repro.core.recurrence`).
2. **Scan** — recursive-doubling prefix over chunk aggregates
   (:mod:`repro.core.scan_affine`).
3. **Closing solve** — the ``M x M`` system that pins down ``x_0`` from
   the last block row, then a broadcast (:func:`closing_matrix`,
   :func:`closing_rhs`, :func:`broadcast_x0`).
4. **Back-substitution** — entry states + local forward recurrence
   (:func:`entry_state`, :func:`repro.core.recurrence.forward_solution`).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU, gemm
from ..obs import span as _span
from ..prefix.affine import AffinePair
from .distribute import LocalChunk

__all__ = [
    "find_closing_rank",
    "closing_matrix",
    "closing_rhs",
    "factor_closing",
    "broadcast_x0",
    "entry_state",
    "validate_rhs_rows",
]


def validate_rhs_rows(chunk: LocalChunk, d_rows: np.ndarray) -> np.ndarray:
    """Check that ``d_rows`` matches the chunk's rows; return as array."""
    d_rows = np.asarray(d_rows)
    if d_rows.ndim != 3 or d_rows.shape[:2] != (chunk.nrows, chunk.block_size):
        raise ShapeError(
            f"rhs rows must be ({chunk.nrows}, {chunk.block_size}, R), "
            f"got {d_rows.shape}"
        )
    if d_rows.shape[2] < 1:
        raise ShapeError("at least one right-hand side is required")
    return d_rows


def find_closing_rank(comm, chunk: LocalChunk) -> int:
    """Rank owning the closing (last) block row.  One tiny allgather."""
    with _span("find_closing_rank", cat="detail"):
        flags = comm.allgather(bool(chunk.owns_closing_row))
    try:
        return flags.index(True)
    except ValueError:  # pragma: no cover - impossible for valid chunks
        raise ShapeError("no rank owns the closing row") from None


def closing_matrix(chunk: LocalChunk, a_inclusive: np.ndarray) -> np.ndarray:
    """Assemble the closing system ``K = D_{N-1} E1 + L_{N-1} E2``.

    ``a_inclusive`` is the closing rank's inclusive matrix prefix: its
    top-left ``M x M`` block ``E1`` maps ``x_0`` to ``x_{N-1}`` and its
    bottom-left block ``E2`` maps ``x_0`` to ``x_{N-2}`` (the bottom
    half of the state ``s_{N-1}``).
    """
    m = chunk.block_size
    if a_inclusive.shape != (2 * m, 2 * m):
        raise ShapeError(
            f"inclusive prefix must be ({2 * m}, {2 * m}), got {a_inclusive.shape}"
        )
    e1 = a_inclusive[:m, :m]
    e2 = a_inclusive[m:, :m]
    d_last = chunk.diag[-1]
    l_last = chunk.sub[-1]  # zero block when N == 1; harmless
    return gemm(d_last, e1) + gemm(l_last, e2)


def closing_rhs(chunk: LocalChunk, b_inclusive: np.ndarray,
                d_last: np.ndarray) -> np.ndarray:
    """Right-hand side of the closing system.

    ``b_inclusive`` is the closing rank's ``(2M, R)`` inclusive vector
    prefix (``f1`` on top, ``f2`` below); ``d_last`` is the last block
    row of the global right-hand side, shape ``(M, R)``.
    """
    m = chunk.block_size
    f1 = b_inclusive[:m]
    f2 = b_inclusive[m:]
    return d_last - gemm(chunk.diag[-1], f1) - gemm(chunk.sub[-1], f2)


def broadcast_x0(comm, closing_rank: int, x0: np.ndarray | None) -> np.ndarray:
    """Broadcast ``x_0`` (shape ``(M, R)``) from the closing rank."""
    return comm.bcast(x0, root=closing_rank)


def entry_state(exclusive: AffinePair | None, a_exclusive: np.ndarray,
                b_exclusive: np.ndarray, x0: np.ndarray) -> np.ndarray:
    """Chunk entry state ``s_lo = A_exc[:, :M] @ x_0 + b_exc``.

    Only the first ``M`` columns of the exclusive matrix prefix matter
    because the global initial state is ``s_0 = [x_0; 0]``.

    ``exclusive`` may be passed instead of the raw arrays (convenience
    for the fused RD pass).
    """
    if exclusive is not None:
        a_exclusive = exclusive.a
        b_exclusive = exclusive.b
    m = x0.shape[0]
    return gemm(a_exclusive[:, :m], x0) + b_exclusive


def factor_closing(chunk: LocalChunk, a_inclusive: np.ndarray) -> BatchedLU:
    """Factor the closing matrix once (stored by ARD, rebuilt by RD).

    A singular/ill-conditioned closing matrix almost always means the
    composed transfer products overflowed double precision — the system
    is outside recursive doubling's stability domain — so the error is
    re-raised with that hint.
    """
    from ..exceptions import SingularBlockError

    try:
        with _span("factor_closing", cat="detail"):
            k = closing_matrix(chunk, a_inclusive)
            return BatchedLU(k[None, :, :], block_offset=chunk.nblocks - 1)
    except SingularBlockError as exc:
        raise SingularBlockError(
            "closing system is singular to working precision; the "
            "transfer-product growth of this matrix likely exceeds what "
            "double precision can represent (run "
            "repro.core.diagnostics.diagnose(matrix) and see the "
            "stability caveat in DESIGN.md; method='thomas' or 'cyclic' "
            "handle diagonally dominant systems of any length)",
            block_index=chunk.nblocks - 1,
        ) from exc
