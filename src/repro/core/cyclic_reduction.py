"""Block cyclic reduction (BCR) — the alternative prefix-free parallel
baseline.

Each reduction level eliminates the odd-indexed block rows by
substituting their equations into the even-indexed ones, halving the
system; ``ceil(log2 N)`` levels reduce to a single ``M x M`` block
solve, after which back-substitution recovers the eliminated rows level
by level.

Like Thomas and ARD, BCR admits a factor/solve split: the reduced-level
matrices and the elimination operators ``P_i = L_i D_{i-1}^{-1}`` /
``Q_i = U_i D_{i+1}^{-1}`` are RHS-independent (``O(N M^3)`` once),
while per right-hand side only matrix–vector sweeps remain
(``O(N M^2 R)``).  This implementation is sequential; its *parallel*
cost shape (``O(M^3 log N)`` critical path with one level per round) is
modelled analytically in :mod:`repro.perfmodel.complexity` for the
baseline-comparison experiment (abl-A3), as documented in DESIGN.md.

Requires invertible diagonal blocks at every level — guaranteed for
block diagonally dominant systems (dominance is preserved under the
reduction), the same class recursive doubling targets.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU, gemm
from ..linalg.blocktridiag import BlockTridiagonalMatrix
from .refine import RefinableFactorization

__all__ = ["CyclicReductionFactorization", "cyclic_reduction_solve"]


@dataclasses.dataclass
class _Level:
    """Stored operators for one reduction level with ``n`` input rows.

    ``p``/``q`` reduce the kept (even) rows' right-hand sides;
    ``odd_lu``/``odd_sub``/``odd_sup`` back-substitute the eliminated
    (odd) rows.  Boundary entries that reference nonexistent neighbours
    hold zero blocks.
    """

    n: int
    p: np.ndarray        # (k, m, m): L_{2j} D_{2j-1}^{-1}       (zero at j = 0)
    q: np.ndarray        # (k, m, m): U_{2j} D_{2j+1}^{-1}       (zero when 2j+1 >= n)
    odd_lu: BatchedLU | None  # factors of D_{2e+1}
    odd_sub: np.ndarray  # (e, m, m): L_{2e+1}
    odd_sup: np.ndarray  # (e, m, m): U_{2e+1}                   (zero when 2e+1 = n-1)


class CyclicReductionFactorization(RefinableFactorization):
    """Factored block cyclic reduction: factor once, solve many
    (``solve(b, refine=k)`` adds iterative refinement).

    Example
    -------
    >>> from repro.workloads import poisson_block_system, random_rhs
    >>> A, _ = poisson_block_system(10, 3)
    >>> F = CyclicReductionFactorization(A)
    >>> b = random_rhs(10, 3, nrhs=2, seed=0)
    >>> bool(A.residual(F.solve(b), b) < 1e-10)
    True
    """

    def __init__(self, matrix: BlockTridiagonalMatrix):
        if not isinstance(matrix, BlockTridiagonalMatrix):
            raise ShapeError(
                f"matrix must be a BlockTridiagonalMatrix, got {type(matrix).__name__}"
            )
        self.matrix = matrix
        self.nblocks = matrix.nblocks
        self.block_size = matrix.block_size
        self.dtype = matrix.dtype
        self.levels: list[_Level] = []

        lower = matrix.lower.copy()
        diag = matrix.diag.copy()
        upper = matrix.upper.copy()
        n, m = self.nblocks, self.block_size

        while n > 1:
            k = (n + 1) // 2   # kept rows: indices 0, 2, 4, ...
            e = n // 2         # eliminated rows: indices 1, 3, 5, ...
            odd_sub = np.zeros((e, m, m), dtype=self.dtype)
            odd_sup = np.zeros((e, m, m), dtype=self.dtype)
            odd_diag = np.empty((e, m, m), dtype=self.dtype)
            for idx in range(e):
                i = 2 * idx + 1
                odd_diag[idx] = diag[i]
                odd_sub[idx] = lower[i - 1]
                if i < n - 1:
                    odd_sup[idx] = upper[i]
            odd_lu = BatchedLU(odd_diag)

            p = np.zeros((k, m, m), dtype=self.dtype)
            q = np.zeros((k, m, m), dtype=self.dtype)
            new_lower = np.zeros((max(k - 1, 0), m, m), dtype=self.dtype)
            new_diag = np.empty((k, m, m), dtype=self.dtype)
            new_upper = np.zeros((max(k - 1, 0), m, m), dtype=self.dtype)
            for j in range(k):
                i = 2 * j
                dj = diag[i].copy()
                if i > 0:
                    # P_j = L_i D_{i-1}^{-1}  via  (D_{i-1}^{-T} L_i^T)^T.
                    p[j] = odd_lu.solve_one(j - 1, lower[i - 1].T, transposed=True).T
                    dj -= gemm(p[j], upper[i - 1])
                    if j > 0:
                        new_lower[j - 1] = -gemm(p[j], lower[i - 2])
                if i < n - 1:
                    q[j] = odd_lu.solve_one(j, upper[i].T, transposed=True).T
                    dj -= gemm(q[j], lower[i])
                    if i + 1 < n - 1:
                        new_upper[j] = -gemm(q[j], upper[i + 1])
                new_diag[j] = dj
            self.levels.append(
                _Level(n=n, p=p, q=q, odd_lu=odd_lu, odd_sub=odd_sub, odd_sup=odd_sup)
            )
            lower, diag, upper = new_lower, new_diag, new_upper
            n = k

        # Root: a single M x M system.
        self._root_lu = BatchedLU(diag[0][None, :, :])

    @property
    def nbytes(self) -> int:
        """Stored factorization footprint across all reduction levels;
        used by the service-layer cache for byte-budget accounting."""
        total = self._root_lu.nbytes
        for level in self.levels:
            total += (level.p.nbytes + level.q.nbytes
                      + level.odd_sub.nbytes + level.odd_sup.nbytes)
            if level.odd_lu is not None:
                total += level.odd_lu.nbytes
        return total

    def _solve_normalized(self, bb: np.ndarray) -> np.ndarray:
        n, m = self.nblocks, self.block_size
        r = bb.shape[2]
        dtype = np.result_type(self.dtype, bb.dtype)

        # Downward sweep: reduce the RHS level by level.
        rhs_stack: list[np.ndarray] = []
        d = bb.astype(dtype, copy=True)
        for level in self.levels:
            rhs_stack.append(d)
            nn = level.n
            k = (nn + 1) // 2
            d_new = np.empty((k, m, r), dtype=dtype)
            for j in range(k):
                i = 2 * j
                dj = d[i].copy()
                if i > 0:
                    dj -= gemm(level.p[j], d[i - 1])
                if i < nn - 1:
                    dj -= gemm(level.q[j], d[i + 1])
                d_new[j] = dj
            d = d_new

        x = self._root_lu.solve(d[:1])

        # Upward sweep: recover the eliminated rows level by level.
        for level, d_level in zip(reversed(self.levels), reversed(rhs_stack)):
            nn = level.n
            x_full = np.empty((nn, m, r), dtype=dtype)
            x_full[0::2] = x
            e = nn // 2
            for idx in range(e):
                i = 2 * idx + 1
                rhs = d_level[i] - gemm(level.odd_sub[idx], x_full[i - 1])
                if i < nn - 1:
                    rhs -= gemm(level.odd_sup[idx], x_full[i + 1])
                x_full[i] = level.odd_lu.solve_one(idx, rhs)
            x = x_full
        return x


def cyclic_reduction_solve(matrix: BlockTridiagonalMatrix, b: np.ndarray) -> np.ndarray:
    """Convenience one-shot factor + solve."""
    return CyclicReductionFactorization(matrix).solve(b)
