"""Iterative refinement mixin for factorization objects.

Each refinement step multiplies the solution error by the solver's
contraction factor ``rho ~ eps * growth`` (recursive doubling's error
law, experiment recon-S1): ``k`` rounds leave ``~ rho^{k+1}``.  Whenever
``rho < 1`` — growth below ``~1/eps`` ≈ 1e15 — refinement therefore
converges to machine precision, dramatically extending the usable
domain of the recurrence-based solvers (one round suffices up to growth
``~1e8``, a few rounds up to ``~1e14``).  Beyond that the first solve
carries no correct digits and refinement diverges (tested).  All
factorization classes mix this in; pass ``refine=k`` to ``solve``.

Subclasses provide:

- ``self.matrix`` — the original :class:`BlockTridiagonalMatrix`
  (kept by reference for residual evaluation),
- ``self.nblocks`` / ``self.block_size``,
- ``_solve_normalized(bb)`` — solve for a normalized ``(N, M, R)``
  right-hand side, returning the same shape.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blocktridiag import reshape_rhs, restore_rhs_shape

__all__ = ["RefinableFactorization"]


class RefinableFactorization:
    """Adds layout handling + iterative refinement to ``solve``."""

    def _solve_normalized(self, bb: np.ndarray) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def solve(self, b: np.ndarray, refine: int = 0,
              max_batch: int | None = None) -> np.ndarray:
        """Solve ``A x = b``; optionally apply ``refine`` rounds of
        iterative refinement (``x += solve(b - A x)``).

        ``b`` accepts the layouts of
        :func:`repro.linalg.blocktridiag.reshape_rhs`; the solution is
        returned in the same layout.  ``max_batch`` caps the number of
        right-hand sides processed per internal pass (for memory-bounded
        solves with very large R; wider batches amortize per-pass
        latency better — see experiment abl-A2).
        """
        if refine < 0:
            raise ShapeError(f"refine must be >= 0, got {refine}")
        if max_batch is not None and max_batch < 1:
            raise ShapeError(f"max_batch must be >= 1, got {max_batch}")
        bb, original = reshape_rhs(b, self.nblocks, self.block_size)
        x = self._solve_batched(bb, max_batch)
        for _ in range(refine):
            residual = bb - self.matrix.matvec(x)
            x = x + self._solve_batched(residual, max_batch)
        return restore_rhs_shape(x, original)

    def _solve_batched(self, bb: np.ndarray, max_batch: int | None) -> np.ndarray:
        r = bb.shape[2]
        if max_batch is None or max_batch >= r:
            return self._solve_normalized(bb)
        pieces = [
            self._solve_normalized(bb[:, :, start:start + max_batch])
            for start in range(0, r, max_batch)
        ]
        return np.concatenate(pieces, axis=2)
