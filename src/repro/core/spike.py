"""SPIKE-style partitioned solver — the stable distributed companion.

Recursive doubling's recurrence formulation is only accurate for
bounded-transfer-growth systems (DESIGN.md).  This module provides the
classical *partitioned* (SPIKE / Schur-complement) method, which is
backward stable for the block-diagonally-dominant systems that defeat
RD/ARD, with the same factor-once / solve-many split:

factor (RHS-independent, ``O((N/P) M^3 + P M^3)``):
    1. each rank factors its interior block tridiagonal system with the
       block Thomas algorithm (:class:`~repro.core.thomas`-style),
    2. computes its two *spikes* — the responses of the local system to
       the neighbour couplings:
       ``W = A_r^{-1} (e_top  ⊗ L_lo)`` and
       ``V = A_r^{-1} (e_bot ⊗ U_{hi-1})`` — of which only the top and
       bottom block rows enter the reduced system,
    3. the per-interface unknowns ``u_r = [x_r^bot; x_{r+1}^top]``
       satisfy a **block tridiagonal system of block size 2M with
       (K-1) block rows** (K = populated ranks), assembled by gathering
       four small blocks per rank and factored at the root with the
       library's own :class:`~repro.core.thomas.ThomasFactorization` —
       the substrate eats its own cooking.

solve (per RHS batch, ``O((N/P) M^2 R + P M^2 R)``):
    local Thomas solve for ``y = A_r^{-1} d_r``, gather its top/bottom
    rows, reduced solve at the root, scatter the interface values, and
    the local combination ``x_r = y - W x_{r-1}^bot - V x_{r+1}^top``
    (only the stored full-length spikes' action is needed — two block
    GEMMs per row).

Requirements: every populated rank owns **at least two block rows**
(the classical SPIKE assumption; the driver clamps the rank count), and
the local systems must be Thomas-factorable (guaranteed for block
diagonally dominant matrices).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU, gemm
from ..linalg.blocktridiag import BlockTridiagonalMatrix
from ..obs import span as _span
from .distribute import LocalChunk
from .engine import validate_rhs_rows
from .refine import RefinableFactorization

__all__ = ["SpikeRankState", "spike_factor_spmd", "spike_solve_spmd",
           "spike_solve", "SpikeFactorization", "max_spike_ranks"]

_TAG_REDUCED = 301


def max_spike_ranks(nblocks: int, nranks: int) -> int:
    """Largest usable rank count: every populated rank needs >= 2 rows."""
    return max(1, min(nranks, nblocks // 2))


class _LocalThomas:
    """Block Thomas factorization of one rank's interior system.

    A trimmed-down in-chunk version of
    :class:`repro.core.thomas.ThomasFactorization` operating on raw
    ``(h, M, M)`` batches (no global matrix object exists rank-side).
    """

    __slots__ = ("h", "m", "_sub", "_slu", "_v")

    def __init__(self, sub: np.ndarray, diag: np.ndarray, sup: np.ndarray):
        h, m, _ = diag.shape
        self.h = h
        self.m = m
        self._sub = sub
        schur = np.empty_like(diag)
        self._v = np.empty((max(h - 1, 0), m, m), dtype=diag.dtype)
        schur[0] = diag[0]
        lus = []
        for i in range(h):
            if i > 0:
                schur[i] = diag[i] - gemm(sub[i], self._v[i - 1])
            lu = BatchedLU(schur[i][None, :, :], block_offset=i)
            lus.append(lu)
            if i < h - 1:
                self._v[i] = lu.solve(sup[i][None, :, :])[0]
        self._slu = _stack(lus)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve the interior system for ``(h, M, R)`` right-hand sides."""
        h = self.h
        c = np.empty(b.shape, dtype=np.result_type(self._slu.dtype, b.dtype))
        c[0] = self._slu.solve_one(0, b[0])
        for i in range(1, h):
            c[i] = self._slu.solve_one(i, b[i] - gemm(self._sub[i], c[i - 1]))
        x = np.empty_like(c)
        x[h - 1] = c[h - 1]
        for i in range(h - 2, -1, -1):
            x[i] = c[i] - gemm(self._v[i], x[i + 1])
        return x

    @property
    def nbytes(self) -> int:
        return self._slu._lu.nbytes + self._slu._piv.nbytes + self._v.nbytes


def _stack(lus: list[BatchedLU]) -> BatchedLU:
    merged = object.__new__(BatchedLU)
    merged.n = len(lus)
    merged.m = lus[0].m
    merged.dtype = lus[0].dtype
    merged._lu = np.concatenate([lu._lu for lu in lus], axis=0)
    merged._piv = np.concatenate([lu._piv for lu in lus], axis=0)
    return merged


@dataclasses.dataclass
class SpikeRankState:
    """Per-rank stored SPIKE factorization.

    Attributes
    ----------
    local:
        Factored interior system (``None`` on empty ranks).
    w, v:
        Full-length spikes, ``(h, M, M)`` each (zero-width on boundary
        ranks with no corresponding neighbour).
    kranks:
        Number of populated ranks (all ranks agree on it).
    reduced:
        ``reduced_mode == "root"``: root-only factorization of the
        interface system (``None`` elsewhere).
        ``reduced_mode == "bcyclic"``: this rank's interface-row blocks
        ``(lower, diag, upper)`` of size ``2M`` (``None`` on ranks
        owning no interface).
    reduced_mode:
        ``"root"`` (gather + sequential Thomas at rank 0) or
        ``"bcyclic"`` (distributed cyclic reduction over the
        interfaces, one per rank — no root bottleneck).
    """

    chunk: LocalChunk
    local: _LocalThomas | None
    w: np.ndarray
    v: np.ndarray
    kranks: int
    reduced: "object | None"
    reduced_mode: str = "root"

    @property
    def nbytes(self) -> int:
        total = self.w.nbytes + self.v.nbytes
        if self.local is not None:
            total += self.local.nbytes
        return total


def _check_chunk(chunk: LocalChunk, size: int) -> None:
    if 0 < chunk.nrows < 2:
        raise ShapeError(
            "SPIKE requires every populated rank to own >= 2 block rows; "
            f"rank range [{chunk.lo}, {chunk.hi}) owns {chunk.nrows} "
            "(use max_spike_ranks() to clamp the rank count)"
        )


def spike_factor_spmd(comm, chunk: LocalChunk, reduced_mode: str = "root"
                      ) -> SpikeRankState:
    """Factor phase: local Thomas + spikes + reduced-system factorization.

    ``reduced_mode`` selects how the interface system is solved:

    - ``"root"`` — gather the ``(K-1)``-row, ``2M``-block system to rank
      0 and Thomas-factor it once (cheapest per solve for large R, but
      an ``O(P)`` root bottleneck);
    - ``"bcyclic"`` — keep one interface row per rank and solve with
      distributed cyclic reduction at solve time (``O(M^3 log P)``
      critical path, fully distributed).

    Returns the rank's :class:`SpikeRankState`; subsequent calls of
    :func:`spike_solve_spmd` must reuse the same communicator geometry.
    """
    if reduced_mode not in ("root", "bcyclic"):
        raise ShapeError(
            f"reduced_mode must be 'root' or 'bcyclic', got {reduced_mode!r}"
        )
    _check_chunk(chunk, comm.size)
    h, m = chunk.nrows, chunk.block_size
    dtype = chunk.dtype
    with _span("local_factor"):
        populated = comm.allgather(h > 0)
        kranks = sum(populated)
        local = _LocalThomas(chunk.sub, chunk.diag, chunk.sup) if h > 0 else None

    with _span("spikes"):
        w = np.zeros((h, m, m), dtype=dtype)
        v = np.zeros((h, m, m), dtype=dtype)
        if h > 0:
            has_left = chunk.lo > 0
            has_right = chunk.hi < chunk.nblocks
            if has_left:
                rhs = np.zeros((h, m, m), dtype=dtype)
                rhs[0] = chunk.sub[0]       # L_lo couples to the left bottom
                w = local.solve(rhs)
            if has_right:
                rhs = np.zeros((h, m, m), dtype=dtype)
                rhs[-1] = chunk.sup[-1]     # U_{hi-1} couples to the right top
                v = local.solve(rhs)

    # Interface r sits between populated ranks r and r+1 and couples
    # u_r = [x_r^bot; x_{r+1}^top].  Rank r contributes its (bottom-row)
    # spike samples; rank r+1 its (top-row) samples.
    with _span("reduced"):
        reduced = None
        if reduced_mode == "root":
            contribution = None
            if h > 0:
                contribution = {
                    "w_top": w[0].copy(), "w_bot": w[-1].copy(),
                    "v_top": v[0].copy(), "v_bot": v[-1].copy(),
                }
            gathered = comm.gather(contribution, root=0)
            if comm.rank == 0 and kranks > 1:
                reduced = _assemble_reduced(gathered, kranks, m, dtype)
        elif kranks > 1:
            # Distributed assembly: rank r owns interface row r (r < K-1)
            # and needs only rank r+1's top spike samples — one message.
            rank = comm.rank
            if 0 < rank < kranks:
                comm.send((w[0].copy(), v[0].copy()), rank - 1, _TAG_REDUCED)
            if rank < kranks - 1:
                w_top_next, v_top_next = comm.recv(source=rank + 1, tag=_TAG_REDUCED)
                n_iface = kranks - 1
                dim = 2 * m
                eye = np.eye(m, dtype=dtype)
                diag = np.zeros((dim, dim), dtype=dtype)
                diag[:m, :m] = eye
                diag[:m, m:] = v[-1]
                diag[m:, :m] = w_top_next
                diag[m:, m:] = eye
                low = np.zeros((dim, dim), dtype=dtype)
                if rank > 0:
                    low[:m, :m] = w[-1]
                up = np.zeros((dim, dim), dtype=dtype)
                if rank + 1 < n_iface:
                    up[m:, m:] = v_top_next
                reduced = (low, diag, up)
    return SpikeRankState(
        chunk=chunk, local=local, w=w, v=v, kranks=kranks, reduced=reduced,
        reduced_mode=reduced_mode,
    )


def _assemble_reduced(gathered, kranks: int, m: int, dtype):
    """Build and factor the (K-1)-row, 2M-block interface system.

    Interface ``r`` unknown: ``u_r = [b_r; t_{r+1}]``; equations
    ``b_r + W_r^bot b_{r-1} + V_r^bot t_{r+1} = y_r^bot`` and
    ``t_{r+1} + W_{r+1}^top b_r + V_{r+1}^top t_{r+2} = y_{r+1}^top``.
    """
    from .thomas import ThomasFactorization

    n_iface = kranks - 1
    dim = 2 * m
    diag = np.zeros((n_iface, dim, dim), dtype=dtype)
    lower = np.zeros((max(n_iface - 1, 0), dim, dim), dtype=dtype)
    upper = np.zeros((max(n_iface - 1, 0), dim, dim), dtype=dtype)
    eye = np.eye(m, dtype=dtype)
    for r in range(n_iface):
        gr = gathered[r]
        gr1 = gathered[r + 1]
        diag[r, :m, :m] = eye
        diag[r, :m, m:] = gr["v_bot"]
        diag[r, m:, :m] = gr1["w_top"]
        diag[r, m:, m:] = eye
        if r > 0:
            # b_r's equation couples b_{r-1} = first component of u_{r-1}.
            lower[r - 1, :m, :m] = gr["w_bot"]
        if r + 1 < n_iface:
            # t_{r+1}'s equation couples t_{r+2} = second comp of u_{r+1}.
            upper[r, m:, m:] = gr1["v_top"]
    matrix = BlockTridiagonalMatrix(
        lower if n_iface > 1 else None, diag,
        upper if n_iface > 1 else None, copy=False,
    )
    return ThomasFactorization(matrix)


def spike_solve_spmd(comm, state: SpikeRankState, d_rows: np.ndarray) -> np.ndarray:
    """Solve phase against a stored :class:`SpikeRankState`.

    ``d_rows`` is the rank's ``(h, M, R)`` right-hand-side rows; returns
    the ``(h, M, R)`` solution rows.
    """
    chunk = state.chunk
    d_rows = validate_rhs_rows(chunk, d_rows) if chunk.nrows > 0 else np.asarray(d_rows)
    h, m = chunk.nrows, chunk.block_size
    r = d_rows.shape[2] if d_rows.ndim == 3 else 1

    with _span("local_solve"):
        y = state.local.solve(d_rows) if h > 0 else d_rows
    with _span("reduced"):
        if state.reduced_mode == "root":
            left, right = _reduced_solve_root(comm, state, y, m, r)
        else:
            left, right = _reduced_solve_bcyclic(comm, state, y, m, r)

    with _span("combine"):
        if h == 0:
            return np.empty((0, m, r), dtype=y.dtype)
        x = y
        if left is not None:
            x = x - gemm(state.w, np.broadcast_to(left, (h, m, r)))
        if right is not None:
            x = x - gemm(state.v, np.broadcast_to(right, (h, m, r)))
        return x


def _reduced_solve_root(comm, state: SpikeRankState, y, m: int, r: int):
    """Gather interface samples to rank 0, solve, scatter corrections."""
    h = state.chunk.nrows
    sample = None
    if h > 0:
        sample = {"y_top": y[0].copy(), "y_bot": y[-1].copy()}
    gathered = comm.gather(sample, root=0)

    # Root solves the interface system and scatters (b_left, t_right)
    # pairs back: rank q receives x_{q-1}^bot and x_{q+1}^top.
    if comm.rank == 0 and state.kranks > 1:
        n_iface = state.kranks - 1
        rhs = np.empty((n_iface, 2 * m, r), dtype=y.dtype)
        for i in range(n_iface):
            rhs[i, :m] = gathered[i]["y_bot"]
            rhs[i, m:] = gathered[i + 1]["y_top"]
        u = state.reduced.solve(rhs)
        shipments: list = []
        for q in range(comm.size):
            if q >= state.kranks:
                shipments.append(None)
                continue
            # u_{q-1} = [b_{q-1}; t_q], u_q = [b_q; t_{q+1}]: rank q needs
            # its left neighbour's bottom and right neighbour's top.
            left = u[q - 1, :m] if q > 0 else None              # x_{q-1}^bot
            right = u[q, m:] if q < state.kranks - 1 else None  # x_{q+1}^top
            shipments.append((left, right))
    else:
        shipments = None
    left_right = comm.scatter(shipments, root=0) if state.kranks > 1 else (None, None)
    if left_right is None:
        left_right = (None, None)
    return left_right


def _reduced_solve_bcyclic(comm, state: SpikeRankState, y, m: int, r: int):
    """Distributed reduced solve: one interface row per rank, cyclic
    reduction across them — no root bottleneck."""
    from .bcyclic import bcyclic_solve_spmd

    rank = comm.rank
    kranks = state.kranks
    n_iface = kranks - 1
    h = state.chunk.nrows

    if n_iface < 1:
        # Every rank must still participate in the (collective) split.
        comm.split(color=None)
        return None, None

    # Neighbour exchange of local-solution samples for the interface RHS.
    if 0 < rank < kranks and h > 0:
        comm.send(y[0].copy(), rank - 1, _TAG_REDUCED + 1)
    rhs = None
    if rank < n_iface and h > 0:
        y_top_next = comm.recv(source=rank + 1, tag=_TAG_REDUCED + 1)
        rhs = np.concatenate([y[-1], y_top_next], axis=0)  # (2M, R)

    sub = comm.split(color=0 if rank < n_iface else None)
    u_own = None
    if sub is not None:
        u_own = bcyclic_solve_spmd(sub, state.reduced, rhs, n_iface)

    # Redistribute: rank q needs u_{q-1}[:m] (left neighbour's bottom)
    # and holds u_q[m:] itself.
    if rank < n_iface:
        comm.send(u_own[:m], rank + 1, _TAG_REDUCED + 2)
    left = None
    if 0 < rank < kranks:
        left = comm.recv(source=rank - 1, tag=_TAG_REDUCED + 2)
    right = u_own[m:] if u_own is not None else None
    return left, right


class SpikeFactorization(RefinableFactorization):
    """Driver-level SPIKE factorization: factor once, solve many.

    The stable distributed alternative for matrices outside recursive
    doubling's stability domain (strong block diagonal dominance).
    ``solve(b, refine=k)`` adds iterative refinement.

    Example
    -------
    >>> from repro.core.spike import SpikeFactorization
    >>> from repro.workloads import poisson_block_system, random_rhs
    >>> A, _ = poisson_block_system(64, 4)
    >>> F = SpikeFactorization(A, nranks=4)
    >>> b = random_rhs(64, 4, nrhs=8, seed=0)
    >>> bool(A.residual(F.solve(b), b) < 1e-10)
    True
    """

    def __init__(self, matrix, nranks: int = 1, cost_model=None,
                 reduced_mode: str = "root", trace: bool = False,
                 backend: str | None = None):
        from ..comm import run_spmd
        from .distribute import distribute_matrix

        if not isinstance(matrix, BlockTridiagonalMatrix):
            raise ShapeError(
                f"matrix must be a BlockTridiagonalMatrix, got {type(matrix).__name__}"
            )
        if nranks < 1:
            raise ShapeError(f"nranks must be >= 1, got {nranks}")
        self.matrix = matrix
        self.nblocks = matrix.nblocks
        self.block_size = matrix.block_size
        # Clamp so every populated rank owns >= 2 rows (SPIKE requirement).
        self.nranks = max_spike_ranks(matrix.nblocks, nranks)
        self.cost_model = cost_model
        self.reduced_mode = reduced_mode
        self.trace = trace
        self.backend = backend
        self._run_spmd = run_spmd
        chunks = distribute_matrix(matrix, self.nranks)
        self.factor_result = run_spmd(
            spike_factor_spmd,
            self.nranks,
            cost_model=cost_model,
            copy_messages=False,
            rank_args=[(c, reduced_mode) for c in chunks],
            trace=trace,
            backend=backend,
        )
        self._states = list(self.factor_result.values)
        self.last_solve_result = None

    @property
    def factor_virtual_time(self) -> float:
        """Modelled parallel time of the factor phase."""
        return self.factor_result.virtual_time

    @property
    def nbytes(self) -> int:
        """Total stored factorization footprint across ranks."""
        return sum(s.nbytes for s in self._states)

    def _solve_normalized(self, bb: np.ndarray) -> np.ndarray:
        from .distribute import distribute_rhs, gather_solution

        d_chunks = distribute_rhs(bb, self.nranks)
        result = self._run_spmd(
            spike_solve_spmd,
            self.nranks,
            cost_model=self.cost_model,
            copy_messages=False,
            rank_args=[(s, d) for s, d in zip(self._states, d_chunks)],
            trace=self.trace,
            backend=self.backend,
        )
        self.last_solve_result = result
        return gather_solution(list(result.values))


def spike_solve(matrix: BlockTridiagonalMatrix, b: np.ndarray,
                nranks: int = 1, cost_model=None) -> np.ndarray:
    """Convenience one-shot SPIKE factor + solve."""
    return SpikeFactorization(matrix, nranks=nranks, cost_model=cost_model).solve(b)
