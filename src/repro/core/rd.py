"""Classical recursive doubling (RD) — the paper's baseline.

RD solves one block tridiagonal system by a parallel prefix over the
transfer-map recurrence.  Per invocation it performs the full
``O(M^3 (N/P + log P))`` matrix work: building transfer operators,
composing chunk aggregates, and scanning ``(2M, 2M)`` matrices across
ranks.  When ``R`` right-hand sides share the matrix, the baseline
simply repeats this per RHS — ``O(R M^3 (N/P + log P))`` total — which
is exactly the sub-optimality the accelerated algorithm removes.

SPMD entry point: :func:`rd_solve_spmd` (driver wrappers live in
:mod:`repro.core.api`).
"""

from __future__ import annotations

import numpy as np

from ..obs import span as _span
from ..prefix.affine import AffinePair
from .distribute import LocalChunk
from .engine import (
    broadcast_x0,
    closing_rhs,
    entry_state,
    factor_closing,
    find_closing_rank,
    validate_rhs_rows,
)
from .recurrence import (
    TransferOperators,
    forward_solution,
    local_matrix_aggregate,
    local_vector_aggregate,
)
from .scan_affine import affine_scan

__all__ = ["rd_solve_spmd", "rd_single_pass"]


def rd_single_pass(
    comm, chunk: LocalChunk, d_rows: np.ndarray, closing_rank: int
) -> np.ndarray:
    """One full RD pass: matrix + vector prefix fused, as in classic RD.

    ``d_rows`` is this rank's ``(h, M, r)`` slice of the right-hand
    side; classic RD uses ``r = 1``.  All matrix work (transfer
    operators, aggregates, matrix scan, closing factorization) is
    redone inside this call — that is the baseline's defining cost.
    """
    with _span("build"):
        ops = TransferOperators(chunk)
        g_rows = ops.g(d_rows)
        a_agg = local_matrix_aggregate(ops)
        b_agg = local_vector_aggregate(ops, g_rows)
        pair = AffinePair(a_agg, b_agg, validate=False)
    with _span("scan"):
        result, _ = affine_scan(comm, pair, record=False)

    with _span("closing"):
        x0 = None
        if comm.rank == closing_rank:
            lu = factor_closing(chunk, result.inclusive.a)
            rhs = closing_rhs(chunk, result.inclusive.b, d_rows[-1])
            x0 = lu.solve(rhs[None, :, :])[0]
        x0 = broadcast_x0(comm, closing_rank, x0)

    with _span("backsub"):
        s_lo = entry_state(result.exclusive, None, None, x0)
        return forward_solution(ops, g_rows, s_lo, chunk.nrows)


def rd_solve_spmd(comm, chunk: LocalChunk, d_rows: np.ndarray) -> np.ndarray:
    """Solve with classical RD, one independent pass per right-hand side.

    Parameters
    ----------
    comm:
        The rank's communicator.
    chunk:
        This rank's :class:`~repro.core.distribute.LocalChunk`.
    d_rows:
        ``(h, M, R)`` local right-hand-side rows.

    Returns
    -------
    ``(h, M, R)`` local solution rows.

    Notes
    -----
    Each of the ``R`` columns triggers a complete RD pass including all
    ``O(M^3)`` work — faithfully reproducing the baseline whose
    sub-optimality the paper quantifies.  Use
    :func:`repro.core.ard.ard_factor_spmd` /
    :func:`~repro.core.ard.ard_solve_spmd` for the accelerated path.
    """
    d_rows = validate_rhs_rows(chunk, d_rows)
    with _span("setup"):
        closing_rank = find_closing_rank(comm, chunk)
    nrhs = d_rows.shape[2]
    out = np.empty(
        (chunk.nrows, chunk.block_size, nrhs),
        dtype=np.result_type(chunk.dtype, d_rows.dtype),
    )
    for col in range(nrhs):
        out[:, :, col:col + 1] = rd_single_pass(
            comm, chunk, d_rows[:, :, col:col + 1], closing_rank
        )
    return out
