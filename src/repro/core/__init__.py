"""The paper's algorithms: RD, ARD, and the baseline solvers."""

from .api import FACTOR_METHODS, SOLVE_METHODS, SolveInfo, factor, solve
from .ard import ARDFactorization, ARDRankState, ard_factor_spmd, ard_solve_spmd
from .bcyclic import bcyclic_solve, bcyclic_solve_spmd
from .cyclic_reduction import CyclicReductionFactorization, cyclic_reduction_solve
from .diagnostics import (
    SystemDiagnostics,
    block_diagonal_dominance,
    diagnose,
    superdiagonal_rconds,
    transfer_growth_factor,
)
from .distribute import LocalChunk, distribute_matrix, distribute_rhs, gather_solution
from .rd import rd_single_pass, rd_solve_spmd
from .recurrence import (
    TransferOperators,
    forward_solution,
    local_matrix_aggregate,
    local_vector_aggregate,
)
from .scan_affine import AffineScanResult, ScanTrace, affine_scan, replay_scan
from .spike import (
    SpikeFactorization,
    SpikeRankState,
    max_spike_ranks,
    spike_factor_spmd,
    spike_solve,
    spike_solve_spmd,
)
from .thomas import ThomasFactorization, thomas_solve

__all__ = [
    "FACTOR_METHODS",
    "SOLVE_METHODS",
    "SolveInfo",
    "factor",
    "solve",
    "ARDFactorization",
    "ARDRankState",
    "ard_factor_spmd",
    "ard_solve_spmd",
    "bcyclic_solve",
    "bcyclic_solve_spmd",
    "CyclicReductionFactorization",
    "cyclic_reduction_solve",
    "SystemDiagnostics",
    "block_diagonal_dominance",
    "diagnose",
    "superdiagonal_rconds",
    "transfer_growth_factor",
    "LocalChunk",
    "distribute_matrix",
    "distribute_rhs",
    "gather_solution",
    "rd_single_pass",
    "rd_solve_spmd",
    "TransferOperators",
    "forward_solution",
    "local_matrix_aggregate",
    "local_vector_aggregate",
    "AffineScanResult",
    "ScanTrace",
    "affine_scan",
    "replay_scan",
    "SpikeFactorization",
    "SpikeRankState",
    "max_spike_ranks",
    "spike_factor_spmd",
    "spike_solve",
    "spike_solve_spmd",
    "ThomasFactorization",
    "thomas_solve",
]
