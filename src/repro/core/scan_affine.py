"""Traced recursive-doubling scan over affine pairs, with replay.

The factor phase of ARD runs one Kogge–Stone scan over the ranks' chunk
aggregates and records, per round, the matrix accumulator the rank held
*before* combining with its left partner (:class:`ScanTrace`).  A later
solve phase then :func:`replay_scan`\\ s the identical schedule but
exchanges only the ``(2M, R)`` vector panels, combining each incoming
panel with the stored matrix:

    factor round:  ``(A, b) <- (A @ A_left,  A @ b_left + b)``
    replay round:  ``b      <-  A_stored @ b_left + b``

which is exactly the paper's acceleration: the ``O(M^3)`` matrix
products happen once, every subsequent right-hand-side batch pays only
``O(M^2 R)`` per round and ships ``O(M R)`` bytes instead of
``O(M^2)``.

Both passes also perform the one-round right shift that turns the
inclusive prefix into the exclusive prefix each rank needs for its
chunk's entry state.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import gemm
from ..prefix.affine import AffinePair

__all__ = ["ScanTrace", "AffineScanResult", "affine_scan", "replay_scan"]

_TAG_SCAN = 201
_TAG_SHIFT = 202
_TAG_SCAN_V = 203
_TAG_SHIFT_V = 204


@dataclasses.dataclass
class AffineScanResult:
    """Inclusive and exclusive rank prefixes of the scanned pairs."""

    inclusive: AffinePair
    exclusive: AffinePair


@dataclasses.dataclass
class ScanTrace:
    """Matrix-side record of a factor-phase scan, enabling replay.

    Attributes
    ----------
    dim:
        State dimension (``2M``).
    recv_a:
        One entry per Kogge–Stone round: a copy of this rank's matrix
        accumulator immediately before it combined with the incoming
        left value, or ``None`` for rounds in which this rank did not
        receive.
    a_inclusive / a_exclusive:
        Final matrix prefixes (the exclusive one maps ``[x_0; 0]`` to
        the chunk entry state during back-substitution).
    """

    dim: int
    recv_a: list[np.ndarray | None]
    a_inclusive: np.ndarray
    a_exclusive: np.ndarray

    @property
    def nbytes(self) -> int:
        total = self.a_inclusive.nbytes + self.a_exclusive.nbytes
        for a in self.recv_a:
            if a is not None:
                total += a.nbytes
        return total


def affine_scan(
    comm, pair: AffinePair, *, record: bool = False
) -> tuple[AffineScanResult, ScanTrace | None]:
    """Kogge–Stone inclusive + exclusive scan of ``pair`` over ranks.

    Combines strictly left-to-right (lower ranks first), matching the
    global block-row order of the chunk aggregates.  With
    ``record=True`` also returns the :class:`ScanTrace` needed by
    :func:`replay_scan`.
    """
    size, rank = comm.size, comm.rank
    dim, width = pair.dim, pair.width
    acc = pair
    recv_a: list[np.ndarray | None] = []
    dist = 1
    while dist < size:
        if rank + dist < size:
            comm.send((acc.a, acc.b), rank + dist, _TAG_SCAN)
        if rank - dist >= 0:
            if record:
                recv_a.append(acc.a.copy())
            left_a, left_b = comm.recv(rank - dist, _TAG_SCAN)
            left = AffinePair(left_a, left_b, validate=False)
            acc = acc.compose_after(left)
        elif record:
            recv_a.append(None)
        dist <<= 1
    inclusive = acc

    # Right shift: rank r's exclusive prefix is rank r-1's inclusive.
    if rank + 1 < size:
        comm.send((inclusive.a, inclusive.b), rank + 1, _TAG_SHIFT)
    if rank > 0:
        exc_a, exc_b = comm.recv(rank - 1, _TAG_SHIFT)
        exclusive = AffinePair(exc_a, exc_b, validate=False)
    else:
        exclusive = AffinePair.identity(dim, width, dtype=pair.a.dtype)

    trace = None
    if record:
        trace = ScanTrace(
            dim=dim,
            recv_a=recv_a,
            a_inclusive=inclusive.a.copy(),
            a_exclusive=exclusive.a.copy(),
        )
    return AffineScanResult(inclusive=inclusive, exclusive=exclusive), trace


def replay_scan(
    comm, b: np.ndarray, trace: ScanTrace
) -> tuple[np.ndarray, np.ndarray]:
    """Re-run a recorded scan schedule on vector panels only.

    Parameters
    ----------
    b:
        This rank's ``(2M, R)`` chunk-aggregate vector part.
    trace:
        The :class:`ScanTrace` from the factor phase's
        ``affine_scan(..., record=True)`` on the same communicator
        geometry.

    Returns
    -------
    (b_inclusive, b_exclusive):
        Vector parts of the inclusive and exclusive rank prefixes.
    """
    size, rank = comm.size, comm.rank
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != trace.dim:
        raise ShapeError(
            f"panel must be ({trace.dim}, R), got {b.shape}"
        )
    expected_rounds = 0
    dist = 1
    while dist < size:
        expected_rounds += 1
        dist <<= 1
    if len(trace.recv_a) != expected_rounds:
        raise ShapeError(
            f"trace has {len(trace.recv_a)} rounds, communicator needs "
            f"{expected_rounds} — factor and solve geometries differ"
        )
    acc = b
    dist = 1
    round_idx = 0
    while dist < size:
        if rank + dist < size:
            comm.send(acc, rank + dist, _TAG_SCAN_V)
        if rank - dist >= 0:
            stored = trace.recv_a[round_idx]
            if stored is None:
                raise ShapeError(
                    f"trace round {round_idx} missing stored matrix — "
                    "factor and solve geometries differ"
                )
            left_b = comm.recv(rank - dist, _TAG_SCAN_V)
            acc = gemm(stored, left_b) + acc
        round_idx += 1
        dist <<= 1
    b_inclusive = acc

    if rank + 1 < size:
        comm.send(b_inclusive, rank + 1, _TAG_SHIFT_V)
    if rank > 0:
        b_exclusive = comm.recv(rank - 1, _TAG_SHIFT_V)
    else:
        b_exclusive = np.zeros_like(b)
    return b_inclusive, b_exclusive
