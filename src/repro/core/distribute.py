"""Distribution of a block tridiagonal system across simulated ranks.

A :class:`LocalChunk` is the per-rank view of the matrix: a contiguous
range of block rows ``[lo, hi)`` with uniform ``(h, M, M)`` storage for
the sub/diagonal/super blocks of those rows (rows that have no sub- or
super-diagonal neighbour — the global first and last rows — carry zero
blocks, which the recurrence treats correctly since ``x_{-1} := 0``).

The driver API in :mod:`repro.core.api` builds chunks with
:func:`distribute_matrix` and reassembles solutions with
:func:`gather_solution`; SPMD-level users can construct chunks directly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blocktridiag import BlockTridiagonalMatrix
from ..util.partition import BlockPartition

__all__ = ["LocalChunk", "distribute_matrix", "distribute_rhs", "gather_solution"]


@dataclasses.dataclass
class LocalChunk:
    """One rank's block rows of a distributed block tridiagonal matrix.

    Attributes
    ----------
    nblocks:
        Global number of block rows ``N``.
    lo, hi:
        Global half-open row range owned by this rank (may be empty).
    diag, sub, sup:
        ``(hi - lo, M, M)`` batches: ``diag[j]`` is ``D_{lo+j}``,
        ``sub[j]`` is ``L_{lo+j}`` (zero when ``lo + j == 0``), and
        ``sup[j]`` is ``U_{lo+j}`` (zero when ``lo + j == N - 1``).
    """

    nblocks: int
    lo: int
    hi: int
    diag: np.ndarray
    sub: np.ndarray
    sup: np.ndarray

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi <= self.nblocks:
            raise ShapeError(
                f"invalid row range [{self.lo}, {self.hi}) for N={self.nblocks}"
            )
        h = self.hi - self.lo
        for name in ("diag", "sub", "sup"):
            arr = getattr(self, name)
            if arr.ndim != 3 or arr.shape[0] != h or arr.shape[1] != arr.shape[2]:
                raise ShapeError(
                    f"{name} must be ({h}, M, M), got {arr.shape}"
                )
        if not (self.diag.shape == self.sub.shape == self.sup.shape):
            raise ShapeError("diag/sub/sup shapes disagree")

    @property
    def nrows(self) -> int:
        """Number of owned block rows ``h``."""
        return self.hi - self.lo

    @property
    def block_size(self) -> int:
        return self.diag.shape[1]

    @property
    def ntransfer(self) -> int:
        """Number of owned transfer maps: rows ``i`` with ``i < N - 1``.

        Row ``N - 1`` is the closing equation, not a transfer.
        """
        return max(0, min(self.hi, self.nblocks - 1) - self.lo)

    @property
    def owns_closing_row(self) -> bool:
        """Whether this rank owns global row ``N - 1``."""
        return self.lo <= self.nblocks - 1 < self.hi

    @property
    def dtype(self) -> np.dtype:
        return self.diag.dtype


def distribute_matrix(
    matrix: BlockTridiagonalMatrix, nranks: int
) -> list[LocalChunk]:
    """Split ``matrix`` into per-rank :class:`LocalChunk` views.

    Uses the balanced contiguous partition of
    :class:`repro.util.partition.BlockPartition`.  Ranks beyond the row
    count receive empty chunks and still participate in collectives.
    """
    n, m = matrix.nblocks, matrix.block_size
    part = BlockPartition(nblocks=n, nranks=nranks)
    chunks = []
    for rank in range(nranks):
        lo, hi = part.bounds(rank)
        h = hi - lo
        diag = matrix.diag[lo:hi].copy()
        sub = np.zeros((h, m, m), dtype=matrix.dtype)
        sup = np.zeros((h, m, m), dtype=matrix.dtype)
        for j in range(h):
            i = lo + j
            if i > 0:
                sub[j] = matrix.lower[i - 1]
            if i < n - 1:
                sup[j] = matrix.upper[i]
        chunks.append(LocalChunk(nblocks=n, lo=lo, hi=hi, diag=diag, sub=sub, sup=sup))
    return chunks


def distribute_rhs(b: np.ndarray, nranks: int) -> list[np.ndarray]:
    """Split a normalized ``(N, M, R)`` right-hand side into row chunks."""
    b = np.asarray(b)
    if b.ndim != 3:
        raise ShapeError(f"rhs must be (N, M, R), got {b.shape}")
    part = BlockPartition(nblocks=b.shape[0], nranks=nranks)
    return [b[lo:hi].copy() for lo, hi in part]


def gather_solution(chunks: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-rank solution chunks back into ``(N, M, R)``."""
    nonempty = [c for c in chunks if c.shape[0] > 0]
    if not nonempty:
        raise ShapeError("no solution rows to gather")
    return np.concatenate(nonempty, axis=0)
