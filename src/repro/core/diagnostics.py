"""Feasibility and stability diagnostics for recurrence-based solvers.

Recursive doubling's transfer recurrence requires invertible
superdiagonal blocks and is only numerically safe when the composed
transfer products stay bounded (classically guaranteed by block
diagonal dominance).  These checks let callers *see* whether a system is
in the safe regime instead of silently returning garbage; the front-end
:func:`repro.core.api.solve` runs them when ``check=True``.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from ..config import get_config
from ..exceptions import ShapeError, StabilityWarning
from ..linalg.blocktridiag import BlockTridiagonalMatrix

__all__ = [
    "SystemDiagnostics",
    "superdiagonal_rconds",
    "block_diagonal_dominance",
    "transfer_growth_factor",
    "diagnose",
]


@dataclasses.dataclass(frozen=True)
class SystemDiagnostics:
    """Summary of a system's suitability for recursive doubling.

    Attributes
    ----------
    min_superdiag_rcond:
        Smallest reciprocal condition estimate over the ``U_i`` blocks
        (1.0 for a 1-block system with no superdiagonal).
    dominance:
        Minimum block-diagonal-dominance ratio
        ``min_i  (min singular value of D_i) / (||L_i|| + ||U_i||)``;
        values above 1 indicate strict dominance.
    growth:
        Estimated worst-case growth of the composed transfer products
        (power-iteration estimate of ``max_i ||A_i ... A_0||``).
    rd_feasible:
        Whether every superdiagonal block is invertible to working
        precision (hard requirement).
    rd_stable:
        Whether ``growth`` is below the configured warning threshold.
    """

    min_superdiag_rcond: float
    dominance: float
    growth: float

    @property
    def rd_feasible(self) -> bool:
        return self.min_superdiag_rcond > get_config().singularity_rcond

    @property
    def rd_stable(self) -> bool:
        return self.growth < get_config().growth_warn_threshold


def superdiagonal_rconds(matrix: BlockTridiagonalMatrix) -> np.ndarray:
    """Reciprocal 2-norm condition numbers of each ``U_i``."""
    if matrix.nblocks == 1:
        return np.ones(0)
    out = np.empty(matrix.nblocks - 1)
    for i in range(matrix.nblocks - 1):
        s = np.linalg.svd(matrix.upper[i], compute_uv=False)
        out[i] = 0.0 if s[0] == 0.0 else s[-1] / s[0]
    return out


def block_diagonal_dominance(matrix: BlockTridiagonalMatrix) -> float:
    """Minimum dominance ratio ``sigma_min(D_i) / (||L_i|| + ||U_i||)``.

    Returns ``inf`` for a 1-block system with invertible diagonal.
    Strictly greater than 1 implies the transfer products contract, the
    sufficient condition for recursive doubling stability.
    """
    n = matrix.nblocks
    worst = np.inf
    for i in range(n):
        smin = np.linalg.svd(matrix.diag[i], compute_uv=False)[-1]
        off = 0.0
        if i > 0:
            off += np.linalg.norm(matrix.lower[i - 1], 2)
        if i < n - 1:
            off += np.linalg.norm(matrix.upper[i], 2)
        if off == 0.0:
            continue
        worst = min(worst, smin / off)
    return float(worst)


def transfer_growth_factor(matrix: BlockTridiagonalMatrix, nprobe: int = 2,
                           seed: int = 0) -> float:
    """Estimate the worst intermediate growth of the transfer products.

    Runs the homogeneous recurrence
    ``s_{i+1} = [[T1_i, T2_i], [I, 0]] s_i`` on ``nprobe`` random unit
    probes and reports the maximum intermediate state norm — a cheap
    ``O(N M^2)`` proxy for ``max_i ||A_i ... A_0||`` that flags the
    exponential blowup afflicting non-dominant systems.

    Raises :class:`~repro.exceptions.SingularBlockError` (from the block
    factorization) if some ``U_i`` is singular.
    """
    from ..linalg.blockops import BatchedLU

    n, m = matrix.nblocks, matrix.block_size
    if n == 1:
        return 1.0
    if nprobe < 1:
        raise ShapeError(f"nprobe must be >= 1, got {nprobe}")
    ulu = BatchedLU(matrix.upper)
    rng = np.random.default_rng(seed)
    probes = rng.standard_normal((2 * m, nprobe))
    probes /= np.linalg.norm(probes, axis=0, keepdims=True)
    cur = probes[:m].astype(matrix.dtype)
    prev = probes[m:].astype(matrix.dtype)
    worst = 1.0
    # Overflow to inf is the *signal* here (growth beyond double range),
    # not an error worth warning about.
    with np.errstate(over="ignore", invalid="ignore"):
        for i in range(n - 1):
            rhs = matrix.diag[i] @ cur + (matrix.lower[i - 1] @ prev if i > 0 else 0.0)
            nxt = -ulu.solve_one(i, rhs)
            prev, cur = cur, nxt
            norm = float(
                np.sqrt((np.abs(cur) ** 2 + np.abs(prev) ** 2).sum(axis=0)).max()
            )
            if np.isnan(norm):
                return float("inf")
            worst = max(worst, norm)
    return worst


def diagnose(matrix: BlockTridiagonalMatrix, *, warn: bool = True) -> SystemDiagnostics:
    """Run all diagnostics; optionally emit a
    :class:`~repro.exceptions.StabilityWarning` when growth is large."""
    rconds = superdiagonal_rconds(matrix)
    min_rcond = float(rconds.min()) if rconds.size else 1.0
    dominance = block_diagonal_dominance(matrix)
    cfg = get_config()
    if min_rcond > cfg.singularity_rcond:
        growth = transfer_growth_factor(matrix)
    else:
        growth = float("inf")
    diag = SystemDiagnostics(
        min_superdiag_rcond=min_rcond, dominance=dominance, growth=growth
    )
    if warn and diag.rd_feasible and not diag.rd_stable:
        warnings.warn(
            f"transfer-product growth {growth:.2e} exceeds "
            f"{cfg.growth_warn_threshold:.1e}; recursive doubling may lose "
            "accuracy on this system (consider method='thomas' or "
            "'cyclic')",
            StabilityWarning,
            stacklevel=2,
        )
    return diag
