"""Front-end solve/factor API.

``solve(A, b, method=...)`` covers one-shot use; ``factor(A, method=...)``
returns a reusable factorization (the factor-once / solve-many pattern
whose payoff the paper quantifies).  Distributed methods (``"rd"``,
``"ard"``) run on the simulated SPMD runtime with ``nranks`` ranks and
expose modelled timings via ``return_info=True``.

Methods
-------
``"auto"``
    Let the autotuned planner (:mod:`repro.perfmodel.planner`) pick
    the method, comm backend, and kernel configuration for this
    problem shape — never predicted slower than the reference
    streamed-ARD path.  The chosen :class:`~repro.perfmodel.Plan`
    lands on ``SolveInfo.plan`` and in ``plan.*`` trace instants.
``"ard"``
    Accelerated recursive doubling (the paper's contribution).
``"rd"``
    Classical recursive doubling, one full pass per RHS (the baseline).
``"spike"``
    SPIKE-style partitioned solver — distributed and backward stable for
    block diagonally dominant systems (the regime where recurrence-based
    RD/ARD lose accuracy; see DESIGN.md).
``"thomas"``
    Sequential block Thomas (block LU).
``"cyclic"``
    Sequential block cyclic reduction.
``"dense"`` / ``"banded"`` / ``"sparse"``
    Reference solvers from :mod:`repro.linalg.reference`.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..comm import CostModel, SimulationResult, run_spmd
from ..exceptions import ConfigError, ShapeError
from ..linalg.blocktridiag import (
    BlockTridiagonalMatrix,
    reshape_rhs,
    restore_rhs_shape,
)
from ..linalg.reference import banded_solve, dense_solve, sparse_solve
from .ard import ARDFactorization
from .cyclic_reduction import CyclicReductionFactorization
from .diagnostics import diagnose
from .distribute import distribute_matrix, distribute_rhs, gather_solution
from .rd import rd_solve_spmd
from .spike import SpikeFactorization
from .thomas import ThomasFactorization

__all__ = ["solve", "factor", "fingerprint", "SolveInfo", "SOLVE_METHODS",
           "FACTOR_METHODS"]

SOLVE_METHODS = ("auto", "ard", "rd", "spike", "thomas", "cyclic", "dense",
                 "banded", "sparse")
FACTOR_METHODS = ("auto", "ard", "spike", "thomas", "cyclic")

#: What ``method="auto"`` may resolve to in :func:`factor` — the
#: planner portfolio restricted to methods with reusable factorizations.
_AUTO_FACTOR_PORTFOLIO = ("ard", "spike", "thomas", "cyclic")


@dataclasses.dataclass
class SolveInfo:
    """Metadata about one :func:`solve` call.

    Attributes
    ----------
    method / nranks / nrhs:
        Echo of the request.
    residual:
        Relative max-norm residual of the returned solution.
    virtual_time:
        Modelled parallel seconds.  **Distributed methods only**
        (``"ard"``, ``"rd"``, ``"spike"``): sequential/reference
        methods (``"thomas"``, ``"cyclic"``, ``"dense"``, ``"banded"``,
        ``"sparse"``) never run on the simulated runtime, so
        ``virtual_time is None`` for them — check before arithmetic.
    factor_result / solve_result:
        Per-phase :class:`~repro.comm.stats.SimulationResult` objects
        (ARD/SPIKE) or the single fused result (RD).
    phase_report:
        :class:`~repro.obs.report.PhaseReport` with the measured
        per-phase time/flop/byte breakdown when the solve ran with
        ``trace=True``; ``None`` otherwise.  Its per-phase virtual
        times sum to :attr:`virtual_time`.
    trace_id:
        Correlation id (:mod:`repro.obs.context`) of this solve when it
        ran traced or under an active trace context; shared by the
        rank spans, log records, and message envelopes it produced.
    health:
        :class:`~repro.obs.health.HealthReport` when the solve ran
        with ``health=True``; ``None`` otherwise.
    plan:
        The :class:`~repro.perfmodel.Plan` the autotuned planner
        chose when the solve ran with ``method="auto"``; ``None`` for
        explicit methods.  :attr:`method` then echoes the *resolved*
        method (``plan.method``), never the literal ``"auto"``.
    """

    method: str
    nranks: int
    nrhs: int
    residual: float
    virtual_time: float | None = None
    factor_result: SimulationResult | None = None
    solve_result: SimulationResult | None = None
    phase_report: Any | None = None
    trace_id: str | None = None
    health: Any | None = None
    plan: Any | None = None


def _reject_unknown_kwargs(fn_name: str, kwargs: dict) -> None:
    """Raise :class:`~repro.exceptions.ConfigError` for stray keywords.

    A mistyped option (``nrank=4``, ``refined=1``) silently falling
    through would change results without warning; rejecting it as a
    :class:`ConfigError` keeps it catchable under
    :class:`~repro.exceptions.ReproError` alongside the other
    configuration mistakes (unknown method names, bad rank counts).
    """
    if kwargs:
        names = ", ".join(sorted(kwargs))
        raise ConfigError(f"{fn_name}() got unknown keyword argument(s): "
                          f"{names}")


def _validate(matrix: Any, method: str, nranks: int) -> None:
    if not isinstance(matrix, BlockTridiagonalMatrix):
        raise ShapeError(
            f"matrix must be a BlockTridiagonalMatrix, got {type(matrix).__name__}"
        )
    if method not in SOLVE_METHODS:
        raise ConfigError(
            f"unknown method {method!r}; choose from {SOLVE_METHODS}"
        )
    if nranks < 1:
        raise ShapeError(f"nranks must be >= 1, got {nranks}")


def solve(
    matrix: BlockTridiagonalMatrix,
    b: np.ndarray,
    *,
    method: str = "ard",
    nranks: int = 1,
    cost_model: CostModel | None = None,
    check: bool = False,
    refine: int = 0,
    trace: bool = False,
    health: Any = False,
    return_info: bool = False,
    backend: str | None = None,
    **unknown_kwargs,
):
    """Solve the block tridiagonal system ``A x = b``.

    Parameters
    ----------
    matrix:
        The system matrix.
    b:
        Right-hand side(s); any layout accepted by
        :func:`repro.linalg.blocktridiag.reshape_rhs`.
    method:
        One of :data:`SOLVE_METHODS` (default ``"ard"``).
    nranks:
        Simulated ranks for the distributed methods (ignored by
        sequential ones).
    cost_model:
        Machine model for virtual-time accounting.
    check:
        Run :func:`repro.core.diagnostics.diagnose` first (may emit a
        :class:`~repro.exceptions.StabilityWarning`).
    refine:
        Rounds of iterative refinement (``x += solve(b - A x)``); one
        round squares the ``eps * growth`` error factor (see
        :mod:`repro.core.refine`).
    trace:
        Record per-rank span timelines (see :mod:`repro.obs`) during
        the distributed methods.  The results carry
        ``SimulationResult.traces`` and, with ``return_info=True``,
        ``SolveInfo.phase_report``; export with
        :func:`repro.obs.write_chrome_trace`.  Ignored by sequential
        methods (which never run on the simulated runtime).  Off by
        default — disabled tracing costs only a no-op guard and leaves
        results bit-identical.
    health:
        Run the numerical-health probes (:mod:`repro.obs.health`) on
        the result: residual classification, diagonal-block pivot
        growth, and — when the method produced a reusable
        factorization — a condition estimate.  Pass ``True`` (default
        thresholds) or a
        :class:`~repro.obs.health.HealthThresholds`; the report lands
        on ``SolveInfo.health`` (``return_info=True`` to see it) and
        threshold breaches emit structured log records.
    return_info:
        Also return a :class:`SolveInfo`.
    backend:
        Execution backend for the distributed methods: ``"threads"``
        (in-process reference semantics), ``"processes"`` (spawned
        workers with shared-memory transport — see docs/BACKENDS.md),
        or ``None`` (default) to follow the configured
        ``comm_backend``.  Ignored by sequential methods.

    Returns
    -------
    ``x`` or ``(x, info)``:
        The solution in the caller's RHS layout.

    Raises
    ------
    ConfigError
        For an unknown ``method`` or any unrecognized keyword argument
        (mistyped options never pass silently).
    """
    _reject_unknown_kwargs("solve", unknown_kwargs)
    _validate(matrix, method, nranks)

    n, m = matrix.nblocks, matrix.block_size
    bb, original = reshape_rhs(b, n, m)
    nrhs = bb.shape[2]

    planned = None
    if method == "auto":
        from ..perfmodel.planner import plan as _resolve_plan

        planned = _resolve_plan(n, m, p=nranks, r=nrhs, dtype=matrix.dtype)
        method = planned.method
        nranks = planned.nranks
        if backend is None:
            backend = planned.comm_backend

    if check and method in ("ard", "rd"):
        diagnose(matrix)
    factor_result = None
    solve_result = None
    virtual_time = None
    # (label, SimulationResult) pairs whose makespans sum to virtual_time;
    # they become the SolveInfo.phase_report when tracing.
    trace_segments: list[tuple[str, SimulationResult]] = []

    if refine < 0:
        raise ShapeError(f"refine must be >= 0, got {refine}")

    # Correlation: one TraceContext covers the whole solve, so ARD's
    # separate factor/solve SPMD runs (and any log records) share one
    # trace_id.  The caller's active context is adopted; a fresh one is
    # minted only when tracing asked for correlation.
    from ..obs.context import current_trace_context, trace_context
    from contextlib import ExitStack

    tc = current_trace_context()
    fact = None  # reusable factorization, when the method builds one
    with ExitStack() as stack:
        if tc is None and trace:
            from ..obs.context import new_trace_context

            tc = new_trace_context()
        if tc is not None:
            stack.enter_context(trace_context(tc))
        if planned is not None:
            # Pin the planned kernel configuration for this solve only,
            # and stamp the decision into the active trace.
            from ..config import config_context
            from ..obs.flightrec import note_event
            from ..obs.tracer import instant

            stack.enter_context(config_context(**planned.config_overrides()))
            instant("plan.selected", cat="plan", **planned.to_dict())
            note_event("plan.selected", **planned.to_dict())

        if method in ("ard", "spike"):
            cls = ARDFactorization if method == "ard" else SpikeFactorization
            fact = cls(matrix, nranks=nranks, cost_model=cost_model,
                       trace=trace, backend=backend)
            x = fact.solve(bb, refine=refine)
            factor_result = fact.factor_result
            solve_result = fact.last_solve_result
            virtual_time = (fact.factor_result.virtual_time
                            + solve_result.virtual_time)
            trace_segments = [("factor", factor_result),
                              ("solve", solve_result)]
        elif method == "rd":
            def _rd_once(rhs):
                chunks = distribute_matrix(matrix, nranks)
                d_chunks = distribute_rhs(rhs, nranks)
                return run_spmd(
                    rd_solve_spmd,
                    nranks,
                    cost_model=cost_model,
                    copy_messages=False,
                    rank_args=[(c, d) for c, d in zip(chunks, d_chunks)],
                    trace=trace,
                    backend=backend,
                )

            result = _rd_once(bb)
            solve_result = result
            virtual_time = result.virtual_time
            trace_segments = [("solve", result)]
            x = gather_solution(list(result.values))
            for i in range(refine):
                # Honest refinement for the baseline: each round repeats
                # the full per-RHS passes on the residual.
                result = _rd_once(bb - matrix.matvec(x))
                virtual_time += result.virtual_time
                trace_segments.append((f"refine{i + 1}", result))
                x = x + gather_solution(list(result.values))
        elif method == "thomas":
            fact = ThomasFactorization(matrix)
            x = fact.solve(bb, refine=refine)
        elif method == "cyclic":
            fact = CyclicReductionFactorization(matrix)
            x = fact.solve(bb, refine=refine)
        else:
            ref = {"dense": dense_solve, "banded": banded_solve,
                   "sparse": sparse_solve}[method]
            x = ref(matrix, bb)
            for _ in range(refine):
                x = x + ref(matrix, bb - matrix.matvec(x))

        x = np.asarray(x).reshape(n, m, nrhs)
        health_report = None
        if health:
            from ..obs.health import HealthThresholds, probe_solve

            thresholds = (health if isinstance(health, HealthThresholds)
                          else None)
            health_report = probe_solve(
                matrix, x, bb, factorization=fact, thresholds=thresholds,
                condition=fact is not None, growth=True,
            )

    out = restore_rhs_shape(x, original)
    if not return_info:
        return out
    phase_report = None
    if trace and trace_segments:
        from ..obs import build_phase_report

        phase_report = build_phase_report(trace_segments)
    residual = matrix.residual(x, bb)
    info = SolveInfo(
        method=method,
        nranks=nranks if method in ("ard", "rd", "spike") else 1,
        nrhs=nrhs,
        residual=residual,
        virtual_time=virtual_time,
        factor_result=factor_result,
        solve_result=solve_result,
        phase_report=phase_report,
        trace_id=tc.trace_id if tc is not None else None,
        health=health_report,
        plan=planned,
    )
    from ..obs.log import get_logger

    fields = {"method": method, "nranks": info.nranks, "nrhs": nrhs,
              "residual": residual, "virtual_time": virtual_time}
    if planned is not None:
        fields["plan_provenance"] = planned.provenance
        fields["plan_predicted_time"] = planned.predicted_time
        fields["plan_clamped"] = planned.clamped
    if tc is not None:  # the dispatch context is uninstalled by now
        fields["trace_id"] = tc.trace_id
    get_logger("core.api").info("solve.completed", **fields)
    return out, info


def factor(
    matrix: BlockTridiagonalMatrix,
    *,
    method: str = "ard",
    nranks: int = 1,
    cost_model: CostModel | None = None,
    trace: bool = False,
    backend: str | None = None,
    **unknown_kwargs,
):
    """Factor ``matrix`` for repeated solves.

    Returns an object with a ``solve(b, refine=0, max_batch=None)``
    method: :class:`~repro.core.ard.ARDFactorization`,
    :class:`~repro.core.spike.SpikeFactorization`,
    :class:`~repro.core.thomas.ThomasFactorization`, or
    :class:`~repro.core.cyclic_reduction.CyclicReductionFactorization`.

    ``trace=True`` records per-rank span timelines (see
    :mod:`repro.obs`) on the distributed factorizations' factor and
    solve runs (``factor_result.traces`` / ``last_solve_result.traces``);
    sequential methods ignore it.

    Unknown keyword arguments raise
    :class:`~repro.exceptions.ConfigError`.
    """
    _reject_unknown_kwargs("factor", unknown_kwargs)
    if method not in FACTOR_METHODS:
        raise ConfigError(
            f"unknown factor method {method!r}; choose from {FACTOR_METHODS}"
        )
    if not isinstance(matrix, BlockTridiagonalMatrix):
        raise ShapeError(
            f"matrix must be a BlockTridiagonalMatrix, got {type(matrix).__name__}"
        )
    if method == "auto":
        # Plan over the factorable portfolio at a representative
        # single-column panel (factor cost dominates the choice; the
        # held factorization then serves any RHS width).
        from ..perfmodel.planner import plan as _resolve_plan

        planned = _resolve_plan(matrix.nblocks, matrix.block_size, p=nranks,
                                r=1, dtype=matrix.dtype,
                                methods=_AUTO_FACTOR_PORTFOLIO)
        method = planned.method
        nranks = planned.nranks
        if backend is None:
            backend = planned.comm_backend
    if method == "ard":
        return ARDFactorization(matrix, nranks=nranks, cost_model=cost_model,
                                trace=trace, backend=backend)
    if method == "spike":
        return SpikeFactorization(matrix, nranks=nranks, cost_model=cost_model,
                                  trace=trace, backend=backend)
    if method == "thomas":
        return ThomasFactorization(matrix)
    return CyclicReductionFactorization(matrix)


def fingerprint(
    matrix: BlockTridiagonalMatrix,
    *,
    method: str | None = None,
    nranks: int = 1,
) -> str:
    """Stable content fingerprint of ``matrix`` — the factor-cache key.

    With only a matrix, returns its content hash
    (:meth:`~repro.linalg.blocktridiag.BlockTridiagonalMatrix.fingerprint`):
    equal-content matrices map to equal digests.  With ``method``
    (one of :data:`FACTOR_METHODS`), returns the full cache key used by
    :mod:`repro.service` — the content hash qualified by method and
    rank geometry, i.e. exactly the granularity at which a stored
    factorization is reusable.

    >>> import numpy as np
    >>> from repro.workloads import poisson_block_system
    >>> A, _ = poisson_block_system(8, 2)
    >>> fingerprint(A) == fingerprint(A.copy())
    True
    >>> fingerprint(A, method="ard", nranks=4).startswith("ard:p4:")
    True
    """
    if not isinstance(matrix, BlockTridiagonalMatrix):
        raise ShapeError(
            f"matrix must be a BlockTridiagonalMatrix, got {type(matrix).__name__}"
        )
    if method is None:
        return matrix.fingerprint()
    from ..service.fingerprint import factor_key  # deferred: avoids cycle

    return factor_key(matrix, method, nranks)
