"""Distributed block cyclic reduction (BCYCLIC-style), one row per rank.

The classical log-depth alternative to prefix-based solvers: each level
eliminates the odd-indexed (at that level) block rows by exchanging
elimination packages with the two neighbouring kept rows, halving the
active set; ``ceil(log2 N)`` forward levels reduce to row 0, and a
mirrored back-substitution sweep recovers the eliminated rows.

Layout: **one block row per rank** (rank ``i`` owns row ``i``; ranks
``>= N`` idle), the layout of Hirshman et al.'s BCYCLIC solver.  The
sequential :mod:`repro.core.cyclic_reduction` covers the one-process
case; this module supplies the measured distributed baseline whose cost
shape (``O(M^3 log N)`` critical path) experiment abl-A3 models.

Level structure (0-based rows):

- active at level ``k``: rows ``i ≡ 0 (mod 2^k)``;
- eliminated at level ``k``: rows ``i ≡ 2^k (mod 2^{k+1})`` — each
  factors its diagonal and ships ``(D^{-1}L, D^{-1}U, D^{-1}d)`` to the
  kept neighbours at distance ``2^k``;
- kept rows fold the packages into their coefficients.

Stability: requires invertible level diagonals — guaranteed for block
diagonally dominant systems (dominance is preserved by the reduction),
like the sequential version.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU, gemm
from ..linalg.blocktridiag import BlockTridiagonalMatrix

__all__ = ["bcyclic_solve_spmd", "bcyclic_solve"]

# Per-level tags; the two bases are spaced so that forward-elimination
# and back-substitution tags can never collide across levels.
_TAG_ELIM = 401
_TAG_BACK = 451


def bcyclic_solve_spmd(comm, row, rhs, nrows: int):
    """Solve one block tridiagonal system with one row per rank.

    Parameters
    ----------
    comm:
        Communicator with ``comm.size >= nrows``.
    row:
        This rank's ``(L_i, D_i, U_i)`` block triple (``L_0`` and
        ``U_{N-1}`` must be zero blocks), or ``None`` on idle ranks.
    rhs:
        This rank's ``(M, R)`` right-hand-side rows, or ``None``.
    nrows:
        Global number of block rows ``N``.

    Returns
    -------
    ``(M, R)`` solution row (``None`` on idle ranks).
    """
    if comm.size < nrows:
        raise ShapeError(
            f"bcyclic needs one rank per row: size {comm.size} < N {nrows}"
        )
    i = comm.rank
    if i >= nrows:
        return None
    if row is None or rhs is None:
        raise ShapeError(f"rank {i} owns row {i} but received no data")
    low, diag, up = (np.asarray(b) for b in row)
    d = np.asarray(rhs)
    m = diag.shape[0]
    if d.ndim != 2 or d.shape[0] != m:
        raise ShapeError(f"rhs must be (M, R), got {d.shape}")
    low = low.copy()
    diag = diag.copy()
    up = up.copy()
    d = d.copy()

    # ---- forward elimination ------------------------------------------
    # `history` records, per level this row survived, what it needs for
    # back-substitution once it is eliminated: its level coefficients.
    elim_level = None
    elim_state = None
    level = 0
    dist = 1
    while dist < nrows:
        if i % dist != 0:
            pass  # already eliminated at an earlier level; wait for backsub
        elif i % (2 * dist) == dist:
            # Eliminated at this level: factor D and ship packages.
            dlu = BatchedLU(diag[None], block_offset=i)
            package = {
                "linv": dlu.solve(low[None])[0],
                "uinv": dlu.solve(up[None])[0],
                "dinv": dlu.solve(d[None])[0],
            }
            left = i - dist
            right = i + dist
            comm.send((i, package), left, _TAG_ELIM + level)
            if right < nrows:
                comm.send((i, package), right, _TAG_ELIM + level)
            elim_level = level
            elim_state = (dlu, low, up, d, left, right if right < nrows else None)
        else:
            # Kept: fold in the eliminated neighbours' packages.
            left = i - dist
            right = i + dist
            if left >= 0:
                _, pkg = comm.recv(source=left, tag=_TAG_ELIM + level)
                # Row `left` was: L_l x_{left-dist} + D_l x_left + U_l x_i = d_l.
                diag = diag - gemm(low, pkg["uinv"])
                d = d - gemm(low, pkg["dinv"])
                low = -gemm(low, pkg["linv"])
            if right < nrows and right % (2 * dist) == dist:
                _, pkg = comm.recv(source=right, tag=_TAG_ELIM + level)
                diag = diag - gemm(up, pkg["linv"])
                d = d - gemm(up, pkg["dinv"])
                up = -gemm(up, pkg["uinv"])
        level += 1
        dist <<= 1

    # ---- root solve + back-substitution --------------------------------
    x = None
    if i == 0:
        x = BatchedLU(diag[None], block_offset=0).solve(d[None])[0]
    for k in range(level - 1, -1, -1):
        dk = 1 << k
        if elim_level is not None and k > elim_level:
            continue  # not yet resolved at this depth
        if elim_level == k:
            # Receive neighbours' solutions and recover this row.
            dlu, low_k, up_k, d_k, left, right = elim_state
            x_left = comm.recv(source=left, tag=_TAG_BACK + k)
            rhs_k = d_k - gemm(low_k, x_left)
            if right is not None:
                x_right = comm.recv(source=right, tag=_TAG_BACK + k)
                rhs_k = rhs_k - gemm(up_k, x_right)
            x = dlu.solve(rhs_k[None])[0]
        elif i % (2 * dk) == 0:
            # Resolved earlier: ship x to the rows eliminated at level k.
            if i - dk >= 0:
                comm.send(x, i - dk, _TAG_BACK + k)
            if i + dk < nrows:
                comm.send(x, i + dk, _TAG_BACK + k)
    return x


def bcyclic_solve(matrix: BlockTridiagonalMatrix, b: np.ndarray,
                  cost_model=None, backend: str | None = None):
    """Driver: solve ``A x = b`` with one simulated rank per block row.

    Returns ``(x, SimulationResult)``.  Intended for moderate ``N``
    (each block row becomes a thread); the sequential
    :func:`repro.core.cyclic_reduction.cyclic_reduction_solve` covers
    single-process use and :mod:`repro.perfmodel` models larger scale.
    """
    from ..comm import run_spmd
    from ..linalg.blocktridiag import reshape_rhs, restore_rhs_shape

    n, m = matrix.nblocks, matrix.block_size
    bb, original = reshape_rhs(b, n, m)
    zero = np.zeros((m, m), dtype=matrix.dtype)
    rank_args = []
    for i in range(n):
        low = matrix.lower[i - 1] if i > 0 else zero
        up = matrix.upper[i] if i < n - 1 else zero
        rank_args.append(((low, matrix.diag[i], up), bb[i], n))
    result = run_spmd(
        bcyclic_solve_spmd, n,
        cost_model=cost_model, copy_messages=False, rank_args=rank_args,
        backend=backend,
    )
    x = np.stack([result.values[i] for i in range(n)], axis=0)
    return restore_rhs_shape(x, original), result
