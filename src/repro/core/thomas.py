"""Sequential block Thomas algorithm (block LU without pivoting across
blocks).

The classic ``O(N M^3)`` factor / ``O(N M^2 R)`` solve baseline: on one
processor this is the algorithm RD competes against, and its factor/
solve split mirrors ARD's (which is why the harness reports both).

Factorization (forward elimination of the block bidiagonal structure):

``S_0 = D_0``;  ``S_i = D_i - L_i S_{i-1}^{-1} U_{i-1}``

storing LU factors of every Schur block ``S_i`` plus the premultiplied
``V_i = S_i^{-1} U_i``.  Solving then needs one forward sweep
(``c_i = S_i^{-1} (d_i - L_i c_{i-1})``) and one backward sweep
(``x_i = c_i - V_i x_{i+1}``) — matrix–vector work only.

Stable for block diagonally dominant systems (the same class targeted
by recursive doubling).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU, gemm
from ..linalg.blocktridiag import BlockTridiagonalMatrix
from .refine import RefinableFactorization

__all__ = ["ThomasFactorization", "thomas_solve"]


class ThomasFactorization(RefinableFactorization):
    """Factored block Thomas solver: factor once, solve many
    (``solve(b, refine=k)`` adds iterative refinement).

    Example
    -------
    >>> from repro.workloads import poisson_block_system, random_rhs
    >>> A, _ = poisson_block_system(8, 3)
    >>> F = ThomasFactorization(A)
    >>> b = random_rhs(8, 3, nrhs=2, seed=0)
    >>> x = F.solve(b)
    >>> bool(A.residual(x, b) < 1e-10)
    True
    """

    __slots__ = ("matrix", "nblocks", "block_size", "dtype", "_lower", "_slu", "_v")

    def __init__(self, matrix: BlockTridiagonalMatrix):
        if not isinstance(matrix, BlockTridiagonalMatrix):
            raise ShapeError(
                f"matrix must be a BlockTridiagonalMatrix, got {type(matrix).__name__}"
            )
        n, m = matrix.nblocks, matrix.block_size
        self.matrix = matrix
        self.nblocks = n
        self.block_size = m
        self.dtype = matrix.dtype
        self._lower = matrix.lower.copy()
        schur = np.empty((n, m, m), dtype=matrix.dtype)
        self._v = np.empty((max(n - 1, 0), m, m), dtype=matrix.dtype)
        schur[0] = matrix.diag[0]
        lus: list[BatchedLU] = []
        for i in range(n):
            if i > 0:
                # S_i = D_i - L_i * V_{i-1} with V_{i-1} = S_{i-1}^{-1} U_{i-1}.
                schur[i] = matrix.diag[i] - gemm(matrix.lower[i - 1], self._v[i - 1])
            lu = BatchedLU(schur[i][None, :, :], block_offset=i)
            lus.append(lu)
            if i < n - 1:
                self._v[i] = lu.solve(matrix.upper[i][None, :, :])[0]
        # Consolidate the per-block factors into one batch for fast solves.
        self._slu = _stack_lus(lus)

    @property
    def nbytes(self) -> int:
        """Stored factorization footprint (Schur LU factors, ``V_i``,
        and the retained subdiagonal); used by the service-layer cache
        for byte-budget accounting."""
        return self._slu.nbytes + self._v.nbytes + self._lower.nbytes

    def _solve_normalized(self, bb: np.ndarray) -> np.ndarray:
        n, m = self.nblocks, self.block_size
        r = bb.shape[2]
        c = np.empty((n, m, r), dtype=np.result_type(self.dtype, bb.dtype))
        c[0] = self._slu.solve_one(0, bb[0])
        for i in range(1, n):
            c[i] = self._slu.solve_one(i, bb[i] - gemm(self._lower[i - 1], c[i - 1]))
        x = np.empty_like(c)
        x[n - 1] = c[n - 1]
        for i in range(n - 2, -1, -1):
            x[i] = c[i] - gemm(self._v[i], x[i + 1])
        return x


def _stack_lus(lus: list[BatchedLU]) -> BatchedLU:
    """Merge single-block :class:`BatchedLU` objects into one batch."""
    merged = object.__new__(BatchedLU)
    merged.n = len(lus)
    merged.m = lus[0].m
    merged.dtype = lus[0].dtype
    merged._lu = np.concatenate([lu._lu for lu in lus], axis=0)
    merged._piv = np.concatenate([lu._piv for lu in lus], axis=0)
    return merged


def thomas_solve(matrix: BlockTridiagonalMatrix, b: np.ndarray) -> np.ndarray:
    """Convenience one-shot factor + solve."""
    return ThomasFactorization(matrix).solve(b)
