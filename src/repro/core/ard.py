"""Accelerated recursive doubling (ARD) — the paper's contribution.

ARD splits recursive doubling into a matrix-only **factor** phase and a
vector-only **solve** phase:

``ard_factor_spmd``
    Performs every RHS-independent computation once and stores it in an
    :class:`ARDRankState`: the LU factors of the superdiagonal blocks,
    the transfer operators ``(T1, T2)``, the scan trace of the matrix
    prefix (per-round matrix accumulators — see
    :mod:`repro.core.scan_affine`), the exclusive matrix prefix, and the
    factored closing system.  Cost: ``O(M^3 (N/P + log P))``.

``ard_solve_spmd``
    For each batch of ``R`` right-hand sides performs only matrix–vector
    work against the stored state: forming ``g = U^{-1} d``, the local
    vector aggregate, the replayed vector scan (messages of ``O(M R)``
    bytes), the closing back-solve, and local back-substitution.  Cost:
    ``O(M^2 R (N/P + log P))``.

Solving ``R`` right-hand sides therefore costs
``O((M^3 + R M^2)(N/P + log P))`` instead of the baseline's
``O(R M^3 (N/P + log P))`` — the abstract's ``O(R)`` improvement
(saturating at ``Θ(M)`` once ``R >> M``; see DESIGN.md).

The driver-level :class:`ARDFactorization` wraps both phases behind a
LAPACK-style ``factor(...)``/``solve(b)`` interface.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import BatchedLU
from ..obs import span as _span
from ..prefix.affine import AffinePair
from .distribute import LocalChunk
from .engine import (
    broadcast_x0,
    closing_rhs,
    entry_state,
    factor_closing,
    find_closing_rank,
    validate_rhs_rows,
)
from .recurrence import (
    TransferOperators,
    forward_solution,
    local_matrix_aggregate,
    local_vector_aggregate,
)
from .refine import RefinableFactorization
from .scan_affine import ScanTrace, affine_scan, replay_scan

__all__ = ["ARDRankState", "ard_factor_spmd", "ard_solve_spmd", "ARDFactorization"]


@dataclasses.dataclass
class ARDRankState:
    """Everything one rank stores between ARD factor and solve phases.

    Attributes
    ----------
    chunk:
        The rank's matrix rows (kept for the closing blocks and shape
        checks; the hot path reads only its last row's ``D``/``L``).
    ops:
        Transfer operators — ``(T1, T2)`` plus factored ``U_i``.
    trace:
        Matrix-side record of the factor scan, replayed per solve.
    closing_rank:
        Rank owning the closing row (broadcast root).
    closing_lu:
        Factored closing system (only on the closing rank).
    """

    chunk: LocalChunk
    ops: TransferOperators
    trace: ScanTrace
    closing_rank: int
    closing_lu: BatchedLU | None

    @property
    def nbytes(self) -> int:
        """Stored factorization footprint (excludes the matrix chunk)."""
        total = self.ops.nbytes + self.trace.nbytes
        if self.closing_lu is not None:
            total += self.closing_lu.nbytes
        return total


def ard_factor_spmd(comm, chunk: LocalChunk) -> ARDRankState:
    """Factor phase: all matrix-only work, executed once per matrix.

    Returns the rank's :class:`ARDRankState`; every subsequent
    :func:`ard_solve_spmd` against this state must use a communicator
    with the same size and rank.
    """
    with _span("build"):
        ops = TransferOperators(chunk)
        a_agg = local_matrix_aggregate(ops)
        pair = AffinePair(
            a_agg, np.zeros((a_agg.shape[0], 0), dtype=a_agg.dtype),
            validate=False,
        )
    with _span("scan"):
        result, trace = affine_scan(comm, pair, record=True)
    assert trace is not None
    with _span("closing"):
        closing_rank = find_closing_rank(comm, chunk)
        closing_lu = None
        if comm.rank == closing_rank:
            closing_lu = factor_closing(chunk, result.inclusive.a)
    return ARDRankState(
        chunk=chunk,
        ops=ops,
        trace=trace,
        closing_rank=closing_rank,
        closing_lu=closing_lu,
    )


def ard_solve_spmd(comm, state: ARDRankState, d_rows: np.ndarray) -> np.ndarray:
    """Solve phase: matrix–vector work only, against the stored state.

    Parameters
    ----------
    comm:
        Communicator with the same geometry as the factor phase.
    state:
        This rank's :class:`ARDRankState`.
    d_rows:
        ``(h, M, R)`` local right-hand-side rows; any ``R >= 1``.

    Returns
    -------
    ``(h, M, R)`` local solution rows.
    """
    chunk = state.chunk
    d_rows = validate_rhs_rows(chunk, d_rows)
    with _span("build"):
        g_rows = state.ops.g(d_rows)
        b_agg = local_vector_aggregate(state.ops, g_rows)
    with _span("scan"):
        b_inc, b_exc = replay_scan(comm, b_agg, state.trace)

    with _span("closing"):
        x0 = None
        if comm.rank == state.closing_rank:
            if state.closing_lu is None:  # pragma: no cover - factor invariant
                raise ShapeError("closing rank is missing its factored system")
            rhs = closing_rhs(chunk, b_inc, d_rows[-1])
            x0 = state.closing_lu.solve(rhs[None, :, :])[0]
        x0 = broadcast_x0(comm, state.closing_rank, x0)

    with _span("backsub"):
        s_lo = entry_state(None, state.trace.a_exclusive, b_exc, x0)
        return forward_solution(state.ops, g_rows, s_lo, chunk.nrows)


class ARDFactorization(RefinableFactorization):
    """Driver-level ARD factorization: factor once, solve many.

    Create with :func:`repro.core.api.factor` (or directly from a
    matrix).  Each :meth:`solve` spins up the same simulated rank
    geometry, replays the stored per-rank states, and returns the
    assembled solution; ``solve(b, refine=k)`` adds iterative
    refinement (see :mod:`repro.core.refine`).  Per-phase statistics are
    retained for the benchmark harness (``factor_result``,
    ``last_solve_result``).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.ard import ARDFactorization
    >>> from repro.workloads import poisson_block_system, random_rhs
    >>> A, _ = poisson_block_system(16, 4)
    >>> F = ARDFactorization(A, nranks=4)
    >>> b = random_rhs(16, 4, nrhs=8, seed=1)
    >>> x = F.solve(b)
    >>> bool(A.residual(x, b) < 1e-10)
    True
    """

    def __init__(self, matrix, nranks: int = 1, cost_model=None,
                 trace: bool = False, backend: str | None = None):
        from ..comm import run_spmd
        from ..linalg.blocktridiag import BlockTridiagonalMatrix
        from .distribute import distribute_matrix

        if not isinstance(matrix, BlockTridiagonalMatrix):
            raise ShapeError(
                "matrix must be a BlockTridiagonalMatrix, got "
                f"{type(matrix).__name__}"
            )
        if nranks < 1:
            raise ShapeError(f"nranks must be >= 1, got {nranks}")
        self.matrix = matrix
        self.nblocks = matrix.nblocks
        self.block_size = matrix.block_size
        self.nranks = nranks
        self.cost_model = cost_model
        self.trace = trace
        self.backend = backend
        self._run_spmd = run_spmd
        chunks = distribute_matrix(matrix, nranks)
        self.factor_result = run_spmd(
            ard_factor_spmd,
            nranks,
            cost_model=cost_model,
            copy_messages=False,
            rank_args=[(c,) for c in chunks],
            trace=trace,
            backend=backend,
        )
        self._states: list[ARDRankState] = list(self.factor_result.values)
        self.last_solve_result = None

    @property
    def factor_virtual_time(self) -> float:
        """Modelled parallel time of the factor phase."""
        return self.factor_result.virtual_time

    @property
    def nbytes(self) -> int:
        """Total stored factorization footprint across ranks."""
        return sum(s.nbytes for s in self._states)

    def _solve_normalized(self, bb: np.ndarray) -> np.ndarray:
        from .distribute import distribute_rhs, gather_solution

        d_chunks = distribute_rhs(bb, self.nranks)
        result = self._run_spmd(
            ard_solve_spmd,
            self.nranks,
            cost_model=self.cost_model,
            copy_messages=False,
            rank_args=[(s, d) for s, d in zip(self._states, d_chunks)],
            trace=self.trace,
            backend=self.backend,
        )
        self.last_solve_result = result
        return gather_solution(list(result.values))
