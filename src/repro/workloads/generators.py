"""Workload generators: the block tridiagonal systems of the evaluation.

The paper motivates block tridiagonal systems from "a wide variety of
scientific and engineering applications"; these generators provide
concrete instances of the standard ones:

- line-blocked 2D Poisson / implicit heat stencils (``poisson_block_system``,
  ``heat_implicit_system``),
- non-symmetric convection–diffusion (``convection_diffusion_system``),
- multigroup diffusion with dense inter-group coupling blocks
  (``multigroup_diffusion_system``) — the natural "hundreds of RHS with
  one matrix" application (one RHS per source configuration),
- random block-diagonally-dominant systems (``random_block_dd_system``)
  for property tests and complexity sweeps,
- constant-block Toeplitz systems (``toeplitz_block_system``).

All generated matrices satisfy the recursive doubling requirements:
invertible superdiagonal blocks and block diagonal dominance (so the
transfer-product growth stays bounded; see
:mod:`repro.core.diagnostics`).

Every generator returns ``(matrix, info)`` where ``info`` is a dict of
the construction parameters (recorded by the harness into experiment
rows).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..config import get_config
from ..exceptions import ShapeError
from ..linalg.blocktridiag import BlockTridiagonalMatrix
from ..util.seeding import rng_from_seed

__all__ = [
    "poisson_block_system",
    "heat_implicit_system",
    "convection_diffusion_system",
    "multigroup_diffusion_system",
    "random_block_dd_system",
    "toeplitz_block_system",
    "helmholtz_block_system",
    "absorbing_helmholtz_system",
    "banded_oscillatory_system",
    "random_rhs",
    "smooth_rhs",
    "point_source_rhs",
]

Info = dict[str, Any]


def _check_nm(nblocks: int, block_size: int) -> None:
    if nblocks < 1:
        raise ShapeError(f"nblocks must be >= 1, got {nblocks}")
    if block_size < 1:
        raise ShapeError(f"block_size must be >= 1, got {block_size}")


def _tridiag_block(m: int, sub: float, diag: float, sup: float, dtype) -> np.ndarray:
    """Scalar tridiagonal ``m x m`` block."""
    block = np.zeros((m, m), dtype=dtype)
    idx = np.arange(m)
    block[idx, idx] = diag
    block[idx[1:], idx[:-1]] = sub
    block[idx[:-1], idx[1:]] = sup
    return block


def toeplitz_block_system(
    nblocks: int,
    lower_block: np.ndarray,
    diag_block: np.ndarray,
    upper_block: np.ndarray,
) -> tuple[BlockTridiagonalMatrix, Info]:
    """Block Toeplitz tridiagonal system with the given constant blocks."""
    lower_block = np.asarray(lower_block)
    diag_block = np.asarray(diag_block)
    upper_block = np.asarray(upper_block)
    m = diag_block.shape[0]
    for name, blk in (("lower", lower_block), ("diag", diag_block), ("upper", upper_block)):
        if blk.shape != (m, m):
            raise ShapeError(f"{name} block must be ({m}, {m}), got {blk.shape}")
    _check_nm(nblocks, m)
    lower = np.broadcast_to(lower_block, (max(nblocks - 1, 0), m, m)).copy()
    diag = np.broadcast_to(diag_block, (nblocks, m, m)).copy()
    upper = np.broadcast_to(upper_block, (max(nblocks - 1, 0), m, m)).copy()
    mat = BlockTridiagonalMatrix(
        lower if nblocks > 1 else None, diag, upper if nblocks > 1 else None, copy=False
    )
    return mat, {"name": "toeplitz", "nblocks": nblocks, "block_size": m}


def poisson_block_system(
    nblocks: int, block_size: int, *, coupling: float = 1.0, seed=None
) -> tuple[BlockTridiagonalMatrix, Info]:
    """Line-blocked 2D Poisson (5-point stencil) on an ``N x M`` grid.

    Block row ``i`` couples grid line ``i`` to its neighbours:
    ``D = tridiag(-1, 4, -1)``, ``L = U = -coupling * I``.  With
    ``coupling <= 1`` the system is strictly block diagonally dominant
    and the superdiagonal blocks are trivially invertible — the friendly
    regime for recursive doubling.

    ``seed`` is accepted (and ignored) so all generators share one
    calling convention.
    """
    _check_nm(nblocks, block_size)
    if not 0 < coupling:
        raise ShapeError(f"coupling must be positive, got {coupling}")
    dtype = get_config().dtype
    diag_block = _tridiag_block(block_size, -1.0, 4.0, -1.0, dtype)
    off = -coupling * np.eye(block_size, dtype=dtype)
    mat, _ = toeplitz_block_system(nblocks, off, diag_block, off)
    return mat, {
        "name": "poisson",
        "nblocks": nblocks,
        "block_size": block_size,
        "coupling": coupling,
    }


def heat_implicit_system(
    nblocks: int, block_size: int, *, dt: float = 0.1, dx: float = 1.0,
    diffusivity: float = 1.0, seed=None
) -> tuple[BlockTridiagonalMatrix, Info]:
    """Backward-Euler operator ``I + dt * kappa / dx^2 * Laplacian`` on a
    2D grid, line-blocked.

    This is the canonical same-matrix/many-RHS workload: every implicit
    time step solves against the same operator with a new RHS.
    """
    _check_nm(nblocks, block_size)
    if dt <= 0 or dx <= 0 or diffusivity <= 0:
        raise ShapeError("dt, dx and diffusivity must be positive")
    dtype = get_config().dtype
    c = dt * diffusivity / (dx * dx)
    diag_block = _tridiag_block(block_size, -c, 1.0 + 4.0 * c, -c, dtype)
    off = -c * np.eye(block_size, dtype=dtype)
    mat, _ = toeplitz_block_system(nblocks, off, diag_block, off)
    return mat, {
        "name": "heat_implicit",
        "nblocks": nblocks,
        "block_size": block_size,
        "dt": dt,
        "dx": dx,
        "diffusivity": diffusivity,
    }


def convection_diffusion_system(
    nblocks: int, block_size: int, *, peclet: float = 0.5, seed=None
) -> tuple[BlockTridiagonalMatrix, Info]:
    """Non-symmetric convection–diffusion stencil.

    The convection term skews the off-diagonal couplings:
    ``L = -(1 + peclet) I``, ``U = -(1 - peclet) I`` and the in-block
    tridiagonal is skewed the same way.  Requires ``|peclet| < 1`` so
    the superdiagonal blocks stay invertible and dominance holds.
    """
    _check_nm(nblocks, block_size)
    if not abs(peclet) < 1:
        raise ShapeError(f"|peclet| must be < 1, got {peclet}")
    dtype = get_config().dtype
    diag_block = _tridiag_block(
        block_size, -(1.0 + peclet), 4.0 + 2.0 * abs(peclet), -(1.0 - peclet), dtype
    )
    low = -(1.0 + peclet) * np.eye(block_size, dtype=dtype)
    up = -(1.0 - peclet) * np.eye(block_size, dtype=dtype)
    mat, _ = toeplitz_block_system(nblocks, low, diag_block, up)
    return mat, {
        "name": "convection_diffusion",
        "nblocks": nblocks,
        "block_size": block_size,
        "peclet": peclet,
    }


def helmholtz_block_system(
    nblocks: int, block_size: int, *, theta: float = 1.2, eps: float = 0.2,
    seed=None
) -> tuple[BlockTridiagonalMatrix, Info]:
    """Helmholtz-like (oscillatory) system with *bounded* transfer growth.

    With ``L = U = -I`` and ``D = tridiag(-eps, theta, -eps)``, the
    transfer recurrence ``x_{i+1} = D x_i - x_{i-1} + g`` decouples per
    eigenvalue ``d_k`` of ``D`` into ``lambda^2 - d_k lambda + 1 = 0``;
    for ``|d_k| < 2`` — guaranteed by ``|theta| + 2 eps < 2`` — the
    characteristic roots are complex conjugates on the unit circle, so
    the composed transfer products stay bounded for *any* ``N``.

    This is the regime where recurrence-based recursive doubling is
    accurate at arbitrary length (see DESIGN.md's stability caveat); the
    large-``N`` experiments use it.  Note the trade-off: the matrix is
    *not* diagonally dominant here (indefinite, like a Helmholtz
    operator away from resonance).
    """
    _check_nm(nblocks, block_size)
    if abs(theta) + 2 * abs(eps) >= 2:
        raise ShapeError(
            f"need |theta| + 2|eps| < 2 for bounded growth, got "
            f"theta={theta}, eps={eps}"
        )
    theta = _detune_helmholtz(theta, eps, nblocks, block_size)
    dtype = get_config().dtype
    diag_block = _tridiag_block(block_size, -eps, theta, -eps, dtype)
    off = -np.eye(block_size, dtype=dtype)
    mat, _ = toeplitz_block_system(nblocks, off, diag_block, off)
    return mat, {
        "name": "helmholtz",
        "nblocks": nblocks,
        "block_size": block_size,
        "theta": theta,
        "eps": eps,
    }


def absorbing_helmholtz_system(
    nblocks: int, block_size: int, *, theta: float = 1.2, eps: float = 0.2,
    damping: float = 0.2, seed=None
) -> tuple[BlockTridiagonalMatrix, Info]:
    """Complex Helmholtz system with absorption (``D + i*damping*I``).

    The imaginary shift models an absorbing medium (or a shifted-Laplace
    preconditioner): every eigenvalue satisfies ``|eig| >= damping``, so
    the operator is uniformly well conditioned with *no* resonance
    detuning needed.  The price is mild transfer-product growth
    ``~exp(damping/2 * N)`` — keep ``damping * N`` modest (growth is
    reported by :func:`repro.core.diagnostics.diagnose` as usual).

    This is also the canonical complex-arithmetic workload: all solvers
    in :mod:`repro.core` operate on ``complex128`` transparently.
    """
    _check_nm(nblocks, block_size)
    if abs(theta) + 2 * abs(eps) >= 2:
        raise ShapeError(
            f"need |theta| + 2|eps| < 2 for bounded real-part growth, got "
            f"theta={theta}, eps={eps}"
        )
    if damping <= 0:
        raise ShapeError(f"damping must be positive, got {damping}")
    diag_block = _tridiag_block(block_size, -eps, theta, -eps, np.complex128)
    diag_block += 1j * damping * np.eye(block_size)
    off = -np.eye(block_size, dtype=np.complex128)
    mat, _ = toeplitz_block_system(nblocks, off, diag_block, off)
    return mat, {
        "name": "absorbing_helmholtz",
        "nblocks": nblocks,
        "block_size": block_size,
        "theta": theta,
        "eps": eps,
        "damping": damping,
    }


def _detune_helmholtz(theta: float, eps: float, n: int, m: int) -> float:
    """Nudge ``theta`` away from resonances of the Helmholtz system.

    The eigenvalues of the generated matrix are known in closed form:
    ``d_k - 2 cos(j pi / (N+1))`` with ``d_k = theta - 2 eps cos(k pi /
    (M+1))``.  An unlucky ``(N, M, theta)`` makes one of them (nearly)
    zero — the operator hits a resonance and every solver's accuracy
    collapses, which would contaminate the evaluation.  We shift
    ``theta`` in steps comparable to the eigenvalue grid spacing until
    the spectral gap exceeds ``~1/(N+1)``, keeping the best candidate.
    """
    grid = 2.0 * np.cos(np.arange(1, n + 1) * np.pi / (n + 1))
    modes = -2.0 * eps * np.cos(np.arange(1, m + 1) * np.pi / (m + 1))
    target = 1.0 / (n + 1)
    step = 0.9 / (n + 1)
    best_theta, best_gap = theta, -1.0
    cand = theta
    for _ in range(64):
        gap = float(np.abs((cand + modes)[:, None] - grid[None, :]).min())
        if gap > best_gap:
            best_theta, best_gap = cand, gap
        if gap >= target and abs(cand) + 2 * abs(eps) < 2:
            return cand
        cand += step
        if abs(cand) + 2 * abs(eps) >= 2:  # walked out of the stable window
            cand = theta - step
            step = -step
    return best_theta


def multigroup_diffusion_system(
    nblocks: int, ngroups: int, *, scattering: float = 0.2,
    absorption: float = 1.0, coupling: float = 0.5, seed=None
) -> tuple[BlockTridiagonalMatrix, Info]:
    """1D multigroup neutron-diffusion-like system.

    Each spatial cell carries ``ngroups`` energy groups; the diagonal
    blocks are dense (removal on the diagonal plus a random non-negative
    scattering matrix), and spatial coupling is ``-coupling * I``.  The
    block size is the group count — the setting where blocks are dense
    and ``R`` (independent source configurations) is large, i.e. the
    paper's target regime.
    """
    _check_nm(nblocks, ngroups)
    if scattering < 0 or absorption <= 0 or coupling <= 0:
        raise ShapeError("scattering >= 0, absorption > 0, coupling > 0 required")
    rng = rng_from_seed(seed)
    dtype = get_config().dtype
    m = ngroups
    diag = np.empty((nblocks, m, m), dtype=dtype)
    for i in range(nblocks):
        scatter = scattering * rng.random((m, m))
        np.fill_diagonal(scatter, 0.0)
        removal = absorption + 2.0 * coupling + scatter.sum(axis=1)
        diag[i] = np.diag(removal) - scatter
    off = -coupling * np.eye(m, dtype=dtype)
    lower = np.broadcast_to(off, (max(nblocks - 1, 0), m, m)).copy()
    upper = lower.copy()
    mat = BlockTridiagonalMatrix(
        lower if nblocks > 1 else None, diag, upper if nblocks > 1 else None, copy=False
    )
    return mat, {
        "name": "multigroup_diffusion",
        "nblocks": nblocks,
        "block_size": m,
        "scattering": scattering,
        "absorption": absorption,
        "coupling": coupling,
    }


def random_block_dd_system(
    nblocks: int, block_size: int, *, dominance: float = 2.0, seed=None
) -> tuple[BlockTridiagonalMatrix, Info]:
    """Random block tridiagonal system with enforced block diagonal
    dominance.

    Off-diagonal blocks are standard Gaussian (hence almost surely
    invertible); each diagonal block is a Gaussian block shifted by
    ``dominance * s * I`` where ``s`` bounds the row sum of the
    neighbouring blocks' norms, guaranteeing
    ``||D_i^{-1}|| (||L_i|| + ||U_i||) < 1/(dominance - 1)`` style
    dominance.  ``dominance > 1`` keeps recursive doubling's transfer
    products bounded.
    """
    _check_nm(nblocks, block_size)
    if dominance <= 1.0:
        raise ShapeError(f"dominance must exceed 1.0, got {dominance}")
    rng = rng_from_seed(seed)
    dtype = get_config().dtype
    lower = rng.standard_normal((max(nblocks - 1, 0), block_size, block_size)).astype(dtype)
    upper = rng.standard_normal((max(nblocks - 1, 0), block_size, block_size)).astype(dtype)
    diag = rng.standard_normal((nblocks, block_size, block_size)).astype(dtype)
    idx = np.arange(block_size)
    for i in range(nblocks):
        norm = np.abs(diag[i]).sum()
        if i > 0:
            norm += np.abs(lower[i - 1]).sum(axis=1).max()
        if i < nblocks - 1:
            norm += np.abs(upper[i]).sum(axis=1).max()
        # Shift away from zero in the direction of the existing entry to
        # avoid cancellation weakening the dominance.
        sign = np.where(diag[i][idx, idx] >= 0, 1.0, -1.0)
        diag[i][idx, idx] += sign * dominance * norm
    mat = BlockTridiagonalMatrix(
        lower if nblocks > 1 else None, diag, upper if nblocks > 1 else None, copy=False
    )
    return mat, {
        "name": "random_block_dd",
        "nblocks": nblocks,
        "block_size": block_size,
        "dominance": dominance,
    }


def banded_oscillatory_system(
    nblocks: int, block_size: int, *, bandwidth: int = 2, seed=None,
    rotate: bool = True
):
    """Block *banded* oscillatory system with bounded transfer growth.

    The scalar stencil is the palindromic polynomial
    ``p(z) = prod_l (z^2 - 2 cos(phi_l) z + 1)`` (``l = 1..b``), whose
    roots sit on the unit circle — the banded analogue of the Helmholtz
    regime where recursive doubling stays accurate at any ``N``.  A
    small diagonal shift (``O(1/N)``, hence ``O(1)`` total growth)
    detunes the Toeplitz symbol away from resonances, and with
    ``rotate=True`` every block row is conjugated by a random orthogonal
    matrix so the blocks are dense while the spectrum (and the transfer
    growth) is preserved.

    Returns ``(BlockBandedMatrix, info)``; the natural workload for
    :class:`repro.banded.BandedARDFactorization`.
    """
    from ..banded.matrix import BlockBandedMatrix

    _check_nm(nblocks, block_size)
    b = bandwidth
    if b < 1:
        raise ShapeError(f"bandwidth must be >= 1, got {b}")
    if nblocks < 2 * b + 1:
        raise ShapeError(
            f"need nblocks >= 2*bandwidth + 1, got N={nblocks}, b={b}"
        )
    rng = rng_from_seed(seed)
    dtype = get_config().dtype
    m, n = block_size, nblocks

    # Palindromic stencil with unit-circle roots at phases phi_l.
    phases = (np.arange(1, b + 1) * 2.0 - 0.7) * np.pi / (2 * b + 1)
    poly = np.array([1.0])
    for phi in phases:
        poly = np.convolve(poly, [1.0, -2.0 * np.cos(phi), 1.0])
    # poly[j] is the coefficient of z^{2b - j}; band offset k carries the
    # coefficient of z^{b + k}.
    coeff = {k: poly[2 * b - (b + k)] for k in range(-b, b + 1)}

    # Detune the symbol f(theta) = sum_k c_k e^{i k theta} away from zero
    # over the eigenvalue grid theta_j = j pi / (N + 1).
    thetas = np.arange(1, n + 1) * np.pi / (n + 1)
    symbol = np.zeros_like(thetas)
    for k, c in coeff.items():
        symbol += c * np.cos(k * thetas)
    span = 4.0 / (n + 1) * max(1.0, np.abs(symbol).max())
    candidates = np.linspace(-span, span, 81)
    gaps = [np.abs(symbol + delta).min() for delta in candidates]
    delta = float(candidates[int(np.argmax(gaps))])

    # Random per-row orthogonal conjugation keeps the spectrum but makes
    # blocks dense.
    if rotate:
        qs = []
        for _ in range(n):
            q, _r = np.linalg.qr(rng.standard_normal((m, m)))
            qs.append(q)
    eye = np.eye(m, dtype=dtype)
    bands = np.zeros((2 * b + 1, n, m, m), dtype=dtype)
    for k in range(-b, b + 1):
        block = coeff[k] * eye + (delta * eye if k == 0 else 0.0)
        for i in range(max(0, -k), min(n, n - k)):
            if rotate:
                bands[b + k, i] = qs[i] @ block @ qs[i + k].T
            else:
                bands[b + k, i] = block
    matrix = BlockBandedMatrix(bands, copy=False)
    return matrix, {
        "name": "banded_oscillatory",
        "nblocks": n,
        "block_size": m,
        "bandwidth": b,
        "delta": delta,
        "rotate": rotate,
    }


# -- right-hand-side generators -------------------------------------------


def random_rhs(nblocks: int, block_size: int, nrhs: int = 1, seed=None) -> np.ndarray:
    """Standard-normal right-hand sides of shape ``(N, M, R)``."""
    _check_nm(nblocks, block_size)
    if nrhs < 1:
        raise ShapeError(f"nrhs must be >= 1, got {nrhs}")
    rng = rng_from_seed(seed)
    return rng.standard_normal((nblocks, block_size, nrhs)).astype(get_config().dtype)


def smooth_rhs(nblocks: int, block_size: int, nrhs: int = 1) -> np.ndarray:
    """Smooth sinusoidal right-hand sides (one frequency per column)."""
    _check_nm(nblocks, block_size)
    if nrhs < 1:
        raise ShapeError(f"nrhs must be >= 1, got {nrhs}")
    grid = np.linspace(0.0, np.pi, nblocks * block_size)
    cols = [np.sin((k + 1) * grid) for k in range(nrhs)]
    out = np.stack(cols, axis=-1).reshape(nblocks, block_size, nrhs)
    return out.astype(get_config().dtype)


def point_source_rhs(
    nblocks: int, block_size: int, sources: list[tuple[int, int, float]]
) -> np.ndarray:
    """One RHS per source: a unit (scaled) impulse at ``(block, entry)``.

    ``sources`` is a list of ``(block_index, entry_index, amplitude)``;
    column ``k`` of the result is the ``k``-th source.
    """
    _check_nm(nblocks, block_size)
    out = np.zeros((nblocks, block_size, len(sources)), dtype=get_config().dtype)
    for k, (bi, ei, amp) in enumerate(sources):
        if not (0 <= bi < nblocks and 0 <= ei < block_size):
            raise ShapeError(f"source {k} at ({bi}, {ei}) is out of range")
        out[bi, ei, k] = amp
    return out
