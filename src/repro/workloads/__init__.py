"""Workload generators for the evaluation's block tridiagonal systems."""

from .generators import (
    absorbing_helmholtz_system,
    banded_oscillatory_system,
    convection_diffusion_system,
    helmholtz_block_system,
    heat_implicit_system,
    multigroup_diffusion_system,
    point_source_rhs,
    poisson_block_system,
    random_block_dd_system,
    random_rhs,
    smooth_rhs,
    toeplitz_block_system,
)

__all__ = [
    "absorbing_helmholtz_system",
    "banded_oscillatory_system",
    "convection_diffusion_system",
    "helmholtz_block_system",
    "heat_implicit_system",
    "multigroup_diffusion_system",
    "point_source_rhs",
    "poisson_block_system",
    "random_block_dd_system",
    "random_rhs",
    "smooth_rhs",
    "toeplitz_block_system",
]
