"""Global configuration for the :mod:`repro` library.

The configuration is deliberately tiny: a default floating dtype, a
singularity threshold used when factoring blocks, and a toggle for flop
accounting.  Everything performance-critical takes explicit arguments;
the global config only supplies defaults.

Example
-------
>>> from repro.config import get_config, set_config
>>> set_config(flop_counting=True)
>>> get_config().flop_counting
True
"""

from __future__ import annotations

import dataclasses
import os
import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from .exceptions import ConfigError

__all__ = ["ReproConfig", "get_config", "set_config", "install_config",
           "config_context", "BLOCKOPS_BACKENDS", "RECURRENCE_MODES",
           "COMM_BACKENDS", "DEFAULT_VECTOR_SOLVE_MAX_WORK",
           "DEFAULT_LEVELWISE_MIN_ROWS", "DEFAULT_LEVELWISE_MAX_BLOCK",
           "DEFAULT_LEVELWISE_MAX_RHS", "TUNABLE_THRESHOLDS"]

#: Valid values of :attr:`ReproConfig.blockops_backend`.
BLOCKOPS_BACKENDS = frozenset({"batched", "scipy_loop"})

#: Valid values of :attr:`ReproConfig.recurrence_mode`.
RECURRENCE_MODES = frozenset({"auto", "sequential", "levelwise"})

#: Valid values of :attr:`ReproConfig.comm_backend`.
COMM_BACKENDS = frozenset({"threads", "processes"})

# Documented default crossovers, measured on the reference x86 host
# (docs/KERNELS.md).  They are *defaults*, not gates: the solve hot path
# reads the live config fields below, which `repro.perfmodel.planner`
# overwrites with this host's tuned values (``apply_tuning``) and users
# may override directly via ``set_config`` / ``config_context``.

#: Default ``vector_solve_max_work``: the ``batched`` LU backend's
#: substitution stays vectorized while the per-block panel work
#: ``m * r`` is at or below this bound (conservative half of the
#: measured ``m * r ~ 1000`` crossover; see docs/KERNELS.md).
DEFAULT_VECTOR_SOLVE_MAX_WORK = 512

#: Default ``levelwise_min_rows``: ``recurrence_mode="auto"`` switches
#: to level-wise evaluation at this many transfer rows.
DEFAULT_LEVELWISE_MIN_ROWS = 64

#: Default ``levelwise_max_block``: ``auto`` stays sequential above
#: this block order.
DEFAULT_LEVELWISE_MAX_BLOCK = 16

#: Default ``levelwise_max_rhs``: ``auto`` keeps the vector kernels
#: sequential above this RHS panel width.
DEFAULT_LEVELWISE_MAX_RHS = 32

#: The config fields a tuning table may override, with their documented
#: defaults — the schema contract between :class:`ReproConfig` and
#: ``repro.perfmodel.planner``'s ``TuningTable.thresholds``.
TUNABLE_THRESHOLDS = {
    "vector_solve_max_work": DEFAULT_VECTOR_SOLVE_MAX_WORK,
    "levelwise_min_rows": DEFAULT_LEVELWISE_MIN_ROWS,
    "levelwise_max_block": DEFAULT_LEVELWISE_MAX_BLOCK,
    "levelwise_max_rhs": DEFAULT_LEVELWISE_MAX_RHS,
}


def _default_comm_backend() -> str:
    return os.environ.get("REPRO_COMM_BACKEND", "").strip() or "threads"


def _default_flightrec() -> bool:
    return os.environ.get("REPRO_FLIGHTREC", "").strip().lower() not in (
        "0", "off", "false", "no",
    )


@dataclasses.dataclass(frozen=True)
class ReproConfig:
    """Immutable snapshot of library-wide defaults.

    Attributes
    ----------
    dtype:
        Default floating dtype for generated workloads and factorizations.
    singularity_rcond:
        Reciprocal-condition threshold below which a block is treated as
        singular when it must be inverted.
    flop_counting:
        When ``True``, block linear-algebra kernels record their flop and
        byte counts in the active :class:`repro.util.flops.FlopCounter`.
        Costs a few percent of runtime; off by default.
    growth_warn_threshold:
        Transfer-product growth factor above which
        :class:`repro.exceptions.StabilityWarning` is emitted.
    blockops_backend:
        Implementation behind :class:`repro.linalg.blockops.BatchedLU`:
        ``"batched"`` (default) uses the pure-NumPy vectorized LU of
        :mod:`repro.linalg.batchlu`; ``"scipy_loop"`` keeps the
        one-``scipy`` -call-per-block reference path for
        cross-validation.  See docs/KERNELS.md.
    recurrence_mode:
        How the local transfer recurrence is evaluated
        (:mod:`repro.core.recurrence`): ``"sequential"`` loops one block
        row at a time, ``"levelwise"`` runs a batched Blelloch scan in
        ``O(log h)`` full-batch gemms (more flops, far fewer interpreter
        round-trips), ``"auto"`` (default) picks by chunk height and
        block size.  See docs/KERNELS.md.
    comm_backend:
        Execution backend for :func:`repro.comm.run_spmd`:
        ``"threads"`` (default; virtual-time reference semantics) or
        ``"processes"`` (true multi-core via :mod:`repro.comm.mp` with
        shared-memory payload transport).  The environment variable
        ``REPRO_COMM_BACKEND`` sets the default.  See docs/BACKENDS.md.
    vector_solve_max_work:
        Widest per-block panel work ``m * r`` the ``batched`` LU
        backend's vectorized substitution handles before
        :meth:`repro.linalg.blockops.BatchedLU.solve` hands each block
        to LAPACK ``getrs`` instead.  Default
        :data:`DEFAULT_VECTOR_SOLVE_MAX_WORK`; tuned per host by
        ``python -m repro.harness tune`` (docs/PLANNER.md).
    levelwise_min_rows / levelwise_max_block / levelwise_max_rhs:
        The ``recurrence_mode="auto"`` gates: level-wise evaluation is
        chosen iff the chunk has at least ``levelwise_min_rows``
        transfer rows, the block order is at most
        ``levelwise_max_block``, and (vector kernels only) the RHS
        panel is at most ``levelwise_max_rhs`` columns wide.  Defaults
        are the reference-host crossovers (docs/KERNELS.md); tuned per
        host by ``python -m repro.harness tune``.
    flightrec:
        Always-on per-rank flight recorder
        (:mod:`repro.obs.flightrec`): each rank keeps a bounded ring of
        compact comm/phase records, snapshotted into an incident bundle
        on failure (docs/INCIDENTS.md).  On by default (<3% gated
        overhead); ``REPRO_FLIGHTREC=0`` disables.
    flightrec_capacity:
        Ring slots per rank (the newest ``flightrec_capacity`` records
        survive to the bundle).  Minimum 8.
    incident_dir:
        Directory incident bundles are written to.  The
        ``REPRO_INCIDENT_DIR`` environment variable overrides it at
        capture time (``0``/``off``/``none`` disables capture).
    incident_retention:
        Maximum bundles kept on disk; older bundles are pruned by
        modification time after each capture.
    """

    dtype: np.dtype = dataclasses.field(default_factory=lambda: np.dtype(np.float64))
    singularity_rcond: float = 1e-13
    flop_counting: bool = False
    growth_warn_threshold: float = 1e8
    blockops_backend: str = "batched"
    recurrence_mode: str = "auto"
    comm_backend: str = dataclasses.field(default_factory=_default_comm_backend)
    vector_solve_max_work: int = DEFAULT_VECTOR_SOLVE_MAX_WORK
    levelwise_min_rows: int = DEFAULT_LEVELWISE_MIN_ROWS
    levelwise_max_block: int = DEFAULT_LEVELWISE_MAX_BLOCK
    levelwise_max_rhs: int = DEFAULT_LEVELWISE_MAX_RHS
    flightrec: bool = dataclasses.field(default_factory=_default_flightrec)
    flightrec_capacity: int = 2048
    incident_dir: str = "results/incidents"
    incident_retention: int = 32

    def __post_init__(self) -> None:
        dt = np.dtype(self.dtype)
        if dt.kind not in "fc":
            raise ConfigError(f"dtype must be floating or complex, got {dt}")
        object.__setattr__(self, "dtype", dt)
        if not (0.0 < self.singularity_rcond < 1.0):
            raise ConfigError(
                f"singularity_rcond must be in (0, 1), got {self.singularity_rcond}"
            )
        if self.growth_warn_threshold <= 1.0:
            raise ConfigError(
                "growth_warn_threshold must exceed 1.0, got "
                f"{self.growth_warn_threshold}"
            )
        if self.blockops_backend not in BLOCKOPS_BACKENDS:
            raise ConfigError(
                f"blockops_backend must be one of {sorted(BLOCKOPS_BACKENDS)}, "
                f"got {self.blockops_backend!r}"
            )
        if self.recurrence_mode not in RECURRENCE_MODES:
            raise ConfigError(
                f"recurrence_mode must be one of {sorted(RECURRENCE_MODES)}, "
                f"got {self.recurrence_mode!r}"
            )
        if self.comm_backend not in COMM_BACKENDS:
            raise ConfigError(
                f"comm_backend must be one of {sorted(COMM_BACKENDS)}, "
                f"got {self.comm_backend!r}"
            )
        for name in TUNABLE_THRESHOLDS:
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        cap = self.flightrec_capacity
        if not isinstance(cap, int) or isinstance(cap, bool) or cap < 8:
            raise ConfigError(
                f"flightrec_capacity must be an integer >= 8, got {cap!r}"
            )
        keep = self.incident_retention
        if not isinstance(keep, int) or isinstance(keep, bool) or keep < 1:
            raise ConfigError(
                f"incident_retention must be a positive integer, got {keep!r}"
            )
        if not isinstance(self.incident_dir, str) or not self.incident_dir:
            raise ConfigError(
                f"incident_dir must be a non-empty string, "
                f"got {self.incident_dir!r}"
            )


_state = threading.local()


def _current() -> ReproConfig:
    cfg = getattr(_state, "config", None)
    if cfg is None:
        cfg = ReproConfig()
        _state.config = cfg
    return cfg


def get_config() -> ReproConfig:
    """Return the configuration active on the calling thread."""
    return _current()


def set_config(**updates: object) -> ReproConfig:
    """Replace fields of the calling thread's configuration.

    Returns the new configuration.  Unknown field names raise
    :class:`~repro.exceptions.ConfigError`.
    """
    valid = {f.name for f in dataclasses.fields(ReproConfig)}
    unknown = set(updates) - valid
    if unknown:
        raise ConfigError(f"unknown config fields: {sorted(unknown)}")
    cfg = dataclasses.replace(_current(), **updates)  # type: ignore[arg-type]
    _state.config = cfg
    return cfg


def install_config(cfg: ReproConfig) -> None:
    """Install a configuration snapshot on the calling thread.

    Used by the SPMD runtime so simulated ranks (worker threads) inherit
    the launching thread's configuration.
    """
    if not isinstance(cfg, ReproConfig):
        raise ConfigError(f"expected ReproConfig, got {type(cfg).__name__}")
    _state.config = cfg


@contextmanager
def config_context(**updates: object) -> Iterator[ReproConfig]:
    """Context manager applying configuration updates on this thread only.

    >>> with config_context(flop_counting=True):
    ...     pass
    """
    previous = _current()
    try:
        yield set_config(**updates)
    finally:
        _state.config = previous
