"""Batched dense block operations with flop accounting.

All distributed solvers express their work in terms of a small set of
block kernels — batched matrix products, batched LU factor/solve — so
that (a) the NumPy implementations stay vectorized over the batch of
blocks a rank owns, and (b) the reconstructed complexity experiments can
compare *instrumented* flop counts against the paper's formulas (every
kernel calls :func:`repro.util.flops.record_flops` with its textbook
count).

Two interchangeable backends sit behind :class:`BatchedLU` (selected by
``repro.config``'s ``blockops_backend``, see docs/KERNELS.md):

``"batched"`` (default)
    The pure-NumPy vectorized LU of :mod:`repro.linalg.batchlu` —
    Python-loop length ``m`` (block order), every step a full-batch
    operation.
``"scipy_loop"``
    The seed's one-``scipy``-call-per-block reference path, retained
    for cross-validation; factors are bit-interchangeable (both store
    LAPACK-convention ``(lu, piv)``).

Either way the facade owns the shared contract: singularity checks
(``singularity_rcond``, non-finite detection, ``block_offset`` in
errors), flop accounting, kernel wall-time counters
(:func:`repro.obs.kernel_time`), and ``nbytes``/``copy()``.

Array conventions
-----------------
A *block batch* is an array of shape ``(n, m, m)``: ``n`` square blocks
of order ``m``.  A *vector batch* is ``(n, m, r)``: per-block dense
right-hand-side panels with ``r`` columns (``r`` = number of RHS, the
paper's ``R``).
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg

from ..config import (
    BLOCKOPS_BACKENDS,
    DEFAULT_VECTOR_SOLVE_MAX_WORK,
    get_config,
)
from ..exceptions import ConfigError, ShapeError, SingularBlockError
from ..obs.tracer import kernel_time
from ..util.flops import gemm_flops, lu_flops, lu_solve_flops, record_flops
from .batchlu import first_singular_block, lu_factor_batched, lu_solve_batched

__all__ = [
    "as_block_batch",
    "gemm",
    "gemm_add",
    "solve_blocks",
    "BatchedLU",
    "identity_blocks",
    "transpose_blocks",
]


#: Documented *default* of the width-aware substitution crossover: the
#: ``batched`` backend's :meth:`BatchedLU.solve` uses the vectorized
#: substitution of :mod:`repro.linalg.batchlu` while the per-block panel
#: work ``m * r`` stays at or below this bound.  Wider panels hand each
#: block to LAPACK ``getrs`` instead: the substitution's ``2m``
#: full-batch broadcast steps stream ``O(n m r)`` memory each, while a
#: per-block BLAS-3 solve on a large ``(m, r)`` panel amortizes its call
#: overhead.  The crossover measured on the reference x86 host is
#: ``m * r ~ 1000``; the shipped default sits at half that so hosts
#: with smaller caches never regret the vectorized path (see
#: docs/KERNELS.md).  The hot path reads the live
#: ``repro.config`` field ``vector_solve_max_work`` (this value is its
#: default), so per-host tuning (``python -m repro.harness tune``) and
#: ``config_context(vector_solve_max_work=...)`` both take effect
#: without touching this module.  Both backends store LAPACK-convention
#: factors, so the two substitutions are interchangeable per solve.
VECTOR_SOLVE_MAX_WORK = DEFAULT_VECTOR_SOLVE_MAX_WORK


def as_block_batch(a: np.ndarray, name: str = "array") -> np.ndarray:
    """Validate and return ``a`` as a ``(n, m, m)`` block batch."""
    a = np.asarray(a)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ShapeError(
            f"{name} must have shape (n, m, m), got {a.shape}"
        )
    return a


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched matrix product ``a @ b`` with flop accounting.

    Shapes broadcast like :func:`numpy.matmul`; the common cases here
    are ``(n,m,m) @ (n,m,m)`` and ``(n,m,m) @ (n,m,r)``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    with kernel_time("kernel.gemm"):
        out = np.matmul(a, b)
    if get_config().flop_counting:
        m, k = a.shape[-2], a.shape[-1]
        r = b.shape[-1]
        batch = int(np.prod(out.shape[:-2], dtype=np.int64)) if out.ndim > 2 else 1
        record_flops("gemm", batch * gemm_flops(m, k, r))
    return out


def gemm_add(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Fused ``a @ b + c`` (allocates the product, adds in place)."""
    out = gemm(a, b)
    out += c
    if get_config().flop_counting:
        record_flops("axpy", int(np.prod(out.shape, dtype=np.int64)))
    return out


def identity_blocks(n: int, m: int, dtype=None) -> np.ndarray:
    """``(n, m, m)`` batch of identity blocks."""
    dtype = dtype or get_config().dtype
    out = np.zeros((n, m, m), dtype=dtype)
    idx = np.arange(m)
    out[:, idx, idx] = 1
    return out


def transpose_blocks(a: np.ndarray) -> np.ndarray:
    """Blockwise transpose of a ``(n, m, m)`` batch."""
    return np.swapaxes(np.asarray(a), -1, -2)


def solve_blocks(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One-shot batched solve ``a[i] x[i] = b[i]`` via LAPACK ``gesv``.

    Prefer :class:`BatchedLU` when the same blocks will be solved
    against repeatedly (the whole point of the ARD factorization).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    try:
        out = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SingularBlockError(f"singular block in batched solve: {exc}") from exc
    if get_config().flop_counting:
        m = a.shape[-1]
        r = b.shape[-1] if b.ndim == a.ndim else 1
        batch = int(np.prod(a.shape[:-2], dtype=np.int64)) if a.ndim > 2 else 1
        record_flops("lu", batch * lu_flops(m))
        record_flops("trsm", batch * lu_solve_flops(m, r))
    return out


class BatchedLU:
    """LU factorizations of a batch of square blocks, reusable across
    solves.

    This is the storage that lets ARD charge the ``O(M^3)`` factor cost
    once and the ``O(M^2 R)`` solve cost per right-hand-side batch.

    Parameters
    ----------
    blocks:
        ``(n, m, m)`` batch to factor.
    check_singular:
        When ``True`` (default), raise
        :class:`~repro.exceptions.SingularBlockError` if any block's LU
        has a relative diagonal entry below the configured
        ``singularity_rcond``.
    block_offset:
        Global index of ``blocks[0]``; only used to report *which*
        global block was singular.
    backend:
        Override the configured ``blockops_backend`` for this instance
        (``"batched"`` or ``"scipy_loop"``).
    """

    __slots__ = ("n", "m", "dtype", "backend", "_lu", "_piv")

    def __init__(self, blocks: np.ndarray, *, check_singular: bool = True,
                 block_offset: int = 0, backend: str | None = None):
        blocks = as_block_batch(blocks, "blocks")
        self.n, self.m, _ = blocks.shape
        self.dtype = blocks.dtype
        cfg = get_config()
        self.backend = backend if backend is not None else cfg.blockops_backend
        if self.backend not in BLOCKOPS_BACKENDS:
            raise ConfigError(
                f"unknown blockops backend {self.backend!r}; expected one "
                f"of {sorted(BLOCKOPS_BACKENDS)}"
            )
        with kernel_time("kernel.lu"):
            if self.backend == "batched":
                self._lu, self._piv = lu_factor_batched(blocks)
            else:
                self._lu = np.empty_like(blocks)
                self._piv = np.empty((self.n, self.m), dtype=np.int32)
                for i in range(self.n):
                    with warnings.catch_warnings():
                        # The facade runs its own singularity check with
                        # a configurable threshold; scipy's warning is
                        # redundant.
                        warnings.simplefilter(
                            "ignore", scipy.linalg.LinAlgWarning
                        )
                        lu, piv = scipy.linalg.lu_factor(
                            blocks[i], check_finite=False
                        )
                    self._lu[i] = lu
                    self._piv[i] = piv
        if check_singular:
            self._raise_if_singular(cfg.singularity_rcond, block_offset)
        if cfg.flop_counting:
            record_flops("lu", self.n * lu_flops(self.m))

    def _raise_if_singular(self, rcond: float, block_offset: int) -> None:
        bad = first_singular_block(self._lu, rcond)
        if bad is None:
            return
        i, kind, ratio = bad
        if kind == "nonfinite":
            # Overflowed inputs produce NaN factors whose diagonal
            # comparisons would silently pass (NaN < x is False); fail
            # loudly instead.
            raise SingularBlockError(
                f"block {block_offset + i} contains non-finite "
                "entries (upstream overflow)",
                block_index=block_offset + i,
            )
        raise SingularBlockError(
            f"block {block_offset + i} is singular to working "
            f"precision (min |U_kk| / max |U_kk| = {ratio:.2e})",
            block_index=block_offset + i,
        )

    def solve(self, b: np.ndarray, transposed: bool = False) -> np.ndarray:
        """Solve ``blocks[i] x[i] = b[i]`` for all ``i``.

        ``b`` may be ``(n, m)`` or ``(n, m, r)``.  ``transposed`` solves
        with ``blocks[i].T`` instead.
        """
        b = np.asarray(b)
        if b.shape[0] != self.n or b.shape[1] != self.m:
            raise ShapeError(
                f"rhs has shape {b.shape}, expected leading ({self.n}, {self.m}, ...)"
            )
        trans = 1 if transposed else 0
        r = b.shape[2] if b.ndim == 3 else 1
        vectorized = (
            self.backend == "batched"
            and self.m * r <= get_config().vector_solve_max_work
        )
        with kernel_time("kernel.trsm"):
            if vectorized:
                out = lu_solve_batched(self._lu, self._piv, b, trans=trans)
            else:
                out = np.empty_like(
                    b, dtype=np.result_type(self.dtype, b.dtype)
                )
                for i in range(self.n):
                    out[i] = scipy.linalg.lu_solve(
                        (self._lu[i], self._piv[i]), b[i], trans=trans,
                        check_finite=False,
                    )
        if get_config().flop_counting:
            record_flops("trsm", self.n * lu_solve_flops(self.m, r))
        return out

    def solve_one(self, i: int, b: np.ndarray, transposed: bool = False) -> np.ndarray:
        """Solve against a single factored block ``i``.

        Both backends store LAPACK-convention ``(lu, piv)``, so the
        single-block path always goes through ``scipy.lu_solve``.
        """
        if not 0 <= i < self.n:
            raise ShapeError(f"block index {i} out of range [0, {self.n})")
        trans = 1 if transposed else 0
        with kernel_time("kernel.trsm"):
            out = scipy.linalg.lu_solve(
                (self._lu[i], self._piv[i]), np.asarray(b), trans=trans,
                check_finite=False,
            )
        if get_config().flop_counting:
            r = b.shape[1] if np.asarray(b).ndim == 2 else 1
            record_flops("trsm", lu_solve_flops(self.m, r))
        return out

    @property
    def nbytes(self) -> int:
        """On-wire size if shipped as a message payload."""
        return self._lu.nbytes + self._piv.nbytes

    def copy(self) -> "BatchedLU":
        dup = object.__new__(BatchedLU)
        dup.n, dup.m, dup.dtype = self.n, self.m, self.dtype
        dup.backend = self.backend
        dup._lu = self._lu.copy()
        dup._piv = self._piv.copy()
        return dup
