"""Matrix analysis utilities: sparse import and condition estimation.

``from_scipy_sparse`` adopts matrices from the wider ecosystem (any
``scipy.sparse`` matrix whose nonzeros fit the block tridiagonal band);
``estimate_condition`` estimates ``kappa_1(A)`` using a factorization's
solve — the standard LAPACK-style post-solve quality check, reported in
the same spirit as the library's transfer-growth diagnostics.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .blocktridiag import BlockTridiagonalMatrix

__all__ = ["from_scipy_sparse", "onenorm", "estimate_condition"]


def from_scipy_sparse(a, block_size: int) -> BlockTridiagonalMatrix:
    """Build a :class:`BlockTridiagonalMatrix` from a SciPy sparse matrix.

    The matrix order must be divisible by ``block_size`` and every
    nonzero must lie inside the block tridiagonal band, otherwise
    :class:`~repro.exceptions.ShapeError` is raised (nothing is silently
    dropped).
    """
    import scipy.sparse

    if not scipy.sparse.issparse(a):
        raise ShapeError(f"expected a scipy.sparse matrix, got {type(a).__name__}")
    a = a.tocoo()
    m = block_size
    if a.shape[0] != a.shape[1] or a.shape[0] % m:
        raise ShapeError(
            f"matrix must be square with order divisible by {m}, got {a.shape}"
        )
    n = a.shape[0] // m
    diag = np.zeros((n, m, m))
    lower = np.zeros((max(n - 1, 0), m, m))
    upper = np.zeros((max(n - 1, 0), m, m))
    if np.iscomplexobj(a.data):
        diag = diag.astype(np.complex128)
        lower = lower.astype(np.complex128)
        upper = upper.astype(np.complex128)
    for row, col, val in zip(a.row, a.col, a.data):
        bi, bj = row // m, col // m
        li, lj = row % m, col % m
        if bj == bi:
            diag[bi, li, lj] += val
        elif bj == bi - 1:
            lower[bj, li, lj] += val
        elif bj == bi + 1:
            upper[bi, li, lj] += val
        else:
            raise ShapeError(
                f"nonzero at ({row}, {col}) lies outside the block "
                f"tridiagonal band for block size {m}"
            )
    return BlockTridiagonalMatrix(
        lower if n > 1 else None, diag, upper if n > 1 else None, copy=False
    )


def onenorm(matrix: BlockTridiagonalMatrix) -> float:
    """Exact 1-norm (max column abs-sum) of a block tridiagonal matrix.

    Computed bandwise in ``O(N M^2)`` without materializing the matrix.
    """
    n, m = matrix.nblocks, matrix.block_size
    col_sums = np.zeros((n, m))
    col_sums += np.abs(matrix.diag).sum(axis=1)
    if n > 1:
        col_sums[:-1] += np.abs(matrix.lower).sum(axis=1)
        col_sums[1:] += np.abs(matrix.upper).sum(axis=1)
    return float(col_sums.max())


def estimate_condition(matrix: BlockTridiagonalMatrix, factorization,
                       iters: int = 5, seed: int = 0) -> float:
    """Estimate ``kappa_1(A) = ||A||_1 * ||A^{-1}||_1``.

    ``||A^{-1}||_1`` is estimated by Hager–Higham-style power iteration
    on ``A^{-1}`` using ``factorization.solve`` (any factorization of
    ``A``: Thomas, cyclic, ARD, SPIKE) and the transposed system via the
    transposed factorization of ``A.T``.  ``iters`` round trips give the
    customary order-of-magnitude estimate (a lower bound on the truth).
    """
    if iters < 1:
        raise ShapeError(f"iters must be >= 1, got {iters}")
    n, m = matrix.nblocks, matrix.block_size
    size = n * m
    from ..core.thomas import ThomasFactorization

    transposed = ThomasFactorization(matrix.transpose())
    # Hager's algorithm on B = A^{-1}: ||B||_1 = max_j ||B e_j||_1.
    x = np.full((size, 1), 1.0 / size, dtype=matrix.dtype)
    est = 0.0
    last_j = -1
    for _ in range(iters):
        y = np.asarray(factorization.solve(x)).reshape(size, 1)  # B x
        est = max(est, float(np.abs(y).sum()) / float(np.abs(x).sum()))
        xi = np.sign(np.where(y == 0, 1.0, y))
        z = np.asarray(transposed.solve(xi)).reshape(size)       # B^T xi
        j = int(np.argmax(np.abs(z)))
        if j == last_j:
            break
        last_j = j
        x = np.zeros((size, 1), dtype=matrix.dtype)
        x[j] = 1.0
    # One final column evaluation at the located extreme column.
    y = np.asarray(factorization.solve(x)).reshape(size, 1)
    est = max(est, float(np.abs(y).sum()) / float(np.abs(x).sum()))
    return est * onenorm(matrix)
