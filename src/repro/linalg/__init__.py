"""Block linear algebra substrate.

Provides the block tridiagonal matrix type, batched block kernels with
flop accounting, and independent reference solvers used as ground truth.
"""

from .analysis import estimate_condition, from_scipy_sparse, onenorm
from .batchlu import first_singular_block, lu_factor_batched, lu_solve_batched
from .blockops import (
    BatchedLU,
    as_block_batch,
    gemm,
    gemm_add,
    identity_blocks,
    solve_blocks,
    transpose_blocks,
)
from .blocktridiag import BlockTridiagonalMatrix, reshape_rhs, restore_rhs_shape
from .reference import banded_solve, dense_solve, sparse_solve

__all__ = [
    "estimate_condition",
    "from_scipy_sparse",
    "onenorm",
    "first_singular_block",
    "lu_factor_batched",
    "lu_solve_batched",
    "BatchedLU",
    "as_block_batch",
    "gemm",
    "gemm_add",
    "identity_blocks",
    "solve_blocks",
    "transpose_blocks",
    "BlockTridiagonalMatrix",
    "reshape_rhs",
    "restore_rhs_shape",
    "banded_solve",
    "dense_solve",
    "sparse_solve",
]
