"""Pure-NumPy batched LU with partial pivoting, vectorized over blocks.

The seed implementation of :class:`repro.linalg.blockops.BatchedLU`
factored and solved one block per ``scipy`` call, so a rank with ``n``
blocks paid ``n`` interpreter/LAPACK round-trips per kernel invocation.
This module restructures the same mathematics the way Terekhov's fast
block-tridiagonal solver (arXiv:1108.4181) and the communication-
avoiding triangular solves of Wicky et al. (arXiv:1612.01855) do:
*batch first* — every elimination/substitution step is one full-batch
NumPy operation over all ``n`` blocks, so the Python-level loop length
is the block order ``m`` (small, typically 2–32), not the batch size
``n`` (large, ``N/P``).

Conventions match LAPACK/scipy exactly so factors are interchangeable
with ``scipy.linalg.lu_factor`` output: ``lu`` packs unit-lower ``L``
below the diagonal of ``U``; ``piv`` is the 0-based row-interchange
vector (row ``k`` was swapped with row ``piv[k]`` at step ``k``), so
``A = P L U`` with ``P^T = S_{m-1} ... S_0``.

A zero pivot leaves its column unscaled (LAPACK ``info > 0`` behaviour)
so the caller's singularity scan — :func:`first_singular_block` — sees
the zero on ``U``'s diagonal instead of an ``inf`` cascade.

All functions are mathematics-only: flop accounting, kernel timing, and
error raising live in the :class:`~repro.linalg.blockops.BatchedLU`
facade so both backends share one contract.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lu_factor_batched",
    "lu_solve_batched",
    "first_singular_block",
    "pivot_growth_batched",
]


def lu_factor_batched(blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factor ``(n, m, m)`` blocks as ``P L U`` with partial pivoting.

    Returns ``(lu, piv)`` in scipy's ``lu_factor`` convention (see
    module docstring).  Vectorized over the batch axis: the Python loop
    runs ``m`` elimination steps, each a full-batch NumPy operation.
    """
    blocks = np.asarray(blocks)
    n, m, _ = blocks.shape
    lu = blocks.copy()
    piv = np.empty((n, m), dtype=np.int32)
    if n == 0 or m == 0:
        return lu, piv
    rows = np.arange(n)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for k in range(m):
            p = k + np.argmax(np.abs(lu[:, k:, k]), axis=1)
            piv[:, k] = p
            cur = lu[:, k, :].copy()
            lu[:, k, :] = lu[rows, p, :]
            lu[rows, p, :] = cur
            if k + 1 == m:
                break
            pivots = lu[:, k, k]
            inv = np.zeros_like(pivots)
            # Zero pivot: leave the column unscaled (LAPACK info>0 path)
            # so the singularity scan sees a clean zero on U's diagonal.
            np.divide(1.0, pivots, out=inv, where=(pivots != 0))
            lu[:, k + 1:, k] *= inv[:, None]
            lu[:, k + 1:, k + 1:] -= (
                lu[:, k + 1:, k, None] * lu[:, k, None, k + 1:]
            )
    return lu, piv


def _swap_rows(x: np.ndarray, piv: np.ndarray, reverse: bool) -> None:
    """Apply the recorded row interchanges to ``x`` in place.

    Forward order applies ``P^T`` (as during factorization); reverse
    order applies ``P``.
    """
    n, m = piv.shape
    rows = np.arange(n)
    steps = range(m - 1, -1, -1) if reverse else range(m)
    for k in steps:
        p = piv[:, k]
        cur = x[:, k].copy()
        x[:, k] = x[rows, p]
        x[rows, p] = cur


def lu_solve_batched(
    lu: np.ndarray, piv: np.ndarray, b: np.ndarray, trans: int = 0
) -> np.ndarray:
    """Solve ``A[i] x[i] = b[i]`` (or ``A[i].T`` with ``trans=1``).

    ``b`` is ``(n, m)`` or ``(n, m, r)``; the result has ``b``'s shape
    with dtype promoted against the factors.  Each substitution step is
    a full-batch operation, so the Python loop length is ``m``.
    """
    n, m, _ = lu.shape
    b = np.asarray(b)
    vec = b.ndim == 2
    x = b.astype(np.result_type(lu.dtype, b.dtype), copy=True)
    if vec:
        x = x[:, :, None]
    if n == 0 or m == 0:
        return x[:, :, 0] if vec else x
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if trans == 0:
            # A = P L U:  L U x = P^T b.
            _swap_rows(x, piv, reverse=False)
            for j in range(m - 1):  # L y = P^T b (unit lower)
                x[:, j + 1:] -= lu[:, j + 1:, j, None] * x[:, j, None, :]
            for j in range(m - 1, -1, -1):  # U x = y
                x[:, j] /= lu[:, j, j, None]
                if j:
                    x[:, :j] -= lu[:, :j, j, None] * x[:, j, None, :]
        else:
            # A^T = U^T L^T P^T:  solve U^T y = b, L^T w = y, x = P w.
            for j in range(m):  # U^T y = b (lower, non-unit diagonal)
                x[:, j] /= lu[:, j, j, None]
                if j + 1 < m:
                    x[:, j + 1:] -= lu[:, j, j + 1:, None] * x[:, j, None, :]
            for j in range(m - 1, 0, -1):  # L^T w = y (upper, unit)
                x[:, :j] -= lu[:, j, :j, None] * x[:, j, None, :]
            _swap_rows(x, piv, reverse=True)
    return x[:, :, 0] if vec else x


def pivot_growth_batched(lu: np.ndarray, original: np.ndarray) -> float:
    """Element-growth factor ``max_b max|U_b| / max|A_b|`` over a batch.

    ``lu`` is the packed output of :func:`lu_factor_batched` for the
    ``(n, m, m)`` blocks in ``original``; only the upper triangle
    (``U``, diagonal included) contributes to the numerator.  Growth
    near ``1`` means partial pivoting contained round-off; large values
    predict backward-error loss.  Returns ``0.0`` for empty batches and
    skips all-zero blocks (``max|A_b| == 0``) rather than dividing by
    zero.
    """
    lu = np.asarray(lu)
    original = np.asarray(original)
    if lu.size == 0:
        return 0.0
    n, m, _ = lu.shape
    upper = np.abs(np.triu(lu)).reshape(n, -1).max(axis=1)
    base = np.abs(original).reshape(n, -1).max(axis=1)
    ok = base > 0
    if not ok.any():
        return 0.0
    return float((upper[ok] / base[ok]).max())


def first_singular_block(
    lu: np.ndarray, rcond: float
) -> tuple[int, str, float] | None:
    """Scan factored blocks for the first non-finite or singular one.

    Returns ``None`` when every block is healthy, else
    ``(batch_index, kind, diag_ratio)`` where ``kind`` is
    ``"nonfinite"`` or ``"singular"`` — matching the per-block check
    order of the seed implementation (non-finite takes precedence, and
    the *lowest* offending batch index is reported).
    """
    n, m, _ = lu.shape
    if n == 0 or m == 0:
        return None
    nonfinite = ~np.isfinite(lu).all(axis=(1, 2))
    diag = np.abs(np.diagonal(lu, axis1=1, axis2=2))
    scale = diag.max(axis=1)
    dmin = diag.min(axis=1)
    with np.errstate(invalid="ignore"):
        singular = (scale == 0.0) | (dmin < rcond * scale)
    bad = nonfinite | singular
    if not bad.any():
        return None
    i = int(np.argmax(bad))
    if nonfinite[i]:
        return i, "nonfinite", float("nan")
    ratio = 0.0 if scale[i] == 0.0 else float(dmin[i] / scale[i])
    return i, "singular", ratio
