"""The block tridiagonal matrix type.

A block tridiagonal matrix with ``N`` block rows of block size ``M``
stores three batches:

- ``diag``:  ``(N, M, M)``   — diagonal blocks ``D_0 .. D_{N-1}``
- ``lower``: ``(N-1, M, M)`` — subdiagonal blocks ``L_1 .. L_{N-1}``
  (``lower[i]`` multiplies ``x_i`` in block row ``i+1``)
- ``upper``: ``(N-1, M, M)`` — superdiagonal blocks ``U_0 .. U_{N-2}``
  (``upper[i]`` multiplies ``x_{i+1}`` in block row ``i``)

so block row ``i`` of ``A x = d`` reads
``lower[i-1] x_{i-1} + diag[i] x_i + upper[i] x_{i+1} = d_i``.

Right-hand sides and solutions use shape ``(N, M)`` for a single vector
or ``(N, M, R)`` for ``R`` right-hand sides (the paper's multi-RHS
setting); flat ``(N*M,)`` / ``(N*M, R)`` layouts are accepted and
round-tripped by :meth:`BlockTridiagonalMatrix.matvec`.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

from ..config import get_config
from ..exceptions import ShapeError
from ..util.flops import gemm_flops, record_flops

__all__ = ["BlockTridiagonalMatrix", "reshape_rhs", "restore_rhs_shape"]


def reshape_rhs(b: np.ndarray, nblocks: int, block_size: int) -> tuple[np.ndarray, tuple]:
    """Normalize a right-hand side to ``(N, M, R)``.

    Returns the normalized array and the original shape (so callers can
    return solutions in the caller's layout via
    :func:`restore_rhs_shape`).  Accepted inputs: ``(N, M)``,
    ``(N, M, R)``, ``(N*M,)``, ``(N*M, R)``.
    """
    b = np.asarray(b)
    original = b.shape
    n, m = nblocks, block_size
    if b.shape == (n, m):
        return b[:, :, None], original
    if b.ndim == 3 and b.shape[:2] == (n, m):
        return b, original
    if b.shape == (n * m,):
        return b.reshape(n, m, 1), original
    if b.ndim == 2 and b.shape[0] == n * m:
        return b.reshape(n, m, b.shape[1]), original
    raise ShapeError(
        f"rhs shape {b.shape} incompatible with N={n} blocks of size M={m}"
    )


def restore_rhs_shape(x: np.ndarray, original: tuple) -> np.ndarray:
    """Inverse of :func:`reshape_rhs`: reshape ``(N, M, R)`` back."""
    return x.reshape(original)


class BlockTridiagonalMatrix:
    """Immutable-by-convention block tridiagonal matrix.

    Parameters
    ----------
    lower, diag, upper:
        Block batches as described in the module docstring.  ``lower``
        and ``upper`` may be ``None`` for ``N == 1``.
    copy:
        Copy the inputs (default) so later caller mutation cannot
        corrupt the matrix.
    """

    __slots__ = ("diag", "lower", "upper", "_fingerprint")

    def __init__(self, lower: np.ndarray | None, diag: np.ndarray,
                 upper: np.ndarray | None, *, copy: bool = True):
        diag = np.asarray(diag)
        if diag.ndim != 3 or diag.shape[1] != diag.shape[2]:
            raise ShapeError(f"diag must be (N, M, M), got {diag.shape}")
        n, m, _ = diag.shape
        if n == 0:
            raise ShapeError("matrix must have at least one block row")
        if lower is None or upper is None:
            if n != 1 or not (lower is None and upper is None):
                raise ShapeError(
                    "lower/upper may be omitted only for a single block row"
                )
            lower = np.empty((0, m, m), dtype=diag.dtype)
            upper = np.empty((0, m, m), dtype=diag.dtype)
        lower = np.asarray(lower)
        upper = np.asarray(upper)
        if lower.shape != (n - 1, m, m):
            raise ShapeError(
                f"lower must be ({n - 1}, {m}, {m}), got {lower.shape}"
            )
        if upper.shape != (n - 1, m, m):
            raise ShapeError(
                f"upper must be ({n - 1}, {m}, {m}), got {upper.shape}"
            )
        dtype = np.result_type(diag.dtype, lower.dtype, upper.dtype)
        if dtype.kind not in "fc":
            dtype = get_config().dtype
        self.diag = np.array(diag, dtype=dtype, copy=copy)
        self.lower = np.array(lower, dtype=dtype, copy=copy)
        self.upper = np.array(upper, dtype=dtype, copy=copy)
        self._fingerprint: str | None = None

    # -- shape / metadata --------------------------------------------------

    @property
    def nblocks(self) -> int:
        """Number of block rows ``N``."""
        return self.diag.shape[0]

    @property
    def block_size(self) -> int:
        """Block order ``M``."""
        return self.diag.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """Dense shape ``(N*M, N*M)``."""
        nm = self.nblocks * self.block_size
        return (nm, nm)

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the block storage."""
        return self.diag.dtype

    @property
    def nbytes(self) -> int:
        """Total bytes of the three block batches."""
        return self.diag.nbytes + self.lower.nbytes + self.upper.nbytes

    def fingerprint(self) -> str:
        """Stable content fingerprint of the matrix (hex digest).

        Hashes the structure (``N``, ``M``, dtype) and the raw bytes of
        all three block batches, so two matrices with equal contents
        fingerprint identically regardless of how they were built.  The
        digest is cached on first use — valid because the matrix is
        immutable by convention; callers who mutate the block arrays
        in place (outside the documented contract) get stale keys.
        Used by :mod:`repro.service` to key its factorization cache.
        """
        fp = self._fingerprint
        if fp is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(
                f"btm:{self.nblocks}:{self.block_size}:{self.dtype.str}"
                .encode()
            )
            for batch in (self.diag, self.lower, self.upper):
                h.update(np.ascontiguousarray(batch).data)
            fp = self._fingerprint = h.hexdigest()
        return fp

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(cls, a: np.ndarray, block_size: int) -> "BlockTridiagonalMatrix":
        """Extract the block tridiagonal part of a dense matrix.

        Raises :class:`~repro.exceptions.ShapeError` if ``a`` has
        nonzeros outside the block tridiagonal band (the matrix would
        not be represented faithfully).
        """
        a = np.asarray(a)
        m = block_size
        if a.ndim != 2 or a.shape[0] != a.shape[1] or a.shape[0] % m:
            raise ShapeError(
                f"dense input must be square with order divisible by {m}, "
                f"got {a.shape}"
            )
        n = a.shape[0] // m
        diag = np.empty((n, m, m), dtype=a.dtype)
        lower = np.empty((max(n - 1, 0), m, m), dtype=a.dtype)
        upper = np.empty((max(n - 1, 0), m, m), dtype=a.dtype)
        for i in range(n):
            diag[i] = a[i * m:(i + 1) * m, i * m:(i + 1) * m]
        for i in range(n - 1):
            lower[i] = a[(i + 1) * m:(i + 2) * m, i * m:(i + 1) * m]
            upper[i] = a[i * m:(i + 1) * m, (i + 1) * m:(i + 2) * m]
        mat = cls(lower if n > 1 else None, diag, upper if n > 1 else None, copy=False)
        off_band = a - mat.to_dense()
        if np.any(off_band != 0):
            raise ShapeError(
                "dense matrix has nonzeros outside the block tridiagonal band"
            )
        return mat

    @classmethod
    def block_identity(cls, nblocks: int, block_size: int, dtype=None
                       ) -> "BlockTridiagonalMatrix":
        """Identity matrix in block tridiagonal storage."""
        dtype = dtype or get_config().dtype
        diag = np.zeros((nblocks, block_size, block_size), dtype=dtype)
        idx = np.arange(block_size)
        diag[:, idx, idx] = 1
        zero = np.zeros((max(nblocks - 1, 0), block_size, block_size), dtype=dtype)
        return cls(zero if nblocks > 1 else None, diag,
                   zero.copy() if nblocks > 1 else None, copy=False)

    # -- element access ----------------------------------------------------

    def block(self, i: int, j: int) -> np.ndarray:
        """The ``(i, j)`` block (a zero block outside the band)."""
        n = self.nblocks
        if not (0 <= i < n and 0 <= j < n):
            raise ShapeError(f"block index ({i}, {j}) out of range for N={n}")
        if j == i:
            return self.diag[i]
        if j == i - 1:
            return self.lower[j]
        if j == i + 1:
            return self.upper[i]
        return np.zeros((self.block_size, self.block_size), dtype=self.dtype)

    def block_rows(self) -> Iterator[tuple[np.ndarray | None, np.ndarray, np.ndarray | None]]:
        """Yield ``(L_i, D_i, U_i)`` per block row (``None`` at the ends)."""
        n = self.nblocks
        for i in range(n):
            low = self.lower[i - 1] if i > 0 else None
            up = self.upper[i] if i < n - 1 else None
            yield low, self.diag[i], up

    # -- operations --------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for one or many vectors.

        Accepts the layouts described in the module docstring and
        returns the result in the same layout.
        """
        n, m = self.nblocks, self.block_size
        xb, original = reshape_rhs(x, n, m)
        y = np.matmul(self.diag, xb)
        if n > 1:
            y[1:] += np.matmul(self.lower, xb[:-1])
            y[:-1] += np.matmul(self.upper, xb[1:])
        if get_config().flop_counting:
            r = xb.shape[2]
            record_flops("gemm", (3 * n - 2) * gemm_flops(m, m, r))
        return restore_rhs_shape(y, original)

    def residual(self, x: np.ndarray, b: np.ndarray, relative: bool = True) -> float:
        """Max-norm residual ``||A x - b||`` (relative to ``||b||`` by
        default; absolute if ``b`` is all zeros)."""
        r = np.abs(np.asarray(self.matvec(x)) - np.asarray(b)).max()
        if relative:
            scale = np.abs(b).max()
            if scale > 0:
                return float(r / scale)
        return float(r)

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense matrix (for small reference tests)."""
        n, m = self.nblocks, self.block_size
        a = np.zeros((n * m, n * m), dtype=self.dtype)
        for i in range(n):
            a[i * m:(i + 1) * m, i * m:(i + 1) * m] = self.diag[i]
        for i in range(n - 1):
            a[(i + 1) * m:(i + 2) * m, i * m:(i + 1) * m] = self.lower[i]
            a[i * m:(i + 1) * m, (i + 1) * m:(i + 2) * m] = self.upper[i]
        return a

    def to_banded(self) -> tuple[np.ndarray, int]:
        """Export to LAPACK banded storage for ``scipy.linalg.solve_banded``.

        Returns ``(ab, bw)`` where ``bw = 2*M - 1`` is both the lower and
        upper bandwidth and ``ab`` has shape ``(2*bw + 1, N*M)`` in
        diagonal-ordered form.
        """
        n, m = self.nblocks, self.block_size
        bw = 2 * m - 1
        order = n * m
        dense = self.to_dense()
        ab = np.zeros((2 * bw + 1, order), dtype=self.dtype)
        for row in range(order):
            lo = max(0, row - bw)
            hi = min(order, row + bw + 1)
            for col in range(lo, hi):
                ab[bw + row - col, col] = dense[row, col]
        return ab, bw

    def to_sparse(self):
        """Export as ``scipy.sparse.csr_matrix`` (reference solves)."""
        import scipy.sparse

        return scipy.sparse.csr_matrix(self.to_dense())

    def transpose(self) -> "BlockTridiagonalMatrix":
        """Structural + blockwise transpose ``A.T``."""
        new_lower = np.swapaxes(self.upper, -1, -2)
        new_upper = np.swapaxes(self.lower, -1, -2)
        new_diag = np.swapaxes(self.diag, -1, -2)
        n = self.nblocks
        return BlockTridiagonalMatrix(
            new_lower if n > 1 else None, new_diag,
            new_upper if n > 1 else None, copy=True,
        )

    def copy(self) -> "BlockTridiagonalMatrix":
        """Deep copy of the matrix."""
        return BlockTridiagonalMatrix(
            self.lower if self.nblocks > 1 else None,
            self.diag,
            self.upper if self.nblocks > 1 else None,
            copy=True,
        )

    def allclose(self, other: "BlockTridiagonalMatrix", rtol: float = 1e-12,
                 atol: float = 0.0) -> bool:
        """Elementwise comparison of two matrices of equal structure."""
        if (self.nblocks, self.block_size) != (other.nblocks, other.block_size):
            return False
        return (
            np.allclose(self.diag, other.diag, rtol=rtol, atol=atol)
            and np.allclose(self.lower, other.lower, rtol=rtol, atol=atol)
            and np.allclose(self.upper, other.upper, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockTridiagonalMatrix(N={self.nblocks}, M={self.block_size}, "
            f"dtype={self.dtype})"
        )
