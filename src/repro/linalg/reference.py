"""Reference solvers used as ground truth in tests and benchmarks.

These are *not* part of the paper's algorithm inventory; they exist so
every distributed solver can be validated against independent,
well-trusted implementations (dense LAPACK and SciPy banded/sparse).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse.linalg

from ..exceptions import SingularBlockError
from .blocktridiag import BlockTridiagonalMatrix, reshape_rhs, restore_rhs_shape

__all__ = ["dense_solve", "banded_solve", "sparse_solve"]


def dense_solve(matrix: BlockTridiagonalMatrix, b: np.ndarray) -> np.ndarray:
    """Solve via dense LAPACK ``gesv`` on the materialized matrix.

    Quadratic memory in ``N*M``; intended for reference checks on small
    systems only.
    """
    n, m = matrix.nblocks, matrix.block_size
    bb, original = reshape_rhs(b, n, m)
    r = bb.shape[2]
    flat = bb.transpose(0, 1, 2).reshape(n * m, r)
    try:
        x = np.linalg.solve(matrix.to_dense(), flat)
    except np.linalg.LinAlgError as exc:
        raise SingularBlockError(f"dense reference solve failed: {exc}") from exc
    return restore_rhs_shape(x.reshape(n, m, r), original)


def banded_solve(matrix: BlockTridiagonalMatrix, b: np.ndarray) -> np.ndarray:
    """Solve via ``scipy.linalg.solve_banded`` (LAPACK ``gbsv``).

    Uses the block matrix's natural scalar bandwidth ``2M - 1``.
    """
    n, m = matrix.nblocks, matrix.block_size
    bb, original = reshape_rhs(b, n, m)
    r = bb.shape[2]
    ab, bw = matrix.to_banded()
    x = scipy.linalg.solve_banded((bw, bw), ab, bb.reshape(n * m, r))
    return restore_rhs_shape(x.reshape(n, m, r), original)


def sparse_solve(matrix: BlockTridiagonalMatrix, b: np.ndarray) -> np.ndarray:
    """Solve via SuperLU on the CSR export (``scipy.sparse.linalg.spsolve``)."""
    n, m = matrix.nblocks, matrix.block_size
    bb, original = reshape_rhs(b, n, m)
    r = bb.shape[2]
    x = scipy.sparse.linalg.spsolve(
        matrix.to_sparse().tocsc(), bb.reshape(n * m, r)
    )
    x = np.asarray(x).reshape(n * m, r)
    return restore_rhs_shape(x.reshape(n, m, r), original)
