"""Shared utilities: partitioning, flop accounting, seeding, tables."""

from .partition import BlockPartition, chunk_bounds, chunk_sizes, owner_of
from .flops import FlopCounter, current_counter, counting_flops, record_flops
from .seeding import rng_from_seed, spawn_rngs
from .tables import render_table

__all__ = [
    "BlockPartition",
    "chunk_bounds",
    "chunk_sizes",
    "owner_of",
    "FlopCounter",
    "current_counter",
    "counting_flops",
    "record_flops",
    "rng_from_seed",
    "spawn_rngs",
    "render_table",
]
