"""Floating-point operation accounting.

The reconstructed complexity experiments (recon-T1, recon-T2) compare the
paper's analytic operation counts against *instrumented* counts.  Kernels
in :mod:`repro.linalg.blockops` call :func:`record_flops` with their
textbook flop counts; a :class:`FlopCounter` installed via
:func:`counting_flops` accumulates them, keyed by kernel name.

Counters are per-thread so that each simulated rank (a thread in
:mod:`repro.comm.runtime`) accumulates its own tally.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from typing import Iterator

__all__ = ["FlopCounter", "current_counter", "counting_flops", "record_flops",
           "gemm_flops", "lu_flops", "lu_solve_flops"]


class FlopCounter:
    """Accumulates flop counts keyed by kernel name.

    Attributes
    ----------
    by_kernel:
        ``Counter`` mapping kernel name (e.g. ``"gemm"``) to flops.
    """

    __slots__ = ("by_kernel",)

    def __init__(self) -> None:
        self.by_kernel: Counter[str] = Counter()

    @property
    def total(self) -> int:
        """Total flops recorded across all kernels."""
        return sum(self.by_kernel.values())

    def add(self, kernel: str, flops: int) -> None:
        self.by_kernel[kernel] += int(flops)

    def merge(self, other: "FlopCounter") -> None:
        """Fold another counter's tallies into this one."""
        self.by_kernel.update(other.by_kernel)

    def snapshot(self) -> dict[str, int]:
        return dict(self.by_kernel)

    def reset(self) -> None:
        self.by_kernel.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlopCounter(total={self.total}, kernels={dict(self.by_kernel)})"


_state = threading.local()


def current_counter() -> FlopCounter | None:
    """The counter active on this thread, or ``None``."""
    return getattr(_state, "counter", None)


def _set_counter(counter: FlopCounter | None) -> None:
    _state.counter = counter


@contextmanager
def counting_flops(counter: FlopCounter | None = None) -> Iterator[FlopCounter]:
    """Install ``counter`` (a fresh one by default) on this thread.

    >>> with counting_flops() as fc:
    ...     record_flops("gemm", 100)
    >>> fc.total
    100
    """
    if counter is None:
        counter = FlopCounter()
    previous = current_counter()
    _set_counter(counter)
    try:
        yield counter
    finally:
        _set_counter(previous)


def record_flops(kernel: str, flops: int) -> None:
    """Record ``flops`` for ``kernel`` on the active counter, if any.

    A no-op when no counter is installed, so instrumented kernels pay
    only an attribute lookup in the common case.
    """
    counter = current_counter()
    if counter is not None:
        counter.add(kernel, flops)


def gemm_flops(m: int, k: int, n: int) -> int:
    """Flops for a dense ``(m,k) @ (k,n)`` multiply-accumulate."""
    return 2 * m * k * n


def lu_flops(m: int) -> int:
    """Flops for LU factorization of an ``m x m`` block (2/3 m^3)."""
    return (2 * m * m * m) // 3


def lu_solve_flops(m: int, nrhs: int) -> int:
    """Flops for forward+back substitution with ``nrhs`` columns."""
    return 2 * m * m * nrhs
