"""Block-row partitioning of a length-``n`` sequence across ``p`` ranks.

All distributed solvers in this library assign each rank a contiguous
chunk of block rows.  The convention is the standard balanced one: the
first ``n % p`` ranks receive ``ceil(n/p)`` rows and the rest receive
``floor(n/p)``.  Ranks may own zero rows when ``p > n``; every algorithm
in :mod:`repro.core` tolerates empty chunks.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence

from ..exceptions import ShapeError

__all__ = ["chunk_sizes", "chunk_bounds", "owner_of", "BlockPartition"]


def chunk_sizes(n: int, p: int) -> list[int]:
    """Sizes of the ``p`` contiguous chunks of ``n`` items.

    >>> chunk_sizes(10, 3)
    [4, 3, 3]
    """
    if n < 0:
        raise ShapeError(f"n must be non-negative, got {n}")
    if p <= 0:
        raise ShapeError(f"p must be positive, got {p}")
    base, extra = divmod(n, p)
    return [base + (1 if r < extra else 0) for r in range(p)]


def chunk_bounds(n: int, p: int, rank: int) -> tuple[int, int]:
    """Half-open interval ``[lo, hi)`` of items owned by ``rank``.

    >>> chunk_bounds(10, 3, 1)
    (4, 7)
    """
    if not 0 <= rank < p:
        raise ShapeError(f"rank {rank} out of range for p={p}")
    base, extra = divmod(n, p)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def owner_of(n: int, p: int, index: int) -> int:
    """Rank owning global item ``index`` under the balanced partition.

    >>> owner_of(10, 3, 6)
    1
    """
    if not 0 <= index < n:
        raise ShapeError(f"index {index} out of range for n={n}")
    base, extra = divmod(n, p)
    # First `extra` chunks have size base+1 and cover [0, extra*(base+1)).
    pivot = extra * (base + 1)
    if index < pivot:
        return index // (base + 1)
    if base == 0:
        # All items live in the first `extra` chunks; unreachable here
        # because index >= pivot == n.  Defensive only.
        raise ShapeError(f"index {index} beyond populated chunks")
    return extra + (index - pivot) // base


@dataclasses.dataclass(frozen=True)
class BlockPartition:
    """Balanced contiguous partition of ``nblocks`` block rows over
    ``nranks`` ranks.

    Instances are cheap value objects; solvers create one per call.

    >>> part = BlockPartition(nblocks=10, nranks=3)
    >>> part.bounds(0), part.size(2)
    ((0, 4), 3)
    """

    nblocks: int
    nranks: int

    def __post_init__(self) -> None:
        if self.nblocks < 0:
            raise ShapeError(f"nblocks must be non-negative, got {self.nblocks}")
        if self.nranks <= 0:
            raise ShapeError(f"nranks must be positive, got {self.nranks}")

    def bounds(self, rank: int) -> tuple[int, int]:
        """Half-open global index range owned by ``rank``."""
        return chunk_bounds(self.nblocks, self.nranks, rank)

    def size(self, rank: int) -> int:
        lo, hi = self.bounds(rank)
        return hi - lo

    def sizes(self) -> list[int]:
        return chunk_sizes(self.nblocks, self.nranks)

    def owner(self, index: int) -> int:
        """Rank owning global block row ``index``."""
        return owner_of(self.nblocks, self.nranks, index)

    def local_index(self, index: int) -> tuple[int, int]:
        """Map a global index to ``(rank, local_index)``."""
        rank = self.owner(index)
        lo, _ = self.bounds(rank)
        return rank, index - lo

    def nonempty_ranks(self) -> list[int]:
        """Ranks that own at least one block row, in order."""
        return [r for r in range(self.nranks) if self.size(r) > 0]

    def last_nonempty_rank(self) -> int:
        """Highest rank owning at least one block row.

        Raises :class:`~repro.exceptions.ShapeError` when ``nblocks == 0``.
        """
        ranks = self.nonempty_ranks()
        if not ranks:
            raise ShapeError("partition has no populated ranks (nblocks == 0)")
        return ranks[-1]

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Iterate over per-rank ``(lo, hi)`` bounds."""
        for rank in range(self.nranks):
            yield self.bounds(rank)

    def scatter(self, items: Sequence) -> list:
        """Split ``items`` (length ``nblocks``) into per-rank lists."""
        if len(items) != self.nblocks:
            raise ShapeError(
                f"expected {self.nblocks} items, got {len(items)}"
            )
        return [list(items[lo:hi]) for lo, hi in self]
