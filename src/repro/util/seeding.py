"""Deterministic random-number management.

Every stochastic component of the library (workload generators, property
tests, benchmark harness) accepts either an integer seed or an existing
:class:`numpy.random.Generator`.  These helpers normalize the two and
derive independent child streams for parallel contexts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_from_seed", "spawn_rngs"]

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def rng_from_seed(seed=None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so callers can share one).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    Used to give each simulated rank its own stream so results do not
    depend on rank execution order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
