"""Plain-text table rendering for the experiment harness.

The benchmark harness reproduces the paper's tables/figures as rows of
numbers; this module renders them as aligned ASCII tables (and CSV) so
benchmark output is readable in a terminal and diffable in CI.
"""

from __future__ import annotations

import io
from typing import Any, Iterable, Sequence

__all__ = ["render_table", "render_csv", "format_value"]


def format_value(value: Any, float_fmt: str = "{:.4g}") -> str:
    """Format one cell: floats via ``float_fmt``, others via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_fmt: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    str_rows = [[format_value(v, float_fmt) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in str_rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip() + "\n")
    return out.getvalue().rstrip("\n")


def render_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as minimal CSV (no quoting; cells must not contain commas)."""
    lines = [",".join(headers)]
    for row in rows:
        cells = [format_value(v, "{:.10g}") for v in row]
        for cell in cells:
            if "," in cell:
                raise ValueError(f"cell contains comma: {cell!r}")
        lines.append(",".join(cells))
    return "\n".join(lines)
