"""Semigroup/monoid protocol for prefix computations.

Recursive doubling is a parallel prefix (scan) over an associative
operation; this module gives the scan framework a tiny algebraic
vocabulary: a :class:`Monoid` bundles the binary operation with its
identity, and :func:`check_associative` provides the property-test hook
used by the test suite.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence

__all__ = ["Monoid", "check_associative"]


@dataclasses.dataclass(frozen=True)
class Monoid:
    """An associative binary operation with identity.

    Attributes
    ----------
    op:
        Binary operation ``op(earlier, later)``.  *Order matters*: scans
        in this library always combine left-to-right, with the first
        argument covering earlier indices.
    identity:
        Two-sided identity element, or a zero-argument factory when the
        identity must be freshly allocated per use (pass
        ``identity_factory`` instead in that case).
    equal:
        Equality predicate used by tests; defaults to ``==``.
    """

    op: Callable[[Any, Any], Any]
    identity: Any = None
    equal: Callable[[Any, Any], bool] = dataclasses.field(
        default=lambda a, b: bool(a == b)
    )

    def fold(self, items: Sequence[Any]) -> Any:
        """Left fold of ``items``; identity for an empty sequence."""
        if not items:
            return self.identity
        acc = items[0]
        for item in items[1:]:
            acc = self.op(acc, item)
        return acc


def check_associative(
    op: Callable[[Any, Any], Any],
    samples: Sequence[Any],
    equal: Callable[[Any, Any], bool] | None = None,
) -> None:
    """Assert ``op`` is associative over all ordered triples of ``samples``.

    Raises ``AssertionError`` naming the offending triple.  Intended for
    tests (cubic in ``len(samples)``).
    """
    eq = equal or (lambda a, b: bool(a == b))
    for i, a in enumerate(samples):
        for j, b in enumerate(samples):
            for k, c in enumerate(samples):
                left = op(op(a, b), c)
                right = op(a, op(b, c))
                if not eq(left, right):
                    raise AssertionError(
                        f"op not associative on samples ({i}, {j}, {k}): "
                        f"{left!r} != {right!r}"
                    )
