"""Parallel prefix (scan) framework over semigroups."""

from .affine import AffinePair, affine_compose
from .batched import AffineLevels
from .scan import (
    DIST_SCANS,
    dist_scan_blelloch,
    dist_scan_kogge_stone,
    dist_scan_pipeline,
    seq_exclusive_scan,
    seq_inclusive_scan,
)
from .semigroup import Monoid, check_associative

__all__ = [
    "AffinePair",
    "affine_compose",
    "AffineLevels",
    "Monoid",
    "check_associative",
    "DIST_SCANS",
    "dist_scan_blelloch",
    "dist_scan_kogge_stone",
    "dist_scan_pipeline",
    "seq_exclusive_scan",
    "seq_inclusive_scan",
]
