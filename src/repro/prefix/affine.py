"""The affine-map semigroup at the heart of recursive doubling.

A block tridiagonal solve becomes a prefix computation over affine maps
``s -> A s + b`` (see DESIGN.md): composing the maps of consecutive
block rows is associative, so prefixes parallelize.  The key structural
fact the *accelerated* algorithm exploits is visible in the composition
rule

``(later) ∘ (earlier) = (A_l A_e,  A_l b_e + b_l)``:

the matrix part composes with a matrix–matrix product — ``O(k^3)`` —
while the vector part needs only matrix–vector work — ``O(k^2 r)`` —
and the matrix part never depends on ``b``.  ARD therefore computes the
matrix prefixes once and replays only the vector parts per RHS batch.

``b`` is a ``(k, r)`` panel: ``r`` right-hand sides are carried through
one composition at once.  ``r = 0`` is valid and gives a matrix-only
pair (used by the ARD factor phase).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import gemm

__all__ = ["AffinePair", "affine_compose"]


class AffinePair:
    """One element of the affine-map semigroup: ``s -> A s + b``.

    Attributes
    ----------
    a:
        ``(k, k)`` matrix part.
    b:
        ``(k, r)`` vector-panel part (``r`` may be 0).
    """

    __slots__ = ("a", "b")

    def __init__(self, a: np.ndarray, b: np.ndarray, *, validate: bool = True):
        if validate:
            a = np.asarray(a)
            b = np.asarray(b)
            if a.ndim != 2 or a.shape[0] != a.shape[1]:
                raise ShapeError(f"matrix part must be square, got {a.shape}")
            if b.ndim != 2 or b.shape[0] != a.shape[0]:
                raise ShapeError(
                    f"vector part must be ({a.shape[0]}, r), got {b.shape}"
                )
        self.a = a
        self.b = b

    @property
    def dim(self) -> int:
        """State dimension ``k``."""
        return self.a.shape[0]

    @property
    def width(self) -> int:
        """Number of carried right-hand sides ``r``."""
        return self.b.shape[1]

    @property
    def nbytes(self) -> int:
        """On-wire payload size (drives the modelled message cost)."""
        return self.a.nbytes + self.b.nbytes

    @classmethod
    def identity(cls, dim: int, width: int = 0, dtype=np.float64) -> "AffinePair":
        """The identity map ``s -> s`` (with a zero ``(dim, width)`` panel)."""
        return cls(
            np.eye(dim, dtype=dtype),
            np.zeros((dim, width), dtype=dtype),
            validate=False,
        )

    def compose_after(self, earlier: "AffinePair") -> "AffinePair":
        """The map "``self`` applied after ``earlier``".

        ``(self ∘ earlier)(s) = self.a @ (earlier.a @ s + earlier.b) + self.b``.
        """
        if earlier.dim != self.dim:
            raise ShapeError(
                f"cannot compose dims {earlier.dim} and {self.dim}"
            )
        if earlier.width != self.width:
            raise ShapeError(
                f"cannot compose widths {earlier.width} and {self.width}"
            )
        new_a = gemm(self.a, earlier.a)
        new_b = gemm(self.a, earlier.b)
        new_b += self.b
        return AffinePair(new_a, new_b, validate=False)

    def apply(self, s: np.ndarray) -> np.ndarray:
        """Evaluate the map at state ``s``.

        ``s`` may be ``(k,)`` (requires ``width <= 1``) or ``(k, r)``
        with ``r == width``.  A width-0 pair applies its matrix only.
        """
        s = np.asarray(s)
        out = gemm(self.a, s)
        if self.width == 0:
            return out
        if s.ndim == 1:
            if self.width != 1:
                raise ShapeError(
                    f"vector state needs width <= 1, pair has width {self.width}"
                )
            return out + self.b[:, 0]
        if s.shape[1] != self.width:
            raise ShapeError(
                f"state has {s.shape[1]} columns, pair carries {self.width}"
            )
        return out + self.b

    def copy(self) -> "AffinePair":
        return AffinePair(self.a.copy(), self.b.copy(), validate=False)

    def allclose(self, other: "AffinePair", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        return (
            self.a.shape == other.a.shape
            and self.b.shape == other.b.shape
            and bool(np.allclose(self.a, other.a, rtol=rtol, atol=atol))
            and bool(np.allclose(self.b, other.b, rtol=rtol, atol=atol))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AffinePair(dim={self.dim}, width={self.width})"


def affine_compose(earlier: AffinePair, later: AffinePair) -> AffinePair:
    """Scan operator: combine ``earlier`` (lower indices) with ``later``.

    This is the associative operation recursive doubling scans over;
    argument order follows the library's left-to-right scan convention.
    """
    return later.compose_after(earlier)
