"""Sequential and distributed prefix (scan) algorithms.

Three distributed schedules are provided so the scan-algorithm ablation
(experiment abl-A1) can compare them on identical payloads:

``dist_scan_kogge_stone``
    The recursive-doubling schedule the paper builds on:
    ``ceil(log2 P)`` rounds, every rank active every round.
``dist_scan_blelloch``
    Work-efficient two-sweep tree scan: ``2 log2 P`` rounds but half
    the combines; requires a power-of-two rank count and an identity.
``dist_scan_pipeline``
    The trivial O(P)-depth baseline: each rank waits for its left
    neighbour's prefix.

All return the *inclusive* prefix on every rank and combine strictly
left-to-right, so non-commutative operations (like affine-map
composition) are safe.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TYPE_CHECKING

from ..exceptions import ShapeError

if TYPE_CHECKING:  # pragma: no cover
    from ..comm.communicator import Communicator

__all__ = [
    "seq_inclusive_scan",
    "seq_exclusive_scan",
    "dist_scan_kogge_stone",
    "dist_scan_blelloch",
    "dist_scan_blelloch_affine",
    "dist_scan_pipeline",
    "DIST_SCANS",
]

_TAG_KS = 101
_TAG_BL_UP = 102
_TAG_BL_DOWN = 103
_TAG_PIPE = 104


def seq_inclusive_scan(items: Sequence[Any], op: Callable[[Any, Any], Any]) -> list[Any]:
    """Inclusive prefixes of ``items`` under ``op`` (left-to-right)."""
    out: list[Any] = []
    acc = None
    for i, item in enumerate(items):
        acc = item if i == 0 else op(acc, item)
        out.append(acc)
    return out


def seq_exclusive_scan(
    items: Sequence[Any], op: Callable[[Any, Any], Any], identity: Any
) -> list[Any]:
    """Exclusive prefixes: ``out[i] = op(items[0], ..., items[i-1])``,
    with ``out[0] = identity``."""
    out: list[Any] = []
    acc = identity
    for item in items:
        out.append(acc)
        acc = op(acc, item)
    return out


def dist_scan_kogge_stone(
    comm: "Communicator", value: Any, op: Callable[[Any, Any], Any]
) -> Any:
    """Recursive-doubling (Kogge–Stone) inclusive scan over ranks."""
    size, rank = comm.size, comm.rank
    acc = value
    dist = 1
    while dist < size:
        if rank + dist < size:
            comm.send(acc, rank + dist, _TAG_KS)
        if rank - dist >= 0:
            left = comm.recv(rank - dist, _TAG_KS)
            acc = op(left, acc)
        dist <<= 1
    return acc


def dist_scan_blelloch(
    comm: "Communicator", value: Any, op: Callable[[Any, Any], Any], identity: Any
) -> Any:
    """Blelloch work-efficient scan (up-sweep + down-sweep).

    Requires ``comm.size`` to be a power of two.  Computes the exclusive
    scan internally and returns the inclusive prefix
    ``op(exclusive, value)``, so ``identity`` must be a two-sided
    identity for ``op``.
    """
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        raise ShapeError(f"Blelloch scan needs power-of-two ranks, got {size}")
    if size == 1:
        return value

    # Up-sweep: reduction tree.  At level `dist`, rank r with
    # r & (2*dist - 1) == 2*dist - 1 is the parent; its left child
    # (rank r - dist) sends its subtree total.  Parents cache the left
    # totals per level — the down-sweep needs them.
    acc = value
    left_totals: dict[int, Any] = {}
    dist = 1
    while dist < size:
        low = rank & (2 * dist - 1)
        if low == 2 * dist - 1:
            left = comm.recv(rank - dist, _TAG_BL_UP)
            left_totals[dist] = left
            acc = op(left, acc)
        elif low == dist - 1:
            comm.send(acc, rank + dist, _TAG_BL_UP)
        dist <<= 1

    # Down-sweep: the root's exclusive prefix is the identity.  A parent
    # passes its carried prefix to its left child unchanged and extends
    # its own by the left subtree's total.
    carried = identity if rank == size - 1 else None
    dist = size // 2
    while dist >= 1:
        low = rank & (2 * dist - 1)
        if low == 2 * dist - 1:
            comm.send(carried, rank - dist, _TAG_BL_DOWN)
            carried = op(carried, left_totals[dist])
        elif low == dist - 1:
            carried = comm.recv(rank + dist, _TAG_BL_DOWN)
        dist >>= 1
    return op(carried, value)


def dist_scan_pipeline(
    comm: "Communicator", value: Any, op: Callable[[Any, Any], Any]
) -> Any:
    """Linear-depth pipeline scan: rank ``r`` waits for rank ``r-1``.

    The O(P) baseline against which recursive doubling's O(log P) win
    is measured in experiment abl-A1.
    """
    size, rank = comm.size, comm.rank
    acc = value
    if rank > 0:
        left = comm.recv(rank - 1, _TAG_PIPE)
        acc = op(left, acc)
    if rank + 1 < size:
        comm.send(acc, rank + 1, _TAG_PIPE)
    return acc


def dist_scan_blelloch_affine(
    comm: "Communicator", value: Any, op: Callable[[Any, Any], Any]
) -> Any:
    """Blelloch scan over :class:`~repro.prefix.affine.AffinePair`
    values, deriving the identity from the payload's shape.

    Adapts :func:`dist_scan_blelloch` to the two-argument
    ``(comm, value, op)`` signature shared by every :data:`DIST_SCANS`
    entry, so the scan-algorithm ablation (abl-A1) can select all
    schedules by name.  Inherits the power-of-two rank requirement.
    """
    from .affine import AffinePair  # deferred: keep scan.py payload-agnostic

    if not isinstance(value, AffinePair):
        raise ShapeError(
            "dist_scan_blelloch_affine scans AffinePair values; for other "
            f"payloads call dist_scan_blelloch with an explicit identity "
            f"(got {type(value).__name__})"
        )
    identity = AffinePair.identity(value.dim, value.width, dtype=value.a.dtype)
    return dist_scan_blelloch(comm, value, op, identity)


DIST_SCANS = {
    "kogge_stone": dist_scan_kogge_stone,
    "pipeline": dist_scan_pipeline,
    "blelloch": dist_scan_blelloch_affine,
}
