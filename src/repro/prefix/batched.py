"""Array-stacked Blelloch scan over the affine-map semigroup.

:mod:`repro.core.recurrence` evaluates the chunk-local recurrence
``s_{j+1} = A_j s_j + b_j`` either one row at a time (``h`` interpreter
round-trips) or *level-wise* through this module: the ``h`` transfer
matrices are stacked as one ``(h, 2M, 2M)`` array and combined with a
work-efficient Blelloch scan whose every step is a full-batch ``gemm``
— ``O(log h)`` NumPy calls instead of ``O(h)``.

The ARD split survives intact: :class:`AffineLevels` precomputes the
scan's *matrix* tree once (cacheable on the factorization, like the
matrix prefixes of the distributed scan), and per right-hand-side batch
only the *vector* parts are replayed through the cached tree.  The
replay costs ~4x the sequential vector flops (each step works on
``(2M, 2M)`` composites instead of two ``(M, M)`` blocks) but runs in
``~2 log2 h`` batched gemms — the flops-vs-dispatch trade quantified in
docs/KERNELS.md.

Composition convention matches :mod:`repro.prefix.affine`: position
order is time order, so combining positions ``i < j`` forms
``later ∘ earlier`` = ``(A_j A_i, A_j b_i + b_j)``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..linalg.blockops import gemm

__all__ = ["AffineLevels"]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class AffineLevels:
    """Cached Blelloch level tree over stacked affine-map matrices.

    Built once from the ``(h, k, k)`` matrix parts (the ``O(h k^3)``
    work); the vector-only entry points then replay the tree's up- and
    down-sweeps with batched matrix–vector panels, never touching a
    matrix–matrix product again.

    The stack is padded to the next power of two with identity maps
    (appended *after* the real elements, so every prefix of the real
    range is unaffected).
    """

    __slots__ = ("h", "dim", "dtype", "n2", "_am", "_up_pre")

    def __init__(self, mats: np.ndarray):
        mats = np.asarray(mats)
        if mats.ndim != 3 or mats.shape[1] != mats.shape[2]:
            raise ShapeError(
                f"matrix stack must be (h, k, k), got {mats.shape}"
            )
        h, k, _ = mats.shape
        self.h = h
        self.dim = k
        self.dtype = mats.dtype
        self.n2 = n2 = _next_pow2(max(h, 1))
        am = np.zeros((n2, k, k), dtype=mats.dtype)
        am[:h] = mats
        idx = np.arange(k)
        am[h:, idx, idx] = 1.0
        # Up-sweep: after level d, position (j*2^{d+1} - 1) holds its
        # subtree's total composition.  The pre-combine right-node
        # matrices are kept per level — the vector replay needs them
        # (b_right' = A_right_pre @ b_left + b_right).
        self._up_pre: list[np.ndarray] = []
        step = 2
        while step <= n2:
            left = slice(step // 2 - 1, None, step)
            right = slice(step - 1, None, step)
            pre = am[right].copy()
            self._up_pre.append(pre)
            am[right] = gemm(pre, am[left])
            step <<= 1
        self._am = am

    @property
    def total_matrix(self) -> np.ndarray:
        """Matrix part of the full composition ``A_{h-1} ... A_0``."""
        return self._am[-1]

    @property
    def nbytes(self) -> int:
        return self._am.nbytes + sum(p.nbytes for p in self._up_pre)

    def _padded_vectors(self, vecs: np.ndarray) -> np.ndarray:
        vecs = np.asarray(vecs)
        if (
            vecs.ndim != 3
            or vecs.shape[0] != self.h
            or vecs.shape[1] != self.dim
        ):
            raise ShapeError(
                f"vector stack must be ({self.h}, {self.dim}, r), "
                f"got {vecs.shape}"
            )
        vb = np.zeros(
            (self.n2, self.dim, vecs.shape[2]),
            dtype=np.result_type(self.dtype, vecs.dtype),
        )
        vb[: self.h] = vecs
        return vb

    def _up_sweep_vectors(self, vb: np.ndarray) -> np.ndarray:
        for d, pre in enumerate(self._up_pre):
            step = 2 << d
            left = slice(step // 2 - 1, None, step)
            right = slice(step - 1, None, step)
            vb[right] = gemm(pre, vb[left]) + vb[right]
        return vb

    def reduce_vectors(self, vecs: np.ndarray) -> np.ndarray:
        """Vector part of the full composition, as ``(k, r)``.

        Equals the state reached from ``s = 0`` by running the
        recurrence across all ``h`` maps — one up-sweep of ``log2 h``
        batched gemms.
        """
        return self._up_sweep_vectors(self._padded_vectors(vecs))[-1]

    def exclusive_states(
        self, vecs: np.ndarray, entry: np.ndarray
    ) -> np.ndarray:
        """All intermediate states ``s_0 .. s_{h-1}``, as ``(h, k, r)``.

        ``out[j] = A_{j-1}(... A_0(entry) ...)`` — the exclusive affine
        prefix applied to ``entry``.  The entry state is folded into
        element 0 (``b_0' = A_0 @ entry + b_0``) so the scan's exclusive
        vector outputs *are* the states, with no extra inclusive pass;
        ``out[0]`` is ``entry`` itself.
        """
        entry = np.asarray(entry)
        vb = self._padded_vectors(vecs)
        if self.h:
            # _am[0] is never written by the sweeps: it still holds A_0.
            vb[0] = gemm(self._am[0], entry) + vb[0]
        vb = self._up_sweep_vectors(vb)
        # Down-sweep (exclusive): the right child's prefix is the left
        # subtree's total composed after the parent's carry —
        # b_right' = A_left_up @ b_carry + b_left_up, with A_left_up
        # read from the cached post-up-sweep matrix tree.
        vb[-1] = 0.0
        for d in reversed(range(len(self._up_pre))):
            step = 2 << d
            left = slice(step // 2 - 1, None, step)
            right = slice(step - 1, None, step)
            left_up = vb[left].copy()
            carry = vb[right].copy()
            vb[left] = carry
            vb[right] = gemm(self._am[left], carry) + left_up
        out = vb[: self.h].copy()
        if self.h:
            out[0] = entry
        return out
