"""Structured, schema-versioned JSONL event log with trace correlation.

The library's machine-readable log: one JSON object per line, each
carrying the schema version, an ISO-8601 UTC timestamp, a level, a
component, an event name, and — when a :class:`~repro.obs.context.TraceContext`
is active on the emitting thread — the ``trace_id`` / ``request_id`` /
``rank`` correlation fields.  This replaces ad-hoc ``print()`` in the
service, harness, and API layers (lint rule RC107 in
:mod:`repro.check` enforces the migration).

Logging is **off by default and cheap when off**: every logger method
first checks the module-level sink and returns immediately when none is
configured — the same guard budget as the disabled tracer span.
Configure explicitly::

    from repro.obs import configure_logging, get_logger

    configure_logging(path="results/telemetry.jsonl", level="debug")
    log = get_logger("myapp")
    log.info("run.start", message="sweep begins", nranks=4)

or via the environment: ``REPRO_LOG=/path/to/file.jsonl`` (or
``REPRO_LOG=stderr``) activates logging lazily at the first emit;
``REPRO_LOG_LEVEL`` sets the threshold (default ``info``).

Record schema (version 1)::

    {"schema_version": 1, "ts": "2026-08-07T12:00:00.123456+00:00",
     "level": "info", "component": "service", "event": "request.served",
     "trace_id": "…", "request_id": "…", "rank": 2, ...fields}

Human-facing CLI output goes through :func:`console` instead — a thin
stdout writer that keeps rendered tables out of the structured stream
while satisfying the same lint rule.
"""

from __future__ import annotations

import collections
import datetime
import json
import os
import sys
import threading
from typing import Any, IO

from .context import current_trace_context

__all__ = [
    "LOG_SCHEMA_VERSION",
    "EventLog",
    "Logger",
    "configure_logging",
    "disable_logging",
    "active_log",
    "get_logger",
    "console",
]

#: Version stamped into every record; bump on breaking field changes.
LOG_SCHEMA_VERSION = 1

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _utcnow_iso() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


class EventLog:
    """Thread-safe JSONL sink writing one record per :meth:`log` call.

    Parameters
    ----------
    stream:
        Open text stream to append records to (owned by the caller).
    path:
        Alternatively, a file path opened in append mode (owned and
        closed by this object).  Exactly one of ``stream``/``path``.
    level:
        Minimum level emitted (``debug``/``info``/``warning``/``error``).
    """

    def __init__(self, stream: IO[str] | None = None,
                 path: str | None = None, level: str = "info"):
        if (stream is None) == (path is None):
            raise ValueError("provide exactly one of stream or path")
        if level not in _LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"choose from {sorted(_LEVELS)}")
        self._lock = threading.Lock()
        self._owns_stream = path is not None
        self._stream = (open(path, "a", encoding="utf-8")
                        if path is not None else stream)
        self.threshold = _LEVELS[level]
        self.records_written = 0
        #: Bounded in-memory copy of the newest records, merged into
        #: :mod:`repro.obs.postmortem` incident bundles on failure.
        self.tail: collections.deque = collections.deque(maxlen=256)

    def log(self, level: str, component: str, event: str,
            message: str | None = None, **fields: Any) -> None:
        """Emit one record (no-op below the configured threshold).

        Correlation fields of the thread's active
        :class:`~repro.obs.context.TraceContext` are merged in; explicit
        ``fields`` of the same name win.
        """
        if _LEVELS.get(level, 0) < self.threshold:
            return
        record: dict[str, Any] = {
            "schema_version": LOG_SCHEMA_VERSION,
            "ts": _utcnow_iso(),
            "level": level,
            "component": component,
            "event": event,
        }
        if message is not None:
            record["message"] = message
        ctx = current_trace_context()
        if ctx is not None:
            record.update(ctx.to_dict())
        record.update(fields)
        line = json.dumps(record, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
            self.records_written += 1
            self.tail.append(record)

    def write_raw(self, line: str) -> None:
        """Append one pre-serialized JSONL record verbatim.

        Used by the process backend to merge records forwarded from
        worker processes into the parent's stream without re-stamping
        timestamps or correlation fields (the worker already did).
        """
        with self._lock:
            self._stream.write(line.rstrip("\n") + "\n")
            self._stream.flush()
            self.records_written += 1
            try:
                self.tail.append(json.loads(line))
            except ValueError:  # pragma: no cover - malformed forward
                self.tail.append({"raw": line.rstrip("\n")})

    def close(self) -> None:
        """Close the sink (only closes streams this object opened)."""
        with self._lock:
            if self._owns_stream:
                self._stream.close()


_lock = threading.Lock()
_log: EventLog | None = None
_env_checked = False
_owner_pid = os.getpid()


def _fork_guard() -> None:
    """Reset inherited sink state when running in a new process.

    A forked child inheriting the parent's ``EventLog`` would write to
    the parent's stream through a shared file offset (interleaving and
    duplicating records); the ``repro.comm.mp`` spawn path avoids
    inheritance by construction, but fork-based embedders do not.  On
    the first logging call in a new process the module forgets the
    inherited sink and re-resolves from the environment.
    """
    global _log, _env_checked, _owner_pid
    pid = os.getpid()
    if pid == _owner_pid:
        return
    with _lock:
        if pid == _owner_pid:  # pragma: no cover - raced re-check
            return
        _owner_pid = pid
        _log = None
        _env_checked = False


def configure_logging(path: str | None = None,
                      stream: IO[str] | None = None,
                      level: str = "info") -> EventLog:
    """Install the process-wide structured log sink; returns it.

    Replaces any previously configured sink (closing it if owned).
    """
    global _log, _env_checked
    _fork_guard()
    new = EventLog(stream=stream, path=path, level=level)
    with _lock:
        old, _log = _log, new
        _env_checked = True
    if old is not None:
        old.close()
    return new


def disable_logging() -> None:
    """Remove the process-wide sink; loggers return to no-op mode."""
    global _log, _env_checked
    _fork_guard()
    with _lock:
        old, _log = _log, None
        _env_checked = True
    if old is not None:
        old.close()


def active_log() -> EventLog | None:
    """The installed sink, honoring ``REPRO_LOG`` lazily; ``None`` = off."""
    global _log, _env_checked
    _fork_guard()
    if _log is not None:
        return _log
    if _env_checked:
        return None
    with _lock:
        if not _env_checked:
            _env_checked = True
            target = os.environ.get("REPRO_LOG", "").strip()
            level = os.environ.get("REPRO_LOG_LEVEL", "info").strip() or "info"
            if target == "stderr":
                _log = EventLog(stream=sys.stderr, level=level)
            elif target:
                _log = EventLog(path=target, level=level)
    return _log


class Logger:
    """Component-bound front end over the process-wide :class:`EventLog`.

    All methods are no-ops (one module-global check) when logging is
    not configured, so instrumentation is safe in hot paths.
    """

    __slots__ = ("component",)

    def __init__(self, component: str):
        self.component = component

    def _emit(self, level: str, event: str, message: str | None,
              fields: dict[str, Any]) -> None:
        sink = active_log()
        if sink is not None:
            sink.log(level, self.component, event, message, **fields)

    def debug(self, event: str, message: str | None = None, **fields: Any) -> None:
        """Emit a ``debug`` record."""
        self._emit("debug", event, message, fields)

    def info(self, event: str, message: str | None = None, **fields: Any) -> None:
        """Emit an ``info`` record."""
        self._emit("info", event, message, fields)

    def warning(self, event: str, message: str | None = None, **fields: Any) -> None:
        """Emit a ``warning`` record."""
        self._emit("warning", event, message, fields)

    def error(self, event: str, message: str | None = None, **fields: Any) -> None:
        """Emit an ``error`` record."""
        self._emit("error", event, message, fields)


def get_logger(component: str) -> Logger:
    """A :class:`Logger` bound to ``component`` (cheap; not cached)."""
    return Logger(component)


def console(*values: Any, sep: str = " ", end: str = "\n") -> None:
    """Write human-facing CLI output to stdout.

    The sanctioned sink for rendered tables and progress lines —
    deliberate terminal output, as opposed to telemetry (which belongs
    in the structured log) and debugging prints (which lint rule RC107
    rejects).
    """
    print(*values, sep=sep, end=end)  # repro: noqa[RC107]
