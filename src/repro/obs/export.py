"""Prometheus text-format rendering of metrics snapshots.

Converts the nested snapshot dicts produced by
:meth:`repro.obs.MetricsRegistry.snapshot` (and the service's
:meth:`~repro.service.SolverService.metrics_snapshot`, which adds a
``"cache"`` section) into the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ served
by :class:`repro.obs.http.TelemetryServer` at ``/metrics``.

Mapping rules:

- counters become ``<prefix><name>_total`` with ``# TYPE ... counter``;
- gauges become ``<prefix><name>`` with ``# TYPE ... gauge``;
- summaries become a Prometheus summary: ``_count`` and ``_sum`` series
  plus ``{quantile="..."}`` samples for the windowed p50/p90/p99, and
  ``_min`` / ``_max`` gauges for the exact extremes;
- the flat ``"cache"`` section becomes plain gauges
  (``<prefix>cache_<key>``).

Metric names are sanitized to ``[a-zA-Z0-9_:]`` (dots become
underscores), matching the Prometheus data model.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

__all__ = ["render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantile keys a summary snapshot may carry, mapped to their labels.
_QUANTILE_KEYS = (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"))


def _sanitize(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _num(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(float(value))


def render_prometheus(snapshot: Mapping[str, Any] | Any,
                      prefix: str = "repro_") -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    Parameters
    ----------
    snapshot:
        A nested dict with any of the sections ``counters`` /
        ``gauges`` / ``summaries`` / ``cache``, or an object exposing
        ``snapshot()`` returning one (e.g. a
        :class:`~repro.obs.metrics.MetricsRegistry`).
    prefix:
        Namespace prepended to every metric name.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    lines: list[str] = []

    for name, value in sorted(dict(snapshot.get("counters", {})).items()):
        metric = prefix + _sanitize(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_num(value)}")

    for name, value in sorted(dict(snapshot.get("gauges", {})).items()):
        metric = prefix + _sanitize(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_num(value)}")

    for name, summ in sorted(dict(snapshot.get("summaries", {})).items()):
        metric = prefix + _sanitize(name)
        lines.append(f"# TYPE {metric} summary")
        for key, label in _QUANTILE_KEYS:
            if summ.get(key) is not None:
                lines.append(
                    f'{metric}{{quantile="{label}"}} {_num(summ[key])}'
                )
        lines.append(f"{metric}_count {_num(summ.get('count', 0))}")
        lines.append(f"{metric}_sum {_num(summ.get('total', 0.0))}")
        for extreme in ("min", "max"):
            if summ.get(extreme) is not None:
                lines.append(f"# TYPE {metric}_{extreme} gauge")
                lines.append(f"{metric}_{extreme} {_num(summ[extreme])}")

    for name, value in sorted(dict(snapshot.get("cache", {})).items()):
        if value is None or not isinstance(value, (int, float, bool)):
            continue
        metric = prefix + "cache_" + _sanitize(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_num(value)}")

    return "\n".join(lines) + "\n"
