"""Numerical-health probes: residual, pivot growth, condition estimate.

The accuracy half of the telemetry pipeline.  A performance dashboard
that cannot see a drifting residual or an exploding pivot will happily
page on latency while the solver returns garbage; these probes put the
numerical quality signals next to the throughput ones.

Three measurements, each mapped to a gauge and classified against
:class:`HealthThresholds`:

===================== ============================== ====================
probe                 source                         gauge
===================== ============================== ====================
residual norm         ``matrix.residual(x, b)``      ``health.residual_norm``
pivot growth          :func:`pivot_growth` /         ``health.pivot_growth``
                      :func:`repro.linalg.batchlu.pivot_growth_batched`
condition estimate    :func:`repro.linalg.analysis.  ``health.condition``
                      estimate_condition`
===================== ============================== ====================

Classification is three-state: ``ok`` below the warn threshold,
``warn`` between warn and page, ``page`` above.  Breaches increment the
``health.warn`` / ``health.page`` counters and emit structured log
records (:mod:`repro.obs.log`) carrying the active trace context, so a
bad solve is attributable to its request.

Entry points: :func:`probe_solve` after a solve (cheap: one band
matvec), :func:`probe_factor` after a factorization (matrix-level;
the service runs it once per cache key, not per batch).
:class:`repro.service.SolverService` wires both when health probing is
enabled; :func:`repro.core.api.solve` exposes them via ``health=True``.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from .flightrec import note_event
from .log import get_logger
from .metrics import MetricsRegistry

__all__ = [
    "HealthThresholds",
    "HealthReport",
    "pivot_growth",
    "probe_solve",
    "probe_factor",
]

_log = get_logger("health")


@dataclasses.dataclass(frozen=True)
class HealthThresholds:
    """Warn/page limits for the numerical-health probes.

    Defaults follow the double-precision rules of thumb: a residual
    near ``sqrt(eps)`` deserves attention and one near ``1e-2`` means
    the answer is unusable; growth/condition limits mirror the
    ``growth_warn_threshold`` scale in :class:`repro.config.ReproConfig`
    and the ``kappa * eps ~ 1`` accuracy cliff respectively.
    """

    residual_warn: float = 1e-6
    residual_page: float = 1e-2
    growth_warn: float = 1e8
    growth_page: float = 1e12
    condition_warn: float = 1e10
    condition_page: float = 1e14

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form (for ``/healthz`` and docs tables)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class HealthReport:
    """Outcome of one probe: measured values plus classification.

    ``status`` is the worst classification across the measured probes
    (``ok`` < ``warn`` < ``page``); unmeasured probes are ``None`` and
    do not contribute.  ``messages`` lists one human-readable line per
    breached threshold.
    """

    status: str = "ok"
    residual: float | None = None
    pivot_growth: float | None = None
    condition: float | None = None
    messages: list[str] = dataclasses.field(default_factory=list)
    thresholds: HealthThresholds = dataclasses.field(
        default_factory=HealthThresholds
    )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``/healthz`` document body)."""
        out: dict[str, Any] = {"status": self.status}
        for key in ("residual", "pivot_growth", "condition"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.messages:
            out["messages"] = list(self.messages)
        out["thresholds"] = self.thresholds.to_dict()
        return out


def pivot_growth(matrix: Any) -> float:
    """Pivot-growth factor of the matrix's diagonal blocks.

    Factors the ``(n, m, m)`` diagonal band with batched partially
    pivoted LU and returns ``max_b max|U_b| / max|A_b|`` — the classical
    element-growth measure, computed on the blocks every method
    eliminates.  Growth near ``1`` means pivoting is containing
    round-off; large growth predicts residual loss (the regime the
    paper's stability discussion flags for recurrence-based methods).
    """
    from ..linalg.batchlu import lu_factor_batched, pivot_growth_batched

    diag = np.asarray(matrix.diag)
    lu, _ = lu_factor_batched(diag)
    return pivot_growth_batched(lu, diag)


def _classify(value: float | None, warn: float, page: float,
              name: str, report: HealthReport) -> None:
    if value is None or not np.isfinite(value):
        if value is not None:
            report.status = "page"
            report.messages.append(f"{name} is non-finite ({value})")
        return
    if value >= page:
        report.status = "page"
        report.messages.append(f"{name} {value:.3e} >= page threshold {page:.1e}")
    elif value >= warn:
        if report.status != "page":
            report.status = "warn"
        report.messages.append(f"{name} {value:.3e} >= warn threshold {warn:.1e}")


def _publish(report: HealthReport, registry: MetricsRegistry | None,
             origin: str) -> None:
    note_event("health.probe", origin=origin, status=report.status,
               **{k: v for k, v in (("residual", report.residual),
                                    ("pivot_growth", report.pivot_growth),
                                    ("condition", report.condition))
                  if v is not None})
    if registry is not None:
        if report.residual is not None:
            registry.gauge("health.residual_norm").set(report.residual)
            registry.summary("health.residual_norm.dist").observe(
                report.residual)
        if report.pivot_growth is not None:
            registry.gauge("health.pivot_growth").set(report.pivot_growth)
        if report.condition is not None:
            registry.gauge("health.condition").set(report.condition)
        if report.status == "warn":
            registry.counter("health.warn").inc()
        elif report.status == "page":
            registry.counter("health.page").inc()
    if report.status != "ok":
        emit = _log.error if report.status == "page" else _log.warning
        emit("health.breach", message="; ".join(report.messages),
             origin=origin, status=report.status,
             **{k: v for k, v in (("residual", report.residual),
                                  ("pivot_growth", report.pivot_growth),
                                  ("condition", report.condition))
                if v is not None})


def probe_solve(matrix: Any, x: np.ndarray, b: np.ndarray, *,
                factorization: Any | None = None,
                thresholds: HealthThresholds | None = None,
                condition: bool = False,
                growth: bool = False,
                registry: MetricsRegistry | None = None) -> HealthReport:
    """Probe the quality of one solve: residual, optionally more.

    ``x``/``b`` are in the canonical ``(n, m, r)`` layout.  The residual
    (one band matvec, ``O(N M^2 R)``) is always measured; the condition
    estimate (several extra solves) only with ``condition=True`` and a
    ``factorization`` to drive it; the diagonal-block pivot growth only
    with ``growth=True`` (callers that amortize it per factorization
    use :func:`probe_factor` instead).  Gauges/counters land in
    ``registry`` when given; breaches are logged with the active trace
    context.
    """
    thresholds = thresholds or HealthThresholds()
    report = HealthReport(thresholds=thresholds)
    report.residual = float(matrix.residual(x, b))
    _classify(report.residual, thresholds.residual_warn,
              thresholds.residual_page, "residual", report)
    if growth:
        report.pivot_growth = float(pivot_growth(matrix))
        _classify(report.pivot_growth, thresholds.growth_warn,
                  thresholds.growth_page, "pivot_growth", report)
    if condition and factorization is not None:
        from ..linalg.analysis import estimate_condition

        report.condition = float(estimate_condition(matrix, factorization))
        _classify(report.condition, thresholds.condition_warn,
                  thresholds.condition_page, "condition", report)
    _publish(report, registry, origin="solve")
    return report


def probe_factor(matrix: Any, factorization: Any | None = None, *,
                 thresholds: HealthThresholds | None = None,
                 condition: bool = True,
                 registry: MetricsRegistry | None = None) -> HealthReport:
    """Probe a factorization: pivot growth, optionally condition.

    Matrix-level (independent of any RHS), so callers amortize it per
    factorization — the service runs it once per cache key on the miss
    path.  The condition estimate needs ``factorization`` and is
    skipped without one.
    """
    thresholds = thresholds or HealthThresholds()
    report = HealthReport(thresholds=thresholds)
    report.pivot_growth = float(pivot_growth(matrix))
    _classify(report.pivot_growth, thresholds.growth_warn,
              thresholds.growth_page, "pivot_growth", report)
    if condition and factorization is not None:
        from ..linalg.analysis import estimate_condition

        report.condition = float(estimate_condition(matrix, factorization))
        _classify(report.condition, thresholds.condition_warn,
                  thresholds.condition_page, "condition", report)
    _publish(report, registry, origin="factor")
    return report
