"""Chrome trace-event JSON export of rank traces.

Writes the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
The export carries **two clock domains** for every traced run:

- a *virtual* process whose timestamps are the simulator's modelled
  seconds (the paper's cost model — deterministic), and
- a *wall* process with real host timestamps (thread scheduling noise
  included),

each with one timeline track (``tid``) per simulated rank.  Spans
become ``"X"`` (complete) events, sends become ``"i"`` (instant)
events; ``args`` carry flop/byte deltas and causal partner ranks.
Matched send→recv pairs additionally become flow events (``"s"`` /
``"f"``), so Perfetto draws the cross-rank message arrows, and a
:class:`~repro.obs.critpath.CritPathReport` can be rendered as an
extra ``critical`` track highlighting exactly the chain of spans and
messages that determined the makespan (``write_chrome_trace(...,
critpath=True)``).

Multi-segment runs (ARD's ``factor`` then ``solve``) are laid end to
end on the virtual axis — segment k starts where segment k-1's makespan
ended, mirroring ``SolveInfo.virtual_time`` — while wall timestamps are
kept as measured (normalized to the earliest event).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

__all__ = ["chrome_trace_events", "write_chrome_trace"]

_US = 1.0e6  # seconds -> microseconds (trace-event timestamp unit)


def _span_args(span) -> dict[str, Any]:
    args = {k: v for k, v in span.attrs.items()}
    if span.flops:
        args["flops"] = span.flops
    if span.bytes_sent:
        args["bytes_sent"] = span.bytes_sent
    if span.msgs_sent:
        args["msgs_sent"] = span.msgs_sent
    return args


def chrome_trace_events(
    segments: Sequence[tuple[str, Any]],
    *,
    label: str = "run",
    base_pid: int = 0,
    include_wall: bool = True,
    critpath: Any = None,
) -> list[dict[str, Any]]:
    """Convert traced segments into a list of trace-event dicts.

    Parameters
    ----------
    segments:
        ``(segment_label, SimulationResult)`` pairs in execution order;
        every result must carry traces (``run_spmd(..., trace=True)``).
    label:
        Run label used in the process names (e.g. the method name).
    base_pid:
        First process id to use; the virtual process gets ``base_pid``
        and the wall process ``base_pid + 1``.  Pass distinct bases to
        combine several runs in one file.
    include_wall:
        Also emit the wall-clock process (on by default).
    critpath:
        Optional :class:`~repro.obs.critpath.CritPathReport` for these
        same segments; its pieces are rendered on an extra ``critical``
        track (``tid`` above the rank tracks) of the virtual process.

    Returns
    -------
    list of event dicts ready for ``json.dump`` under ``traceEvents``.
    """
    from ..exceptions import ReproError

    v_pid = base_pid
    w_pid = base_pid + 1
    events: list[dict[str, Any]] = []
    ranks: set[int] = set()

    wall_zero = None
    for _, result in segments:
        if result is None or getattr(result, "traces", None) is None:
            raise ReproError(
                "segment has no traces; run with trace=True "
                "(e.g. solve(..., trace=True) or run_spmd(..., trace=True))"
            )
        for trace in result.traces:
            for s in trace.spans:
                wall_zero = s.w_start if wall_zero is None else min(
                    wall_zero, s.w_start)
            for e in trace.events:
                wall_zero = e.w_ts if wall_zero is None else min(
                    wall_zero, e.w_ts)
    wall_zero = wall_zero or 0.0

    from .critpath import reconstruct_edges

    v_offset = 0.0
    flow_id = 0
    for seg_label, result in segments:
        edge_set, _ = reconstruct_edges(result, segment=seg_label)
        for edge in edge_set.edges:
            # Flow-event pair: Perfetto draws an arrow from the send
            # instant on the sender's track to the matched receive's
            # end on the receiver's track.
            flow_id += 1
            flow = {"name": "msg", "cat": "comm", "id": flow_id,
                    "pid": v_pid}
            events.append({
                **flow, "ph": "s", "tid": edge.src,
                "ts": (v_offset + edge.send_v) * _US,
            })
            events.append({
                **flow, "ph": "f", "bp": "e", "tid": edge.dst,
                "ts": (v_offset + edge.recv_end_v) * _US,
            })
        for trace in result.traces:
            ranks.add(trace.rank)
            trace_id = getattr(trace, "trace_id", None)
            seg_args = ({"segment": seg_label, "trace_id": trace_id}
                        if trace_id is not None else {"segment": seg_label})
            for s in trace.spans:
                common = {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "tid": trace.rank,
                    "args": {**seg_args, **_span_args(s)},
                }
                events.append({
                    **common,
                    "pid": v_pid,
                    "ts": (v_offset + s.v_start) * _US,
                    "dur": s.v_dur * _US,
                })
                if include_wall:
                    events.append({
                        **common,
                        "pid": w_pid,
                        "ts": (s.w_start - wall_zero) * _US,
                        "dur": s.w_dur * _US,
                    })
            for e in trace.events:
                common = {
                    "name": e.name,
                    "cat": e.cat,
                    "ph": "i",
                    "s": "t",
                    "tid": trace.rank,
                    "args": {**seg_args, **e.attrs},
                }
                events.append({
                    **common,
                    "pid": v_pid,
                    "ts": (v_offset + e.v_ts) * _US,
                })
                if include_wall:
                    events.append({
                        **common,
                        "pid": w_pid,
                        "ts": (e.w_ts - wall_zero) * _US,
                    })
        v_offset += result.virtual_time

    crit_tid = None
    if critpath is not None:
        # Critical-path pieces carry run-global virtual timestamps
        # (same end-to-end segment layout as v_offset above), so they
        # drop straight onto one extra track of the virtual process.
        crit_tid = (max(ranks) + 1) if ranks else 0
        for piece in critpath.path:
            events.append({
                "name": piece.name,
                "cat": "critical",
                "ph": "X",
                "pid": v_pid,
                "tid": crit_tid,
                "ts": piece.v_start * _US,
                "dur": piece.duration * _US,
                "args": {"segment": piece.segment, "kind": piece.kind,
                         "rank": piece.rank},
            })

    pids = [(v_pid, f"{label} [virtual time]")]
    if include_wall:
        pids.append((w_pid, f"{label} [wall time]"))
    for pid, name in pids:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
        for rank in sorted(ranks):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": rank,
                "args": {"name": f"rank {rank}"},
            })
        if pid == v_pid and crit_tid is not None:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": crit_tid, "args": {"name": "critical path"},
            })
    return events


def _segments_of(source: Any) -> list[tuple[str, Any]]:
    """Normalize a SolveInfo / SimulationResult / segment list."""
    factor_result = getattr(source, "factor_result", None)
    solve_result = getattr(source, "solve_result", None)
    if solve_result is None:
        solve_result = getattr(source, "last_solve_result", None)
    if factor_result is not None or solve_result is not None:
        segments = []
        if factor_result is not None:
            segments.append(("factor", factor_result))
        if solve_result is not None:
            segments.append(("solve", solve_result))
        return segments
    if hasattr(source, "traces"):
        return [("run", source)]
    return list(source)


def write_chrome_trace(
    path: str | pathlib.Path,
    source: Any,
    *,
    include_wall: bool = True,
    critpath: Any = False,
) -> pathlib.Path:
    """Write a Chrome trace-event JSON file; returns the path.

    Parameters
    ----------
    path:
        Output file (conventionally ``*.trace.json``); open it in
        Perfetto or ``chrome://tracing``.
    source:
        Any of: a ``SolveInfo`` (factor + solve segments), a traced
        factorization (``factor_result`` / ``last_solve_result``), a
        single traced ``SimulationResult``, a list of ``(label,
        SimulationResult)`` segments, or a dict mapping run labels to
        any of the above (each run gets its own process pair).
    include_wall:
        Also emit the wall-clock processes (on by default).
    critpath:
        ``True`` runs :func:`~repro.obs.critpath.analyze_critical_path`
        on each run and renders its pieces on a ``critical`` track;
        alternatively pass a ready
        :class:`~repro.obs.critpath.CritPathReport` (single-run sources
        only).
    """
    from ..exceptions import ReproError

    if isinstance(source, dict):
        groups = [(str(k), _segments_of(v)) for k, v in source.items()]
    else:
        groups = [("run", _segments_of(source))]
    if critpath not in (False, None, True) and len(groups) > 1:
        raise ReproError(
            "a ready CritPathReport applies to a single run; pass "
            "critpath=True to analyze each run of a dict source"
        )
    events: list[dict[str, Any]] = []
    base_pid = 0
    for label, segments in groups:
        cp = critpath if critpath not in (False, None, True) else None
        if critpath is True:
            from .critpath import analyze_critical_path

            cp = analyze_critical_path(segments)
        events.extend(chrome_trace_events(
            segments, label=label, base_pid=base_pid,
            include_wall=include_wall, critpath=cp,
        ))
        base_pid += 2
    path = pathlib.Path(path)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path
