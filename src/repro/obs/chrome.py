"""Chrome trace-event JSON export of rank traces.

Writes the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
The export carries **two clock domains** for every traced run:

- a *virtual* process whose timestamps are the simulator's modelled
  seconds (the paper's cost model — deterministic), and
- a *wall* process with real host timestamps (thread scheduling noise
  included),

each with one timeline track (``tid``) per simulated rank.  Spans
become ``"X"`` (complete) events, sends become ``"i"`` (instant)
events; ``args`` carry flop/byte deltas and causal partner ranks.

Multi-segment runs (ARD's ``factor`` then ``solve``) are laid end to
end on the virtual axis — segment k starts where segment k-1's makespan
ended, mirroring ``SolveInfo.virtual_time`` — while wall timestamps are
kept as measured (normalized to the earliest event).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

__all__ = ["chrome_trace_events", "write_chrome_trace"]

_US = 1.0e6  # seconds -> microseconds (trace-event timestamp unit)


def _span_args(span) -> dict[str, Any]:
    args = {k: v for k, v in span.attrs.items()}
    if span.flops:
        args["flops"] = span.flops
    if span.bytes_sent:
        args["bytes_sent"] = span.bytes_sent
    if span.msgs_sent:
        args["msgs_sent"] = span.msgs_sent
    return args


def chrome_trace_events(
    segments: Sequence[tuple[str, Any]],
    *,
    label: str = "run",
    base_pid: int = 0,
    include_wall: bool = True,
) -> list[dict[str, Any]]:
    """Convert traced segments into a list of trace-event dicts.

    Parameters
    ----------
    segments:
        ``(segment_label, SimulationResult)`` pairs in execution order;
        every result must carry traces (``run_spmd(..., trace=True)``).
    label:
        Run label used in the process names (e.g. the method name).
    base_pid:
        First process id to use; the virtual process gets ``base_pid``
        and the wall process ``base_pid + 1``.  Pass distinct bases to
        combine several runs in one file.
    include_wall:
        Also emit the wall-clock process (on by default).

    Returns
    -------
    list of event dicts ready for ``json.dump`` under ``traceEvents``.
    """
    from ..exceptions import ReproError

    v_pid = base_pid
    w_pid = base_pid + 1
    events: list[dict[str, Any]] = []
    ranks: set[int] = set()

    wall_zero = None
    for _, result in segments:
        if result is None or getattr(result, "traces", None) is None:
            raise ReproError(
                "segment has no traces; run with trace=True "
                "(e.g. solve(..., trace=True) or run_spmd(..., trace=True))"
            )
        for trace in result.traces:
            for s in trace.spans:
                wall_zero = s.w_start if wall_zero is None else min(
                    wall_zero, s.w_start)
            for e in trace.events:
                wall_zero = e.w_ts if wall_zero is None else min(
                    wall_zero, e.w_ts)
    wall_zero = wall_zero or 0.0

    v_offset = 0.0
    for seg_label, result in segments:
        for trace in result.traces:
            ranks.add(trace.rank)
            trace_id = getattr(trace, "trace_id", None)
            seg_args = ({"segment": seg_label, "trace_id": trace_id}
                        if trace_id is not None else {"segment": seg_label})
            for s in trace.spans:
                common = {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "tid": trace.rank,
                    "args": {**seg_args, **_span_args(s)},
                }
                events.append({
                    **common,
                    "pid": v_pid,
                    "ts": (v_offset + s.v_start) * _US,
                    "dur": s.v_dur * _US,
                })
                if include_wall:
                    events.append({
                        **common,
                        "pid": w_pid,
                        "ts": (s.w_start - wall_zero) * _US,
                        "dur": s.w_dur * _US,
                    })
            for e in trace.events:
                common = {
                    "name": e.name,
                    "cat": e.cat,
                    "ph": "i",
                    "s": "t",
                    "tid": trace.rank,
                    "args": {**seg_args, **e.attrs},
                }
                events.append({
                    **common,
                    "pid": v_pid,
                    "ts": (v_offset + e.v_ts) * _US,
                })
                if include_wall:
                    events.append({
                        **common,
                        "pid": w_pid,
                        "ts": (e.w_ts - wall_zero) * _US,
                    })
        v_offset += result.virtual_time

    pids = [(v_pid, f"{label} [virtual time]")]
    if include_wall:
        pids.append((w_pid, f"{label} [wall time]"))
    for pid, name in pids:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
        for rank in sorted(ranks):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": rank,
                "args": {"name": f"rank {rank}"},
            })
    return events


def _segments_of(source: Any) -> list[tuple[str, Any]]:
    """Normalize a SolveInfo / SimulationResult / segment list."""
    factor_result = getattr(source, "factor_result", None)
    solve_result = getattr(source, "solve_result", None)
    if solve_result is None:
        solve_result = getattr(source, "last_solve_result", None)
    if factor_result is not None or solve_result is not None:
        segments = []
        if factor_result is not None:
            segments.append(("factor", factor_result))
        if solve_result is not None:
            segments.append(("solve", solve_result))
        return segments
    if hasattr(source, "traces"):
        return [("run", source)]
    return list(source)


def write_chrome_trace(
    path: str | pathlib.Path,
    source: Any,
    *,
    include_wall: bool = True,
) -> pathlib.Path:
    """Write a Chrome trace-event JSON file; returns the path.

    Parameters
    ----------
    path:
        Output file (conventionally ``*.trace.json``); open it in
        Perfetto or ``chrome://tracing``.
    source:
        Any of: a ``SolveInfo`` (factor + solve segments), a traced
        factorization (``factor_result`` / ``last_solve_result``), a
        single traced ``SimulationResult``, a list of ``(label,
        SimulationResult)`` segments, or a dict mapping run labels to
        any of the above (each run gets its own process pair).
    include_wall:
        Also emit the wall-clock processes (on by default).
    """
    if isinstance(source, dict):
        groups = [(str(k), _segments_of(v)) for k, v in source.items()]
    else:
        groups = [("run", _segments_of(source))]
    events: list[dict[str, Any]] = []
    base_pid = 0
    for label, segments in groups:
        events.extend(chrome_trace_events(
            segments, label=label, base_pid=base_pid,
            include_wall=include_wall,
        ))
        base_pid += 2
    path = pathlib.Path(path)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path
