"""Always-on per-rank flight recorder: a fixed-capacity comm ring buffer.

Production failures rarely happen under ``trace=True``: the tracer,
critpath profiler, and verifier histories are opt-in, so an untraced
deadlock or worker death leaves nothing but an exception string.  The
flight recorder closes that gap with the classic black-box pattern —
every rank keeps a small **preallocated ring buffer** of compact
records (one tuple per comm op, kernel phase boundary, or probe) that
costs almost nothing while the run is healthy and is snapshotted into a
:mod:`repro.obs.postmortem` incident bundle the moment a failure path
fires.

Design constraints, in order:

1. **No allocation on the hot path.**  The ring is a preallocated list
   of ``capacity`` slots; recording stores one tuple and bumps an
   integer.  No dict churn, no datetime formatting, no locking (each
   recorder is owned by exactly one rank thread; the single cross-
   thread touch — :meth:`FlightRecorder.mark_consumed` from the
   receiving rank on the threads backend — mutates a dict under the
   GIL and tolerates benign races).
2. **Self-describing truncation.**  When an overwrite evicts a record
   at least as new as the oldest *in-flight* send (posted, never
   consumed), the bundle can no longer explain that send's fate; the
   recorder counts such evictions in :attr:`FlightRecorder.dropped`
   and logs a one-time ``flightrec.dropped`` warning so a truncated
   bundle says so instead of lying by omission.
3. **Always on, bounded overhead.**  ``ReproConfig.flightrec`` defaults
   to on; ``benchmarks/bench_flightrec.py`` asserts the recorder costs
   <3% of solve wall time at the canonical shape and
   ``obs.flightrec_overhead`` is gated in BENCH_history.

Record layout (a plain tuple, indexed by :data:`RECORD_FIELDS`)::

    (kind, w_ts, v_ts, op, peer, tag, seq, nbytes, extra)

``kind`` is one of ``send``/``recv``/``wait``/``coll``/``phase``/
``phase_end``; ``w_ts`` is epoch wall time (comparable across
processes), ``v_ts`` the rank's virtual-clock reading (0.0 when no
clock is attached, e.g. service worker threads); ``peer``/``tag``/
``seq``/``nbytes`` are ``-1``/``0`` where not applicable.

Plan selections and health probes are process-global, not per-rank, so
they go to a separate bounded note buffer via :func:`note_event`; the
incident capture merges :func:`recent_notes` into the bundle.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from .log import get_logger

__all__ = [
    "RECORD_FIELDS",
    "FlightRecorder",
    "current_flightrec",
    "flight_recording",
    "note_event",
    "recent_notes",
]

#: Field names of one ring record, positionally (tuple layout contract
#: between the recorder, the bundle schema, and the postmortem analyzer).
RECORD_FIELDS = (
    "kind", "w_ts", "v_ts", "op", "peer", "tag", "seq", "nbytes", "extra",
)

_log = get_logger("flightrec")


class _PhaseSpan:
    """Context manager recording ``phase``/``phase_end`` ring records."""

    __slots__ = ("_rec", "_name")

    def __init__(self, rec: "FlightRecorder", name: str):
        self._rec = rec
        self._name = name

    def __enter__(self) -> "_PhaseSpan":
        self._rec._record("phase", self._name, -1, -1, -1, 0)
        return self

    def __exit__(self, *exc: object) -> None:
        self._rec._record("phase_end", self._name, -1, -1, -1, 0)


class FlightRecorder:
    """Fixed-capacity append-only ring of compact per-rank event records.

    Parameters
    ----------
    rank:
        World rank (or service worker index) this recorder belongs to.
    capacity:
        Number of preallocated ring slots; the newest ``capacity``
        records survive to the snapshot.
    clock:
        Optional object with a cheap ``now`` attribute (the rank's
        :class:`repro.comm.clock.VirtualClock`); sampled per record
        without syncing.
    """

    __slots__ = ("rank", "capacity", "clock", "dropped",
                 "_ring", "_next", "_inflight", "_oldest_inflight",
                 "_warned")

    def __init__(self, rank: int, capacity: int, clock: Any = None):
        if capacity < 8:
            raise ValueError(f"flightrec capacity must be >= 8, got {capacity}")
        self.rank = rank
        self.capacity = capacity
        self.clock = clock
        self.dropped = 0
        self._ring: list[tuple | None] = [None] * capacity
        self._next = 0
        self._inflight: dict[int, int] = {}
        self._oldest_inflight: int | None = None
        self._warned = False

    def _record(self, kind: str, op: str, peer: int, tag: int,
                seq: int, nbytes: int, extra: Any = None) -> None:
        i = self._next
        oldest = self._oldest_inflight
        if oldest is not None and i >= self.capacity and i - self.capacity >= oldest:
            self.dropped += 1
            if not self._warned:
                self._warned = True
                _log.warning(
                    "flightrec.dropped",
                    message="ring overwrote records newer than the oldest "
                            "in-flight send; bundle will be truncated",
                    rank=self.rank, capacity=self.capacity,
                )
        clock = self.clock
        self._ring[i % self.capacity] = (
            kind, time.time(), clock.now if clock is not None else 0.0,
            op, peer, tag, seq, nbytes, extra,
        )
        self._next = i + 1

    def record_send(self, dest: int, tag: int, seq: int, nbytes: int) -> None:
        """Record a posted send and register it as in-flight."""
        self._inflight[seq] = self._next
        if self._oldest_inflight is None:
            self._oldest_inflight = self._next
        self._record("send", "send", dest, tag, seq, nbytes)

    def record_recv(self, source: int, tag: int, seq: int, nbytes: int) -> None:
        """Record a completed receive of message ``seq`` from ``source``."""
        self._record("recv", "recv", source, tag, seq, nbytes)

    def record_wait(self, op: str, source: Any, tag: Any) -> None:
        """Record that the rank is about to block (op = recv/collective)."""
        peer = source if isinstance(source, int) else -1
        self._record("wait", op, peer, tag if isinstance(tag, int) else -1,
                     -1, 0)

    def record_coll(self, op: str, root: int | None, nbytes: int) -> None:
        """Record entry into an outermost collective operation."""
        self._record("coll", op, -1 if root is None else root, -1, -1, nbytes)

    def mark_consumed(self, seq: int) -> None:
        """Retire in-flight send ``seq`` (called when it is received).

        On the threads backend the *receiving* rank calls this on the
        sender's recorder; the dict mutation is GIL-atomic and a stale
        ``_oldest_inflight`` only over-counts drops (conservative).
        """
        idx = self._inflight.pop(seq, None)
        if idx is not None and idx == self._oldest_inflight:
            self._oldest_inflight = (min(self._inflight.values())
                                     if self._inflight else None)

    def phase_span(self, name: str) -> _PhaseSpan:
        """Context manager marking a kernel-phase boundary in the ring."""
        return _PhaseSpan(self, name)

    def snapshot(self) -> dict[str, Any]:
        """Chronological copy of the ring as a JSON-ready dict."""
        i = self._next
        if i <= self.capacity:
            records = list(self._ring[:i])
        else:
            start = i % self.capacity
            records = self._ring[start:] + self._ring[:start]
        return {
            "rank": self.rank,
            "capacity": self.capacity,
            "count": i,
            "dropped": self.dropped,
            "fields": list(RECORD_FIELDS),
            "records": [list(r) for r in records if r is not None],
        }


class _ActiveCount:
    """Process-wide count of installed recorders (tracer fast-path gate)."""

    __slots__ = ("count", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self._lock = threading.Lock()

    def inc(self) -> None:
        with self._lock:
            self.count += 1

    def dec(self) -> None:
        with self._lock:
            self.count -= 1


#: Module-global recorder count: ``repro.obs.tracer.span`` only pays the
#: second thread-local lookup when this is nonzero, keeping the fully
#: disabled span path at one ``getattr``.
_ACTIVE = _ActiveCount()

_state = threading.local()


def current_flightrec() -> FlightRecorder | None:
    """The flight recorder installed on this thread, or ``None``."""
    return getattr(_state, "recorder", None)


@contextmanager
def flight_recording(rec: FlightRecorder | None) -> Iterator[FlightRecorder | None]:
    """Install ``rec`` as this thread's flight recorder (no-op if None).

    Used by both SPMD backends around each rank's program and by the
    service around each worker thread's serve loop.
    """
    if rec is None:
        yield None
        return
    previous = getattr(_state, "recorder", None)
    _state.recorder = rec
    _ACTIVE.inc()
    try:
        yield rec
    finally:
        _state.recorder = previous
        _ACTIVE.dec()


_notes_lock = threading.Lock()
_notes: deque = deque(maxlen=64)


def note_event(kind: str, **fields: Any) -> None:
    """Append a process-global annotation (plan selection, health probe).

    Notes live outside the per-rank rings because they are minted on
    arbitrary threads (the planner, the service health prober) before
    or between SPMD runs; the most recent 64 ride along in every
    incident bundle.
    """
    with _notes_lock:
        _notes.append({"kind": kind, "w_ts": time.time(), "fields": fields})


def recent_notes() -> list[dict[str, Any]]:
    """Copy of the bounded process-global note buffer, oldest first."""
    with _notes_lock:
        return list(_notes)
