"""Per-rank tracing and metrics (the library's observability layer).

The paper's cost story is *per phase*: ARD amortizes the matrix-prefix
scan so only the vector phases repeat per right-hand-side batch.  This
package makes that story observable instead of analytic.  Three pieces:

:mod:`repro.obs.tracer`
    A per-rank :class:`Tracer` with nestable spans recording both wall
    time and virtual-clock time.  Installed thread-locally alongside
    the rank's :class:`~repro.util.flops.FlopCounter`; instrumented
    code calls the module-level :func:`span` / :func:`instant` helpers,
    which are no-ops when tracing is disabled (the same guard pattern
    as :func:`repro.util.flops.record_flops`, so instrumentation is
    safe to leave in hot paths permanently).
:mod:`repro.obs.chrome`
    Chrome trace-event JSON export — one timeline track per simulated
    rank, dual virtual/wall clocks — loadable in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``.
:mod:`repro.obs.report`
    :class:`PhaseReport`: aggregated time + flops + bytes per solver
    phase per rank, surfaced on :class:`repro.core.api.SolveInfo`.
:mod:`repro.obs.metrics`
    Thread-safe counters / gauges / summaries (with windowed
    quantiles) and a combined ``snapshot()`` — the aggregate view
    long-lived components expose (the solver service,
    :mod:`repro.service`, reports cache hit rates and batch sizes
    through one :class:`MetricsRegistry`).
:mod:`repro.obs.context`
    :class:`TraceContext` propagation: one ``trace_id`` correlates the
    spans of every rank, the service request lifecycle, message
    envelopes, and structured log records of one logical operation.
:mod:`repro.obs.log`
    Leveled, schema-versioned JSONL event log carrying the active
    trace context; :func:`console` for deliberate CLI output (lint
    rule RC107 steers bare ``print()`` here).
:mod:`repro.obs.export` / :mod:`repro.obs.http`
    Prometheus text rendering of metrics snapshots and the stdlib
    ``/metrics`` + ``/healthz`` + ``/traces`` + ``/critpath`` HTTP
    endpoint (``SolverService(expose_http=...)``).
:mod:`repro.obs.health`
    Numerical-health probes (residual norm, pivot growth, condition
    estimate) classified against warn/page thresholds.
:mod:`repro.obs.flightrec`
    Always-on per-rank flight recorder: a fixed-capacity, preallocated
    ring of compact comm/phase records every rank keeps at all times
    (no allocation on the hot path), snapshotted only when something
    fails.
:mod:`repro.obs.postmortem`
    Cross-rank incident bundles: on any runtime failure path the
    rings, config, plan notes, calibration fingerprint, and log tail
    are captured into ``results/incidents/INCIDENT_<trace_id>.json``;
    ``python -m repro.harness postmortem`` reconstructs the merged
    timeline and names the blocked op and culprit rank
    (docs/INCIDENTS.md).
:mod:`repro.obs.regress`
    Rolling-median regression gate over the benchmark history written
    by ``python -m repro.harness bench-history``.
:mod:`repro.obs.critpath`
    Cross-rank span-DAG reconstruction (send→recv edges from the
    runtime's per-message ``seq`` stamps), critical-path extraction,
    and per-rank compute/comm/idle/overlap attribution
    (``python -m repro.harness profile <exp-id>``).
:mod:`repro.obs.roofline`
    Roofline classification of traced phases (compute- vs
    bandwidth-bound) against paper-era or calibrated machine rates
    (:mod:`repro.perfmodel.calibrate`).

Quick start
-----------
>>> from repro import solve
>>> from repro.workloads import poisson_block_system, random_rhs
>>> A, _ = poisson_block_system(16, 4)
>>> b = random_rhs(16, 4, nrhs=4, seed=0)
>>> x, info = solve(A, b, method="ard", nranks=4, trace=True,
...                 return_info=True)
>>> sorted(info.phase_report.virtual_by_phase()) is not None
True

See ``docs/OBSERVABILITY.md`` for the span taxonomy and the harness
CLI (``python -m repro.harness trace <exp-id>``).
"""

from .chrome import chrome_trace_events, write_chrome_trace
from .critpath import (
    CritPathReport,
    CritSegment,
    EdgeSet,
    MessageEdge,
    RankAttribution,
    analyze_critical_path,
    reconstruct_edges,
)
from .context import (
    TraceContext,
    current_trace_context,
    new_request_id,
    new_trace_context,
    new_trace_id,
    trace_context,
)
from .export import render_prometheus
from .flightrec import (
    RECORD_FIELDS,
    FlightRecorder,
    current_flightrec,
    flight_recording,
    note_event,
    recent_notes,
)
from .health import (
    HealthReport,
    HealthThresholds,
    probe_factor,
    probe_solve,
)
from .http import TelemetryServer
from .log import (
    EventLog,
    Logger,
    active_log,
    configure_logging,
    console,
    disable_logging,
    get_logger,
)
from .metrics import SUMMARY_WINDOW, Counter, Gauge, MetricsRegistry, Summary
from .postmortem import (
    INCIDENT_SCHEMA_VERSION,
    IncidentStore,
    analyze_bundle,
    capture_incident,
    classify_reason,
    force_synthetic_incident,
    load_bundle,
    record_failure,
    render_text,
    run_postmortem,
    to_chrome,
)
from .report import PhaseReport, PhaseStat, build_phase_report
from .roofline import (
    MachineRates,
    RooflinePoint,
    RooflineReport,
    build_roofline,
)
from .tracer import (
    EventRecord,
    RankTrace,
    SpanRecord,
    Tracer,
    current_tracer,
    instant,
    kernel_time,
    span,
    tracing,
)

__all__ = [
    "Tracer",
    "RankTrace",
    "SpanRecord",
    "EventRecord",
    "current_tracer",
    "tracing",
    "span",
    "instant",
    "kernel_time",
    "PhaseReport",
    "PhaseStat",
    "build_phase_report",
    "chrome_trace_events",
    "write_chrome_trace",
    "MessageEdge",
    "EdgeSet",
    "CritSegment",
    "RankAttribution",
    "CritPathReport",
    "reconstruct_edges",
    "analyze_critical_path",
    "MachineRates",
    "RooflinePoint",
    "RooflineReport",
    "build_roofline",
    "Counter",
    "Gauge",
    "Summary",
    "SUMMARY_WINDOW",
    "MetricsRegistry",
    "TraceContext",
    "new_trace_id",
    "new_request_id",
    "new_trace_context",
    "current_trace_context",
    "trace_context",
    "EventLog",
    "Logger",
    "configure_logging",
    "disable_logging",
    "active_log",
    "get_logger",
    "console",
    "render_prometheus",
    "TelemetryServer",
    "HealthThresholds",
    "HealthReport",
    "probe_solve",
    "probe_factor",
    "RECORD_FIELDS",
    "FlightRecorder",
    "current_flightrec",
    "flight_recording",
    "note_event",
    "recent_notes",
    "INCIDENT_SCHEMA_VERSION",
    "IncidentStore",
    "classify_reason",
    "capture_incident",
    "record_failure",
    "load_bundle",
    "analyze_bundle",
    "render_text",
    "to_chrome",
    "force_synthetic_incident",
    "run_postmortem",
]
