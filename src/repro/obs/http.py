"""Stdlib HTTP endpoint exposing live telemetry.

A tiny, dependency-free server (``http.server.ThreadingHTTPServer`` on a
daemon thread) serving four routes:

- ``GET /metrics`` — the metrics snapshot rendered in Prometheus text
  exposition format (:func:`repro.obs.export.render_prometheus`);
- ``GET /healthz`` — JSON health document from the health provider;
  returns ``503`` when the status is ``"page"``, ``200`` otherwise
  (load balancers and probes key off the status code);
- ``GET /traces`` — JSON summary of recently collected trace segments;
- ``GET /critpath`` — JSON critical-path analysis of the most recent
  traced run (:meth:`repro.obs.critpath.CritPathReport.to_dict`);
- ``GET /incidents`` — JSON listing of the on-disk incident bundle
  store (:class:`repro.obs.postmortem.IncidentStore`; see
  docs/INCIDENTS.md).

Start one directly or via ``SolverService(expose_http=...)`` /
``python -m repro.harness serve-bench --http``::

    server = TelemetryServer(registry.snapshot)
    server.start()
    ...  # curl http://127.0.0.1:<server.port>/metrics
    server.stop()

Binding is loopback-only by default and ``port=0`` asks the OS for a
free port (read it back from :attr:`TelemetryServer.port`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from .export import render_prometheus

__all__ = ["TelemetryServer"]


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        owner = self.server.owner
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                text = render_prometheus(owner._metrics_provider())
                self._reply(200, "text/plain; version=0.0.4; charset=utf-8",
                            text.encode("utf-8"))
            elif path == "/healthz":
                doc = (owner._health_provider() if owner._health_provider
                       else {"status": "ok"})
                status = 503 if doc.get("status") == "page" else 200
                self._reply(status, "application/json",
                            json.dumps(doc, default=str).encode("utf-8"))
            elif path == "/traces":
                doc = (owner._traces_provider() if owner._traces_provider
                       else {"traces": []})
                self._reply(200, "application/json",
                            json.dumps(doc, default=str).encode("utf-8"))
            elif path == "/critpath":
                doc = (owner._critpath_provider() if owner._critpath_provider
                       else {"critpath": None})
                self._reply(200, "application/json",
                            json.dumps(doc, default=str).encode("utf-8"))
            elif path == "/incidents":
                doc = (owner._incidents_provider() if owner._incidents_provider
                       else {"incidents": []})
                self._reply(200, "application/json",
                            json.dumps(doc, default=str).encode("utf-8"))
            else:
                self._reply(
                    404, "text/plain; charset=utf-8",
                    b"not found: try /metrics /healthz /traces /critpath "
                    b"/incidents\n")
        except BrokenPipeError:
            pass
        except Exception as exc:
            self._reply(500, "text/plain; charset=utf-8",
                        f"internal error: {exc}\n".encode("utf-8"))


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    owner: "TelemetryServer"


class TelemetryServer:
    """Loopback HTTP server for ``/metrics``, ``/healthz``, ``/traces``.

    Parameters
    ----------
    metrics_provider:
        Zero-arg callable returning a metrics snapshot dict (rendered to
        Prometheus text on each scrape).
    health_provider:
        Optional zero-arg callable returning the ``/healthz`` JSON
        document; must contain a ``"status"`` key (``"page"`` → 503).
    traces_provider:
        Optional zero-arg callable returning the ``/traces`` JSON
        document.
    critpath_provider:
        Optional zero-arg callable returning the ``/critpath`` JSON
        document (conventionally a
        :meth:`~repro.obs.critpath.CritPathReport.to_dict` payload for
        the most recent traced run).
    incidents_provider:
        Optional zero-arg callable returning the ``/incidents`` JSON
        document (conventionally
        ``{"incidents": IncidentStore.list()}``; docs/INCIDENTS.md).
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port.
    """

    def __init__(self, metrics_provider: Callable[[], Mapping[str, Any]], *,
                 health_provider: Callable[[], Mapping[str, Any]] | None = None,
                 traces_provider: Callable[[], Mapping[str, Any]] | None = None,
                 critpath_provider: Callable[[], Mapping[str, Any]] | None = None,
                 incidents_provider: Callable[[], Mapping[str, Any]] | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        self._metrics_provider = metrics_provider
        self._health_provider = health_provider
        self._traces_provider = traces_provider
        self._critpath_provider = critpath_provider
        self._incidents_provider = incidents_provider
        self._host = host
        self._requested_port = port
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "TelemetryServer":
        """Bind and begin serving on a daemon thread; returns ``self``."""
        if self._server is not None:
            return self
        server = _Server((self._host, self._requested_port), _Handler)
        server.owner = self
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-telemetry-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the server and join its thread (idempotent)."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server (``http://host:port``)."""
        return f"http://{self._host}:{self.port}"

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
