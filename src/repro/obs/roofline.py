"""Roofline classification of traced phases against machine rates.

The roofline model asks, per phase: given its *arithmetic intensity*
(flops per byte of point-to-point traffic), could the machine's peak
flop rate ever be reached, or does the interconnect cap throughput
first?  The crossover sits at the *ridge point* ``peak_flops /
bandwidth``: phases with lower intensity are **bandwidth-bound** (the
attainable rate is ``intensity * bandwidth``), phases above it are
**compute-bound** (attainable rate is the flop peak).

Machine rates come from either the run's analytic
:class:`~repro.comm.costmodel.CostModel` (paper-era constants) or a
measured :class:`~repro.perfmodel.calibrate.MachineCalibration`
produced by ``python -m repro.harness profile --calibrate`` — the
latter turns the classification from "what the paper's machine would
do" into "what *this* host does".

Intensity here uses modelled point-to-point bytes (the same counters
the cost model charges), so the roofline describes the distributed
algorithm's compute/traffic balance, not DRAM traffic of a single BLAS
call.  See docs/PROFILING.md for interpretation.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

__all__ = [
    "MachineRates",
    "RooflinePoint",
    "RooflineReport",
    "build_roofline",
]


@dataclasses.dataclass(frozen=True)
class MachineRates:
    """Peak rates of one machine, the two roofline parameters.

    Attributes
    ----------
    flop_rate:
        Peak sustained flop rate (flops/s).
    bandwidth:
        Link bandwidth (bytes/s).
    source:
        Provenance label (``"cost-model"`` or ``"calibration"``).
    """

    flop_rate: float
    bandwidth: float
    source: str = "cost-model"

    @property
    def ridge(self) -> float:
        """Ridge-point intensity (flops/byte) where the roofs meet."""
        return self.flop_rate / self.bandwidth

    @classmethod
    def from_cost_model(cls, cost_model: Any) -> "MachineRates":
        """Rates implied by an alpha-beta :class:`CostModel`."""
        return cls(
            flop_rate=cost_model.flop_rate,
            bandwidth=1.0 / cost_model.inv_bandwidth,
            source="cost-model",
        )

    @classmethod
    def from_calibration(cls, calib: Any) -> "MachineRates":
        """Rates measured by ``harness profile --calibrate``.

        Uses the best measured kernel flop rate as the compute roof and
        the measured copy bandwidth as the traffic roof.
        """
        return cls(
            flop_rate=calib.peak_flop_rate(),
            bandwidth=calib.copy_bandwidth,
            source="calibration",
        )

    def attainable(self, intensity: float) -> float:
        """Attainable flop rate at ``intensity`` (the roofline curve)."""
        return min(self.flop_rate, intensity * self.bandwidth)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        out = dataclasses.asdict(self)
        out["ridge"] = self.ridge
        return out


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One phase placed on the roofline.

    ``bound`` is ``"compute"`` or ``"bandwidth"`` (``"n/a"`` for phases
    with neither flops nor traffic); ``efficiency`` is achieved rate
    over attainable rate, so a low value flags headroom the roofline
    itself cannot explain (latency, idling, overhead charges).
    """

    phase: str
    flops: int
    nbytes: int
    virtual_time: float
    intensity: float
    achieved_rate: float
    attainable_rate: float
    bound: str

    @property
    def efficiency(self) -> float:
        """Achieved over attainable rate in [0, 1]-ish."""
        if self.attainable_rate <= 0.0:
            return 0.0
        return self.achieved_rate / self.attainable_rate

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        out = dataclasses.asdict(self)
        out["efficiency"] = self.efficiency
        return out


@dataclasses.dataclass
class RooflineReport:
    """All phases of a run classified against one machine's roofline."""

    machine: MachineRates
    points: list[RooflinePoint]

    def render(self) -> str:
        """Human-readable roofline table."""
        from ..util.tables import render_table

        rows = []
        for p in self.points:
            inten = ("inf" if math.isinf(p.intensity)
                     else f"{p.intensity:.3g}")
            rows.append([
                p.phase, p.flops, p.nbytes, inten,
                f"{p.achieved_rate:.3e}", f"{p.attainable_rate:.3e}",
                p.bound, f"{p.efficiency:.1%}",
            ])
        return render_table(
            ["phase", "flops", "bytes", "flops/byte", "achieved",
             "attainable", "bound", "eff"],
            rows,
            title=(f"Roofline ({self.machine.source}: "
                   f"peak={self.machine.flop_rate:.3e} flop/s, "
                   f"bw={self.machine.bandwidth:.3e} B/s, "
                   f"ridge={self.machine.ridge:.3g} flop/B)"),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return {
            "machine": self.machine.to_dict(),
            "points": [p.to_dict() for p in self.points],
        }


def build_roofline(phase_report: Any, machine: MachineRates
                   ) -> RooflineReport:
    """Classify every phase of a :class:`PhaseReport` on the roofline.

    Per ``"segment/phase"`` key, flops, bytes, *and* time are the
    segment's critical rank's (the same rank whose per-phase times
    :meth:`PhaseReport.virtual_by_phase` reports), so achieved vs
    attainable is a per-node comparison against the machine's per-node
    roofs — aggregate-over-ranks rates would not be.
    """
    virtual = phase_report.virtual_by_phase()
    points: list[RooflinePoint] = []
    for key in phase_report.phases():
        segment, phase = key.split("/", 1)
        crit = phase_report.segment_critical_rank[segment]
        stats = [s for s in phase_report.per_rank(segment, phase)
                 if s.rank == crit]
        flops = sum(s.flops for s in stats)
        nbytes = sum(s.bytes_sent for s in stats)
        vt = virtual.get(key, 0.0)
        if nbytes > 0:
            intensity = flops / nbytes
        elif flops > 0:
            intensity = math.inf
        else:
            intensity = 0.0
        achieved = flops / vt if vt > 0.0 else 0.0
        if flops == 0 and nbytes == 0:
            bound = "n/a"
            attainable = 0.0
        else:
            attainable = machine.attainable(intensity)
            bound = ("compute" if intensity >= machine.ridge
                     else "bandwidth")
        points.append(RooflinePoint(
            phase=key, flops=flops, nbytes=nbytes, virtual_time=vt,
            intensity=intensity, achieved_rate=achieved,
            attainable_rate=attainable, bound=bound,
        ))
    return RooflineReport(machine=machine, points=points)
