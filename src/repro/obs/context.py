"""Trace-context propagation: correlate spans across ranks and requests.

A :class:`TraceContext` is the correlation envelope of the telemetry
pipeline: one ``trace_id`` names one logical operation end to end (a
``solve()`` call, a service request), and every span, log record, and
message emitted while that operation runs carries it.  The pieces that
propagate it:

- :func:`repro.comm.runtime.run_spmd` captures the caller's active
  context (or mints one when tracing) and installs a per-rank child —
  ``rank`` filled in — on every simulated rank's thread, so all ranks
  of one solve share one ``trace_id``;
- the runtime stamps the ``trace_id`` into every point-to-point message
  envelope (:class:`repro.comm.runtime._Message`), so in-flight traffic
  is attributable to its originating operation;
- :class:`repro.service.SolverService` mints a fresh ``request_id``
  child per admitted request and serves the batch inside that context,
  so the request lifecycle spans, the structured log records
  (:mod:`repro.obs.log`), and the nested SPMD rank spans all stitch
  into one correlated trace.

Contexts are immutable; derivation (:meth:`TraceContext.for_rank`,
:meth:`TraceContext.for_request`, :meth:`TraceContext.child`) returns a
new instance.  Installation is thread-local (the same ownership model
as the tracer and the flop counter), so concurrent requests on
different worker threads never see each other's context.
"""

from __future__ import annotations

import dataclasses
import threading
import uuid
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_request_id",
    "new_trace_context",
    "current_trace_context",
    "trace_context",
]


def new_trace_id() -> str:
    """Fresh 16-hex-digit trace id (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


def new_request_id() -> str:
    """Fresh 12-hex-digit request id (scoped to one trace)."""
    return uuid.uuid4().hex[:12]


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Immutable correlation envelope for one traced operation.

    Attributes
    ----------
    trace_id:
        Identifier of the whole logical operation; shared by every
        rank, span, message, and log record it produces.
    request_id:
        Identifier of one service request within the trace (``None``
        outside the service layer).
    rank:
        Simulated rank this context is installed on (``None`` outside
        the SPMD runtime).
    parent_span:
        Optional name of the enclosing span, for hierarchical
        correlation in exported traces.
    """

    trace_id: str
    request_id: str | None = None
    rank: int | None = None
    parent_span: str | None = None

    def for_rank(self, rank: int) -> "TraceContext":
        """Derive the per-rank child installed on an SPMD rank thread."""
        return dataclasses.replace(self, rank=rank)

    def for_request(self, request_id: str | None = None) -> "TraceContext":
        """Derive a child carrying a (fresh by default) request id."""
        return dataclasses.replace(
            self, request_id=request_id or new_request_id()
        )

    def child(self, parent_span: str) -> "TraceContext":
        """Derive a child recording the enclosing span's name."""
        return dataclasses.replace(self, parent_span=parent_span)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form with ``None`` fields omitted (log/envelope
        serialization)."""
        out: dict[str, Any] = {"trace_id": self.trace_id}
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.rank is not None:
            out["rank"] = self.rank
        if self.parent_span is not None:
            out["parent_span"] = self.parent_span
        return out


def new_trace_context() -> TraceContext:
    """Mint a root :class:`TraceContext` with a fresh trace id."""
    return TraceContext(trace_id=new_trace_id())


_state = threading.local()


def current_trace_context() -> TraceContext | None:
    """The context active on this thread, or ``None`` (uncorrelated)."""
    return getattr(_state, "context", None)


@contextmanager
def trace_context(ctx: TraceContext | None = None) -> Iterator[TraceContext]:
    """Install ``ctx`` (a fresh root by default) on this thread.

    >>> with trace_context() as tc:
    ...     assert current_trace_context() is tc
    >>> current_trace_context() is None
    True
    """
    if ctx is None:
        ctx = new_trace_context()
    previous = current_trace_context()
    _state.context = ctx
    try:
        yield ctx
    finally:
        _state.context = previous
