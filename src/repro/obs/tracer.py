"""Per-rank tracer with nestable spans on dual (wall, virtual) clocks.

Each simulated rank owns one :class:`Tracer`, installed thread-locally
by :func:`repro.comm.runtime.run_spmd` when tracing is requested —
exactly the ownership model of :class:`repro.util.flops.FlopCounter`.
Instrumented code never touches a tracer object directly; it calls the
module-level helpers::

    from repro.obs import span

    with span("scan"):
        ...  # recursive-doubling rounds

When no tracer is installed on the thread, :func:`span` returns a
shared no-op context manager: the cost of disabled instrumentation is
one thread-local attribute lookup, the same guard pattern (and the same
budget) as :func:`repro.util.flops.record_flops`.

Spans record, at entry and exit: virtual-clock time (via the bound
:class:`~repro.comm.clock.VirtualClock`, synchronized so lazily
accounted flops are attributed to the span that executed them), wall
time (``time.perf_counter``), and the deltas of the rank's flop and
point-to-point traffic counters.  Because virtual time only advances
through counted flops and modelled message events, spans that tile a
rank's execution partition its final virtual time exactly — the
property :class:`repro.obs.report.PhaseReport` relies on.

Span categories (``cat``):

``"phase"``
    Top-level solver phases (``build`` / ``scan`` / ``closing`` /
    ``backsub`` …).  These tile each rank's timeline and feed the
    :class:`~repro.obs.report.PhaseReport`.
``"coll"``
    One span per user-facing collective call (``bcast``,
    ``allgather``, …), emitted by the communicator.
``"comm"``
    Point-to-point receive waits, emitted by the runtime with the
    matched partner rank and byte count.
``"detail"``
    Fine-grained sub-steps (e.g. the closing factorization) that nest
    inside phases and are excluded from phase aggregation.
``"request"``
    Request lifecycle stages emitted by the solver service
    (:mod:`repro.service`): ``queued`` / ``batched`` / ``solved``
    spans per request, recorded with :meth:`Tracer.closed_span`
    because the stage boundaries are measured across threads.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from .flightrec import _ACTIVE as _FR_ACTIVE
from .flightrec import _state as _fr_state

__all__ = [
    "SpanRecord",
    "EventRecord",
    "RankTrace",
    "Tracer",
    "current_tracer",
    "tracing",
    "span",
    "instant",
    "kernel_time",
]


@dataclasses.dataclass
class SpanRecord:
    """One closed span on a rank's timeline.

    Attributes
    ----------
    name / cat / depth:
        Span name, category (see module docstring), and nesting depth
        at entry (0 for top-level phases).
    v_start / v_end:
        Virtual-clock boundaries in modelled seconds (both 0.0 when the
        tracer has no bound clock, e.g. outside the SPMD runtime).
    w_start / w_end:
        Wall-clock boundaries (``time.perf_counter`` seconds).
    flops / bytes_sent / msgs_sent:
        Deltas of the rank's counters across the span (children
        included — aggregate top-level spans only to avoid double
        counting).
    attrs:
        Free-form annotations (partner rank, tag, byte counts, …).
    """

    name: str
    cat: str
    depth: int
    v_start: float
    v_end: float
    w_start: float
    w_end: float
    flops: int = 0
    bytes_sent: int = 0
    msgs_sent: int = 0
    attrs: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def v_dur(self) -> float:
        """Virtual duration in modelled seconds."""
        return self.v_end - self.v_start

    @property
    def w_dur(self) -> float:
        """Wall duration in real seconds."""
        return self.w_end - self.w_start

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable for simple attrs)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class EventRecord:
    """One instantaneous event (e.g. a message send) on a timeline."""

    name: str
    cat: str
    v_ts: float
    w_ts: float
    attrs: dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable for simple attrs)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RankTrace:
    """Finished timeline of one simulated rank.

    ``spans`` are appended at span *exit* (children precede parents);
    sort by ``v_start`` for chronological order.  ``kernel_wall`` /
    ``kernel_calls`` hold the measured wall seconds and call counts of
    the instrumented block kernels (``kernel.lu``, ``kernel.trsm``,
    ``kernel.gemm``, ``comm.copy``) — the wall-clock counterpart of the
    flop counter's per-kernel breakdown.
    """

    rank: int
    spans: list[SpanRecord] = dataclasses.field(default_factory=list)
    events: list[EventRecord] = dataclasses.field(default_factory=list)
    kernel_wall: dict[str, float] = dataclasses.field(default_factory=dict)
    kernel_calls: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Correlation id of the operation this timeline belongs to
    #: (see :mod:`repro.obs.context`); ``None`` for uncorrelated runs.
    trace_id: str | None = None

    def phase_spans(self) -> list[SpanRecord]:
        """The ``cat == "phase"`` spans in chronological order."""
        return sorted(
            (s for s in self.spans if s.cat == "phase"),
            key=lambda s: (s.v_start, s.w_start),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable for simple attrs)."""
        out = {
            "rank": self.rank,
            "spans": [s.to_dict() for s in self.spans],
            "events": [e.to_dict() for e in self.events],
            "kernel_wall": dict(self.kernel_wall),
            "kernel_calls": dict(self.kernel_calls),
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out


class _Span:
    """Live context manager for one span; records on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_attrs", "_depth",
                 "_v0", "_w0", "_flops0", "_bytes0", "_msgs0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        t = self._tracer
        self._depth = t._depth
        t._depth += 1
        self._v0 = t._vnow()
        self._flops0 = t.counter.total if t.counter is not None else 0
        st = t.stats
        self._bytes0 = st.bytes_sent if st is not None else 0
        self._msgs0 = st.msgs_sent if st is not None else 0
        self._w0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        w1 = time.perf_counter()
        t = self._tracer
        t._depth -= 1
        st = t.stats
        t.spans.append(SpanRecord(
            name=self._name,
            cat=self._cat,
            depth=self._depth,
            v_start=self._v0,
            v_end=t._vnow(),
            w_start=self._w0,
            w_end=w1,
            flops=(t.counter.total - self._flops0)
            if t.counter is not None else 0,
            bytes_sent=(st.bytes_sent - self._bytes0) if st is not None else 0,
            msgs_sent=(st.msgs_sent - self._msgs0) if st is not None else 0,
            attrs=self._attrs,
        ))
        return False


class Tracer:
    """Collects spans and events for one simulated rank.

    Parameters
    ----------
    rank:
        Rank id stamped into the finished :class:`RankTrace`.
    clock:
        Optional :class:`~repro.comm.clock.VirtualClock`; span
        boundaries call ``clock.sync_compute()`` so lazily accounted
        flops land in the span that executed them.  Without a clock,
        virtual timestamps are 0.0 and only wall times are meaningful.
    counter:
        Optional :class:`~repro.util.flops.FlopCounter` for per-span
        flop deltas.
    stats:
        Optional :class:`~repro.comm.stats.RankStats` for per-span
        traffic deltas.
    trace_id:
        Optional correlation id (see :mod:`repro.obs.context`) stamped
        into the finished :class:`RankTrace` so merged multi-rank /
        multi-run exports remain attributable to one operation.
    """

    __slots__ = ("rank", "clock", "counter", "stats", "spans", "events",
                 "kernel_wall", "kernel_calls", "trace_id", "_depth")

    def __init__(self, rank: int = 0, clock=None, counter=None, stats=None,
                 trace_id: str | None = None):
        self.rank = rank
        self.clock = clock
        self.counter = counter
        self.stats = stats
        self.trace_id = trace_id
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.kernel_wall: dict[str, float] = {}
        self.kernel_calls: dict[str, int] = {}
        self._depth = 0

    def _vnow(self) -> float:
        clock = self.clock
        return clock.sync_compute() if clock is not None else 0.0

    def span(self, name: str, cat: str = "phase", **attrs: Any) -> _Span:
        """Open a nestable span; use as a context manager."""
        return _Span(self, name, cat, attrs)

    def instant(self, name: str, cat: str = "comm", **attrs: Any) -> None:
        """Record an instantaneous event at the current clocks."""
        self.events.append(EventRecord(
            name=name, cat=cat, v_ts=self._vnow(),
            w_ts=time.perf_counter(), attrs=attrs,
        ))

    def closed_span(self, name: str, cat: str, v_start: float, v_end: float,
                    w_start: float, w_end: float, **attrs: Any) -> None:
        """Record a span whose boundaries the caller already measured
        (used by the runtime for receive waits)."""
        self.spans.append(SpanRecord(
            name=name, cat=cat, depth=self._depth,
            v_start=v_start, v_end=v_end, w_start=w_start, w_end=w_end,
            attrs=attrs,
        ))

    def add_kernel_time(self, name: str, seconds: float) -> None:
        """Accumulate measured wall time for one block-kernel call."""
        self.kernel_wall[name] = self.kernel_wall.get(name, 0.0) + seconds
        self.kernel_calls[name] = self.kernel_calls.get(name, 0) + 1

    def finish(self) -> RankTrace:
        """Freeze the collected records into a :class:`RankTrace`."""
        return RankTrace(rank=self.rank, spans=self.spans, events=self.events,
                         kernel_wall=self.kernel_wall,
                         kernel_calls=self.kernel_calls,
                         trace_id=self.trace_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Tracer(rank={self.rank}, spans={len(self.spans)}, "
                f"events={len(self.events)})")


class _NullSpan:
    """Shared no-op span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_state = threading.local()


def current_tracer() -> Tracer | None:
    """The tracer active on this thread, or ``None`` (tracing off)."""
    return getattr(_state, "tracer", None)


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (a fresh one by default) on this thread.

    >>> from repro.obs import tracing, span
    >>> with tracing() as tr:
    ...     with span("work"):
    ...         pass
    >>> [s.name for s in tr.spans]
    ['work']
    """
    if tracer is None:
        tracer = Tracer()
    previous = current_tracer()
    _state.tracer = tracer
    try:
        yield tracer
    finally:
        _state.tracer = previous


def span(name: str, cat: str = "phase", **attrs: Any):
    """Open a span on the active tracer; a shared no-op when disabled.

    The disabled path costs one thread-local lookup — safe to leave in
    hot paths permanently (guarded by the tracing-overhead quality
    gate in ``tests/test_quality_gates.py``).  When no tracer is
    installed but the thread carries a
    :class:`repro.obs.flightrec.FlightRecorder`, top-level ``phase``
    spans still mark their boundaries in the recorder's ring so
    untraced production runs keep a phase timeline for post-mortems;
    the extra check is gated on a process-global recorder count so the
    fully disabled path stays at one lookup.
    """
    tracer = getattr(_state, "tracer", None)
    if tracer is None:
        if _FR_ACTIVE.count and cat == "phase":
            rec = getattr(_fr_state, "recorder", None)
            if rec is not None:
                return rec.phase_span(name)
        return _NULL_SPAN
    return tracer.span(name, cat, **attrs)


def instant(name: str, cat: str = "comm", **attrs: Any) -> None:
    """Record an instantaneous event on the active tracer, if any."""
    tracer = getattr(_state, "tracer", None)
    if tracer is not None:
        tracer.instant(name, cat, **attrs)


class _KernelTimer:
    """Live context manager timing one block-kernel call."""

    __slots__ = ("_tracer", "_name", "_t0")

    def __init__(self, tracer: Tracer, name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> None:
        self._t0 = time.perf_counter()
        return None

    def __exit__(self, *exc) -> bool:
        self._tracer.add_kernel_time(
            self._name, time.perf_counter() - self._t0
        )
        return False


def kernel_time(name: str):
    """Time one kernel call on the active tracer; no-op when disabled.

    Unlike :func:`span`, kernel timings are plain per-name wall-clock
    accumulators (no virtual-clock sync, no per-call records), so the
    enabled cost is two ``perf_counter`` reads — cheap enough for the
    innermost block kernels (``kernel.lu`` / ``kernel.trsm`` /
    ``kernel.gemm`` / ``comm.copy``).  The disabled path is the same
    one-lookup guard as :func:`span`.
    """
    tracer = getattr(_state, "tracer", None)
    if tracer is None:
        return _NULL_SPAN
    return _KernelTimer(tracer, name)
