"""Aggregated per-phase cost reports built from rank traces.

A :class:`PhaseReport` condenses the raw span timelines of one or more
:class:`~repro.comm.stats.SimulationResult` *segments* (e.g. ARD's
``factor`` and ``solve`` phases) into per-phase, per-rank totals of
virtual time, wall time, flops, and point-to-point traffic — the
measured counterpart of the analytic breakdown in experiment recon-T2.

Because the solver phase spans tile each rank's execution and virtual
time only advances through counted flops and modelled message events,
the per-phase virtual times of a segment's critical rank sum to that
segment's makespan exactly; :meth:`PhaseReport.virtual_by_phase`
exposes exactly those numbers, so their total matches
``SolveInfo.virtual_time``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

__all__ = ["PhaseStat", "PhaseReport", "build_phase_report"]


@dataclasses.dataclass
class PhaseStat:
    """Aggregated cost of one phase on one rank within one segment."""

    segment: str
    phase: str
    rank: int
    virtual_time: float = 0.0
    wall_time: float = 0.0
    flops: int = 0
    bytes_sent: int = 0
    msgs_sent: int = 0
    count: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class PhaseReport:
    """Per-phase, per-rank cost breakdown of a traced run.

    Attributes
    ----------
    stats:
        One :class:`PhaseStat` per (segment, phase, rank), in execution
        order.
    segment_virtual:
        Modelled makespan of each segment (max final clock over ranks).
    segment_critical_rank:
        The rank realizing each segment's makespan.
    nranks:
        Number of simulated ranks.
    kernel_wall / kernel_calls:
        Measured wall seconds and call counts of the instrumented block
        kernels (``kernel.lu`` / ``kernel.trsm`` / ``kernel.gemm`` /
        ``comm.copy``), summed over all ranks and segments — where the
        host actually spends its time, complementing the modelled
        virtual breakdown above.
    critpath:
        Optional :class:`~repro.obs.critpath.CritPathReport` for the
        same segments (attached by ``build_phase_report(...,
        critpath=True)`` or the profiler); rendered after the phase
        tables when present.
    """

    stats: list[PhaseStat]
    segment_virtual: dict[str, float]
    segment_critical_rank: dict[str, int]
    nranks: int
    kernel_wall: dict[str, float] = dataclasses.field(default_factory=dict)
    kernel_calls: dict[str, int] = dataclasses.field(default_factory=dict)
    critpath: Any = None

    @property
    def virtual_total(self) -> float:
        """Sum of segment makespans — the run's modelled time."""
        return sum(self.segment_virtual.values())

    def phases(self) -> list[str]:
        """Ordered unique ``"segment/phase"`` keys."""
        seen: dict[str, None] = {}
        for s in self.stats:
            seen.setdefault(f"{s.segment}/{s.phase}", None)
        return list(seen)

    def per_rank(self, segment: str, phase: str) -> list[PhaseStat]:
        """All ranks' stats for one phase, ordered by rank."""
        return sorted(
            (s for s in self.stats
             if s.segment == segment and s.phase == phase),
            key=lambda s: s.rank,
        )

    def virtual_by_phase(self) -> dict[str, float]:
        """Per-phase virtual seconds on each segment's critical rank.

        Phase spans tile each rank's timeline, so these values sum to
        :attr:`virtual_total` (and hence to ``SolveInfo.virtual_time``
        for distributed methods).
        """
        out: dict[str, float] = {}
        for s in self.stats:
            if s.rank == self.segment_critical_rank[s.segment]:
                key = f"{s.segment}/{s.phase}"
                out[key] = out.get(key, 0.0) + s.virtual_time
        return out

    def render(self) -> str:
        """Human-readable table of the critical-rank breakdown."""
        from ..util.tables import render_table

        total = max(self.virtual_total, 1e-300)
        rows = []
        for key, vt in self.virtual_by_phase().items():
            segment, phase = key.split("/", 1)
            crit = self.segment_critical_rank[segment]
            stats = [s for s in self.per_rank(segment, phase)
                     if s.rank == crit]
            flops = sum(s.flops for s in stats)
            nbytes = sum(s.bytes_sent for s in stats)
            msgs = sum(s.msgs_sent for s in stats)
            rows.append([key, f"{vt:.3e}", f"{vt / total:.1%}",
                         flops, nbytes, msgs])
        table = render_table(
            ["phase", "virtual_s", "share", "flops", "bytes", "msgs"],
            rows,
            title=f"Phase breakdown (P={self.nranks}, "
            f"T_virtual={self.virtual_total:.3e}s, critical ranks)",
        )
        if self.kernel_wall:
            kernel_rows = [
                [name, f"{self.kernel_wall[name]:.3e}",
                 self.kernel_calls.get(name, 0)]
                for name in sorted(self.kernel_wall)
            ]
            table += "\n" + render_table(
                ["kernel", "wall_s", "calls"],
                kernel_rows,
                title="Kernel wall time (all ranks)",
            )
        if self.critpath is not None:
            table += "\n" + self.critpath.render()
        return table

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return {
            "nranks": self.nranks,
            "virtual_total": self.virtual_total,
            "segment_virtual": dict(self.segment_virtual),
            "segment_critical_rank": dict(self.segment_critical_rank),
            "virtual_by_phase": self.virtual_by_phase(),
            "kernel_wall": dict(self.kernel_wall),
            "kernel_calls": dict(self.kernel_calls),
            "critpath": (self.critpath.to_dict()
                         if self.critpath is not None else None),
            "stats": [s.to_dict() for s in self.stats],
        }


def build_phase_report(
    segments: Sequence[tuple[str, Any]],
    *,
    critpath: bool = False,
) -> PhaseReport | None:
    """Aggregate traced segments into a :class:`PhaseReport`.

    Parameters
    ----------
    segments:
        ``(label, SimulationResult)`` pairs in execution order, e.g.
        ``[("factor", fact.factor_result), ("solve",
        fact.last_solve_result)]``.  Returns ``None`` if any segment is
        missing or carries no traces (tracing was disabled).
    critpath:
        Also run :func:`~repro.obs.critpath.analyze_critical_path` on
        the segments and attach the result as
        :attr:`PhaseReport.critpath`.
    """
    stats: list[PhaseStat] = []
    segment_virtual: dict[str, float] = {}
    segment_critical: dict[str, int] = {}
    kernel_wall: dict[str, float] = {}
    kernel_calls: dict[str, int] = {}
    nranks = 0
    for label, result in segments:
        if result is None or getattr(result, "traces", None) is None:
            return None
        nranks = max(nranks, result.nranks)
        segment_virtual[label] = result.virtual_time
        segment_critical[label] = max(
            range(result.nranks),
            key=lambda r: result.stats[r].virtual_time,
        )
        for trace in result.traces:
            for name, seconds in getattr(trace, "kernel_wall", {}).items():
                kernel_wall[name] = kernel_wall.get(name, 0.0) + seconds
            for name, calls in getattr(trace, "kernel_calls", {}).items():
                kernel_calls[name] = kernel_calls.get(name, 0) + calls
            agg: dict[str, PhaseStat] = {}
            for s in trace.phase_spans():
                stat = agg.get(s.name)
                if stat is None:
                    stat = agg[s.name] = PhaseStat(
                        segment=label, phase=s.name, rank=trace.rank
                    )
                    stats.append(stat)
                stat.virtual_time += s.v_dur
                stat.wall_time += s.w_dur
                stat.flops += s.flops
                stat.bytes_sent += s.bytes_sent
                stat.msgs_sent += s.msgs_sent
                stat.count += 1
    crit_report = None
    if critpath:
        from .critpath import analyze_critical_path

        crit_report = analyze_critical_path(list(segments))
    return PhaseReport(
        stats=stats,
        segment_virtual=segment_virtual,
        segment_critical_rank=segment_critical,
        nranks=nranks,
        kernel_wall=kernel_wall,
        kernel_calls=kernel_calls,
        critpath=crit_report,
    )
