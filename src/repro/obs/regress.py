"""Perf-trajectory regression gate over ``results/BENCH_history.jsonl``.

``python -m repro.harness bench-history`` appends one schema-versioned
record per run (see :mod:`repro.harness.bench_history`); this module is
the gate that reads the trajectory back: the newest record is compared
against the **rolling median** of the preceding window for every gated
metric, and any change worse than the threshold (default 15%) fails the
check.  The median baseline absorbs single-run noise — one lucky or
unlucky historical run cannot move the reference the way a
newest-vs-previous comparison would.

Directionality is owned here, in :data:`GATED_METRICS`: throughput
metrics (``higher`` is better) regress by dropping, latency/overhead
metrics (``lower`` is better) regress by rising.  Metrics absent from a
record are skipped, so the gate tolerates partial runs and older
schema versions.

CLI (non-blocking in CI via ``continue-on-error``)::

    python -m repro.obs.regress results/BENCH_history.jsonl --threshold 0.15

Exit status: ``0`` when no gated metric regressed (including the seeded
single-record case), ``1`` on regression, ``2`` on a missing/unreadable
history file.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics
import sys
from pathlib import Path
from typing import Any

from .log import console

__all__ = [
    "GATED_METRICS",
    "Regression",
    "load_history",
    "check_regressions",
    "main",
]

#: Gated metric -> direction of goodness ("higher" or "lower" is better).
GATED_METRICS: dict[str, str] = {
    "kernels.lu_batched_s": "lower",
    "kernels.lu_speedup": "higher",
    "service.req_per_s": "higher",
    "service.speedup_vs_rd": "higher",
    "obs.disabled_span_us": "lower",
    # Always-on flight-recorder cost: ARD factor+solve wall time with
    # the per-rank recorder on over off (the <3% budget of
    # docs/INCIDENTS.md); rises when a recorder change inflates the
    # comm hot path.
    "obs.flightrec_overhead": "lower",
    "solve.ard_wall_s": "lower",
    # Processes-vs-threads ARD wall clock (docs/BACKENDS.md); only
    # recorded on hosts with >= 4 cores, skipped elsewhere.
    "backends.ard_process_wall_s": "lower",
    "backends.process_speedup": "higher",
    # Predicted-vs-measured drift recorded by bench_f6_model_validation
    # (median |log ratio| over recon-F6's parity points): rises when the
    # analytic model or a calibration change degrades parity.
    "perfmodel.model_error": "lower",
    # Planner regret: time of the planner's method="auto" choice
    # divided by the best fixed configuration in the portfolio at the
    # same shapes (benchmarks/bench_planner.py).  1.0 is a perfect
    # planner; rising regret means the planner started losing to
    # hand-tuning, which the never-lose guard is supposed to prevent.
    "planner.regret": "lower",
}


@dataclasses.dataclass(frozen=True)
class Regression:
    """One gated metric that moved past the threshold.

    ``change`` is the signed relative move in the *bad* direction
    (``0.20`` = 20% worse than the rolling-median baseline).
    """

    metric: str
    direction: str
    newest: float
    baseline: float
    change: float
    threshold: float

    def describe(self) -> str:
        """One human-readable line for CLI/CI output."""
        arrow = "rose" if self.direction == "lower" else "fell"
        return (f"{self.metric}: {arrow} {self.change:.1%} "
                f"(newest {self.newest:.6g} vs median {self.baseline:.6g}, "
                f"threshold {self.threshold:.0%})")


def load_history(path: str | Path) -> list[dict[str, Any]]:
    """Load the JSONL history; one dict per non-empty line, in order."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def check_regressions(history: list[dict[str, Any]], *,
                      threshold: float = 0.15,
                      window: int = 8) -> list[Regression]:
    """Compare the newest record against the rolling-median baseline.

    For each metric in :data:`GATED_METRICS` present in the newest
    record's ``"metrics"`` dict *and* in at least one of the up-to-
    ``window`` preceding records, the baseline is the median of the
    preceding values; a move worse than ``threshold`` in the metric's
    bad direction yields a :class:`Regression`.  Fewer than two records
    (the freshly seeded store) can never regress.
    """
    if len(history) < 2:
        return []
    newest = history[-1].get("metrics", {})
    previous = [r.get("metrics", {}) for r in history[-(window + 1):-1]]
    out: list[Regression] = []
    for metric, direction in sorted(GATED_METRICS.items()):
        value = newest.get(metric)
        if value is None:
            continue
        past = [p[metric] for p in previous
                if isinstance(p.get(metric), (int, float))]
        if not past:
            continue
        baseline = statistics.median(past)
        if baseline == 0:
            continue
        if direction == "lower":
            change = (value - baseline) / abs(baseline)
        else:
            change = (baseline - value) / abs(baseline)
        if change > threshold:
            out.append(Regression(metric=metric, direction=direction,
                                  newest=float(value),
                                  baseline=float(baseline),
                                  change=float(change),
                                  threshold=threshold))
    return out


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring for exit codes."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Gate the newest benchmark record against the "
                    "rolling median of the perf trajectory.",
    )
    parser.add_argument("history", nargs="?",
                        default="results/BENCH_history.jsonl",
                        help="JSONL history file (default: %(default)s)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated relative regression "
                             "(default: %(default)s)")
    parser.add_argument("--window", type=int, default=8,
                        help="rolling-median window size "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    try:
        history = load_history(args.history)
    except OSError as exc:
        console(f"regress: cannot read history: {exc}")
        return 2
    if len(history) < 2:
        console(f"regress: {len(history)} record(s) in {args.history} — "
                "seeded, nothing to compare yet.")
        return 0
    regressions = check_regressions(history, threshold=args.threshold,
                                    window=args.window)
    gated = sum(1 for m in GATED_METRICS
                if history[-1].get("metrics", {}).get(m) is not None)
    if not regressions:
        console(f"regress: OK — {gated} gated metric(s) within "
                f"{args.threshold:.0%} of the rolling median "
                f"({len(history)} records).")
        return 0
    console(f"regress: FAIL — {len(regressions)} regression(s):")
    for reg in regressions:
        console(f"  {reg.describe()}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
