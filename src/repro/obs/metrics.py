"""Lightweight thread-safe metrics: counters, gauges, summaries.

The tracing side of :mod:`repro.obs` answers "where did one run spend
its time"; this module answers "what has the process done so far" — the
aggregate view a long-lived component (notably the solver service,
:mod:`repro.service`) exposes while serving a request stream.  Three
instrument kinds, all registered on a :class:`MetricsRegistry`:

:class:`Counter`
    Monotonic count (requests served, cache hits, bytes evicted).
:class:`Gauge`
    Point-in-time value that moves both ways (queue depth, cached
    bytes).
:class:`Summary`
    Streaming aggregate of an observed quantity — count / total / min /
    max / last (batch sizes, queue-wait seconds).  No buckets: the
    consumers here need means and extremes, not quantiles, and a
    five-number struct keeps ``observe()`` O(1) and lock-cheap.

``registry.snapshot()`` returns a plain nested dict (JSON-serializable,
stable key order) so services can surface one self-describing blob; the
same shape is written by :func:`repro.io.write_stats_json` consumers.

>>> reg = MetricsRegistry()
>>> reg.counter("requests").inc()
>>> reg.summary("batch_size").observe(4)
>>> snap = reg.snapshot()
>>> snap["counters"]["requests"], snap["summaries"]["batch_size"]["max"]
(1, 4)
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["Counter", "Gauge", "Summary", "MetricsRegistry"]


class Counter:
    """Monotonic counter; ``inc`` by any non-negative amount."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """Point-in-time value; settable and adjustable in both directions."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Summary:
    """Streaming count/total/min/max/last aggregate of observations."""

    __slots__ = ("_lock", "count", "total", "min", "max", "last")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.last: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.count += 1
            self.total += value
            self.last = value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float | None:
        """Mean of all observations (``None`` before the first)."""
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }


class MetricsRegistry:
    """Named instruments with lazy creation and a combined snapshot.

    Instrument creation is idempotent per name; asking for an existing
    name with a different kind raises ``ValueError`` (a metrics naming
    bug, not a runtime condition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._summaries: dict[str, Summary] = {}

    def _get(self, table: dict[str, Any], name: str, factory) -> Any:
        with self._lock:
            inst = table.get(name)
            if inst is None:
                for other in (self._counters, self._gauges, self._summaries):
                    if other is not table and name in other:
                        raise ValueError(
                            f"metric {name!r} already registered with a "
                            "different kind"
                        )
                inst = table[name] = factory()
            return inst

    def counter(self, name: str) -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get(self._gauges, name, Gauge)

    def summary(self, name: str) -> Summary:
        """Get or create the named :class:`Summary`."""
        return self._get(self._summaries, name, Summary)

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one nested, JSON-serializable dict."""
        with self._lock:
            return {
                "counters": {k: c.value
                             for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value
                           for k, g in sorted(self._gauges.items())},
                "summaries": {k: s.to_dict()
                              for k, s in sorted(self._summaries.items())},
            }
