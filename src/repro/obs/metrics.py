"""Lightweight thread-safe metrics: counters, gauges, summaries.

The tracing side of :mod:`repro.obs` answers "where did one run spend
its time"; this module answers "what has the process done so far" — the
aggregate view a long-lived component (notably the solver service,
:mod:`repro.service`) exposes while serving a request stream.  Three
instrument kinds, all registered on a :class:`MetricsRegistry`:

:class:`Counter`
    Monotonic count (requests served, cache hits, bytes evicted).
:class:`Gauge`
    Point-in-time value that moves both ways (queue depth, cached
    bytes).
:class:`Summary`
    Streaming aggregate of an observed quantity — count / total / min /
    max / last plus windowed quantiles (batch sizes, queue-wait
    seconds).  Quantiles come from a fixed ring buffer of the most
    recent :data:`SUMMARY_WINDOW` observations — deterministic, O(1)
    per ``observe()``, lock-cheap — which is what the Prometheus
    exporter (:mod:`repro.obs.export`) surfaces as p50/p90/p99.

``registry.snapshot()`` returns a plain nested dict (JSON-serializable,
stable key order) so services can surface one self-describing blob; the
same shape is written by :func:`repro.io.write_stats_json` consumers.

>>> reg = MetricsRegistry()
>>> reg.counter("requests").inc()
>>> reg.summary("batch_size").observe(4)
>>> snap = reg.snapshot()
>>> snap["counters"]["requests"], snap["summaries"]["batch_size"]["max"]
(1, 4)
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["Counter", "Gauge", "Summary", "MetricsRegistry", "SUMMARY_WINDOW"]

#: Ring-buffer size backing Summary quantiles (most recent observations).
SUMMARY_WINDOW = 512


class Counter:
    """Monotonic counter; ``inc`` by any non-negative amount."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """Point-in-time value; settable and adjustable in both directions."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Summary:
    """Streaming count/total/min/max/last aggregate with windowed quantiles.

    ``count``/``total``/``min``/``max``/``last`` cover the whole stream;
    :meth:`quantile` is computed over the most recent
    :data:`SUMMARY_WINDOW` observations (a fixed ring buffer), so it
    tracks current behaviour rather than all of history — the usual
    summary-quantile trade-off, made deterministic.
    """

    __slots__ = ("_lock", "count", "total", "min", "max", "last",
                 "_window", "_ring")

    def __init__(self, window: int = SUMMARY_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"summary window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.last: float | None = None
        self._window = window
        self._ring: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            if len(self._ring) < self._window:
                self._ring.append(value)
            else:
                self._ring[self.count % self._window] = value
            self.count += 1
            self.total += value
            self.last = value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float | None:
        """Mean of all observations (``None`` before the first)."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Windowed quantile by nearest-rank over the ring buffer.

        ``None`` before the first observation; with a single
        observation every quantile is that value.  ``q`` must lie in
        ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            data = sorted(self._ring)
        if not data:
            return None
        idx = min(len(data) - 1, max(0, int(round(q * (len(data) - 1)))))
        return data[idx]

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments with lazy creation and a combined snapshot.

    Instrument creation is idempotent per name; asking for an existing
    name with a different kind raises ``ValueError`` (a metrics naming
    bug, not a runtime condition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._summaries: dict[str, Summary] = {}

    def _get(self, table: dict[str, Any], name: str, factory) -> Any:
        with self._lock:
            inst = table.get(name)
            if inst is None:
                for other in (self._counters, self._gauges, self._summaries):
                    if other is not table and name in other:
                        raise ValueError(
                            f"metric {name!r} already registered with a "
                            "different kind"
                        )
                inst = table[name] = factory()
            return inst

    def counter(self, name: str) -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get(self._gauges, name, Gauge)

    def summary(self, name: str) -> Summary:
        """Get or create the named :class:`Summary`."""
        return self._get(self._summaries, name, Summary)

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one nested, JSON-serializable dict."""
        with self._lock:
            return {
                "counters": {k: c.value
                             for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value
                           for k, g in sorted(self._gauges.items())},
                "summaries": {k: s.to_dict()
                              for k, s in sorted(self._summaries.items())},
            }
