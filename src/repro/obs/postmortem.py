"""Cross-rank incident bundles and their post-mortem analysis.

The flight recorder (:mod:`repro.obs.flightrec`) gives every rank a
bounded black-box ring; this module is the crash side of the pattern:

- **Capture.**  :func:`record_failure` is called from every runtime
  failure path — wait-for-graph deadlock, SPMD divergence, worker
  death/heartbeat loss on the process backend, unconsumed messages,
  service deadline breaches and admission-reject storms, health pages,
  and uncaught program exceptions.  It classifies the failure, gathers
  all ranks' ring snapshots (shipped over the control pipes for the
  process backend), the active config, recent plan/health notes, the
  calibration fingerprint, the trace context, and the structured-log
  tail, and writes one schema-versioned
  ``results/incidents/INCIDENT_<trace_id>.json`` bundle.  Capture is
  best-effort by contract: it never raises into (or otherwise masks)
  the original failure.
- **Store.**  :class:`IncidentStore` owns the on-disk bundle directory
  with bounded retention (``incident_retention`` newest bundles kept);
  the service exposes its listing at ``/incidents`` on the
  TelemetryServer.
- **Analysis.**  ``python -m repro.harness postmortem [<bundle>]``
  loads a bundle, rebuilds the merged cross-rank timeline — send→recv
  edges are matched by the runtime ``seq`` ids through
  :func:`repro.obs.critpath.reconstruct_edges`, the same matcher the
  critical-path profiler uses on full traces — names the blocked or
  divergent operation, the culprit rank, and the straggler rank, and
  renders text (per-rank last-N-event tables), JSON, or a Chrome
  trace.  ``--check`` turns the analysis into an exit code for CI
  smoke tests; ``--synthetic`` forces a tiny two-rank deadlock first.

See docs/INCIDENTS.md for the bundle schema and a walkthrough.
"""

from __future__ import annotations

import dataclasses
import datetime
import hashlib
import json
import os
import pathlib
import re
import types
from typing import Any

from ..exceptions import (
    CommError,
    DeadlineExceededError,
    DeadlockError,
    ReproError,
    ServiceOverloadError,
    SpmdDivergenceError,
    UnconsumedMessageError,
)
from .context import TraceContext, current_trace_context, new_trace_id
from .flightrec import RECORD_FIELDS, recent_notes
from .log import active_log, console, get_logger

__all__ = [
    "INCIDENT_SCHEMA_VERSION",
    "IncidentStore",
    "classify_reason",
    "capture_incident",
    "record_failure",
    "load_bundle",
    "analyze_bundle",
    "render_text",
    "to_chrome",
    "force_synthetic_incident",
    "run_postmortem",
]

#: Version stamped into every bundle; bump on breaking schema changes.
INCIDENT_SCHEMA_VERSION = 1

_log = get_logger("postmortem")

_RANK_RE = re.compile(r"rank (\d+)")

#: ``REPRO_INCIDENT_DIR`` values that disable capture entirely.
_DISABLE_VALUES = frozenset({"", "0", "off", "none", "false", "no"})


def classify_reason(exc: BaseException, *, rank: int | None = None,
                    op: str | None = None) -> dict[str, Any]:
    """Map a failure exception to the bundle's ``reason`` descriptor.

    Returns ``{"type", "exception", "message", "rank", "op"}`` where
    ``type`` is one of ``deadlock`` / ``divergence`` / ``worker_death``
    / ``unconsumed`` / ``deadline`` / ``reject_storm`` / ``exception``.
    ``rank`` falls back to an ``exc.failed_rank`` attribute, then to
    the first ``rank <n>`` mention in the message.
    """
    msg = str(exc)
    if isinstance(exc, DeadlockError):
        kind = "deadlock"
    elif isinstance(exc, SpmdDivergenceError):
        kind = "divergence"
    elif isinstance(exc, UnconsumedMessageError):
        kind = "unconsumed"
    elif isinstance(exc, DeadlineExceededError):
        kind = "deadline"
    elif isinstance(exc, ServiceOverloadError):
        kind = "reject_storm"
    elif isinstance(exc, CommError) and "died unexpectedly" in msg:
        kind = "worker_death"
    else:
        kind = "exception"
    if rank is None:
        rank = getattr(exc, "failed_rank", None)
    if rank is None:
        found = _RANK_RE.search(msg)
        rank = int(found.group(1)) if found else None
    return {"type": kind, "exception": type(exc).__name__,
            "message": msg, "rank": rank, "op": op}


def _calibration_fingerprint() -> dict[str, Any] | None:
    """Hash of the committed machine-calibration file, if present."""
    try:
        from ..perfmodel.calibrate import DEFAULT_CALIB_PATH

        path = pathlib.Path(DEFAULT_CALIB_PATH)
        if not path.is_file():
            return None
        data = path.read_bytes()
        return {"path": str(path), "bytes": len(data),
                "sha256": hashlib.sha256(data).hexdigest()[:16]}
    except Exception:  # pragma: no cover - fingerprint is best-effort
        return None


def _config_dict() -> dict[str, Any]:
    from ..config import get_config

    out = dataclasses.asdict(get_config())
    out["dtype"] = str(out["dtype"])
    return out


class IncidentStore:
    """Bounded on-disk bundle directory with mtime-ordered retention.

    Parameters
    ----------
    directory:
        Bundle directory.  ``None`` resolves ``REPRO_INCIDENT_DIR``
        (values in ``0/off/none/false/no`` disable the store), then the
        ``incident_dir`` config field.
    retention:
        Maximum bundles kept; ``None`` reads ``incident_retention``
        from the active config.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 retention: int | None = None):
        if directory is None:
            env = os.environ.get("REPRO_INCIDENT_DIR")
            if env is not None:
                directory = env.strip()
            else:
                from ..config import get_config

                directory = get_config().incident_dir
        if retention is None:
            from ..config import get_config

            retention = get_config().incident_retention
        self.enabled = str(directory).strip().lower() not in _DISABLE_VALUES
        self.directory = (pathlib.Path(directory) if self.enabled else None)
        self.retention = int(retention)

    def paths(self) -> list[pathlib.Path]:
        """Bundle files on disk, newest first by modification time."""
        if not self.enabled or not self.directory.is_dir():
            return []
        found = sorted(
            self.directory.glob("INCIDENT_*.json"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        return found

    def write(self, bundle: dict[str, Any]) -> pathlib.Path | None:
        """Persist one bundle (then prune); returns its path or None."""
        if not self.enabled:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        stem = f"INCIDENT_{bundle['incident_id']}"
        path = self.directory / f"{stem}.json"
        n = 1
        while path.exists():
            path = self.directory / f"{stem}_{n}.json"
            n += 1
        path.write_text(json.dumps(bundle, default=str, sort_keys=True),
                        encoding="utf-8")
        self.prune()
        return path

    def prune(self) -> int:
        """Delete bundles beyond the retention bound; returns count."""
        victims = self.paths()[self.retention:]
        for path in victims:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent prune
                pass
        return len(victims)

    def list(self) -> list[dict[str, Any]]:
        """Bundle summaries (newest first) for the ``/incidents`` route."""
        out = []
        for path in self.paths():
            try:
                bundle = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):  # pragma: no cover - torn write
                continue
            out.append({
                "path": str(path),
                "incident_id": bundle.get("incident_id"),
                "created_at": bundle.get("created_at"),
                "type": bundle.get("reason", {}).get("type"),
                "message": bundle.get("reason", {}).get("message"),
                "backend": bundle.get("backend"),
                "nranks": bundle.get("nranks"),
            })
        return out


def capture_incident(
    reason: dict[str, Any],
    *,
    backend: str,
    nranks: int,
    rings: dict[int, dict[str, Any] | None],
    trace_ctx: TraceContext | None = None,
    extra: dict[str, Any] | None = None,
    store: IncidentStore | None = None,
) -> pathlib.Path | None:
    """Assemble and persist one incident bundle; returns its path.

    ``rings`` maps world rank to a
    :meth:`~repro.obs.flightrec.FlightRecorder.snapshot` dict (``None``
    for ranks whose ring could not be recovered, e.g. a killed worker
    process).  Unlike :func:`record_failure` this raises on I/O errors;
    runtime failure paths go through the never-raising wrapper.
    """
    ctx = trace_ctx if trace_ctx is not None else current_trace_context()
    sink = active_log()
    bundle: dict[str, Any] = {
        "schema_version": INCIDENT_SCHEMA_VERSION,
        "incident_id": ctx.trace_id if ctx is not None else new_trace_id(),
        "created_at": datetime.datetime.now(
            datetime.timezone.utc).isoformat(),
        "reason": reason,
        "backend": backend,
        "nranks": nranks,
        "trace": ctx.to_dict() if ctx is not None else None,
        "config": _config_dict(),
        "notes": recent_notes(),
        "calibration": _calibration_fingerprint(),
        "log_tail": list(sink.tail) if sink is not None else [],
        "rings": {str(rank): snap for rank, snap in rings.items()},
    }
    if extra:
        bundle["extra"] = extra
    result = (store if store is not None else IncidentStore()).write(bundle)
    if result is not None:
        _log.error("incident.captured", path=str(result),
                   type=reason.get("type"), rank=reason.get("rank"))
    return result


def record_failure(
    exc: BaseException,
    *,
    backend: str,
    nranks: int,
    rings: dict[int, dict[str, Any] | None],
    trace_ctx: TraceContext | None = None,
    rank: int | None = None,
    op: str | None = None,
    extra: dict[str, Any] | None = None,
) -> pathlib.Path | None:
    """Never-raising capture hook used by runtime failure paths.

    Classifies ``exc``, captures a bundle, and stamps the bundle path
    onto the exception as ``exc.incident_path`` so callers (and nested
    failure paths — a service deadline wrapping an SPMD abort) can see
    the failure was already captured and skip double capture.
    """
    try:
        if getattr(exc, "incident_path", None) is not None:
            return None
        from ..config import get_config

        if not get_config().flightrec:
            return None
        path = capture_incident(
            classify_reason(exc, rank=rank, op=op),
            backend=backend, nranks=nranks, rings=rings,
            trace_ctx=trace_ctx, extra=extra,
        )
        if path is not None:
            try:
                exc.incident_path = str(path)  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - slotted exception
                pass
        return path
    except Exception:  # pragma: no cover - capture must never mask
        _log.warning("incident.capture_failed", exception=type(exc).__name__)
        return None


# -- analysis -------------------------------------------------------------


def load_bundle(path: str | os.PathLike) -> dict[str, Any]:
    """Load and schema-check one incident bundle from disk."""
    bundle = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    version = bundle.get("schema_version")
    if version != INCIDENT_SCHEMA_VERSION:
        raise ReproError(
            f"unsupported incident schema version {version!r} in {path} "
            f"(this build reads version {INCIDENT_SCHEMA_VERSION})"
        )
    return bundle


def _ring_rows(snap: dict[str, Any] | None) -> list[dict[str, Any]]:
    """Ring records of one rank as field-keyed dicts, oldest first."""
    if not snap:
        return []
    fields = snap.get("fields", list(RECORD_FIELDS))
    return [dict(zip(fields, rec)) for rec in snap.get("records", [])]


def _pseudo_traces(bundle: dict[str, Any]) -> list[Any]:
    """Rebuild minimal per-rank timelines from ring snapshots.

    Send records become ``send`` :class:`~repro.obs.tracer.EventRecord`
    events and recv records zero-width ``cat="comm"`` spans, exactly
    the shapes :func:`repro.obs.critpath.reconstruct_edges` matches by
    ``seq`` — reusing the profiler's matcher on black-box data.
    """
    from .tracer import EventRecord, RankTrace, SpanRecord

    traces = []
    for key, snap in sorted(bundle.get("rings", {}).items(),
                            key=lambda kv: int(kv[0])):
        rank = int(key)
        trace = RankTrace(rank=rank)
        for row in _ring_rows(snap):
            if row["kind"] == "send":
                trace.events.append(EventRecord(
                    name="send", cat="comm",
                    v_ts=row["v_ts"], w_ts=row["w_ts"],
                    attrs={"seq": row["seq"], "dest": row["peer"],
                           "tag": row["tag"], "nbytes": row["nbytes"]},
                ))
            elif row["kind"] == "recv":
                trace.spans.append(SpanRecord(
                    name="recv", cat="comm", depth=0,
                    v_start=row["v_ts"], v_end=row["v_ts"],
                    w_start=row["w_ts"], w_end=row["w_ts"],
                    attrs={"seq": row["seq"], "source": row["peer"],
                           "tag": row["tag"], "nbytes": row["nbytes"]},
                ))
        traces.append(trace)
    return traces


def analyze_bundle(bundle: dict[str, Any]) -> dict[str, Any]:
    """Derive the post-mortem verdict from one loaded bundle.

    Returns a JSON-ready dict: the classified ``reason``, the culprit
    rank and operation, the straggler rank (earliest last activity),
    the blocked set with what each rank was waiting on, per-rank ring
    digests, and the send→recv edge-matching summary.
    """
    from .critpath import reconstruct_edges

    reason = bundle.get("reason", {})
    rings = {int(k): v for k, v in bundle.get("rings", {}).items()}
    rows_by_rank = {rank: _ring_rows(snap) for rank, snap in rings.items()}

    edge_set, _ = reconstruct_edges(
        types.SimpleNamespace(traces=_pseudo_traces(bundle)),
        segment="postmortem",
    )

    blocked = []
    for rank in sorted(rows_by_rank):
        rows = rows_by_rank[rank]
        if rows and rows[-1]["kind"] == "wait":
            last = rows[-1]
            blocked.append({
                "rank": rank, "op": last["op"], "peer": last["peer"],
                "tag": last["tag"], "w_ts": last["w_ts"],
            })

    last_seen = {rank: rows[-1]["w_ts"]
                 for rank, rows in rows_by_rank.items() if rows}
    straggler = (min(last_seen, key=last_seen.get)
                 if last_seen else None)
    missing = sorted(rank for rank, snap in rings.items() if not snap)

    culprit_rank = reason.get("rank")
    culprit_op = reason.get("op")
    blocked_by_rank = {b["rank"]: b for b in blocked}
    if reason.get("type") == "deadlock" and blocked:
        if culprit_rank not in blocked_by_rank:
            culprit_rank = blocked[0]["rank"]
        culprit_op = culprit_op or blocked_by_rank[culprit_rank]["op"]
    if culprit_rank is None and missing:
        culprit_rank = missing[0]
    if culprit_op is None and culprit_rank is not None:
        rows = rows_by_rank.get(culprit_rank) or []
        if rows:
            culprit_op = rows[-1]["op"]
        elif culprit_rank in missing:
            culprit_op = "(ring lost with worker)"
    return {
        "incident_id": bundle.get("incident_id"),
        "created_at": bundle.get("created_at"),
        "backend": bundle.get("backend"),
        "nranks": bundle.get("nranks"),
        "reason": reason,
        "culprit_rank": culprit_rank,
        "culprit_op": culprit_op,
        "straggler_rank": straggler,
        "blocked": blocked,
        "missing_rings": missing,
        "edges": {
            "matched": len(edge_set.edges),
            "unmatched_sends": edge_set.unmatched_sends,
            "unmatched_recvs": edge_set.unmatched_recvs,
        },
        "ranks": {
            str(rank): {
                "count": (rings[rank] or {}).get("count", 0),
                "dropped": (rings[rank] or {}).get("dropped", 0),
                "last_kind": rows[-1]["kind"] if rows else None,
            }
            for rank, rows in rows_by_rank.items()
        },
    }


def render_text(bundle: dict[str, Any], analysis: dict[str, Any],
                *, last_n: int = 10) -> str:
    """Human-readable post-mortem: verdict, blocked set, per-rank tails."""
    from ..util.tables import render_table

    reason = analysis["reason"]
    lines = [
        f"incident {analysis['incident_id']} "
        f"({analysis['created_at']}, backend={analysis['backend']}, "
        f"nranks={analysis['nranks']})",
        f"reason: {reason.get('type')} [{reason.get('exception')}] — "
        f"{reason.get('message')}",
        f"verdict: rank {analysis['culprit_rank']} in op "
        f"{analysis['culprit_op']!r}; straggler rank "
        f"{analysis['straggler_rank']}",
        f"edges: {analysis['edges']['matched']} matched, "
        f"{analysis['edges']['unmatched_sends']} unmatched send(s), "
        f"{analysis['edges']['unmatched_recvs']} unmatched recv(s)",
    ]
    if analysis["missing_rings"]:
        lines.append(
            "missing rings (worker died before snapshot): ranks "
            + ", ".join(str(r) for r in analysis["missing_rings"])
        )
    if analysis["blocked"]:
        lines.append("")
        lines.append(render_table(
            ["rank", "blocked in", "peer", "tag"],
            [[b["rank"], b["op"], b["peer"], b["tag"]]
             for b in analysis["blocked"]],
            title="blocked ranks",
        ))
    for key, snap in sorted(bundle.get("rings", {}).items(),
                            key=lambda kv: int(kv[0])):
        rows = _ring_rows(snap)
        digest = analysis["ranks"].get(key, {})
        title = (f"rank {key} — last {min(last_n, len(rows))} of "
                 f"{digest.get('count', len(rows))} records "
                 f"({digest.get('dropped', 0)} dropped)")
        if not rows:
            lines.append("")
            lines.append(f"{title}: ring unavailable")
            continue
        lines.append("")
        lines.append(render_table(
            ["kind", "op", "peer", "tag", "seq", "nbytes", "v_ts"],
            [[r["kind"], r["op"], r["peer"], r["tag"], r["seq"],
              r["nbytes"], r["v_ts"]] for r in rows[-last_n:]],
            title=title,
        ))
    return "\n".join(lines)


def to_chrome(bundle: dict[str, Any]) -> dict[str, Any]:
    """Bundle rings as a ``chrome://tracing`` / Perfetto event dict.

    Wall timestamps are rebased to the earliest record across ranks;
    phases become duration (``B``/``E``) events and comm records
    instant events on the rank's row.
    """
    rows_by_rank = {int(k): _ring_rows(snap)
                    for k, snap in bundle.get("rings", {}).items()}
    t0 = min((rows[0]["w_ts"] for rows in rows_by_rank.values() if rows),
             default=0.0)
    events: list[dict[str, Any]] = []
    for rank in sorted(rows_by_rank):
        for row in rows_by_rank[rank]:
            ts = (row["w_ts"] - t0) * 1e6
            base = {"pid": 0, "tid": rank, "ts": ts, "name": row["op"]}
            if row["kind"] == "phase":
                events.append({**base, "ph": "B", "cat": "phase"})
            elif row["kind"] == "phase_end":
                events.append({**base, "ph": "E", "cat": "phase"})
            else:
                events.append({
                    **base, "ph": "i", "s": "t", "cat": row["kind"],
                    "args": {"peer": row["peer"], "tag": row["tag"],
                             "seq": row["seq"], "nbytes": row["nbytes"]},
                })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"incident_id": bundle.get("incident_id"),
                          "reason": bundle.get("reason", {}).get("type")}}


# -- CLI ------------------------------------------------------------------


def _deadlock_prog(comm: Any) -> None:
    """Two-rank cyclic wait with no sends: deterministic deadlock."""
    comm.recv(source=(comm.rank + 1) % comm.size, tag=7)


def force_synthetic_incident() -> pathlib.Path:
    """Force one tiny deadlock incident (CI smoke); returns its path."""
    from ..comm.runtime import run_spmd
    from ..config import config_context

    with config_context(flightrec=True, comm_backend="threads"):
        try:
            run_spmd(_deadlock_prog, 2)
        except DeadlockError as exc:
            path = getattr(exc, "incident_path", None)
            if path is None:
                raise ReproError(
                    "synthetic deadlock produced no incident bundle "
                    "(is REPRO_INCIDENT_DIR disabling capture?)"
                ) from exc
            return pathlib.Path(path)
    raise ReproError("synthetic deadlock did not raise DeadlockError")


def run_postmortem(
    bundle_path: str | None = None,
    *,
    as_json: bool = False,
    chrome_out: str | None = None,
    check: bool = False,
    last_n: int = 10,
    synthetic: bool = False,
    verbose: bool = True,
) -> int:
    """CLI entry point behind ``python -m repro.harness postmortem``.

    Loads ``bundle_path`` (default: the newest bundle in the incident
    store), analyzes it, and renders text (default), ``--json``, or a
    ``--chrome`` trace file.  With ``check=True`` the exit code is
    nonzero unless the analysis names a culprit rank and operation —
    the CI smoke contract.  ``synthetic=True`` forces a fresh two-rank
    deadlock bundle first and analyzes that.
    """
    if synthetic:
        bundle_path = str(force_synthetic_incident())
        if verbose:
            console(f"postmortem: forced synthetic incident {bundle_path}")
    if bundle_path is None:
        paths = IncidentStore().paths()
        if not paths:
            console("postmortem: no incident bundles found")
            return 2
        bundle_path = str(paths[0])
    bundle = load_bundle(bundle_path)
    analysis = analyze_bundle(bundle)
    if chrome_out is not None:
        pathlib.Path(chrome_out).write_text(
            json.dumps(to_chrome(bundle)), encoding="utf-8")
        if verbose:
            console(f"postmortem: wrote Chrome trace to {chrome_out}")
    if as_json:
        console(json.dumps(analysis, indent=2, sort_keys=True, default=str))
    elif verbose:
        console(render_text(bundle, analysis, last_n=last_n))
    if check:
        ok = (analysis["culprit_rank"] is not None
              and analysis["culprit_op"] is not None)
        if verbose:
            console(f"postmortem --check: "
                    f"{'OK' if ok else 'FAIL — no culprit identified'}")
        return 0 if ok else 1
    return 0
