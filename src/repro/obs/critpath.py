"""Cross-rank span-DAG reconstruction and critical-path analysis.

A traced SPMD run (``run_spmd(..., trace=True)``) yields one
:class:`~repro.obs.tracer.RankTrace` per rank: phase spans tiling the
rank's virtual timeline, ``recv`` wait spans, and ``send`` instant
events.  The runtime stamps every message with a monotonically
increasing ``seq`` identifier, recorded on *both* the send event and
the matched receive span — exactly one cross-rank happens-before edge
per message.  This module reassembles those per-rank timelines plus the
message edges into the execution DAG and answers the question the
per-rank :class:`~repro.obs.report.PhaseReport` cannot: *which chain of
work actually determined the makespan, and what was every other rank
doing meanwhile?*

Model
-----
Virtual time only advances through counted flops, per-message overhead,
and modelled message arrival (``clock.advance_to``), so each rank's
timeline decomposes exactly into

- **compute** — the rank's own final virtual time minus its receive
  waits (flops + send/recv overhead charges),
- **comm** — time blocked inside ``recv`` waits (the clock jumped to a
  message's modelled arrival), and
- **idle** — the gap between the rank's final virtual time and the
  segment makespan (the rank finished early and sat out the rest).

These three sum to the makespan *per rank by construction*, which is
the invariant ``CritPathReport.validate`` (and the CI profile gate)
checks.  **Overlap** is reported separately: modelled message flight
time hidden behind the receiver's compute (flight minus actual wait,
clipped at zero) — it does not consume makespan, it measures how much
communication the schedule already hides.

The critical path is walked *backwards* from the makespan on the
segment's critical rank: local execution extends the path until it
reaches a receive wait that gated progress (the clock jumped to the
message arrival), at which point the path hops the matched edge to the
sender at its send timestamp.  The resulting alternating
compute/message chain covers ``[0, makespan]`` without gaps, so its
length equals the makespan — another checked invariant (and the upper
bound of the property test in ``tests/test_critpath.py``; the lower
bound is the busiest rank's busy time, which any schedule must contain).

Multi-segment sources (ARD's ``factor`` then ``solve``) are laid end to
end on the virtual axis exactly like the Chrome export, so critical
segments line up with :func:`repro.obs.chrome.write_chrome_trace`
timestamps.

See docs/PROFILING.md for interpretation guidance.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

__all__ = [
    "MessageEdge",
    "EdgeSet",
    "CritSegment",
    "RankAttribution",
    "CritPathReport",
    "reconstruct_edges",
    "analyze_critical_path",
]

#: Relative tolerance below which a wait span is considered zero-length
#: (the message had already arrived when the receive was posted).
_REL_TOL = 1e-12


@dataclasses.dataclass(frozen=True)
class MessageEdge:
    """One matched send→recv happens-before edge of the span DAG.

    Attributes
    ----------
    segment:
        Label of the traced segment the edge belongs to.
    seq:
        Runtime-assigned message sequence id (``-1`` for edges matched
        by the legacy FIFO fallback on traces without ``seq`` attrs).
    src / dst:
        World ranks of the sender and receiver.
    tag / nbytes:
        Message tag and modelled payload size.
    send_v:
        Sender's virtual timestamp of the send (post time).
    arrival_v:
        Modelled arrival time (``send_v`` + wire time).
    recv_start_v / recv_end_v:
        The receiver's wait interval: when it posted the receive and
        when it resumed (``max(arrival, post time)``).
    """

    segment: str
    seq: int
    src: int
    dst: int
    tag: int
    nbytes: int
    send_v: float
    arrival_v: float
    recv_start_v: float
    recv_end_v: float

    @property
    def waited(self) -> float:
        """Seconds the receiver actually blocked on this message."""
        return self.recv_end_v - self.recv_start_v

    @property
    def flight(self) -> float:
        """Modelled wire time of the message."""
        return self.arrival_v - self.send_v

    @property
    def hidden(self) -> float:
        """Flight time overlapped by receiver compute (not waited for)."""
        return max(0.0, self.flight - self.waited)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class EdgeSet:
    """Matched message edges of one traced segment, plus the leftovers.

    ``unmatched_sends`` / ``unmatched_recvs`` count trace records that
    could not be paired (e.g. traces produced before ``seq`` stamping,
    mixed with new ones) — a nonzero count degrades the critical-path
    walk, which simply treats such waits as local time.
    """

    edges: list[MessageEdge]
    unmatched_sends: int = 0
    unmatched_recvs: int = 0


def _send_events(trace: Any) -> list[Any]:
    return [e for e in trace.events if e.name == "send"]


def _recv_spans(trace: Any) -> list[Any]:
    return [s for s in trace.spans if s.cat == "comm" and s.name == "recv"]


def _edge_from(segment: str, seq: int, src: int, dst: int,
               send_evt: Any, recv_span: Any) -> MessageEdge:
    arrival = recv_span.attrs.get(
        "arrival", send_evt.attrs.get("arrival", recv_span.v_end))
    return MessageEdge(
        segment=segment,
        seq=seq,
        src=src,
        dst=dst,
        tag=int(recv_span.attrs.get("tag", -1)),
        nbytes=int(recv_span.attrs.get("nbytes", 0)),
        send_v=send_evt.v_ts,
        arrival_v=float(arrival),
        recv_start_v=recv_span.v_start,
        recv_end_v=recv_span.v_end,
    )


def reconstruct_edges(result: Any, segment: str = "run"
                      ) -> tuple[EdgeSet, dict[int, MessageEdge]]:
    """Pair send events with receive spans into cross-rank edges.

    Parameters
    ----------
    result:
        A traced :class:`~repro.comm.stats.SimulationResult`.
    segment:
        Label stamped into the produced edges.

    Returns
    -------
    ``(edge_set, recv_index)`` where ``recv_index`` maps ``id(span)``
    of each matched receive span to its edge (the critical-path walk
    uses it to hop from a gating wait to its sender).

    Matching uses the runtime's per-message ``seq`` id when present;
    traces recorded before ``seq`` stamping fall back to FIFO pairing
    by ``(receiver, tag)`` in virtual-time order, which is exact for
    the world communicator's deterministic programs but approximate in
    general (counted in ``EdgeSet.unmatched_*`` when it fails).
    """
    traces = result.traces
    if traces is None:
        from ..exceptions import ReproError

        raise ReproError(
            "result has no traces; run with trace=True "
            "(e.g. solve(..., trace=True) or run_spmd(..., trace=True))"
        )
    sends_by_seq: dict[int, tuple[int, Any]] = {}
    legacy_sends: dict[tuple[int, int], list[tuple[int, Any]]] = {}
    for trace in traces:
        for evt in _send_events(trace):
            seq = evt.attrs.get("seq")
            if seq is not None:
                sends_by_seq[int(seq)] = (trace.rank, evt)
            else:
                key = (int(evt.attrs.get("dest", -1)),
                       int(evt.attrs.get("tag", -1)))
                legacy_sends.setdefault(key, []).append((trace.rank, evt))
    for queue in legacy_sends.values():
        queue.sort(key=lambda pair: pair[1].v_ts)

    edges: list[MessageEdge] = []
    recv_index: dict[int, MessageEdge] = {}
    unmatched_recvs = 0
    matched_seqs: set[int] = set()
    for trace in traces:
        for span in sorted(_recv_spans(trace), key=lambda s: s.v_end):
            seq = span.attrs.get("seq")
            edge = None
            if seq is not None and int(seq) in sends_by_seq:
                src, evt = sends_by_seq[int(seq)]
                matched_seqs.add(int(seq))
                edge = _edge_from(segment, int(seq), src, trace.rank,
                                  evt, span)
            elif seq is None:
                key = (trace.rank, int(span.attrs.get("tag", -1)))
                queue = legacy_sends.get(key)
                if queue:
                    src, evt = queue.pop(0)
                    edge = _edge_from(segment, -1, src, trace.rank,
                                      evt, span)
            if edge is None:
                unmatched_recvs += 1
                continue
            edges.append(edge)
            recv_index[id(span)] = edge
    unmatched_sends = (len(sends_by_seq) - len(matched_seqs)) + sum(
        len(q) for q in legacy_sends.values()
    )
    return (EdgeSet(edges=edges, unmatched_sends=unmatched_sends,
                    unmatched_recvs=unmatched_recvs), recv_index)


@dataclasses.dataclass(frozen=True)
class CritSegment:
    """One piece of the critical path, in run-global virtual time.

    ``kind`` is ``"compute"`` (local execution on ``rank``; ``name`` is
    the phase span it fell under, or ``"(untracked)"``) or
    ``"message"`` (wire flight; ``name`` is ``"msg r<src>->r<dst>"``
    and ``src``/``dst`` are set).
    """

    segment: str
    kind: str
    name: str
    rank: int
    v_start: float
    v_end: float
    src: int | None = None
    dst: int | None = None

    @property
    def duration(self) -> float:
        """Length of this piece in modelled seconds."""
        return self.v_end - self.v_start

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        out = dataclasses.asdict(self)
        out["duration"] = self.duration
        return out


@dataclasses.dataclass
class RankAttribution:
    """Where one rank's share of the makespan went (modelled seconds).

    ``compute + comm + idle`` equals the analyzed makespan exactly (the
    decomposition in the module docstring); ``overlap`` is message
    flight hidden behind this rank's compute and is *not* part of that
    sum.
    """

    rank: int
    compute: float = 0.0
    comm: float = 0.0
    idle: float = 0.0
    overlap: float = 0.0

    @property
    def total(self) -> float:
        """``compute + comm + idle`` — should equal the makespan."""
        return self.compute + self.comm + self.idle

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        out = dataclasses.asdict(self)
        out["total"] = self.total
        return out


@dataclasses.dataclass
class CritPathReport:
    """Critical path + per-rank attribution of one traced run.

    Attributes
    ----------
    nranks / makespan:
        Rank count and total modelled makespan (segment makespans
        summed, matching ``SolveInfo.virtual_time``).
    path:
        Critical-path pieces in chronological order; their durations
        sum to :attr:`length`.
    attribution:
        One :class:`RankAttribution` per rank.
    compute_by_phase:
        Critical-path compute seconds per ``"segment/phase"`` key.
    message_time / message_hops:
        Wire-flight seconds and edge count on the critical path.
    segment_makespan / segment_critical_rank:
        Per-segment makespans and the rank each walk started from.
    edges_total / unmatched_sends / unmatched_recvs:
        Cross-rank edge reconstruction accounting.
    """

    nranks: int
    makespan: float
    path: list[CritSegment]
    attribution: list[RankAttribution]
    compute_by_phase: dict[str, float]
    message_time: float
    message_hops: int
    segment_makespan: dict[str, float]
    segment_critical_rank: dict[str, int]
    edges_total: int
    unmatched_sends: int
    unmatched_recvs: int

    @property
    def length(self) -> float:
        """Sum of critical-path piece durations (equals the makespan
        when the walk covered the whole run)."""
        return sum(s.duration for s in self.path)

    def attribution_fractions(self) -> dict[str, float]:
        """Makespan-normalized compute/comm/idle fractions, averaged
        over ranks — ``compute + comm + idle`` ≈ 1.0."""
        total = max(self.makespan * self.nranks, 1e-300)
        return {
            "compute": sum(a.compute for a in self.attribution) / total,
            "comm": sum(a.comm for a in self.attribution) / total,
            "idle": sum(a.idle for a in self.attribution) / total,
        }

    def validate(self, tol: float = 0.01) -> list[str]:
        """Invariant check; returns human-readable problems (empty=ok).

        Checked: the report has phases, every rank's
        ``compute+comm+idle`` matches the makespan within ``tol``
        (relative), and the critical-path length is within ``tol`` of
        the makespan.  The CI profile gate fails on any problem.
        """
        problems: list[str] = []
        if not self.compute_by_phase:
            problems.append("no phases on the critical path "
                            "(missing phase spans?)")
        scale = max(self.makespan, 1e-300)
        for a in self.attribution:
            err = abs(a.total - self.makespan) / scale
            if err > tol:
                problems.append(
                    f"rank {a.rank}: compute+comm+idle = {a.total:.6e} "
                    f"deviates {err:.2%} from makespan {self.makespan:.6e}"
                )
        err = abs(self.length - self.makespan) / scale
        if err > tol:
            problems.append(
                f"critical-path length {self.length:.6e} deviates "
                f"{err:.2%} from makespan {self.makespan:.6e}"
            )
        return problems

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return {
            "nranks": self.nranks,
            "makespan": self.makespan,
            "length": self.length,
            "fractions": self.attribution_fractions(),
            "attribution": [a.to_dict() for a in self.attribution],
            "compute_by_phase": dict(self.compute_by_phase),
            "message_time": self.message_time,
            "message_hops": self.message_hops,
            "segment_makespan": dict(self.segment_makespan),
            "segment_critical_rank": dict(self.segment_critical_rank),
            "edges_total": self.edges_total,
            "unmatched_sends": self.unmatched_sends,
            "unmatched_recvs": self.unmatched_recvs,
            "path": [s.to_dict() for s in self.path],
        }

    def render(self) -> str:
        """Human-readable critical-path and attribution tables."""
        from ..util.tables import render_table

        span_total = max(self.makespan, 1e-300)
        rows = []
        for key in sorted(self.compute_by_phase,
                          key=lambda k: -self.compute_by_phase[k]):
            sec = self.compute_by_phase[key]
            rows.append([key, f"{sec:.3e}", f"{sec / span_total:.1%}"])
        rows.append(["(message flight)", f"{self.message_time:.3e}",
                     f"{self.message_time / span_total:.1%}"])
        crit = render_table(
            ["component", "crit_s", "share"],
            rows,
            title=(f"Critical path (P={self.nranks}, "
                   f"makespan={self.makespan:.3e}s, "
                   f"{self.message_hops} message hop(s), "
                   f"{self.edges_total} edges)"),
        )
        rank_rows = [
            [a.rank, f"{a.compute:.3e}", f"{a.comm:.3e}", f"{a.idle:.3e}",
             f"{a.overlap:.3e}", f"{a.compute / span_total:.1%}"]
            for a in self.attribution
        ]
        ranks = render_table(
            ["rank", "compute_s", "comm_s", "idle_s", "overlap_s", "busy"],
            rank_rows,
            title="Per-rank attribution (compute+comm+idle = makespan)",
        )
        return crit + "\n" + ranks


def _segment_walk(
    label: str,
    result: Any,
    recv_index: dict[int, MessageEdge],
    v_offset: float,
) -> tuple[list[CritSegment], int]:
    """Walk one segment's critical path backwards; return pieces
    (chronological, offset into run-global time) and the start rank."""
    makespan = result.virtual_time
    tol = max(makespan, 1.0) * _REL_TOL
    crit_rank = max(range(result.nranks),
                    key=lambda r: result.stats[r].virtual_time)
    waits: dict[int, list[tuple[Any, MessageEdge]]] = {}
    phases: dict[int, list[Any]] = {}
    n_waits = 0
    for trace in result.traces:
        matched = [
            (s, recv_index[id(s)])
            for s in _recv_spans(trace)
            if id(s) in recv_index and s.v_end - s.v_start > tol
        ]
        matched.sort(key=lambda pair: pair[0].v_end)
        waits[trace.rank] = matched
        n_waits += len(matched)
        phases[trace.rank] = trace.phase_spans()

    def emit_compute(rank: int, t0: float, t1: float,
                     out: list[CritSegment]) -> None:
        """Split [t0, t1] on ``rank`` by its phase spans (backwards)."""
        if t1 - t0 <= tol:
            return
        pieces: list[tuple[float, float, str]] = []
        cursor = t0
        for s in phases.get(rank, []):
            lo, hi = max(s.v_start, t0), min(s.v_end, t1)
            if hi - lo <= tol:
                continue
            if lo - cursor > tol:
                pieces.append((cursor, lo, "(untracked)"))
            pieces.append((lo, hi, s.name))
            cursor = max(cursor, hi)
        if t1 - cursor > tol:
            pieces.append((cursor, t1, "(untracked)"))
        for lo, hi, name in reversed(pieces):
            out.append(CritSegment(
                segment=label, kind="compute", name=name, rank=rank,
                v_start=v_offset + lo, v_end=v_offset + hi,
            ))

    backward: list[CritSegment] = []
    rank, t = crit_rank, makespan
    consumed: set[int] = set()
    steps = 0
    while t > tol and steps <= n_waits + result.nranks + 1:
        steps += 1
        gating = None
        # Each wait gates the walk at most once: with zero-cost hops
        # (degenerate cost models) ``t`` can stall, and consuming the
        # wait is what guarantees termination.
        for span, edge in reversed(waits.get(rank, [])):
            if span.v_end <= t + tol and id(span) not in consumed:
                gating = (span, edge)
                break
        if gating is None:
            emit_compute(rank, 0.0, t, backward)
            t = 0.0
            break
        span, edge = gating
        consumed.add(id(span))
        emit_compute(rank, span.v_end, t, backward)
        if span.v_end - edge.send_v > tol:
            backward.append(CritSegment(
                segment=label, kind="message",
                name=f"msg r{edge.src}->r{edge.dst}", rank=edge.dst,
                v_start=v_offset + edge.send_v,
                v_end=v_offset + span.v_end,
                src=edge.src, dst=edge.dst,
            ))
        rank, t = edge.src, edge.send_v
    backward.reverse()
    return backward, crit_rank


def analyze_critical_path(source: Any) -> CritPathReport:
    """Build a :class:`CritPathReport` from a traced run.

    Parameters
    ----------
    source:
        Anything :func:`repro.obs.chrome.write_chrome_trace` accepts as
        one run: a ``SolveInfo``, a traced factorization, a single
        traced ``SimulationResult``, or an explicit list of ``(label,
        SimulationResult)`` segments.  Every segment must carry traces.

    Raises
    ------
    ReproError
        When any segment was run without ``trace=True``.
    """
    from .chrome import _segments_of

    segments: Sequence[tuple[str, Any]] = _segments_of(source)
    path: list[CritSegment] = []
    attribution: dict[int, RankAttribution] = {}
    compute_by_phase: dict[str, float] = {}
    segment_makespan: dict[str, float] = {}
    segment_critical: dict[str, int] = {}
    edges_total = unmatched_sends = unmatched_recvs = 0
    message_time = 0.0
    message_hops = 0
    nranks = 0
    v_offset = 0.0
    for label, result in segments:
        edge_set, recv_index = reconstruct_edges(result, segment=label)
        edges_total += len(edge_set.edges)
        unmatched_sends += edge_set.unmatched_sends
        unmatched_recvs += edge_set.unmatched_recvs
        makespan = result.virtual_time
        segment_makespan[label] = makespan
        nranks = max(nranks, result.nranks)

        walked, crit_rank = _segment_walk(label, result, recv_index,
                                          v_offset)
        segment_critical[label] = crit_rank
        path.extend(walked)
        for piece in walked:
            if piece.kind == "message":
                message_time += piece.duration
                message_hops += 1
            else:
                key = f"{piece.segment}/{piece.name}"
                compute_by_phase[key] = (
                    compute_by_phase.get(key, 0.0) + piece.duration
                )

        hidden: dict[int, float] = {}
        for edge in edge_set.edges:
            hidden[edge.dst] = hidden.get(edge.dst, 0.0) + edge.hidden
        for trace in result.traces:
            att = attribution.setdefault(
                trace.rank, RankAttribution(rank=trace.rank))
            waited = sum(
                s.v_end - s.v_start for s in _recv_spans(trace)
            )
            busy = result.stats[trace.rank].virtual_time
            att.compute += busy - waited
            att.comm += waited
            att.idle += makespan - busy
            att.overlap += hidden.get(trace.rank, 0.0)
        v_offset += makespan

    return CritPathReport(
        nranks=nranks,
        makespan=v_offset,
        path=path,
        attribution=[attribution[r] for r in sorted(attribution)],
        compute_by_phase=compute_by_phase,
        message_time=message_time,
        message_hops=message_hops,
        segment_makespan=segment_makespan,
        segment_critical_rank=segment_critical,
        edges_total=edges_total,
        unmatched_sends=unmatched_sends,
        unmatched_recvs=unmatched_recvs,
    )
