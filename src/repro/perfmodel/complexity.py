"""Analytic cost models — the paper's complexity analysis, executable.

For each solver these functions compute critical-path flop counts and
message counts/volumes from the same textbook kernel costs the
instrumented implementation records (``2mkn`` per GEMM, ``2/3 m^3`` per
LU, ``2 m^2 r`` per triangular solve pair).  Experiment recon-T1
compares them against instrumented totals; recon-F6 converts them to
predicted times via :func:`AlgorithmCost.time` and compares against the
simulator's virtual makespan.

All counts model the *critical-path rank*: the one owning the largest
chunk (``ceil(N/P)`` rows) and participating in every scan round.
"""

from __future__ import annotations

import dataclasses
import math

from ..comm.costmodel import CostModel

__all__ = [
    "PhaseCost",
    "AlgorithmCost",
    "ard_factor_cost",
    "ard_solve_cost",
    "rd_cost",
    "thomas_factor_cost",
    "thomas_solve_cost",
    "cyclic_factor_cost",
    "cyclic_solve_cost",
    "bcr_parallel_cost",
    "spike_factor_cost",
    "spike_solve_cost",
    "speedup_model",
]

_F8 = 8  # bytes per float64


@dataclasses.dataclass(frozen=True)
class PhaseCost:
    """Critical-path cost of one algorithm phase."""

    name: str
    flops: float = 0.0
    messages: int = 0
    bytes: float = 0.0


@dataclasses.dataclass(frozen=True)
class AlgorithmCost:
    """Summed phase costs plus the time model."""

    name: str
    phases: tuple[PhaseCost, ...]

    @property
    def flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def messages(self) -> int:
        return sum(p.messages for p in self.phases)

    @property
    def bytes(self) -> float:
        return sum(p.bytes for p in self.phases)

    def time(self, cm: CostModel) -> float:
        """Predicted seconds under the alpha–beta machine model.

        Serial composition of critical-path compute and communication:
        ``flops/rate + sum_msgs (latency + 2*overhead) + bytes/bw``.
        """
        return (
            self.flops / cm.flop_rate
            + self.messages * (cm.latency + 2.0 * cm.overhead)
            + self.bytes * cm.inv_bandwidth
        )

    def phase(self, name: str) -> PhaseCost:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)


def _rounds(p: int) -> int:
    """Kogge–Stone rounds for ``p`` ranks."""
    return max(0, math.ceil(math.log2(p))) if p > 1 else 0


def _chunk(n: int, p: int) -> int:
    """Critical-path chunk size."""
    return math.ceil(n / p)


def ard_factor_cost(n: int, m: int, p: int) -> AlgorithmCost:
    """ARD factor phase: ``O(M^3 (N/P + log P))``."""
    t = _chunk(n, p)
    rho = _rounds(p)
    build = PhaseCost(
        "build",
        flops=t * ((2 / 3) * m**3 + 2 * 2 * m**3),  # LU(U_i) + T1, T2 solves
    )
    aggregate = PhaseCost("aggregate", flops=t * 4 * 2 * m**3)  # 4 gemms/row
    scan = PhaseCost(
        "scan",
        flops=rho * 2 * (2 * m) ** 3,            # one (2M)^3 product per round
        messages=rho + 1,                         # sends per round + shift
        bytes=(rho + 1) * (2 * m) ** 2 * _F8,
    )
    closing = PhaseCost(
        "closing",
        flops=2 * 2 * m**3 + (2 / 3) * m**3,     # assemble K + factor it
        messages=2 * _rounds(p) + 1,              # closing-rank allgather (~)
        bytes=(2 * _rounds(p) + 1) * 16.0,
    )
    return AlgorithmCost("ard_factor", (build, aggregate, scan, closing))


def ard_solve_cost(n: int, m: int, p: int, r: int) -> AlgorithmCost:
    """ARD solve phase: ``O(M^2 R (N/P + log P))`` with ``O(M R)`` messages."""
    t = _chunk(n, p)
    rho = _rounds(p)
    g = PhaseCost("g", flops=t * 2 * m**2 * r)
    aggregate = PhaseCost("aggregate", flops=t * 2 * 2 * m**2 * r)
    replay = PhaseCost(
        "scan",
        flops=rho * 2 * (2 * m) ** 2 * r,
        messages=rho + 1,
        bytes=(rho + 1) * 2 * m * r * _F8,
    )
    closing = PhaseCost(
        "closing",
        flops=(2 * 2 + 2) * m**2 * r,            # rhs assembly + back-solve
        messages=_rounds(p),                      # bcast of x0
        bytes=_rounds(p) * m * r * _F8,
    )
    backsub = PhaseCost(
        "backsub",
        flops=2 * m * m * r + t * 2 * 2 * m**2 * r,  # entry state + recurrence
    )
    return AlgorithmCost("ard_solve", (g, aggregate, replay, closing, backsub))


def rd_cost(n: int, m: int, p: int, r: int) -> AlgorithmCost:
    """Naive RD for ``R`` right-hand sides: ``R`` independent full passes,
    each ``O(M^3 (N/P + log P))`` — the baseline the paper improves on."""
    factor = ard_factor_cost(n, m, p)
    solve = ard_solve_cost(n, m, p, 1)
    merged: dict[str, list[float]] = {}
    for part in (factor.phases, solve.phases):
        for ph in part:
            agg = merged.setdefault(ph.name, [0.0, 0, 0.0])
            agg[0] += ph.flops
            agg[1] += ph.messages
            agg[2] += ph.bytes
    phases = tuple(
        PhaseCost(name, flops=r * v[0], messages=r * int(v[1]), bytes=r * v[2])
        for name, v in merged.items()
    )
    return AlgorithmCost("rd", phases)


def thomas_factor_cost(n: int, m: int) -> AlgorithmCost:
    """Sequential block Thomas factorization: ``O(N M^3)``."""
    flops = n * (2 / 3) * m**3 + max(n - 1, 0) * (2 * m**3 + 2 * m**3)
    return AlgorithmCost("thomas_factor", (PhaseCost("factor", flops=flops),))


def thomas_solve_cost(n: int, m: int, r: int) -> AlgorithmCost:
    """Sequential block Thomas solve: ``O(N M^2 R)``."""
    flops = n * 2 * m**2 * r + max(n - 1, 0) * (2 + 2) * m**2 * r
    return AlgorithmCost("thomas_solve", (PhaseCost("solve", flops=flops),))


def _bcr_levels(n: int):
    """Yield ``(rows, kept, eliminated)`` per reduction level."""
    while n > 1:
        k = (n + 1) // 2
        e = n // 2
        yield n, k, e
        n = k


def cyclic_factor_cost(n: int, m: int) -> AlgorithmCost:
    """Sequential block cyclic reduction factorization: ``O(N M^3)``."""
    flops = 0.0
    for _, k, e in _bcr_levels(n):
        flops += e * (2 / 3) * m**3                  # LU of eliminated diagonals
        flops += 2 * k * 2 * m**3                    # P, Q transposed solves (<= 2/row)
        flops += 2 * k * 2 * m**3                    # diagonal updates
        flops += 2 * max(k - 1, 0) * 2 * m**3        # new off-diagonal products
    flops += (2 / 3) * m**3                          # root factorization
    return AlgorithmCost("cyclic_factor", (PhaseCost("factor", flops=flops),))


def cyclic_solve_cost(n: int, m: int, r: int) -> AlgorithmCost:
    """Sequential block cyclic reduction solve: ``O(N M^2 R)``."""
    flops = 0.0
    for _, k, e in _bcr_levels(n):
        flops += 2 * k * 2 * m**2 * r                # downward RHS reduction
        flops += e * (2 * 2 * m**2 * r + 2 * m**2 * r)  # upward back-substitution
    flops += 2 * m**2 * r
    return AlgorithmCost("cyclic_solve", (PhaseCost("solve", flops=flops),))


def spike_factor_cost(n: int, m: int, p: int) -> AlgorithmCost:
    """SPIKE factor phase: local Thomas + two M-column spikes + the
    root-side (K-1)-row, 2M-block reduced Thomas factorization."""
    t = _chunk(n, p)
    local = PhaseCost(
        "local",
        flops=t * (2 / 3) * m**3 + max(t - 1, 0) * 4 * m**3,  # Thomas factor
    )
    spikes = PhaseCost("spikes", flops=2 * t * (2 + 2) * m**2 * m)
    n_iface = max(p - 1, 0)
    reduced = PhaseCost(
        "reduced",
        flops=n_iface * ((2 / 3) * (2 * m) ** 3 + 4 * (2 * m) ** 3),
        messages=2 * _rounds(p) + 1,                 # gather of 4 blocks
        bytes=(2 * _rounds(p) + 1) * 4 * m * m * _F8,
    )
    return AlgorithmCost("spike_factor", (local, spikes, reduced))


def spike_solve_cost(n: int, m: int, p: int, r: int) -> AlgorithmCost:
    """SPIKE solve phase: local sweeps + reduced solve + combination."""
    t = _chunk(n, p)
    local = PhaseCost("local", flops=t * 6 * m**2 * r)
    n_iface = max(p - 1, 0)
    reduced = PhaseCost(
        "reduced",
        flops=n_iface * 6 * (2 * m) ** 2 * r,
        messages=2 * _rounds(p) + 2,                 # gather tops/bots + scatter
        bytes=(2 * _rounds(p) + 2) * 2 * m * r * _F8,
    )
    combine = PhaseCost("combine", flops=t * 2 * 2 * m**2 * r)
    return AlgorithmCost("spike_solve", (local, reduced, combine))


def bcr_parallel_cost(n: int, m: int, p: int, r: int) -> AlgorithmCost:
    """Model of *distributed* block cyclic reduction (abl-A3 baseline).

    With ``P`` ranks, the first ``log2(N/P)`` levels are rank-local
    (geometric work ``~2 N/P`` rows); the final ``log2 P`` levels each
    exchange one boundary row with the two neighbours.  Per-row work is
    taken from the sequential counts.  This is the standard BCYCLIC-style
    cost model; the sequential implementation validates per-row work and
    the communication shape follows the level structure (see DESIGN.md).
    """
    t = _chunk(n, p)
    per_row_factor = 10.0 * m**3 + (2 / 3) * m**3
    per_row_solve = 7.0 * m**2 * r
    local = PhaseCost("local", flops=2 * t * (per_row_factor + per_row_solve))
    levels = _rounds(p)
    comm = PhaseCost(
        "levels",
        flops=levels * (per_row_factor + per_row_solve),
        messages=2 * levels,
        bytes=2 * levels * (3 * m * m + m * r) * _F8,
    )
    return AlgorithmCost("bcr_parallel", (local, comm))


def speedup_model(m: int, r: int) -> float:
    """The paper's headline improvement factor for ``R`` right-hand sides.

    Naive RD costs ``R * M^3 * K`` against ARD's ``(M^3 + R M^2) * K``
    (``K = N/P + log P`` cancels), giving ``R / (1 + R/M)``: linear in
    ``R`` while ``R <~ M``, saturating at ``M``.
    """
    return r / (1.0 + r / m)
