"""Machine models and host calibration.

The virtual-time simulation and the analytic predictor share one
:class:`~repro.comm.costmodel.CostModel`.  The default constants are
2014-cluster-like (see that module); :func:`calibrate_flop_rate`
measures this host's dense GEMM throughput so wall-clock-facing
experiments (recon-F7) can convert counted flops to realistic seconds.

For a fuller per-kernel measurement (LU/trsm/GEMM rates plus copy
bandwidth) persisted across runs, see :mod:`repro.perfmodel.calibrate`
and ``python -m repro.harness profile --calibrate``;
:func:`calibration_cost_model` turns a saved snapshot back into a
:class:`~repro.comm.costmodel.CostModel`.
"""

from __future__ import annotations

import time

import numpy as np

from ..comm.costmodel import CostModel, DEFAULT_COST_MODEL

__all__ = [
    "DEFAULT_COST_MODEL",
    "calibrate_flop_rate",
    "calibrated_cost_model",
    "calibration_cost_model",
    "PAPER_ERA_MODEL",
]

#: A 2014-era cluster node: ~10 Gflop/s core, ~1 us latency, ~5 GB/s link.
PAPER_ERA_MODEL = CostModel(
    latency=2.0e-6,
    inv_bandwidth=1.0 / 5.0e9,
    overhead=0.5e-6,
    flop_rate=10.0e9,
)


def calibrate_flop_rate(m: int = 192, reps: int = 5, seed: int = 0) -> float:
    """Measure this host's dense GEMM throughput in flops/second.

    Times ``reps`` products of ``m x m`` matrices and returns the best
    rate (the usual practice for throughput calibration: the minimum
    time is the least noise-contaminated sample).
    """
    if m < 2 or reps < 1:
        raise ValueError(f"need m >= 2 and reps >= 1, got m={m}, reps={reps}")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, m))
    b = rng.standard_normal((m, m))
    a @ b  # warm up BLAS threads / allocator
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - t0)
    return (2.0 * m * m * m) / best


def calibrated_cost_model(base: CostModel | None = None, **kwargs) -> CostModel:
    """A cost model whose ``flop_rate`` is measured on this host.

    Communication parameters come from ``base`` (default:
    :data:`PAPER_ERA_MODEL`); ``kwargs`` forward to
    :func:`calibrate_flop_rate`.
    """
    base = base or PAPER_ERA_MODEL
    return base.scaled(flop_rate=calibrate_flop_rate(**kwargs))


def calibration_cost_model(path: str | None = None,
                           base: CostModel | None = None) -> CostModel:
    """A cost model built from a saved ``CALIB_machine.json``.

    Loads the snapshot written by ``python -m repro.harness profile
    --calibrate`` (default path
    :data:`~repro.perfmodel.calibrate.DEFAULT_CALIB_PATH`) and maps its
    measured GEMM rate, copy bandwidth, and latency proxy onto ``base``
    (default :data:`PAPER_ERA_MODEL`).  Raises
    :class:`~repro.exceptions.ConfigError` if no calibration exists.
    """
    from .calibrate import DEFAULT_CALIB_PATH, load_calibration

    calib = load_calibration(path or DEFAULT_CALIB_PATH)
    return calib.cost_model(base)
