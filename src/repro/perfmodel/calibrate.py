"""Host micro-benchmark calibration for the performance model.

The analytic predictor and the virtual-time simulation both run on
:data:`~repro.perfmodel.machine.PAPER_ERA_MODEL` constants by default —
fine for reproducing the paper's speedup *shapes*, useless for deciding
what *this* host will do (the ROADMAP's autotuned-portfolio item).
:func:`calibrate_machine` times the real batched kernels the solvers
execute — batched LU factor, batched triangular solve, dense GEMM — and
the ``fastcopy`` message-payload path, then writes a schema-versioned
JSON snapshot (``results/CALIB_machine.json`` by default) that
:func:`~repro.perfmodel.machine.load_calibration` and
``predict_time(..., calibration=...)`` consume instead of the
hard-coded constants.

Produced by ``python -m repro.harness profile --calibrate``; consumed
by the predictor, :class:`repro.obs.roofline.MachineRates`, and (soon)
the method auto-planner.  See docs/PROFILING.md for the workflow.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import time
from typing import Any

import numpy as np

from ..exceptions import ConfigError

__all__ = [
    "CALIB_SCHEMA_VERSION",
    "DEFAULT_CALIB_PATH",
    "MachineCalibration",
    "calibrate_machine",
    "save_calibration",
    "load_calibration",
]

#: Bump when the JSON layout changes incompatibly.
CALIB_SCHEMA_VERSION = 1

#: Where ``harness profile --calibrate`` writes by default.
DEFAULT_CALIB_PATH = "results/CALIB_machine.json"


@dataclasses.dataclass(frozen=True)
class MachineCalibration:
    """Measured kernel and copy rates of one host.

    Attributes
    ----------
    gemm_flop_rate / lu_flop_rate / trsm_flop_rate:
        Sustained flop rates (flops/s) of dense GEMM, batched LU
        factorization, and batched triangular solve at the calibration
        block size.
    copy_bandwidth:
        ``fastcopy`` throughput on ndarray payloads (bytes/s) — the
        in-process proxy for link bandwidth in the threaded runtime,
        where a "send" is at most one payload copy.
    latency:
        Per-message software latency proxy in seconds (small-payload
        copy cost; the threaded runtime has no wire, so this bounds the
        per-message fixed cost on this host).
    block_size / batch:
        Kernel micro-benchmark shape: ``batch`` blocks of ``block_size
        x block_size``.
    host / written_at:
        Provenance: platform string and ISO timestamp.
    """

    gemm_flop_rate: float
    lu_flop_rate: float
    trsm_flop_rate: float
    copy_bandwidth: float
    latency: float
    block_size: int
    batch: int
    host: str = ""
    written_at: str = ""

    def peak_flop_rate(self) -> float:
        """Best sustained kernel rate — the compute roof."""
        return max(self.gemm_flop_rate, self.lu_flop_rate,
                   self.trsm_flop_rate)

    def cost_model(self, base: Any = None) -> Any:
        """An alpha-beta :class:`~repro.comm.costmodel.CostModel` with
        this host's measured rates.

        ``flop_rate`` comes from the measured GEMM rate (the rate the
        analytic flop counts assume), bandwidth from the measured copy
        throughput, and latency from the small-message proxy; the
        per-message CPU ``overhead`` keeps ``base``'s value (default
        :data:`~repro.perfmodel.machine.PAPER_ERA_MODEL`).
        """
        from .machine import PAPER_ERA_MODEL

        base = base or PAPER_ERA_MODEL
        return base.scaled(
            flop_rate=self.gemm_flop_rate,
            inv_bandwidth=1.0 / self.copy_bandwidth,
            latency=self.latency,
        )

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned plain-dict (JSON-serializable) form."""
        out = {"schema_version": CALIB_SCHEMA_VERSION}
        out.update(dataclasses.asdict(self))
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MachineCalibration":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        version = data.get("schema_version")
        if version != CALIB_SCHEMA_VERSION:
            raise ConfigError(
                f"calibration schema_version {version!r} unsupported "
                f"(expected {CALIB_SCHEMA_VERSION}); re-run "
                "'python -m repro.harness profile --calibrate'"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


def _best_seconds(fn: Any, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate_machine(block_size: int = 64, batch: int = 32,
                      reps: int = 5, seed: int = 0
                      ) -> MachineCalibration:
    """Micro-benchmark this host's kernel and copy rates.

    Times the exact batched kernels the solvers use
    (:func:`~repro.linalg.batchlu.lu_factor_batched`,
    :func:`~repro.linalg.batchlu.lu_solve_batched`, ndarray GEMM) on
    ``batch`` blocks of ``block_size x block_size``, plus
    :func:`~repro.comm.fastcopy.fastcopy` payload throughput.  Each
    measurement takes the best of ``reps`` runs (minimum time is the
    least noise-contaminated sample).  Runs in well under a second at
    the defaults.
    """
    if block_size < 2 or batch < 1 or reps < 1:
        raise ConfigError(
            f"need block_size >= 2, batch >= 1, reps >= 1; got "
            f"block_size={block_size}, batch={batch}, reps={reps}"
        )
    from ..comm.fastcopy import fastcopy
    from ..linalg.batchlu import lu_factor_batched, lu_solve_batched

    m, k = block_size, batch
    rng = np.random.default_rng(seed)
    blocks = rng.standard_normal((k, m, m))
    blocks += m * np.eye(m)  # keep the batch comfortably nonsingular
    rhs = rng.standard_normal((k, m, m))

    # GEMM: batched (k, m, m) @ (k, m, m) -> 2 m^3 flops per block.
    a, b = blocks.copy(), rhs.copy()
    a @ b  # warm up BLAS threads / allocator
    gemm_rate = (2.0 * k * m ** 3) / _best_seconds(lambda: a @ b, reps)

    # Batched LU factorization: ~(2/3) m^3 flops per block.
    lu_factor_batched(blocks)
    lu_rate = ((2.0 / 3.0) * k * m ** 3) / _best_seconds(
        lambda: lu_factor_batched(blocks), reps)

    # Batched triangular solves (both sweeps): ~2 m^3 per block for an
    # m-column right-hand side.
    lu, piv = lu_factor_batched(blocks)
    lu_solve_batched(lu, piv, rhs)
    trsm_rate = (2.0 * k * m ** 3) / _best_seconds(
        lambda: lu_solve_batched(lu, piv, rhs), reps)

    # fastcopy bandwidth on a solver-sized ndarray payload.
    payload = rng.standard_normal((256, 256))
    fastcopy(payload)
    copy_bw = payload.nbytes / _best_seconds(
        lambda: fastcopy(payload), reps)

    # Small-payload copy cost bounds the per-message fixed cost.
    tiny = rng.standard_normal((2, 2))
    fastcopy(tiny)
    latency = _best_seconds(lambda: fastcopy(tiny), max(reps, 3))

    return MachineCalibration(
        gemm_flop_rate=gemm_rate,
        lu_flop_rate=lu_rate,
        trsm_flop_rate=trsm_rate,
        copy_bandwidth=copy_bw,
        latency=latency,
        block_size=m,
        batch=k,
        host=platform.platform(),
        written_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
    )


def save_calibration(calib: MachineCalibration,
                     path: str | pathlib.Path = DEFAULT_CALIB_PATH
                     ) -> pathlib.Path:
    """Write ``calib`` as schema-versioned JSON; returns the path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(calib.to_dict(), indent=2) + "\n")
    return out


def load_calibration(path: str | pathlib.Path = DEFAULT_CALIB_PATH
                     ) -> MachineCalibration:
    """Load a calibration written by :func:`save_calibration`.

    Raises
    ------
    ConfigError
        When the file is missing or carries an unsupported
        ``schema_version``.
    """
    p = pathlib.Path(path)
    if not p.is_file():
        raise ConfigError(
            f"no calibration at {p}; run "
            "'python -m repro.harness profile --calibrate' first"
        )
    return MachineCalibration.from_dict(json.loads(p.read_text()))
