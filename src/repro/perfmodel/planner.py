"""Autotuned solver planner: calibrated tuning tables drive the
(method, schedule, backend, recurrence) choice with a never-lose guard.

The paper's accelerated recursive doubling wins only in the regimes its
cost model predicts; outside them plain RD, SPIKE, or sequential Thomas
is faster.  Until this module the repo left that choice to hand-set
config and hard-coded crossovers — which is exactly how monolithic ARD
regressed to 0.75x of seed on the (512, 8) service shape while the
streamed path gained 2.5x (results/BENCH_kernels.json).  Following the
autotuning discipline of communication-avoiding solver work (pick the
layout the cost model prefers, *measure* near predicted crossovers),
the planner:

1. **Tunes once per host** — :func:`tune_machine` extends
   :func:`~repro.perfmodel.calibrate.calibrate_machine` into a small
   structured sweep over (N, M, P, R, dtype, comm backend, scan
   schedule, recurrence mode, blockops backend).  The analytic
   :func:`~repro.perfmodel.predictor.predict_time` model anchors the
   sweep: a configuration is *measured* only where the model is
   uncertain (top candidates within :data:`CROSSOVER_BAND` of each
   other); everywhere else entries carry the model's prediction with
   ``provenance="model"``.  The result persists as a schema-versioned
   ``results/TUNE_host.json`` keyed by host fingerprint.

2. **Plans per problem** — :func:`plan` ranks the candidate portfolio
   for an ``(n, m, p, r, dtype)`` problem and returns the best
   :class:`Plan` (method, scan schedule, comm backend, recurrence
   mode, kernel backend, predicted time) with provenance
   ``measured | interpolated | model``.  Exact-shape table hits are
   ``measured``; nearby shapes are ``interpolated`` by scaling the
   measured time with the model's shape ratio; everything else falls
   back to the pure model (cold start never needs a table).

3. **Never loses** — the reference path (streamed ARD under the
   shipped kernel defaults, docs/KERNELS.md) is always in the
   portfolio, and the winner is clamped back to it whenever it does
   not beat the reference by at least :data:`MODEL_MARGIN` on
   unmeasured (model-only) evidence.  The chosen plan is stamped into
   traces (``plan.*`` instants) and ``SolveInfo.plan``, and the
   bench-history metric ``planner.regret`` (planner time /
   best-of-portfolio time) is gated by :mod:`repro.obs.regress` so
   "planner loses to hand-tuning" is a CI failure.

Scan schedules: the distributed ARD hot path executes the paper's
Kogge–Stone affine scan (``repro.core.scan_affine``); the sweep still
*measures* the :data:`~repro.prefix.scan.DIST_SCANS` alternatives on
representative scan lengths (the abl-A1 dimension) and records them in
the table, so :attr:`Plan.schedule` is an informed choice the day an
alternative schedule is wired into the solver — until then it reports
``"kogge_stone"`` and the table documents why.

See docs/PLANNER.md for the table schema and the sweep design.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import time
import warnings
from typing import Any, Callable, Iterable

import numpy as np

from ..config import TUNABLE_THRESHOLDS, config_context, set_config
from ..exceptions import ConfigError
from .calibrate import (
    DEFAULT_CALIB_PATH,
    MachineCalibration,
    calibrate_machine,
    load_calibration,
)
from .predictor import predict_time

__all__ = [
    "TUNE_SCHEMA_VERSION",
    "DEFAULT_TUNE_PATH",
    "CROSSOVER_BAND",
    "MODEL_MARGIN",
    "MAX_INTERP_DISTANCE",
    "SWEEP_SHAPES",
    "QUICK_SHAPES",
    "PLAN_METHODS",
    "Plan",
    "TuneEntry",
    "TuningTable",
    "host_fingerprint",
    "tune_machine",
    "save_table",
    "load_table",
    "default_table",
    "set_default_table",
    "plan",
    "apply_tuning",
    "clear_plan_cache",
]

#: Bump when the TUNE_host.json layout changes incompatibly.
TUNE_SCHEMA_VERSION = 1

#: Where ``python -m repro.harness tune`` writes by default.
DEFAULT_TUNE_PATH = "results/TUNE_host.json"

#: The sweep measures a shape when the two best *predicted* candidate
#: times are within this factor of each other — the model is then
#: "near a crossover" and interpolation would be untrustworthy.
CROSSOVER_BAND = 2.0

#: A non-reference candidate supported only by the analytic model (no
#: measured or interpolated table evidence) must beat the reference
#: path's prediction by at least this relative margin, or the
#: never-lose guard clamps the plan back to the reference.
MODEL_MARGIN = 0.05

#: Interpolation reach: a measured entry informs a query shape only
#: within this summed log2 distance over (n, m, p, r).  Beyond it the
#: measurement says little about the query regime (e.g. a thin-panel
#: point extrapolated to a wide panel), so the candidate is demoted to
#: the model — and the never-lose guard then applies.
MAX_INTERP_DISTANCE = 4.0

#: Methods the planner ranks — the portfolio.  A subset of
#: ``repro.core.api.SOLVE_METHODS`` restricted to what
#: :func:`~repro.perfmodel.predictor.predict_time` can model.
PLAN_METHODS = ("ard", "rd", "spike", "thomas", "cyclic")

#: Portfolio methods that run on the simulated SPMD runtime (``p``
#: ranks, comm backend applies); the rest are sequential.
_DISTRIBUTED = frozenset({"ard", "rd", "spike"})

#: The reference configuration the never-lose guard clamps to: streamed
#: ARD under the shipped kernel defaults (docs/KERNELS.md).
_REFERENCE = dict(method="ard", schedule="kogge_stone",
                  comm_backend="threads", recurrence_mode="auto",
                  blockops_backend="batched")


def host_fingerprint() -> str:
    """Stable identity of the tuning host: platform + logical cores.

    Table entries measured on one machine are meaningless on another;
    :func:`load_table` warns and ignores the table when this value
    does not match.
    """
    return f"{platform.platform()}/cpu{os.cpu_count() or 1}"


@dataclasses.dataclass(frozen=True)
class Plan:
    """One ranked planner decision for an ``(n, m, p, r, dtype)`` problem.

    Attributes
    ----------
    method / schedule / comm_backend / recurrence_mode / blockops_backend:
        The configuration to run: solver method, distributed scan
        schedule (``"kogge_stone"`` is the only schedule wired into the
        ARD hot path today), :func:`repro.comm.run_spmd` backend,
        ``recurrence_mode`` and ``blockops_backend`` config values.
    nranks:
        Ranks the plan actually uses (1 for sequential methods
        regardless of the requested ``p``).
    predicted_time:
        Seconds the planner expects this configuration to take.
    provenance:
        Evidence grade of :attr:`predicted_time`: ``"measured"``
        (exact-shape tuning-table hit), ``"interpolated"`` (measured at
        a nearby shape, scaled by the model), or ``"model"`` (analytic
        prediction only — always the case on cold start).
    clamped:
        ``True`` when the never-lose guard overrode a nominally faster
        candidate and fell back to the reference streamed-ARD path.
    """

    method: str
    schedule: str
    comm_backend: str
    recurrence_mode: str
    blockops_backend: str
    nranks: int
    predicted_time: float
    provenance: str
    clamped: bool = False

    def config_overrides(self) -> dict[str, Any]:
        """The ``repro.config`` fields this plan pins for the solve."""
        return {"blockops_backend": self.blockops_backend,
                "recurrence_mode": self.recurrence_mode}

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (trace attrs, SolveInfo, logs)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class TuneEntry:
    """One swept configuration at one problem shape.

    ``time`` is wall seconds; ``provenance`` records whether it was
    measured on this host, interpolated, or taken from the model.
    """

    n: int
    m: int
    p: int
    r: int
    dtype: str
    method: str
    schedule: str
    comm_backend: str
    recurrence_mode: str
    blockops_backend: str
    time: float
    provenance: str

    def shape(self) -> tuple[int, int, int, int]:
        return (self.n, self.m, self.p, self.r)

    def config(self) -> tuple[str, str, str, str, str]:
        return (self.method, self.schedule, self.comm_backend,
                self.recurrence_mode, self.blockops_backend)


@dataclasses.dataclass(frozen=True)
class TuningTable:
    """Schema-versioned per-host tuning results (``TUNE_host.json``).

    Attributes
    ----------
    host:
        :func:`host_fingerprint` of the machine that produced it.
    thresholds:
        Tuned values for the :data:`repro.config.TUNABLE_THRESHOLDS`
        fields (``vector_solve_max_work`` etc.); applied by
        :func:`apply_tuning`.
    entries:
        The swept :class:`TuneEntry` records.
    scan_times:
        Measured seconds per :data:`~repro.prefix.scan.DIST_SCANS`
        schedule on a representative scan (informative: the ARD hot
        path executes Kogge–Stone; see module docstring).
    quick:
        Whether the table came from a ``--quick`` sweep (CI smoke) —
        quick tables carry model-heavy provenance.
    """

    host: str
    thresholds: dict[str, int]
    entries: tuple[TuneEntry, ...]
    scan_times: dict[str, float] = dataclasses.field(default_factory=dict)
    quick: bool = False
    written_at: str = ""

    def dtypes(self) -> tuple[str, ...]:
        """Distinct dtype names with measured/interpolated evidence."""
        return tuple(sorted({e.dtype for e in self.entries
                             if e.provenance != "model"}))

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": TUNE_SCHEMA_VERSION,
            "host": self.host,
            "thresholds": dict(self.thresholds),
            "scan_times": dict(self.scan_times),
            "quick": self.quick,
            "written_at": self.written_at,
            "entries": [dataclasses.asdict(e) for e in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TuningTable":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        version = data.get("schema_version")
        if version != TUNE_SCHEMA_VERSION:
            raise ConfigError(
                f"tuning-table schema_version {version!r} unsupported "
                f"(expected {TUNE_SCHEMA_VERSION}); re-run "
                "'python -m repro.harness tune'"
            )
        thresholds = dict(data.get("thresholds") or {})
        unknown = set(thresholds) - set(TUNABLE_THRESHOLDS)
        if unknown:
            raise ConfigError(
                f"tuning table carries unknown thresholds {sorted(unknown)}; "
                f"known: {sorted(TUNABLE_THRESHOLDS)}"
            )
        fields = {f.name for f in dataclasses.fields(TuneEntry)}
        entries = tuple(
            TuneEntry(**{k: v for k, v in e.items() if k in fields})
            for e in data.get("entries", ())
        )
        return cls(
            host=data.get("host", ""),
            thresholds=thresholds,
            entries=entries,
            scan_times=dict(data.get("scan_times") or {}),
            quick=bool(data.get("quick", False)),
            written_at=data.get("written_at", ""),
        )


def save_table(table: TuningTable,
               path: str | pathlib.Path = DEFAULT_TUNE_PATH) -> pathlib.Path:
    """Write ``table`` as schema-versioned JSON; returns the path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(table.to_dict(), indent=2) + "\n")
    return out


def load_table(path: str | pathlib.Path = DEFAULT_TUNE_PATH,
               *, strict_host: bool = False) -> TuningTable | None:
    """Load a tuning table written by :func:`save_table`.

    Host-fingerprint mismatches mean the measurements describe a
    different machine: the default is to *warn and ignore* (return
    ``None``, i.e. the planner falls back to the pure model), because a
    silently-wrong table is worse than no table.  ``strict_host=False``
    with a matching host, or a missing file, never raises; a stale
    ``schema_version`` always raises :class:`ConfigError`.
    """
    p = pathlib.Path(path)
    if not p.is_file():
        raise ConfigError(
            f"no tuning table at {p}; run 'python -m repro.harness tune' first"
        )
    table = TuningTable.from_dict(json.loads(p.read_text()))
    here = host_fingerprint()
    if table.host != here:
        if strict_host:
            raise ConfigError(
                f"tuning table at {p} was measured on {table.host!r}, "
                f"this host is {here!r}; re-run 'python -m repro.harness tune'"
            )
        warnings.warn(
            f"ignoring tuning table {p}: measured on {table.host!r}, "
            f"this host is {here!r} (planner falls back to the model; "
            "re-run 'python -m repro.harness tune')",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return table


_default_table_cache: dict[str, Any] = {}
_override_table: TuningTable | None = None


def set_default_table(table: TuningTable | None) -> None:
    """Install ``table`` as the process-wide planner table.

    Overrides the on-disk :data:`DEFAULT_TUNE_PATH` lookup until reset
    with ``set_default_table(None)`` — used by benchmarks and
    experiments that tune in-process and want ``method="auto"`` to
    consult the fresh table without a filesystem round-trip.
    """
    global _override_table
    _override_table = table
    _plan_cache.clear()


def default_table(path: str | pathlib.Path = DEFAULT_TUNE_PATH
                  ) -> TuningTable | None:
    """The process-wide table ``method="auto"`` consults, or ``None``.

    An installed :func:`set_default_table` override wins; otherwise
    loads :data:`DEFAULT_TUNE_PATH` once (cached on mtime).  Missing or
    host-mismatched tables resolve to ``None`` — the planner then runs
    on the pure model, so cold start always works.
    """
    if _override_table is not None:
        return _override_table
    p = pathlib.Path(path)
    try:
        mtime = p.stat().st_mtime
    except OSError:
        return None
    key = str(p)
    cached = _default_table_cache.get(key)
    if cached is not None and cached[0] == mtime:
        return cached[1]
    try:
        table = load_table(p)
    except ConfigError:
        table = None
    _default_table_cache[key] = (mtime, table)
    return table


def clear_plan_cache() -> None:
    """Drop the cached default table, override, and memoized plans."""
    global _override_table
    _override_table = None
    _default_table_cache.clear()
    _plan_cache.clear()


# -- planning ---------------------------------------------------------------


def _candidates(p: int, *, methods: Iterable[str] = PLAN_METHODS,
                include_processes: bool = False) -> list[dict[str, Any]]:
    """The candidate configuration portfolio for ``p`` requested ranks.

    Sequential methods always run single-rank.  ARD spans the kernel
    dimensions (blockops backend x recurrence mode) because those are
    the crossovers the tuning sweep measures; other methods run under
    the shipped kernel defaults.  The ``processes`` comm backend enters
    the portfolio only for the sweep (``include_processes=True``) —
    planning trusts it only with measured evidence, never on the model
    alone (the model has no term for process-pool dispatch).
    """
    out: list[dict[str, Any]] = []
    for method in methods:
        nranks = p if method in _DISTRIBUTED else 1
        base = dict(method=method, schedule="kogge_stone",
                    comm_backend="threads", recurrence_mode="auto",
                    blockops_backend="batched", nranks=nranks)
        out.append(base)
        if method == "ard":
            for kb, rm in (("batched", "sequential"),
                           ("batched", "levelwise"),
                           ("scipy_loop", "sequential")):
                out.append({**base, "blockops_backend": kb,
                            "recurrence_mode": rm})
        if include_processes and method in _DISTRIBUTED and nranks > 1:
            out.append({**base, "comm_backend": "processes"})
    return out


def _shape_distance(a: tuple[int, int, int, int],
                    b: tuple[int, int, int, int]) -> float:
    """Log-space distance between two ``(n, m, p, r)`` shapes."""
    return float(sum(
        abs(np.log2(max(x, 1)) - np.log2(max(y, 1))) for x, y in zip(a, b)
    ))


def _nearest_dtype(name: str, available: Iterable[str]) -> str | None:
    """The measured dtype closest in itemsize to ``name``."""
    try:
        want = np.dtype(name).itemsize
    except TypeError:
        return None
    best, best_gap = None, float("inf")
    for cand in available:
        gap = abs(np.dtype(cand).itemsize - want)
        if gap < best_gap:
            best, best_gap = cand, gap
    return best


def _predict(method: str, n: int, m: int, p: int, r: int,
             calibration: MachineCalibration | None,
             cost_model: Any) -> float:
    return predict_time(method, n=n, m=m, p=p, r=max(r, 1),
                        cost_model=cost_model, calibration=calibration)


_plan_cache: dict[tuple, Plan] = {}


def plan(n: int, m: int, p: int = 1, r: int = 1,
         dtype: Any = None, *,
         table: TuningTable | None | str = "default",
         calibration: MachineCalibration | None | str = "default",
         cost_model: Any = None,
         methods: Iterable[str] = PLAN_METHODS) -> Plan:
    """Rank the portfolio for an ``(n, m, p, r, dtype)`` problem.

    Evidence is used in strength order: exact-shape measured table
    entries beat interpolated ones beat the analytic model.  With no
    usable table (cold start, schema/host mismatch, unmeasured dtype)
    the ranking degenerates to :func:`predict_time` over ``methods``
    under the shipped kernel defaults — so the planner always answers.

    The never-lose guard then clamps the winner back to the reference
    streamed-ARD configuration unless the winner either carries
    measured/interpolated evidence or beats the reference's prediction
    by more than :data:`MODEL_MARGIN`.

    Parameters other than the shape:

    ``table``
        ``"default"`` consults :func:`default_table`; ``None`` forces
        the pure-model path; or pass a :class:`TuningTable`.
    ``calibration``
        ``"default"`` loads ``results/CALIB_machine.json`` when
        present; ``None`` uses the hard-coded machine constants; or
        pass a :class:`~repro.perfmodel.calibrate.MachineCalibration`.
    ``methods``
        Restrict the portfolio (e.g. to ``FACTOR_METHODS`` when the
        caller needs a reusable factorization).
    """
    if n < 1 or m < 1 or p < 1 or r < 0:
        raise ConfigError(f"invalid plan shape n={n}, m={m}, p={p}, r={r}")
    dtype_name = np.dtype(dtype if dtype is not None else np.float64).name
    methods = tuple(methods)
    for meth in methods:
        if meth not in PLAN_METHODS:
            raise ConfigError(
                f"method {meth!r} is not plannable; choose from {PLAN_METHODS}"
            )

    if table == "default":
        table = default_table()
    if calibration == "default":
        calibration = _default_calibration()

    cache_key = (n, m, p, r, dtype_name, methods,
                 id(table) if table is not None else None,
                 id(calibration) if calibration is not None else None)
    hit = _plan_cache.get(cache_key)
    if hit is not None:
        return hit

    # Dtype fallback: a table measured only for other dtypes still
    # informs the *ranking* via its nearest-itemsize dtype, but the
    # evidence is demoted to provenance="model" (the spec's contract:
    # an unmeasured dtype never claims measured confidence).
    lookup_dtype, demote_to_model = dtype_name, False
    if table is not None:
        available = table.dtypes()
        if available and dtype_name not in available:
            lookup_dtype = _nearest_dtype(dtype_name, available) or dtype_name
            demote_to_model = True

    shape = (n, m, p, r)
    # Model predictions and measured wall times are not on the same
    # scale (the analytic model omits interpreter and runtime
    # overhead), so a raw prediction would unfairly outrank a measured
    # entry.  A shape-local model-to-wall factor — median of
    # measured / predicted over the nearest measured shape — puts
    # model-provenance candidates on the measured clock.
    wall_factor = 1.0
    if table is not None:
        wall_factor = _model_to_wall_factor(table, shape, lookup_dtype,
                                            calibration, cost_model)
    ranked: list[Plan] = []
    for cand in _candidates(p, methods=methods):
        base_pred = _predict(cand["method"], n, m, cand["nranks"], r,
                             calibration, cost_model)
        t, prov = base_pred * wall_factor, "model"
        if table is not None:
            evidence = _table_evidence(table, shape, lookup_dtype, cand,
                                       calibration, cost_model)
            if evidence is not None:
                t, prov = evidence
                if demote_to_model:
                    prov = "model"
        ranked.append(Plan(**{k: cand[k] for k in
                              ("method", "schedule", "comm_backend",
                               "recurrence_mode", "blockops_backend",
                               "nranks")},
                           predicted_time=t, provenance=prov))
    ranked.sort(key=lambda pl: pl.predicted_time)

    reference = next(
        pl for pl in ranked
        if all(getattr(pl, k) == v for k, v in _REFERENCE.items())
    )
    best = ranked[0]
    if best is not reference and best.provenance == "model":
        # Never-lose guard: a model-only claim must clear the margin.
        if best.predicted_time > reference.predicted_time * (1 - MODEL_MARGIN):
            best = dataclasses.replace(reference, clamped=True)
    result = best
    _plan_cache[cache_key] = result
    return result


def _table_evidence(table: TuningTable, shape: tuple[int, int, int, int],
                    dtype_name: str, cand: dict[str, Any],
                    calibration: MachineCalibration | None,
                    cost_model: Any) -> tuple[float, str] | None:
    """Best table-backed (time, provenance) for one candidate, if any.

    Exact shape hit -> the entry's time with its own provenance.
    Nearest measured shape -> the measured time scaled by the model's
    shape ratio, ``provenance="interpolated"``.  Model-provenance
    entries never override the live model (they *are* the model, and
    the live one may be better calibrated).
    """
    config = (cand["method"], cand["schedule"], cand["comm_backend"],
              cand["recurrence_mode"], cand["blockops_backend"])
    matches = [e for e in table.entries
               if e.config() == config and e.dtype == dtype_name
               and e.provenance != "model"]
    if not matches:
        return None
    exact = [e for e in matches if e.shape() == shape]
    if exact:
        return exact[0].time, exact[0].provenance
    nearest = min(matches, key=lambda e: _shape_distance(e.shape(), shape))
    if _shape_distance(nearest.shape(), shape) > MAX_INTERP_DISTANCE:
        return None
    here = _predict(cand["method"], *shape[:2], cand["nranks"], shape[3],
                    calibration, cost_model)
    there = _predict(nearest.method, nearest.n, nearest.m, nearest.p,
                     nearest.r, calibration, cost_model)
    if there <= 0.0:
        return None
    return nearest.time * (here / there), "interpolated"


def _model_to_wall_factor(table: TuningTable,
                          shape: tuple[int, int, int, int],
                          dtype_name: str,
                          calibration: MachineCalibration | None,
                          cost_model: Any) -> float:
    """Median measured/predicted ratio at the nearest measured shape."""
    measured = [e for e in table.entries
                if e.dtype == dtype_name and e.provenance == "measured"]
    if not measured:
        return 1.0
    nearest = min(_shape_distance(e.shape(), shape) for e in measured)
    ratios = []
    for e in measured:
        if _shape_distance(e.shape(), shape) > nearest + 1e-9:
            continue
        pred = _predict(e.method, e.n, e.m, e.p, e.r, calibration, cost_model)
        if pred > 0.0 and e.time > 0.0:
            ratios.append(e.time / pred)
    return float(np.median(ratios)) if ratios else 1.0


def _default_calibration() -> MachineCalibration | None:
    try:
        return load_calibration(DEFAULT_CALIB_PATH)
    except ConfigError:
        return None


def apply_tuning(table: TuningTable) -> dict[str, int]:
    """Install the table's tuned thresholds into the live config.

    Returns the applied ``{field: value}`` mapping.  Unknown fields
    were already rejected at load time; values here are the per-host
    crossovers that replace the documented defaults
    (:data:`repro.config.TUNABLE_THRESHOLDS`).
    """
    applied = {k: int(v) for k, v in table.thresholds.items()
               if k in TUNABLE_THRESHOLDS}
    if applied:
        set_config(**applied)
    return applied


# -- tuning sweep -----------------------------------------------------------

#: Full-sweep shape grid: anchored at the canonical bench shapes
#: (``benchmarks/bench_kernels.py``: the (512, 8) service shape at
#: streamed and monolithic RHS widths, the (256, 16) past-crossover
#: point, the (1024, 4) thin-block point).
SWEEP_SHAPES = (
    (512, 8, 4, 16),
    (512, 8, 4, 256),
    (512, 8, 16, 256),
    (256, 16, 4, 32),
    (1024, 4, 4, 8),
)

#: Quick-sweep grid (CI smoke): two small shapes, one rep.
QUICK_SHAPES = (
    (128, 4, 2, 8),
    (128, 8, 2, 32),
)


def _measure_config(n: int, m: int, p: int, r: int, dtype: str,
                    cand: dict[str, Any], reps: int) -> float:
    """Wall seconds (best of ``reps``) of one configuration."""
    from ..core.api import solve
    from ..workloads import helmholtz_block_system, random_rhs

    with config_context(dtype=np.dtype(dtype)):
        mat, _ = helmholtz_block_system(n, m)
        rhs = random_rhs(n, m, nrhs=max(r, 1), seed=0)
    overrides = dict(blockops_backend=cand["blockops_backend"],
                     recurrence_mode=cand["recurrence_mode"],
                     dtype=np.dtype(dtype))

    def run() -> None:
        with config_context(**overrides):
            solve(mat, rhs, method=cand["method"], nranks=cand["nranks"],
                  backend=cand["comm_backend"])

    run()  # warm up (level trees, BLAS threads, process pool)
    best = float("inf")
    for _ in range(max(reps, 1)):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def _probe_vector_solve_crossover(reps: int = 3) -> int:
    """Measured ``m * r`` crossover of the vectorized substitution.

    Times :meth:`~repro.linalg.blockops.BatchedLU.solve` both ways at
    increasing panel work and returns *half* the first work level where
    the per-block LAPACK path wins (the same conservative policy as the
    shipped default: never regret the vectorized path).
    """
    from ..linalg.blockops import BatchedLU

    rng = np.random.default_rng(0)
    n, m = 128, 8
    blocks = rng.standard_normal((n, m, m)) + m * np.eye(m)
    lu = BatchedLU(blocks, backend="batched")
    crossover_work = None
    for r in (16, 32, 64, 128, 256):
        rhs = rng.standard_normal((n, m, r))
        times = {}
        for bound in (m * r, m * r - 1):  # at/above vs below the gate
            with config_context(vector_solve_max_work=max(bound, 1)):
                lu.solve(rhs)
                best = float("inf")
                for _ in range(reps):
                    t0 = time.perf_counter()
                    lu.solve(rhs)
                    best = min(best, time.perf_counter() - t0)
                times[bound] = best
        if times[m * r - 1] < times[m * r]:  # LAPACK loop won
            crossover_work = m * r
            break
    if crossover_work is None:
        crossover_work = 2 * TUNABLE_THRESHOLDS["vector_solve_max_work"]
    return max(crossover_work // 2, 1)


def _probe_levelwise_min_rows(reps: int = 3) -> int:
    """Smallest chunk height where level-wise recurrence wins.

    Compares the sequential and level-wise vector kernels on a thin
    panel at doubling heights; returns the first winning height (or
    the documented default when level-wise never wins on this host).
    """
    from ..core.distribute import distribute_matrix
    from ..core.recurrence import (
        TransferOperators,
        forward_solution,
        local_vector_aggregate,
    )
    from ..workloads import helmholtz_block_system

    rng = np.random.default_rng(0)
    m, r = 8, 8
    for h in (16, 32, 64, 128):
        mat, _ = helmholtz_block_system(h, m)
        ops = TransferOperators(distribute_matrix(mat, 1)[0])
        g = ops.g(rng.standard_normal((h, m, r)))
        entry = rng.standard_normal((2 * m, r))
        ops.levels()

        def kernels() -> None:
            local_vector_aggregate(ops, g[: ops.ntransfer])
            forward_solution(ops, g, entry, h)

        times = {}
        for mode in ("sequential", "levelwise"):
            with config_context(recurrence_mode=mode):
                kernels()
                best = float("inf")
                for _ in range(reps):
                    t0 = time.perf_counter()
                    kernels()
                    best = min(best, time.perf_counter() - t0)
                times[mode] = best
        if times["levelwise"] < times["sequential"]:
            return h
    return TUNABLE_THRESHOLDS["levelwise_min_rows"]


def _measure_scan_schedules(reps: int = 3, p: int = 8) -> dict[str, float]:
    """Best-of-``reps`` wall seconds per distributed scan schedule on a
    representative affine-pair payload over ``p`` ranks (the abl-A1
    dimension, measured in wall time rather than virtual time)."""
    from ..comm import run_spmd
    from ..prefix import DIST_SCANS, AffinePair, affine_compose

    rng = np.random.default_rng(0)
    dim, width = 16, 8
    mats = rng.standard_normal((p, dim, dim)) / dim
    pairs = [AffinePair(mats[i], np.zeros((dim, width))) for i in range(p)]
    out: dict[str, float] = {}
    for name, scan_fn in sorted(DIST_SCANS.items()):
        if name == "blelloch" and p & (p - 1):
            continue  # Blelloch needs power-of-two ranks

        def program(comm, pairs=pairs, scan_fn=scan_fn):
            return scan_fn(comm, pairs[comm.rank], affine_compose)

        run_spmd(program, p, copy_messages=False)
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            run_spmd(program, p, copy_messages=False)
            best = min(best, time.perf_counter() - t0)
        out[name] = best
    return out


def tune_machine(quick: bool = False, *,
                 calibration: MachineCalibration | None = None,
                 shapes: Iterable[tuple[int, int, int, int]] | None = None,
                 dtypes: Iterable[str] = ("float64",),
                 progress: Callable[[str], None] | None = None
                 ) -> TuningTable:
    """Run the structured tuning sweep; returns the :class:`TuningTable`.

    The sweep measures where the model is uncertain and defers to it
    elsewhere.  Method-level anchors (one configuration per portfolio
    method, shipped kernel defaults) are always measured at the grid
    shapes: the model's wall-clock ranking *across method families* is
    its known blind spot — it prices flops and messages but not
    interpreter or runtime overhead, which is what actually separates
    sequential Thomas from distributed ARD at small sizes.  The
    variant dimensions (ARD kernel configuration, ``processes``
    backend) are measured only near a crossover — their base method's
    measured time within :data:`CROSSOVER_BAND` of the shape's best —
    because elsewhere no variant can change the winner; pruned
    variants are recorded at the model's prediction with
    ``provenance="model"``.  Off-grid shapes are served later by
    interpolation (:func:`plan`), never swept.

    ``quick=True`` is the CI smoke configuration: tiny shapes, one
    timing rep, threshold probes skipped (documented defaults kept),
    no ``processes``-backend measurements.  It finishes in seconds and
    still exercises every code path the full sweep uses.
    """
    say = progress or (lambda s: None)
    if calibration is None:
        try:
            calibration = load_calibration(DEFAULT_CALIB_PATH)
            say(f"using calibration from {DEFAULT_CALIB_PATH}")
        except ConfigError:
            say("calibrating machine (no CALIB_machine.json)")
            calibration = calibrate_machine()
    reps = 1 if quick else 3
    grid = tuple(shapes) if shapes is not None else (
        QUICK_SHAPES if quick else SWEEP_SHAPES)

    entries: list[TuneEntry] = []
    for dtype in dtypes:
        for (n, m, p, r) in grid:
            cands = _candidates(p, include_processes=not quick)
            anchors = [c for c in cands
                       if c["comm_backend"] == "threads"
                       and c["blockops_backend"] == "batched"
                       and c["recurrence_mode"] == "auto"]
            variants = [c for c in cands if c not in anchors]

            def run_one(c: dict[str, Any]) -> float:
                say(f"measure n={n} m={m} p={p} r={r} {dtype} "
                    f"{c['method']}/{c['comm_backend']}/"
                    f"{c['blockops_backend']}/{c['recurrence_mode']}")
                return _measure_config(n, m, p, r, dtype, c, reps)

            # Method-level anchors are ALWAYS measured at grid shapes:
            # ranking *across method families* is exactly where the
            # analytic model is least trustworthy on the wall clock
            # (it has no term for interpreter or runtime overhead).
            measured: dict[int, float] = {id(c): run_one(c) for c in anchors}
            best_wall = min(measured.values())
            # Variant dimensions (ARD kernel config, processes
            # backend) are measured only near a crossover: when their
            # base method's measured time is within CROSSOVER_BAND of
            # the best — elsewhere the variant cannot change the
            # winner and the model's entry suffices.
            by_method = {c["method"]: measured[id(c)] for c in anchors}
            for c in variants:
                base_wall = by_method.get(c["method"])
                if base_wall is not None and (
                        base_wall <= best_wall * CROSSOVER_BAND):
                    measured[id(c)] = run_one(c)
            for c in cands:
                wall = measured.get(id(c))
                if wall is None and c["comm_backend"] == "processes":
                    continue  # never taken from the model
                entries.append(TuneEntry(
                    n=n, m=m, p=p, r=r, dtype=dtype,
                    method=c["method"], schedule=c["schedule"],
                    comm_backend=c["comm_backend"],
                    recurrence_mode=c["recurrence_mode"],
                    blockops_backend=c["blockops_backend"],
                    time=wall if wall is not None else _predict(
                        c["method"], n, m, c["nranks"], r, calibration, None),
                    provenance="measured" if wall is not None else "model",
                ))

    if quick:
        thresholds = dict(TUNABLE_THRESHOLDS)
        scan_times: dict[str, float] = {}
    else:
        say("probing kernel crossovers")
        thresholds = dict(TUNABLE_THRESHOLDS)
        thresholds["vector_solve_max_work"] = _probe_vector_solve_crossover()
        thresholds["levelwise_min_rows"] = _probe_levelwise_min_rows()
        say("measuring scan schedules")
        scan_times = _measure_scan_schedules()

    return TuningTable(
        host=host_fingerprint(),
        thresholds=thresholds,
        entries=tuple(entries),
        scan_times=scan_times,
        quick=quick,
        written_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
    )
