"""Analytic complexity/time models and host calibration."""

from .complexity import (
    AlgorithmCost,
    PhaseCost,
    ard_factor_cost,
    ard_solve_cost,
    bcr_parallel_cost,
    cyclic_factor_cost,
    cyclic_solve_cost,
    rd_cost,
    speedup_model,
    spike_factor_cost,
    spike_solve_cost,
    thomas_factor_cost,
    thomas_solve_cost,
)
from .machine import (
    DEFAULT_COST_MODEL,
    PAPER_ERA_MODEL,
    calibrate_flop_rate,
    calibrated_cost_model,
)
from .predictor import PREDICTABLE_METHODS, predict_cost, predict_flops, predict_time
from .scaling import (
    ard_breakeven_r,
    efficiency,
    isoefficiency_n,
    sequential_time,
    speedup,
)

__all__ = [
    "AlgorithmCost",
    "PhaseCost",
    "ard_factor_cost",
    "ard_solve_cost",
    "bcr_parallel_cost",
    "cyclic_factor_cost",
    "cyclic_solve_cost",
    "rd_cost",
    "speedup_model",
    "spike_factor_cost",
    "spike_solve_cost",
    "thomas_factor_cost",
    "thomas_solve_cost",
    "DEFAULT_COST_MODEL",
    "PAPER_ERA_MODEL",
    "calibrate_flop_rate",
    "calibrated_cost_model",
    "PREDICTABLE_METHODS",
    "predict_cost",
    "predict_flops",
    "predict_time",
    "ard_breakeven_r",
    "efficiency",
    "isoefficiency_n",
    "sequential_time",
    "speedup",
]
