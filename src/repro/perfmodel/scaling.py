"""Scalability analysis: speedup, efficiency, isoefficiency.

Standard parallel-analysis companions to the cost models in
:mod:`repro.perfmodel.complexity` — the quantities an IPDPS-era
evaluation derives from its runtime model:

- :func:`speedup` / :func:`efficiency` against the best sequential
  baseline (block Thomas, which has no log terms),
- :func:`isoefficiency_n` — the problem size ``N(P)`` needed to hold a
  target efficiency as ``P`` grows, found by bisection on the model.

For recursive doubling the model predicts isoefficiency
``N = Θ(P log P)`` (the scan term must be amortized by local work);
the tests verify the solver reproduces that growth.
"""

from __future__ import annotations

from ..comm.costmodel import CostModel, DEFAULT_COST_MODEL
from ..exceptions import ConfigError
from .predictor import predict_time

__all__ = ["sequential_time", "speedup", "efficiency", "isoefficiency_n",
           "ard_breakeven_r"]


def sequential_time(n: int, m: int, r: int,
                    cost_model: CostModel | None = None) -> float:
    """Best sequential time: factored block Thomas (factor + R solves)."""
    return predict_time("thomas", n=n, m=m, r=r, cost_model=cost_model)


def speedup(method: str, *, n: int, m: int, p: int, r: int = 1,
            cost_model: CostModel | None = None) -> float:
    """Predicted speedup of ``method`` on ``P`` ranks over sequential
    Thomas on the same problem."""
    return sequential_time(n, m, r, cost_model) / predict_time(
        method, n=n, m=m, p=p, r=r, cost_model=cost_model
    )


def efficiency(method: str, *, n: int, m: int, p: int, r: int = 1,
               cost_model: CostModel | None = None) -> float:
    """Parallel efficiency ``speedup / P``."""
    return speedup(method, n=n, m=m, p=p, r=r, cost_model=cost_model) / p


def ard_breakeven_r(*, n: int, m: int, p: int,
                    cost_model: CostModel | None = None,
                    r_max: int = 1 << 20) -> int:
    """Smallest R at which ARD (factor + solve) beats naive RD.

    For R = 1 the factor/solve split costs slightly more than one fused
    RD pass (extra exclusive-prefix bookkeeping); the break-even arrives
    within a handful of right-hand sides and is the practical answer to
    "when is the acceleration worth it?".  Returns ``r_max + 1`` if the
    model never crosses (cannot happen for valid parameters, but the
    bound keeps the search total).
    """
    cm = cost_model or DEFAULT_COST_MODEL
    for r in range(1, r_max + 1):
        ard = predict_time("ard", n=n, m=m, p=p, r=r, cost_model=cm)
        rd = predict_time("rd", n=n, m=m, p=p, r=r, cost_model=cm)
        if ard < rd:
            return r
    return r_max + 1


def isoefficiency_n(method: str, *, m: int, p: int, r: int = 1,
                    target: float = 0.5,
                    cost_model: CostModel | None = None,
                    n_max: int = 1 << 26) -> int:
    """Smallest ``N`` at which ``method`` reaches ``target`` efficiency.

    Bisection over ``N`` (efficiency is monotone increasing in ``N`` for
    these models: local work amortizes the fixed log P terms).  Raises
    :class:`~repro.exceptions.ConfigError` if the target is unreachable
    below ``n_max`` (e.g. a target above the method's asymptotic
    efficiency).
    """
    if not 0.0 < target < 1.5:
        raise ConfigError(f"target efficiency must be in (0, 1.5), got {target}")
    cm = cost_model or DEFAULT_COST_MODEL

    def eff(n: int) -> float:
        return efficiency(method, n=n, m=m, p=p, r=r, cost_model=cm)

    lo, hi = p, None
    n = max(2 * p, 4)
    while n <= n_max:
        if eff(n) >= target:
            hi = n
            break
        lo = n
        n *= 2
    if hi is None:
        raise ConfigError(
            f"{method} cannot reach efficiency {target} with P={p}, M={m} "
            f"below N={n_max} (asymptote at N={n_max}: {eff(n_max):.3f})"
        )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if eff(mid) >= target:
            hi = mid
        else:
            lo = mid
    return hi
