"""Predicted runtimes for every solver/parameter combination.

Thin façade over :mod:`repro.perfmodel.complexity`: maps a method name
and problem parameters to a predicted time under a
:class:`~repro.comm.costmodel.CostModel`, mirroring exactly the methods
exposed by :func:`repro.core.api.solve`.  Used by experiment recon-F6
(model-vs-measured parity) and by the speedup-shape discussion in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
from typing import Any

from ..comm.costmodel import CostModel, DEFAULT_COST_MODEL
from ..exceptions import ConfigError
from . import complexity as C

__all__ = ["predict_time", "predict_flops", "predict_cost", "PREDICTABLE_METHODS"]

PREDICTABLE_METHODS = ("ard", "ard_factor", "ard_solve", "rd", "thomas", "cyclic",
                       "bcr_parallel", "spike", "spike_factor", "spike_solve")


def predict_cost(method: str, *, n: int, m: int, p: int = 1, r: int = 1
                 ) -> C.AlgorithmCost:
    """Critical-path :class:`~repro.perfmodel.complexity.AlgorithmCost`
    for ``method`` on an ``N x M`` system, ``P`` ranks, ``R`` RHS.

    ``"ard"`` is factor + solve; ``"ard_factor"``/``"ard_solve"`` give
    the phases separately.  Sequential methods ignore ``p``.
    """
    if n < 1 or m < 1 or p < 1 or r < 0:
        raise ConfigError(f"invalid parameters n={n}, m={m}, p={p}, r={r}")
    if method == "ard_factor":
        return C.ard_factor_cost(n, m, p)
    if method == "ard_solve":
        return C.ard_solve_cost(n, m, p, r)
    if method == "ard":
        factor = C.ard_factor_cost(n, m, p)
        solve = C.ard_solve_cost(n, m, p, r)
        return C.AlgorithmCost("ard", factor.phases + solve.phases)
    if method == "rd":
        return C.rd_cost(n, m, p, r)
    if method == "thomas":
        factor = C.thomas_factor_cost(n, m)
        solve = C.thomas_solve_cost(n, m, r)
        return C.AlgorithmCost("thomas", factor.phases + solve.phases)
    if method == "cyclic":
        factor = C.cyclic_factor_cost(n, m)
        solve = C.cyclic_solve_cost(n, m, r)
        return C.AlgorithmCost("cyclic", factor.phases + solve.phases)
    if method == "bcr_parallel":
        return C.bcr_parallel_cost(n, m, p, r)
    if method == "spike_factor":
        return C.spike_factor_cost(n, m, p)
    if method == "spike_solve":
        return C.spike_solve_cost(n, m, p, r)
    if method == "spike":
        factor = C.spike_factor_cost(n, m, p)
        solve = C.spike_solve_cost(n, m, p, r)
        return C.AlgorithmCost("spike", factor.phases + solve.phases)
    raise ConfigError(
        f"unknown method {method!r}; choose from {PREDICTABLE_METHODS}"
    )


def predict_flops(method: str, *, n: int, m: int, p: int = 1, r: int = 1) -> float:
    """Predicted critical-path flops."""
    return predict_cost(method, n=n, m=m, p=p, r=r).flops


def predict_time(method: str, *, n: int, m: int, p: int = 1, r: int = 1,
                 cost_model: CostModel | None = None,
                 calibration: Any = None) -> float:
    """Predicted seconds under ``cost_model`` (default machine).

    Pass a measured
    :class:`~repro.perfmodel.calibrate.MachineCalibration` (or a path
    to one, e.g. ``results/CALIB_machine.json`` from ``python -m
    repro.harness profile --calibrate``) as ``calibration`` to predict
    with this host's measured rates instead of the hard-coded
    constants; ``cost_model`` then supplies only the per-message CPU
    overhead.  ``calibration`` and an explicit ``cost_model`` compose:
    the calibration's measured rates override the model's rates.
    """
    cm = cost_model or DEFAULT_COST_MODEL
    if calibration is not None:
        if isinstance(calibration, (str, pathlib.Path)):
            from .calibrate import load_calibration

            calibration = load_calibration(calibration)
        cm = calibration.cost_model(cm)
    return predict_cost(method, n=n, m=m, p=p, r=r).time(cm)
