"""Tests for the production telemetry pipeline.

Covers the five tentpole pieces end to end: trace-context propagation
(one ``trace_id`` across every rank of a solve and every span of a
service request), the structured JSONL event log, the Prometheus-text
renderer and loopback HTTP endpoint, the numerical-health probes, and
the perf-trajectory regression gate.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core.api import solve
from repro.obs import (
    HealthThresholds,
    MetricsRegistry,
    TelemetryServer,
    TraceContext,
    current_trace_context,
    new_trace_context,
    probe_factor,
    probe_solve,
    render_prometheus,
    trace_context,
)
from repro.obs.log import (
    EventLog,
    configure_logging,
    disable_logging,
    get_logger,
)
from repro.obs.regress import check_regressions
from repro.obs.regress import main as regress_main
from repro.service import SolverService
from repro.workloads import helmholtz_block_system, random_rhs


@pytest.fixture(autouse=True)
def _no_global_log():
    """Keep the process-wide log sink clean across tests."""
    disable_logging()
    yield
    disable_logging()


def _history_record(**metrics):
    return {"schema_version": 1, "scale": "smoke", "metrics": metrics}


# ---------------------------------------------------------------------------
# Trace-context propagation
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_derivation_is_immutable(self):
        root = new_trace_context()
        ranked = root.for_rank(3)
        assert ranked.rank == 3 and root.rank is None
        assert ranked.trace_id == root.trace_id
        req = root.for_request()
        assert req.request_id and root.request_id is None

    def test_to_dict_omits_none(self):
        ctx = TraceContext(trace_id="abc")
        assert ctx.to_dict() == {"trace_id": "abc"}
        full = ctx.for_request("r1").for_rank(2)
        assert full.to_dict() == {"trace_id": "abc", "request_id": "r1",
                                  "rank": 2}

    def test_thread_local_install(self):
        assert current_trace_context() is None
        with trace_context() as tc:
            assert current_trace_context() is tc
            seen = []
            t = threading.Thread(  # repro: noqa[RC103]
                target=lambda: seen.append(current_trace_context()))
            t.start()
            t.join()
            assert seen == [None]  # other threads are uncorrelated
        assert current_trace_context() is None

    def test_all_ranks_share_one_trace_id(self):
        def program(comm):
            return comm.rank

        result = run_spmd(program, 4, trace=True)
        assert result.trace_id is not None
        ids = {t.trace_id for t in result.traces}
        assert ids == {result.trace_id}

    def test_run_adopts_callers_context(self):
        def program(comm):
            return current_trace_context().to_dict()

        with trace_context() as tc:
            result = run_spmd(program, 2, trace=True)
        assert result.trace_id == tc.trace_id
        # Each rank saw a per-rank child of the caller's context.
        assert [v["rank"] for v in result.values] == [0, 1]
        assert {v["trace_id"] for v in result.values} == {tc.trace_id}

    def test_untraced_uncorrelated_run_has_no_id(self):
        result = run_spmd(lambda comm: None, 2)
        assert result.trace_id is None
        assert "trace_id" not in result.to_dict()


# ---------------------------------------------------------------------------
# Structured JSONL log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_records_are_schema_versioned_jsonl(self, tmp_path):
        path = tmp_path / "log.jsonl"
        configure_logging(path=str(path), level="debug")
        log = get_logger("test")
        log.info("unit.event", message="hello", answer=42)
        disable_logging()
        (rec,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert rec["schema_version"] == 1
        assert rec["component"] == "test"
        assert rec["event"] == "unit.event"
        assert rec["message"] == "hello"
        assert rec["answer"] == 42
        assert rec["level"] == "info"
        assert "ts" in rec

    def test_level_threshold_filters(self, tmp_path):
        path = tmp_path / "log.jsonl"
        configure_logging(path=str(path), level="warning")
        log = get_logger("test")
        log.debug("dropped")
        log.info("dropped")
        log.warning("kept.warn")
        log.error("kept.error")
        disable_logging()
        events = [json.loads(l)["event"] for l in
                  path.read_text().splitlines()]
        assert events == ["kept.warn", "kept.error"]

    def test_active_trace_context_is_merged(self, tmp_path):
        path = tmp_path / "log.jsonl"
        configure_logging(path=str(path))
        with trace_context() as tc:
            get_logger("test").info("corr.event")
        disable_logging()
        (rec,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert rec["trace_id"] == tc.trace_id

    def test_unconfigured_logger_is_noop(self):
        get_logger("test").info("nowhere")  # must not raise

    def test_stream_and_path_are_exclusive(self):
        with pytest.raises(ValueError, match="exactly one"):
            EventLog()
        with pytest.raises(ValueError, match="unknown log level"):
            EventLog(stream=object(), level="loud")  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Prometheus rendering + HTTP endpoint
# ---------------------------------------------------------------------------


class TestPrometheusRender:
    def test_counter_gauge_summary_lines(self):
        reg = MetricsRegistry()
        reg.counter("requests.completed").inc(7)
        reg.gauge("queue.depth").set(3)
        s = reg.summary("batch.size")
        for v in (1.0, 2.0, 3.0):
            s.observe(v)
        text = render_prometheus(reg)
        assert "# TYPE repro_requests_completed_total counter" in text
        assert "repro_requests_completed_total 7.0" in text
        assert "repro_queue_depth 3" in text
        assert 'repro_batch_size{quantile="0.5"} 2.0' in text
        assert "repro_batch_size_count 3" in text
        assert "repro_batch_size_sum 6.0" in text

    def test_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with spaces").inc()
        text = render_prometheus(reg)
        assert "repro_weird_name_with_spaces_total 1" in text

    def test_accepts_plain_snapshot_with_cache(self):
        snap = {"counters": {}, "gauges": {}, "summaries": {},
                "cache": {"hit_rate": 0.5, "entries": 2, "key": "abc"}}
        text = render_prometheus(snap)
        assert "repro_cache_hit_rate 0.5" in text
        assert "repro_cache_entries 2" in text
        assert "abc" not in text  # non-numeric values are skipped


class TestTelemetryServer:
    def test_endpoints(self):
        reg = MetricsRegistry()
        reg.gauge("up").set(1)
        srv = TelemetryServer(
            reg.snapshot,
            health_provider=lambda: {"status": "ok"},
            traces_provider=lambda: {"traces": []},
        )
        with srv:
            base = srv.url
            metrics = urllib.request.urlopen(base + "/metrics")
            assert metrics.headers["Content-Type"].startswith("text/plain")
            assert b"repro_up 1" in metrics.read()
            health = urllib.request.urlopen(base + "/healthz")
            assert json.loads(health.read())["status"] == "ok"
            traces = urllib.request.urlopen(base + "/traces")
            assert json.loads(traces.read()) == {"traces": []}
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(base + "/nope")
            assert exc.value.code == 404

    def test_healthz_pages_with_503(self):
        reg = MetricsRegistry()
        srv = TelemetryServer(
            reg.snapshot, health_provider=lambda: {"status": "page"})
        with srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(srv.url + "/healthz")
            assert exc.value.code == 503
            assert json.loads(exc.value.read())["status"] == "page"


# ---------------------------------------------------------------------------
# Numerical-health probes
# ---------------------------------------------------------------------------


class TestHealthProbes:
    @pytest.fixture()
    def system(self):
        matrix, _ = helmholtz_block_system(16, 4)
        b = random_rhs(16, 4, 2, seed=0)
        return matrix, b

    def test_good_solve_is_ok(self, system):
        matrix, b = system
        x = solve(matrix, b, method="thomas")
        report = probe_solve(matrix, x.reshape(16, 4, 2), b, growth=True)
        assert report.status == "ok"
        assert report.residual < 1e-10
        assert report.pivot_growth is not None
        assert report.messages == []

    def test_bad_solve_pages(self, system):
        matrix, b = system
        x = np.zeros_like(b)  # "solution" with O(1) residual
        report = probe_solve(matrix, x, b)
        assert report.status == "page"
        assert any("residual" in m for m in report.messages)

    def test_warn_band(self, system):
        matrix, b = system
        x = solve(matrix, b, method="thomas")
        tight = HealthThresholds(residual_warn=1e-300, residual_page=1.0)
        report = probe_solve(matrix, x.reshape(16, 4, 2), b, thresholds=tight)
        assert report.status == "warn"

    def test_nonfinite_residual_pages(self, system):
        matrix, b = system
        x = np.full_like(b, np.nan)
        report = probe_solve(matrix, x, b)
        assert report.status == "page"
        assert any("non-finite" in m for m in report.messages)

    def test_probe_factor_measures_growth_and_condition(self, system):
        matrix, _ = system
        from repro.core.thomas import ThomasFactorization

        report = probe_factor(matrix, ThomasFactorization(matrix))
        assert report.pivot_growth is not None and report.pivot_growth >= 1.0
        assert report.condition is not None and report.condition >= 1.0
        assert report.status == "ok"

    def test_probes_publish_to_registry(self, system):
        matrix, b = system
        reg = MetricsRegistry()
        x = solve(matrix, b, method="thomas")
        probe_solve(matrix, x.reshape(16, 4, 2), b, registry=reg)
        snap = reg.snapshot()
        assert "health.residual_norm" in snap["gauges"]
        probe_solve(matrix, np.zeros_like(b), b, registry=reg)
        assert reg.counter("health.page").value == 1

    def test_solve_api_surfaces_health(self, system):
        matrix, b = system
        x, info = solve(matrix, b, method="ard", nranks=4,
                        return_info=True, health=True)
        assert info.health is not None
        assert info.health.status == "ok"
        assert info.health.residual == pytest.approx(info.residual)
        assert info.health.condition is not None


# ---------------------------------------------------------------------------
# Service end-to-end correlation
# ---------------------------------------------------------------------------


class TestServiceTelemetry:
    def test_one_trace_id_across_log_spans_and_http(self, tmp_path):
        logpath = tmp_path / "telemetry.jsonl"
        configure_logging(path=str(logpath), level="debug")
        service = SolverService(method="ard", nranks=4, expose_http=True,
                                trace=True)
        try:
            matrix, _ = helmholtz_block_system(32, 4)
            handle = service.register(matrix)
            ticket = service.submit(handle, random_rhs(32, 4, 1, seed=0))
            ticket.result(timeout=120.0)
            assert ticket.trace_id and ticket.request_id

            # Live endpoint: Prometheus text with cache + residual gauges.
            text = urllib.request.urlopen(
                service.http.url + "/metrics").read().decode()
            assert "repro_cache_hit_rate" in text
            assert "repro_health_residual_norm" in text
            doc = json.loads(urllib.request.urlopen(
                service.http.url + "/healthz").read())
            assert doc["status"] == "ok"

            # Merged Chrome trace: every rank span of the request's
            # factor+solve carries the ticket's trace id.
            trace_path = tmp_path / "service.trace.json"
            service.write_trace(trace_path)
            events = json.loads(trace_path.read_text())["traceEvents"]
            span_ids = {e["args"]["trace_id"] for e in events
                        if e.get("ph") == "X"
                        and "trace_id" in e.get("args", {})}
            assert ticket.trace_id in span_ids
        finally:
            service.close()
            disable_logging()

        records = [json.loads(l) for l in
                   logpath.read_text().splitlines()]
        submitted = [r for r in records if r["event"] == "request.submitted"]
        served = [r for r in records if r["event"] == "request.served"]
        assert submitted and served
        assert submitted[0]["trace_id"] == ticket.trace_id
        assert served[0]["trace_id"] == ticket.trace_id
        assert served[0]["request_id"] == ticket.request_id

    def test_http_disabled_by_default(self):
        service = SolverService(method="thomas")
        try:
            assert service.http is None
        finally:
            service.close()

    def test_caller_trace_context_spans_requests(self):
        service = SolverService(method="thomas")
        try:
            matrix, _ = helmholtz_block_system(16, 4)
            handle = service.register(matrix)
            with trace_context() as tc:
                t1 = service.submit(handle, random_rhs(16, 4, 1, seed=0))
                t2 = service.submit(handle, random_rhs(16, 4, 1, seed=1))
            t1.result(timeout=60.0)
            t2.result(timeout=60.0)
            assert t1.trace_id == t2.trace_id == tc.trace_id
            assert t1.request_id != t2.request_id
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Perf-trajectory regression gate
# ---------------------------------------------------------------------------


class TestRegressionGate:
    def test_synthetic_20pct_kernel_slowdown_fails(self, tmp_path):
        history = [_history_record(**{"kernels.lu_batched_s": 1.0})
                   for _ in range(4)]
        history.append(_history_record(**{"kernels.lu_batched_s": 1.2}))
        regressions = check_regressions(history, threshold=0.15)
        (reg,) = regressions
        assert reg.metric == "kernels.lu_batched_s"
        assert reg.change == pytest.approx(0.2)
        assert "rose" in reg.describe()

    def test_higher_is_better_direction(self):
        history = [_history_record(**{"service.req_per_s": 100.0})
                   for _ in range(4)]
        history.append(_history_record(**{"service.req_per_s": 80.0}))
        (reg,) = check_regressions(history, threshold=0.15)
        assert reg.metric == "service.req_per_s"
        assert "fell" in reg.describe()

    def test_improvement_and_noise_pass(self):
        history = [_history_record(**{"kernels.lu_batched_s": 1.0,
                                      "service.req_per_s": 100.0})
                   for _ in range(4)]
        history.append(_history_record(**{"kernels.lu_batched_s": 0.5,
                                          "service.req_per_s": 108.0}))
        assert check_regressions(history, threshold=0.15) == []

    def test_rolling_median_absorbs_one_outlier(self):
        values = [1.0, 1.0, 5.0, 1.0, 1.0, 1.0]
        history = [_history_record(**{"kernels.lu_batched_s": v})
                   for v in values]
        assert check_regressions(history, threshold=0.15) == []

    def test_short_history_is_seed_not_failure(self):
        assert check_regressions([]) == []
        assert check_regressions([_history_record(x=1.0)]) == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        with path.open("w") as fh:
            for v in (1.0, 1.0, 1.0, 1.3):
                fh.write(json.dumps(
                    _history_record(**{"kernels.lu_batched_s": v})) + "\n")
        assert regress_main([str(path)]) == 1
        assert "kernels.lu_batched_s" in capsys.readouterr().out
        assert regress_main([str(path), "--threshold", "0.5"]) == 0
        assert regress_main([str(tmp_path / "missing.jsonl")]) == 2


class TestBenchHistory:
    def test_two_runs_append_two_records(self, tmp_path, capsys):
        from repro.harness.bench_history import run_bench_history

        path = tmp_path / "BENCH_history.jsonl"
        assert run_bench_history(path, "smoke", verbose=False) == 0
        assert run_bench_history(path, "smoke", verbose=False) == 0
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(records) == 2
        for rec in records:
            assert rec["schema_version"] == 1
            assert rec["scale"] == "smoke"
            assert "written_at" in rec and "env" in rec
            for metric in ("kernels.lu_batched_s", "service.req_per_s",
                           "solve.ard_wall_s", "obs.disabled_span_us"):
                assert rec["metrics"][metric] > 0
