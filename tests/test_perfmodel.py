"""Tests for the analytic complexity/time models and calibration."""

import pytest

from repro.comm import CostModel, run_spmd
from repro.config import config_context
from repro.core import (
    ARDFactorization,
    CyclicReductionFactorization,
    ThomasFactorization,
    distribute_matrix,
    distribute_rhs,
    rd_solve_spmd,
)
from repro.exceptions import ConfigError
from repro.perfmodel import (
    PAPER_ERA_MODEL,
    calibrate_flop_rate,
    calibrated_cost_model,
    predict_cost,
    predict_flops,
    predict_time,
    speedup_model,
)
from repro.util.flops import counting_flops
from repro.workloads import helmholtz_block_system, random_rhs


class TestPredictorDispatch:
    def test_all_methods_positive(self):
        for method in ("ard", "ard_factor", "ard_solve", "rd", "thomas",
                       "cyclic", "bcr_parallel"):
            assert predict_flops(method, n=64, m=4, p=4, r=8) > 0
            assert predict_time(method, n=64, m=4, p=4, r=8) > 0

    def test_unknown_method(self):
        with pytest.raises(ConfigError):
            predict_cost("nope", n=4, m=2)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            predict_cost("rd", n=0, m=2)

    def test_phase_lookup(self):
        cost = predict_cost("ard_factor", n=64, m=4, p=4)
        assert cost.phase("scan").messages > 0
        with pytest.raises(KeyError):
            cost.phase("nonexistent")


class TestModelShapes:
    def test_rd_linear_in_r(self):
        f1 = predict_flops("rd", n=128, m=8, p=8, r=1)
        f64 = predict_flops("rd", n=128, m=8, p=8, r=64)
        assert f64 / f1 == pytest.approx(64.0, rel=0.01)

    def test_ard_sublinear_in_r(self):
        f1 = predict_flops("ard", n=128, m=8, p=8, r=1)
        f64 = predict_flops("ard", n=128, m=8, p=8, r=64)
        assert f64 / f1 < 32  # far below RD's 64x

    def test_ard_factor_cubic_in_m(self):
        f4 = predict_flops("ard_factor", n=128, m=4, p=8)
        f8 = predict_flops("ard_factor", n=128, m=8, p=8)
        assert f8 / f4 == pytest.approx(8.0, rel=0.15)

    def test_ard_solve_quadratic_in_m(self):
        f4 = predict_flops("ard_solve", n=128, m=4, p=8, r=16)
        f8 = predict_flops("ard_solve", n=128, m=8, p=8, r=16)
        assert f8 / f4 == pytest.approx(4.0, rel=0.15)

    def test_strong_scaling_decreases_then_flattens(self):
        times = [
            predict_time("ard_factor", n=4096, m=8, p=p, cost_model=PAPER_ERA_MODEL)
            for p in (1, 4, 16, 64)
        ]
        assert times == sorted(times, reverse=True)
        # Efficiency degrades: halving gains at high P.
        assert times[2] / times[3] < 4.0

    def test_speedup_model_regimes(self):
        assert speedup_model(64, 1) == pytest.approx(1.0, rel=0.02)
        assert speedup_model(64, 16) == pytest.approx(12.8, rel=0.01)
        assert speedup_model(64, 10**6) == pytest.approx(64.0, rel=0.01)


class TestModelVsInstrumented:
    @pytest.mark.parametrize("n,m,p,r", [(64, 4, 4, 8), (96, 8, 8, 4)])
    def test_ard_factor_within_10pct(self, n, m, p, r):
        mat, _ = helmholtz_block_system(n, m)
        fact = ARDFactorization(mat, nranks=p)
        measured = max(s.flops for s in fact.factor_result.stats)
        predicted = predict_flops("ard_factor", n=n, m=m, p=p)
        assert measured / predicted == pytest.approx(1.0, abs=0.1)

    @pytest.mark.parametrize("n,m,p,r", [(64, 4, 4, 8), (96, 8, 8, 4)])
    def test_ard_solve_within_10pct(self, n, m, p, r):
        mat, _ = helmholtz_block_system(n, m)
        fact = ARDFactorization(mat, nranks=p)
        fact.solve(random_rhs(n, m, r, seed=0))
        measured = max(s.flops for s in fact.last_solve_result.stats)
        predicted = predict_flops("ard_solve", n=n, m=m, p=p, r=r)
        assert measured / predicted == pytest.approx(1.0, abs=0.1)

    def test_rd_within_10pct(self):
        n, m, p, r = 64, 4, 4, 4
        mat, _ = helmholtz_block_system(n, m)
        chunks = distribute_matrix(mat, p)
        d = distribute_rhs(random_rhs(n, m, r, seed=1), p)
        res = run_spmd(
            rd_solve_spmd, p, rank_args=[(c, dd) for c, dd in zip(chunks, d)]
        )
        measured = max(s.flops for s in res.stats)
        predicted = predict_flops("rd", n=n, m=m, p=p, r=r)
        assert measured / predicted == pytest.approx(1.0, abs=0.1)

    def test_thomas_within_5pct(self):
        n, m, r = 64, 6, 8
        mat, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=2)
        with config_context(flop_counting=True), counting_flops() as fc:
            ThomasFactorization(mat).solve(b)
        assert fc.total / predict_flops("thomas", n=n, m=m, r=r) == pytest.approx(
            1.0, abs=0.05
        )

    def test_cyclic_within_10pct(self):
        n, m, r = 64, 6, 8
        mat, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=3)
        with config_context(flop_counting=True), counting_flops() as fc:
            CyclicReductionFactorization(mat).solve(b)
        assert fc.total / predict_flops("cyclic", n=n, m=m, r=r) == pytest.approx(
            1.0, abs=0.1
        )

    def test_predicted_time_brackets_virtual_time(self):
        n, m, p, r = 128, 8, 8, 16
        mat, _ = helmholtz_block_system(n, m)
        fact = ARDFactorization(mat, nranks=p, cost_model=PAPER_ERA_MODEL)
        fact.solve(random_rhs(n, m, r, seed=4))
        measured = (
            fact.factor_result.virtual_time + fact.last_solve_result.virtual_time
        )
        predicted = predict_time("ard", n=n, m=m, p=p, r=r,
                                 cost_model=PAPER_ERA_MODEL)
        assert 0.3 * predicted < measured < 1.7 * predicted


class TestCalibration:
    def test_flop_rate_sane(self):
        rate = calibrate_flop_rate(m=96, reps=2)
        assert 1e7 < rate < 1e13  # any real machine lands here

    def test_calibrated_model(self):
        cm = calibrated_cost_model(m=96, reps=2)
        assert isinstance(cm, CostModel)
        assert cm.latency == PAPER_ERA_MODEL.latency

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_flop_rate(m=1)


class TestMachineCalibration:
    """The measured-machine snapshot: round-trip, schema gating, and
    the acceptance criterion that a loaded calibration actually changes
    the predictor's answer (it is consumed, not just parsed)."""

    @pytest.fixture(scope="class")
    def calib(self):
        from repro.perfmodel import calibrate_machine

        # Tiny shape: the test cares about plumbing, not rate accuracy.
        return calibrate_machine(block_size=8, batch=4, reps=1)

    def test_rates_sane(self, calib):
        assert 1e5 < calib.gemm_flop_rate < 1e14
        assert 1e5 < calib.lu_flop_rate < 1e14
        assert 1e5 < calib.trsm_flop_rate < 1e14
        assert calib.copy_bandwidth > 1e5
        assert 0.0 < calib.latency < 1.0
        assert calib.peak_flop_rate() == max(
            calib.gemm_flop_rate, calib.lu_flop_rate, calib.trsm_flop_rate)

    def test_save_load_round_trip(self, calib, tmp_path):
        from repro.perfmodel import load_calibration, save_calibration

        path = save_calibration(calib, tmp_path / "CALIB_machine.json")
        assert load_calibration(path) == calib

    def test_missing_file_raises(self, tmp_path):
        from repro.perfmodel import load_calibration

        with pytest.raises(ConfigError, match="--calibrate"):
            load_calibration(tmp_path / "nope.json")

    def test_unsupported_schema_version_rejected(self, calib, tmp_path):
        import json

        from repro.perfmodel import load_calibration, save_calibration

        path = save_calibration(calib, tmp_path / "CALIB_machine.json")
        doc = json.loads(path.read_text())
        doc["schema_version"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(ConfigError, match="schema_version"):
            load_calibration(path)

    def test_cost_model_uses_measured_rates(self, calib):
        cm = calib.cost_model()
        assert cm.flop_rate == calib.gemm_flop_rate
        assert cm.inv_bandwidth == pytest.approx(1.0 / calib.copy_bandwidth)
        assert cm.latency == calib.latency
        assert cm.overhead == PAPER_ERA_MODEL.overhead

    def test_predict_time_consumes_calibration(self, calib, tmp_path):
        """Acceptance criterion: a prediction made against the written
        calibration file differs from the hard-coded default, and the
        path and in-memory forms agree."""
        from repro.perfmodel import save_calibration

        kwargs = dict(n=256, m=8, p=8, r=32)
        default = predict_time("ard", **kwargs)
        via_object = predict_time("ard", calibration=calib, **kwargs)
        path = save_calibration(calib, tmp_path / "CALIB_machine.json")
        via_path = predict_time("ard", calibration=path, **kwargs)
        assert via_path == via_object
        assert via_object != default
        assert via_object > 0.0

    def test_calibration_cost_model_helper(self, calib, tmp_path):
        from repro.perfmodel import calibration_cost_model, save_calibration

        path = save_calibration(calib, tmp_path / "CALIB_machine.json")
        cm = calibration_cost_model(path)
        assert isinstance(cm, CostModel)
        assert cm.flop_rate == calib.gemm_flop_rate
