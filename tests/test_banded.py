"""Tests for the block banded generalization (repro.banded)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.banded import (
    BandedARDFactorization,
    BandedChunk,
    BlockBandedMatrix,
    distribute_banded,
)
from repro.core import ARDFactorization
from repro.exceptions import ShapeError
from repro.workloads import banded_oscillatory_system, helmholtz_block_system, random_rhs


def _dense_solve(matrix, b):
    n, m = matrix.nblocks, matrix.block_size
    r = b.shape[2]
    x = np.linalg.solve(matrix.to_dense(), b.reshape(n * m, r))
    return x.reshape(n, m, r)


class TestBlockBandedMatrix:
    def test_shapes_and_metadata(self):
        mat, info = banded_oscillatory_system(12, 3, bandwidth=2, seed=0)
        assert mat.nblocks == 12
        assert mat.block_size == 3
        assert mat.bandwidth == 2
        assert mat.shape == (36, 36)
        assert info["bandwidth"] == 2

    def test_matvec_matches_dense(self):
        mat, _ = banded_oscillatory_system(10, 2, bandwidth=2, seed=1)
        x = random_rhs(10, 2, 3, seed=2)
        dense = mat.to_dense() @ x.reshape(20, 3)
        np.testing.assert_allclose(
            mat.matvec(x).reshape(20, 3), dense, atol=1e-12
        )

    def test_from_dense_roundtrip(self):
        mat, _ = banded_oscillatory_system(8, 2, bandwidth=2, seed=3)
        back = BlockBandedMatrix.from_dense(mat.to_dense(), 2, 2)
        assert back.allclose(mat)

    def test_from_dense_off_band_rejected(self):
        a = np.eye(8)
        a[0, 7] = 1.0
        with pytest.raises(ShapeError, match="outside"):
            BlockBandedMatrix.from_dense(a, 2, 1)

    def test_from_tridiagonal(self):
        tri, _ = helmholtz_block_system(6, 2)
        banded = BlockBandedMatrix.from_tridiagonal(tri)
        np.testing.assert_allclose(banded.to_dense(), tri.to_dense())

    def test_block_access(self):
        mat, _ = banded_oscillatory_system(6, 2, bandwidth=2, seed=4)
        np.testing.assert_array_equal(mat.block(2, 4), mat.bands[4, 2])
        np.testing.assert_array_equal(mat.block(0, 5), np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            mat.block(6, 0)

    def test_out_of_range_nonzeros_rejected(self):
        bands = np.ones((3, 2, 1, 1))  # offset -1 nonzero in row 0: invalid
        with pytest.raises(ShapeError, match="out-of-range"):
            BlockBandedMatrix(bands)

    def test_residual(self):
        mat, _ = banded_oscillatory_system(8, 2, bandwidth=2, seed=5)
        b = random_rhs(8, 2, 1, seed=6)
        x = _dense_solve(mat, b)
        assert mat.residual(x, b) < 1e-11


class TestDistribution:
    def test_chunks_cover_rows(self):
        mat, _ = banded_oscillatory_system(13, 2, bandwidth=2, seed=7)
        chunks = distribute_banded(mat, 4)
        rows = [i for c in chunks for i in range(c.lo, c.hi)]
        assert rows == list(range(13))

    def test_ntransfer(self):
        mat, _ = banded_oscillatory_system(10, 2, bandwidth=2, seed=8)
        chunks = distribute_banded(mat, 2)
        # Transfers stop b=2 rows before the end.
        assert chunks[0].ntransfer == chunks[0].nrows
        assert chunks[1].ntransfer == chunks[1].nrows - 2

    def test_chunk_validation(self):
        with pytest.raises(ShapeError):
            BandedChunk(nblocks=4, bandwidth=1, lo=3, hi=2,
                        rows=np.zeros((3, 0, 2, 2)))


@pytest.mark.parametrize("bandwidth", [1, 2, 3])
@pytest.mark.parametrize("p", [1, 2, 3, 5])
class TestBandedArdCorrectness:
    def test_matches_dense(self, bandwidth, p):
        n = max(2 * bandwidth + 1, 14)
        mat, _ = banded_oscillatory_system(n, 3, bandwidth=bandwidth, seed=9)
        b = random_rhs(n, 3, nrhs=3, seed=10)
        x = BandedARDFactorization(mat, nranks=p).solve(b)
        np.testing.assert_allclose(x, _dense_solve(mat, b), rtol=1e-7,
                                   atol=1e-9)

    def test_more_ranks_than_rows(self, bandwidth, p):
        n = 2 * bandwidth + 2
        mat, _ = banded_oscillatory_system(n, 2, bandwidth=bandwidth, seed=11)
        b = random_rhs(n, 2, nrhs=1, seed=12)
        x = BandedARDFactorization(mat, nranks=p + 4).solve(b)
        assert mat.residual(x, b) < 1e-9


class TestBandwidthOneEquivalence:
    def test_matches_tridiagonal_ard(self):
        """b=1 banded ARD must agree with the tridiagonal ARD to
        rounding — the paper's algorithm is the special case."""
        tri, _ = helmholtz_block_system(16, 3)
        banded = BlockBandedMatrix.from_tridiagonal(tri)
        b = random_rhs(16, 3, nrhs=4, seed=13)
        x_tri = ARDFactorization(tri, nranks=4).solve(b)
        x_band = BandedARDFactorization(banded, nranks=4).solve(b)
        np.testing.assert_allclose(x_band, x_tri, rtol=1e-9, atol=1e-11)


class TestFactorSolveSplit:
    def test_factor_reuse(self):
        mat, _ = banded_oscillatory_system(20, 2, bandwidth=2, seed=14)
        fact = BandedARDFactorization(mat, nranks=3)
        for seed in range(3):
            b = random_rhs(20, 2, nrhs=2, seed=seed)
            assert mat.residual(fact.solve(b), b) < 1e-9

    def test_solve_flops_linear_in_r(self):
        mat, _ = banded_oscillatory_system(24, 3, bandwidth=2, seed=15)
        fact = BandedARDFactorization(mat, nranks=2)
        flops = {}
        for r in (1, 8):
            fact.solve(random_rhs(24, 3, r, seed=16))
            flops[r] = fact.last_solve_result.total_flops
        assert flops[8] / flops[1] == pytest.approx(8.0, rel=0.05)

    def test_refine_supported(self):
        mat, _ = banded_oscillatory_system(18, 2, bandwidth=2, seed=17)
        fact = BandedARDFactorization(mat, nranks=2)
        b = random_rhs(18, 2, nrhs=2, seed=18)
        assert mat.residual(fact.solve(b, refine=1), b) < 1e-12

    def test_metadata(self):
        mat, _ = banded_oscillatory_system(12, 2, bandwidth=2, seed=19)
        fact = BandedARDFactorization(mat, nranks=2)
        assert fact.bandwidth == 2
        assert fact.nbytes > 0
        assert fact.factor_virtual_time > 0


class TestValidation:
    def test_too_small_n_rejected(self):
        bands = np.zeros((5, 4, 2, 2))  # b=2 but only N=4 rows
        bands[2] = np.eye(2)
        small = BlockBandedMatrix(bands)
        with pytest.raises(ShapeError, match="2b"):
            BandedARDFactorization(small, nranks=1)

    def test_wrong_type_rejected(self):
        tri, _ = helmholtz_block_system(6, 2)
        with pytest.raises(ShapeError, match="BlockBandedMatrix"):
            BandedARDFactorization(tri, nranks=1)

    def test_generator_validation(self):
        with pytest.raises(ShapeError):
            banded_oscillatory_system(3, 2, bandwidth=2)
        with pytest.raises(ShapeError):
            banded_oscillatory_system(8, 2, bandwidth=0)

    def test_unrotated_generator(self):
        mat, info = banded_oscillatory_system(10, 2, bandwidth=2, seed=21,
                                              rotate=False)
        assert info["rotate"] is False
        # Off-diagonal blocks are scalar multiples of identity.
        off = mat.bands[4, 0]
        assert abs(off[0, 1]) < 1e-14


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(7, 30),
    m=st.integers(1, 4),
    bw=st.integers(1, 3),
    p=st.integers(1, 5),
    seed=st.integers(0, 5000),
)
def test_property_banded_matches_dense(n, m, bw, p, seed):
    if n < 2 * bw + 1:
        n = 2 * bw + 1
    mat, _ = banded_oscillatory_system(n, m, bandwidth=bw, seed=seed)
    b = random_rhs(n, m, nrhs=2, seed=seed + 1)
    x = BandedARDFactorization(mat, nranks=p).solve(b)
    xref = _dense_solve(mat, b)
    scale = max(1.0, float(np.max(np.abs(xref))))
    assert float(np.max(np.abs(x - xref))) / scale < 1e-7
